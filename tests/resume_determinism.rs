//! Crash/resume determinism: a run interrupted mid-training and resumed from
//! its durable checkpoint must be **bitwise identical** to the same run left
//! uninterrupted.
//!
//! The interruption is simulated deterministically: a [`FaultPlan`] NaNs the
//! loss at a fixed epoch under a `FailFast` guard, so the run aborts *after*
//! the durable checkpoint for the preceding epochs has been written — exactly
//! the on-disk state a crash would leave behind. The resumed run drops the
//! fault (the config fingerprint deliberately ignores the fault plan and the
//! durable block) and must land on the same fingerprint as a clean
//! start-to-finish run.

use e2gcl::models::dgi::DgiModel;
use e2gcl::prelude::*;
use std::path::PathBuf;

/// FNV-1a (the shared [`e2gcl::durable::Fnv1a64`] hasher) over every
/// bit-relevant field of a [`PretrainResult`]; wall-clock checkpoint
/// timestamps are skipped. Mirrors `golden_determinism.rs`.
fn hash_matrix(h: &mut e2gcl::durable::Fnv1a64, m: &Matrix) {
    h.write_u64(m.rows() as u64);
    h.write_u64(m.cols() as u64);
    for &v in m.as_slice() {
        h.write_f32(v);
    }
}

fn fingerprint(r: &PretrainResult) -> u64 {
    let mut h = e2gcl::durable::Fnv1a64::new();
    h.write_u64(r.loss_curve.len() as u64);
    for &l in &r.loss_curve {
        h.write_f32(l);
    }
    hash_matrix(&mut h, &r.embeddings);
    h.write_u64(r.checkpoints.len() as u64);
    for (_, m) in &r.checkpoints {
        hash_matrix(&mut h, m);
    }
    h.finish()
}

/// A scratch checkpoint path under the system temp dir, removed on drop.
struct TempCkpt(PathBuf);

impl TempCkpt {
    fn new(name: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("e2gcl-resume-{}-{name}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }

    fn as_str(&self) -> String {
        self.0.to_string_lossy().into_owned()
    }
}

impl Drop for TempCkpt {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn tiny_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 6,
        batch_size: 64,
        hidden_dim: 32,
        embed_dim: 16,
        checkpoint_every: Some(2),
        guard: GuardConfig {
            policy: GuardPolicy::FailFast,
            ..GuardConfig::default()
        },
        ..TrainConfig::default()
    }
}

fn pretrain(
    model: &dyn ContrastiveModel,
    cfg: &TrainConfig,
    data: &e2gcl::datasets::NodeDataset,
) -> Result<PretrainResult, TrainError> {
    let mut rng = SeedRng::new(7);
    model.pretrain(&data.graph, &data.features, cfg, &mut rng)
}

/// Interrupt `model` at epoch 4 of 6 (durable checkpoints every 2 epochs, so
/// the crash leaves a `next_epoch = 4` checkpoint on disk), resume, and
/// assert the resumed result is bit-identical to an uninterrupted run.
fn assert_resume_is_bitwise_identical(name: &str, model: &dyn ContrastiveModel) {
    assert_resume_is_bitwise_identical_with(name, model, tiny_cfg());
}

fn assert_resume_is_bitwise_identical_with(
    name: &str,
    model: &dyn ContrastiveModel,
    base_cfg: TrainConfig,
) {
    let data = NodeDataset::generate(&spec("cora-sim").expect("spec"), 0.05, 0);
    let ckpt = TempCkpt::new(name);

    // Reference: the same 6 epochs, never interrupted, no disk involved.
    let clean = pretrain(model, &base_cfg, &data).expect("clean run");

    // Interrupted: NaN loss at epoch 4 under FailFast aborts the run after
    // the epoch-3 durable checkpoint was written.
    let mut cfg = base_cfg;
    cfg.durable = Some(DurableConfig {
        path: ckpt.as_str(),
        every_epochs: 2,
        resume: false,
    });
    cfg.fault = Some(FaultPlan::nan_loss(&[4]));
    let err = pretrain(model, &cfg, &data).expect_err("fault must abort the run");
    assert!(matches!(err, TrainError::NonFiniteLoss { .. }), "{err}");
    assert!(ckpt.0.exists(), "crash left no durable checkpoint behind");

    // Resumed: same config minus the fault, restored from the checkpoint.
    cfg.fault = None;
    cfg.durable.as_mut().expect("durable set").resume = true;
    let resumed = pretrain(model, &cfg, &data).expect("resumed run");

    assert_eq!(
        clean
            .loss_curve
            .iter()
            .map(|l| l.to_bits())
            .collect::<Vec<_>>(),
        resumed
            .loss_curve
            .iter()
            .map(|l| l.to_bits())
            .collect::<Vec<_>>(),
        "{name}: resumed loss curve diverged"
    );
    assert_eq!(
        fingerprint(&clean),
        fingerprint(&resumed),
        "{name}: resumed run is not bit-identical to the uninterrupted run"
    );
}

#[test]
fn e2gcl_resume_is_bitwise_identical() {
    assert_resume_is_bitwise_identical("e2gcl", &E2gclModel::default());
}

#[test]
fn e2gcl_per_node_resume_is_bitwise_identical() {
    let model = E2gclModel::new(E2gclConfig {
        view_mode: ViewMode::PerNodeEgo,
        ..E2gclConfig::default()
    });
    assert_resume_is_bitwise_identical("e2gcl-per-node", &model);
}

#[test]
fn grace_resume_is_bitwise_identical() {
    use e2gcl::models::grace::GraceModel;
    assert_resume_is_bitwise_identical("grace", &GraceModel::grace());
}

/// Mini-batch settings small enough that cora-sim at 0.05 (135 nodes) splits
/// into several genuinely sampled batches per epoch.
fn minibatch_cfg() -> TrainConfig {
    TrainConfig {
        minibatch: Some(MinibatchConfig {
            batch_nodes: 32,
            fanout: Some(4),
        }),
        ..tiny_cfg()
    }
}

/// The durable checkpoint also covers the sampled path: the trainer RNG state
/// it records replays the anchor shuffle and neighbour draws of the remaining
/// epochs exactly.
#[test]
fn e2gcl_minibatch_resume_is_bitwise_identical() {
    assert_resume_is_bitwise_identical_with(
        "e2gcl-minibatch",
        &E2gclModel::default(),
        minibatch_cfg(),
    );
}

#[test]
fn grace_minibatch_resume_is_bitwise_identical() {
    use e2gcl::models::grace::GraceModel;
    assert_resume_is_bitwise_identical_with(
        "grace-minibatch",
        &GraceModel::grace(),
        minibatch_cfg(),
    );
}

#[test]
fn resume_rejects_checkpoint_from_different_config() {
    let data = NodeDataset::generate(&spec("cora-sim").expect("spec"), 0.05, 0);
    let ckpt = TempCkpt::new("cfg-drift");
    let mut cfg = tiny_cfg();
    cfg.durable = Some(DurableConfig {
        path: ckpt.as_str(),
        every_epochs: 2,
        resume: false,
    });
    pretrain(&E2gclModel::default(), &cfg, &data).expect("producing run");

    cfg.lr *= 2.0; // any trajectory-relevant drift must be rejected
    cfg.durable.as_mut().expect("durable set").resume = true;
    let err = pretrain(&E2gclModel::default(), &cfg, &data).expect_err("drifted config");
    match err {
        TrainError::Checkpoint(msg) => {
            assert!(msg.contains("different training config"), "{msg}")
        }
        other => panic!("expected Checkpoint error, got {other}"),
    }
}

#[test]
fn models_without_snapshot_support_fail_with_typed_error() {
    let data = NodeDataset::generate(&spec("cora-sim").expect("spec"), 0.05, 0);
    let ckpt = TempCkpt::new("unsupported");
    let mut cfg = tiny_cfg();
    cfg.durable = Some(DurableConfig {
        path: ckpt.as_str(),
        every_epochs: 2,
        resume: false,
    });
    let err = pretrain(&DgiModel, &cfg, &data).expect_err("DGI has no snapshot support");
    match err {
        TrainError::Checkpoint(msg) => {
            assert!(
                msg.contains("does not support resumable checkpoints"),
                "{msg}"
            )
        }
        other => panic!("expected Checkpoint error, got {other}"),
    }
}
