//! Downstream-task integration tests: link prediction and graph
//! classification (the Table IX tasks), plus supervised references.

use e2gcl::eval;
use e2gcl::pipeline;
use e2gcl::prelude::*;
use e2gcl_datasets::graph_dataset::{graph_spec, GraphDataset};
use e2gcl_datasets::split::EdgeSplit;

#[test]
fn link_prediction_pipeline_beats_chance() {
    let d = NodeDataset::generate(&spec("photo-sim").unwrap(), 0.05, 41);
    let mut rng = SeedRng::new(0);
    let split = EdgeSplit::random(&d.graph, &mut rng);
    // Pre-train on the training graph only (no leakage).
    let model = E2gclModel::default();
    let cfg = TrainConfig {
        epochs: 8,
        batch_size: 128,
        ..Default::default()
    };
    let out = model
        .pretrain(&split.train_graph, &d.features, &cfg, &mut rng)
        .unwrap();
    let acc = eval::link_prediction_accuracy(&out.embeddings, &split, 1);
    assert!(acc > 0.6, "link prediction accuracy {acc}");
}

#[test]
fn graph_classification_pipeline_beats_chance() {
    let data = GraphDataset::generate(&graph_spec("nci1-sim").unwrap(), 0.3, 42);
    let model = E2gclModel::default();
    let cfg = TrainConfig {
        epochs: 8,
        batch_size: 256,
        ..Default::default()
    };
    let run = pipeline::run_graph_classification(&model, &data, &cfg, 2, 0).unwrap();
    let (mean, std) = (run.mean, run.std);
    assert!(run.failed_runs.is_empty());
    assert!(mean > 0.55, "graph classification {mean} ± {std}");
}

#[test]
fn supervised_references_order_sensibly() {
    // On a homophilous graph, structure-aware GCN should beat the
    // structure-blind MLP (the Table IV pattern).
    let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.15, 43);
    let cfg = TrainConfig {
        epochs: 60,
        ..Default::default()
    };
    let gcn =
        eval::supervised_gcn_accuracy(&d.graph, &d.features, &d.labels, d.num_classes, &cfg, 0);
    let mlp = eval::supervised_mlp_accuracy(&d.features, &d.labels, d.num_classes, &cfg, 0);
    assert!(gcn > mlp, "GCN {gcn} should beat MLP {mlp}");
}

#[test]
fn readout_graph_embeddings_separate_classes() {
    // Raw-aggregate SUM readout should already separate the two synthetic
    // graph classes (density differs by construction).
    let data = GraphDataset::generate(&graph_spec("proteins-sim").unwrap(), 0.3, 44);
    let (union, x, offsets) = pipeline::disjoint_union(&data.graphs, &data.features);
    let h = e2gcl_graph::norm::raw_aggregate(&union, &x, 2);
    let mut z = Matrix::zeros(data.len(), h.cols());
    for gi in 0..data.len() {
        let rows: Vec<usize> = (offsets[gi]..offsets[gi + 1]).collect();
        z.set_row(gi, &eval::sum_readout(&h.select_rows(&rows)));
    }
    let acc = eval::graph_classification_accuracy(&z, &data.labels, data.num_classes, 0);
    assert!(acc > 0.55, "readout accuracy {acc}");
}

#[test]
fn edge_split_pretraining_never_sees_test_edges() {
    let d = NodeDataset::generate(&spec("cs-sim").unwrap(), 0.02, 45);
    let mut rng = SeedRng::new(1);
    let split = EdgeSplit::random(&d.graph, &mut rng);
    for &(u, v) in split.test_pos.iter().chain(&split.val_pos) {
        assert!(!split.train_graph.has_edge(u, v));
    }
    // And negatives really are non-edges of the full graph.
    for &(u, v) in split.test_neg.iter().chain(&split.val_neg) {
        assert!(!d.graph.has_edge(u, v));
    }
}
