//! End-to-end Alg. 1 integration tests: pre-train → probe across crates.

use e2gcl::eval;
use e2gcl::prelude::*;

fn dataset() -> NodeDataset {
    NodeDataset::generate(&spec("cora-sim").unwrap(), 0.15, 11)
}

fn quick_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 12,
        batch_size: 128,
        ..Default::default()
    }
}

#[test]
fn e2gcl_beats_untrained_encoder() {
    let d = dataset();
    let model = E2gclModel::default();
    let cfg = quick_cfg();
    let mut rng = SeedRng::new(0);
    let trained = model
        .pretrain(&d.graph, &d.features, &cfg, &mut rng)
        .unwrap();
    // Untrained baseline: same architecture, zero epochs.
    let cfg0 = TrainConfig {
        epochs: 0,
        ..cfg.clone()
    };
    let untrained = model
        .pretrain(&d.graph, &d.features, &cfg0, &mut SeedRng::new(0))
        .unwrap();
    let acc_trained =
        eval::node_classification(&trained.embeddings, &d.labels, d.num_classes, 3, 7).0;
    let acc_untrained =
        eval::node_classification(&untrained.embeddings, &d.labels, d.num_classes, 3, 7).0;
    assert!(
        acc_trained > acc_untrained,
        "training must help: {acc_trained} vs untrained {acc_untrained}"
    );
    assert!(
        acc_trained > 0.5,
        "absolute accuracy too low: {acc_trained}"
    );
}

#[test]
fn full_pipeline_runs_for_every_contrastive_model() {
    use e2gcl::models::{
        adgcl::AdgclModel,
        bgrl::{AfgrlModel, BgrlModel},
        dgi::DgiModel,
        gae::{GaeModel, VgaeModel},
        grace::GraceModel,
        mvgrl::MvgrlModel,
        walks::WalkModel,
    };
    let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.06, 12);
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 64,
        ..Default::default()
    };
    let models: Vec<Box<dyn ContrastiveModel>> = vec![
        Box::new(E2gclModel::default()),
        Box::new(GraceModel::grace()),
        Box::new(GraceModel::gca()),
        Box::new(MvgrlModel::default()),
        Box::new(BgrlModel::default()),
        Box::new(AfgrlModel::default()),
        Box::new(DgiModel),
        Box::new(GaeModel),
        Box::new(VgaeModel::default()),
        Box::new(AdgclModel::default()),
        Box::new(WalkModel::deepwalk()),
        Box::new(WalkModel::node2vec()),
    ];
    for model in models {
        let mut rng = SeedRng::new(13);
        let out = model
            .pretrain(&d.graph, &d.features, &cfg, &mut rng)
            .unwrap();
        assert_eq!(
            out.embeddings.rows(),
            d.num_nodes(),
            "{} embedding rows",
            model.name()
        );
        assert!(
            !out.embeddings.has_non_finite(),
            "{} produced NaNs",
            model.name()
        );
        let acc = eval::node_classification_accuracy(&out.embeddings, &d.labels, d.num_classes, 1);
        // Chance level on 7 imbalanced classes is well below 0.35.
        assert!(acc > 0.1, "{} accuracy {acc} is degenerate", model.name());
    }
}

#[test]
fn e2gcl_with_coreset_matches_training_on_all_nodes() {
    // The Table VI claim: E2GCL_{S,I} is comparable to E2GCL_{A,I}.
    let d = dataset();
    let cfg = quick_cfg();
    let subset_model = E2gclModel::default(); // r = 0.4
    let all_model = E2gclModel::new(E2gclConfig {
        selector: SelectorKind::All,
        ..Default::default()
    });
    let acc = |model: &E2gclModel, seed: u64| -> f32 {
        let out = model
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(seed))
            .unwrap();
        eval::node_classification(&out.embeddings, &d.labels, d.num_classes, 3, seed).0
    };
    let sub = (acc(&subset_model, 1) + acc(&subset_model, 2)) / 2.0;
    let all = (acc(&all_model, 1) + acc(&all_model, 2)) / 2.0;
    assert!(
        sub > all - 0.08,
        "coreset training degraded too much: subset {sub} vs all {all}"
    );
}

#[test]
fn pretrain_is_reproducible_across_runs() {
    let d = NodeDataset::generate(&spec("citeseer-sim").unwrap(), 0.08, 14);
    let model = E2gclModel::default();
    let cfg = TrainConfig {
        epochs: 4,
        batch_size: 64,
        ..Default::default()
    };
    let a = model
        .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(42))
        .unwrap();
    let b = model
        .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(42))
        .unwrap();
    assert_eq!(a.embeddings, b.embeddings);
    assert_eq!(a.loss_curve, b.loss_curve);
}

/// The tentpole acceptance test: a persistent fault injected into exactly
/// one of three runs diverges that run (its retry re-hits the epoch-keyed
/// fault), while the sweep finishes with the other two accuracies intact.
#[test]
fn injected_divergence_is_recovered_per_run() {
    let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.06, 16);
    let model = E2gclModel::default();
    let base = TrainConfig {
        epochs: 3,
        batch_size: 64,
        ..Default::default()
    };
    let faulty = TrainConfig {
        guard: GuardConfig {
            policy: GuardPolicy::FailFast,
            ..Default::default()
        },
        fault: Some(FaultPlan::nan_loss(&[1]).only_for_seed(21)),
        ..base.clone()
    };
    let run = e2gcl::pipeline::run_node_classification(&model, &d, &faulty, 3, 20).unwrap();
    assert_eq!(
        run.accuracies.len(),
        2,
        "failed runs: {:?}",
        run.failed_runs
    );
    assert_eq!(run.failed_runs.len(), 1);
    assert_eq!(run.failed_runs[0].0, 21);
    assert!(matches!(
        run.failed_runs[0].1,
        TrainError::NonFiniteLoss { epoch: 1 }
    ));

    // The surviving runs are bit-identical to an entirely un-injected
    // sweep: guards and scoped fault plans leave healthy runs untouched.
    let clean_cfg = TrainConfig {
        guard: faulty.guard,
        ..base
    };
    let clean = e2gcl::pipeline::run_node_classification(&model, &d, &clean_cfg, 3, 20).unwrap();
    assert!(clean.failed_runs.is_empty());
    assert_eq!(clean.accuracies.len(), 3);
    assert_eq!(run.accuracies[0], clean.accuracies[0]);
    assert_eq!(run.accuracies[1], clean.accuracies[2]);
}

/// A transient fault (one that only fires on the run's first attempt epoch,
/// which the bounded backoff re-executes at reduced LR) must be absorbed by
/// the guard without the run ever reaching `failed_runs`.
#[test]
fn backoff_guard_absorbs_transient_gradient_fault() {
    let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.06, 16);
    let model = E2gclModel::default();
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 64,
        guard: GuardConfig {
            policy: GuardPolicy::SkipEpoch,
            ..Default::default()
        },
        fault: Some(FaultPlan::nan_gradients(&[1])),
        ..Default::default()
    };
    let run = e2gcl::pipeline::run_node_classification(&model, &d, &cfg, 2, 30).unwrap();
    assert_eq!(
        run.accuracies.len(),
        2,
        "failed runs: {:?}",
        run.failed_runs
    );
    assert!(run.failed_runs.is_empty());
}

#[test]
fn timing_fields_are_consistent() {
    let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 15);
    let model = E2gclModel::default();
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 64,
        ..Default::default()
    };
    let out = model
        .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(0))
        .unwrap();
    assert!(out.selection_time <= out.total_time);
    assert!(out.total_time.as_secs_f64() > 0.0);
}
