//! Cross-crate tests of the §III node selector on realistic datasets.

use e2gcl::prelude::*;
use e2gcl_graph::norm;
use e2gcl_selector::baselines::{
    DegreeSelector, GrainSelector, KCenterGreedy, KMeansSelector, RandomSelector,
};
use e2gcl_selector::coreset::exact_kmedoid_objective;
use e2gcl_selector::greedy::{GreedyConfig, GreedySelector};
use e2gcl_selector::NodeSelector;

fn dataset() -> NodeDataset {
    NodeDataset::generate(&spec("cora-sim").unwrap(), 0.2, 21)
}

#[test]
fn greedy_has_best_kmedoid_objective_among_strategies() {
    let d = dataset();
    let repr = norm::raw_aggregate(&d.graph, &d.features, 2);
    let budget = d.num_nodes() / 10;
    let greedy = GreedySelector::new(GreedyConfig {
        num_clusters: 30,
        sample_size: 200,
        ..Default::default()
    });
    let mut rng = SeedRng::new(0);
    let ours = greedy.select(&d.graph, &d.features, budget, &mut rng);
    let ours_cost = exact_kmedoid_objective(&repr, &ours.nodes);
    let baselines: Vec<Box<dyn NodeSelector>> =
        vec![Box::new(RandomSelector), Box::new(DegreeSelector)];
    for b in baselines {
        let mut rng = SeedRng::new(1);
        let s = b.select(&d.graph, &d.features, budget, &mut rng);
        let cost = exact_kmedoid_objective(&repr, &s.nodes);
        assert!(
            ours_cost < cost,
            "{}: greedy {ours_cost} should beat {cost}",
            b.name()
        );
    }
}

#[test]
fn selection_covers_all_classes_at_moderate_budget() {
    // The class-imbalance argument of §III-A: cluster-based selection keeps
    // small classes represented.
    let d = dataset();
    let greedy = GreedySelector::new(GreedyConfig {
        num_clusters: 30,
        sample_size: 200,
        ..Default::default()
    });
    let s = greedy.select(
        &d.graph,
        &d.features,
        d.num_nodes() / 5,
        &mut SeedRng::new(2),
    );
    let mut covered = vec![false; d.num_classes];
    for &v in &s.nodes {
        covered[d.labels[v]] = true;
    }
    assert!(
        covered.iter().all(|&c| c),
        "some class unrepresented: {covered:?}"
    );
}

#[test]
fn all_selectors_produce_valid_selections_on_dense_data() {
    let d = NodeDataset::generate(&spec("photo-sim").unwrap(), 0.04, 22);
    let budget = d.num_nodes() / 4;
    let selectors: Vec<Box<dyn NodeSelector>> = vec![
        Box::new(GreedySelector::new(GreedyConfig {
            num_clusters: 20,
            sample_size: 100,
            ..Default::default()
        })),
        Box::new(RandomSelector),
        Box::new(DegreeSelector),
        Box::new(KMeansSelector::default()),
        Box::new(KCenterGreedy),
        Box::new(GrainSelector::default()),
    ];
    for sel in selectors {
        let mut rng = SeedRng::new(3);
        let s = sel.select(&d.graph, &d.features, budget, &mut rng);
        s.validate(d.num_nodes(), budget)
            .unwrap_or_else(|e| panic!("{}: {e}", sel.name()));
        assert_eq!(s.nodes.len(), budget, "{}", sel.name());
    }
}

#[test]
fn larger_budget_never_hurts_objective() {
    let d = NodeDataset::generate(&spec("citeseer-sim").unwrap(), 0.1, 23);
    let repr = norm::raw_aggregate(&d.graph, &d.features, 2);
    let greedy = GreedySelector::new(GreedyConfig {
        num_clusters: 20,
        sample_size: 150,
        ..Default::default()
    });
    let mut costs = Vec::new();
    for budget in [10usize, 30, 90] {
        let s = greedy.select(&d.graph, &d.features, budget, &mut SeedRng::new(4));
        costs.push(exact_kmedoid_objective(&repr, &s.nodes));
    }
    assert!(costs[0] > costs[1] && costs[1] > costs[2], "{costs:?}");
}

#[test]
fn selection_time_is_small_fraction_of_training() {
    // The Table V shape: ST << TT once training runs a realistic number of
    // epochs (selection is a one-off cost, training is per-epoch).
    let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.15, 24);
    let model = E2gclModel::default();
    let cfg = TrainConfig {
        epochs: 40,
        batch_size: 128,
        ..Default::default()
    };
    let out = model
        .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(5))
        .unwrap();
    let st = out.selection_time.as_secs_f64();
    let tt = out.total_time.as_secs_f64();
    assert!(st < 0.5 * tt, "selection {st}s vs total {tt}s");
}
