//! Failure-injection and degenerate-input tests: the pipeline must survive
//! pathological graphs without panicking or producing NaNs.

use e2gcl::eval;
use e2gcl::prelude::*;
use e2gcl_graph::norm;
use e2gcl_views::{ViewConfig, ViewGenerator};

fn tiny_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 16,
        ..Default::default()
    }
}

/// Fully disconnected graph: every node isolated.
#[test]
fn edgeless_graph_trains_without_nans() {
    let g = CsrGraph::from_edges(30, &[]);
    let mut x = Matrix::zeros(30, 8);
    for v in 0..30 {
        x.set(v, v % 8, 1.0);
    }
    let model = E2gclModel::default();
    let out = model
        .pretrain(&g, &x, &tiny_cfg(), &mut SeedRng::new(0))
        .unwrap();
    assert_eq!(out.embeddings.rows(), 30);
    assert!(!out.embeddings.has_non_finite());
}

/// All-zero features: nothing to perturb, nothing to aggregate.
#[test]
fn zero_features_survive_pipeline() {
    let g = CsrGraph::from_edges(20, &[(0, 1), (1, 2), (5, 6), (10, 11)]);
    let x = Matrix::zeros(20, 4);
    let model = E2gclModel::default();
    let out = model
        .pretrain(&g, &x, &tiny_cfg(), &mut SeedRng::new(1))
        .unwrap();
    assert!(!out.embeddings.has_non_finite());
    // View generation on zero features is a no-op on X.
    let gen = ViewGenerator::new(&g, &x, ViewConfig::default(), &mut SeedRng::new(2));
    let (_, vx) = gen.sample_global_view(1.0, 1.4, &mut SeedRng::new(3));
    assert_eq!(vx, x);
}

/// Two-node graph: the smallest graph with an edge.
#[test]
fn two_node_graph() {
    let g = CsrGraph::from_edges(2, &[(0, 1)]);
    let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
    let model = E2gclModel::new(E2gclConfig {
        node_ratio: 1.0,
        ..Default::default()
    });
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 2,
        ..Default::default()
    };
    let out = model.pretrain(&g, &x, &cfg, &mut SeedRng::new(4)).unwrap();
    assert_eq!(out.embeddings.rows(), 2);
    assert!(!out.embeddings.has_non_finite());
}

/// Budget of a single node.
#[test]
fn budget_one_node() {
    let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 5);
    let model = E2gclModel::new(E2gclConfig {
        node_ratio: 1.0 / d.num_nodes() as f64,
        ..Default::default()
    });
    let sel = model.select_nodes(&d.graph, &d.features, &mut SeedRng::new(6));
    assert_eq!(sel.nodes.len(), 1);
    assert!((sel.weights[0] - d.num_nodes() as f32).abs() < 1.0);
    // Training on a single anchor must not panic (negatives may be empty).
    let out = model
        .pretrain(&d.graph, &d.features, &tiny_cfg(), &mut SeedRng::new(7))
        .unwrap();
    assert!(!out.embeddings.has_non_finite());
}

/// A graph dominated by one giant hub (pathological degree distribution).
#[test]
fn hub_dominated_graph() {
    let n = 100;
    let edges: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
    let g = CsrGraph::from_edges(n, &edges);
    let mut x = Matrix::zeros(n, 4);
    for v in 0..n {
        x.set(v, v % 4, 1.0);
    }
    let model = E2gclModel::default();
    let out = model
        .pretrain(&g, &x, &tiny_cfg(), &mut SeedRng::new(8))
        .unwrap();
    assert!(!out.embeddings.has_non_finite());
}

/// The probe handles a class that never appears in training data.
#[test]
fn probe_with_unseen_class() {
    let mut rng = SeedRng::new(9);
    let mut h = Matrix::zeros(40, 4);
    for v in h.as_mut_slice() {
        *v = rng.normal();
    }
    // Class 3 exists only in the test portion.
    let mut labels = vec![0usize; 40];
    for (i, l) in labels.iter_mut().enumerate() {
        *l = i % 3;
    }
    labels[39] = 3;
    let acc = eval::node_classification_accuracy(&h, &labels, 4, 0);
    assert!((0.0..=1.0).contains(&acc));
}

/// Mismatched scales between structure and features: huge feature values
/// must not produce NaNs anywhere (exp-capped edge scores, stable losses).
#[test]
fn extreme_feature_scale() {
    let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.04, 10);
    let mut x = d.features.clone();
    x.scale(1e4);
    let model = E2gclModel::default();
    let out = model
        .pretrain(&d.graph, &x, &tiny_cfg(), &mut SeedRng::new(11))
        .unwrap();
    assert!(!out.embeddings.has_non_finite());
}

/// Self-consistency: normalized adjacency of a corrupted view is always
/// well-formed even when corruption removes every edge.
#[test]
fn fully_corrupted_view_is_usable() {
    let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.04, 12);
    let empty = e2gcl_views::uniform::drop_edges_uniform(&d.graph, 1.0, &mut SeedRng::new(13));
    assert_eq!(empty.num_edges(), 0);
    let adj = norm::normalized_adjacency(&empty);
    let h = adj.spmm(&d.features);
    // Identity propagation: isolated nodes keep their own features.
    assert_eq!(h, d.features);
}

/// Every baseline survives an (almost) edgeless graph.
#[test]
fn baselines_survive_sparse_graph() {
    use e2gcl::models::{
        bgrl::{AfgrlModel, BgrlModel},
        dgi::DgiModel,
        gae::GaeModel,
        grace::GraceModel,
        walks::WalkModel,
    };
    let g = CsrGraph::from_edges(25, &[(0, 1), (10, 11)]);
    let mut x = Matrix::zeros(25, 6);
    for v in 0..25 {
        x.set(v, v % 6, 1.0);
    }
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        ..Default::default()
    };
    let models: Vec<Box<dyn ContrastiveModel>> = vec![
        Box::new(GraceModel::grace()),
        Box::new(BgrlModel::default()),
        Box::new(AfgrlModel::default()),
        Box::new(DgiModel),
        Box::new(GaeModel),
        Box::new(WalkModel::deepwalk()),
    ];
    for m in models {
        let out = m.pretrain(&g, &x, &cfg, &mut SeedRng::new(14)).unwrap();
        assert!(!out.embeddings.has_non_finite(), "{}", m.name());
    }
}

/// An empty graph (no nodes at all is unrepresentable in NodeDataset, so
/// "empty" here is edgeless) goes through the full per-run recovery pipeline
/// and comes out with clean aggregates, not a panic.
#[test]
fn edgeless_dataset_through_run_node_classification() {
    let g = CsrGraph::from_edges(24, &[]);
    let mut x = Matrix::zeros(24, 6);
    for v in 0..24 {
        x.set(v, v % 6, 1.0);
    }
    let labels: Vec<usize> = (0..24).map(|v| v % 3).collect();
    let d = NodeDataset {
        name: "edgeless".into(),
        graph: g,
        features: x,
        labels,
        num_classes: 3,
    };
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        ..Default::default()
    };
    let run =
        e2gcl::pipeline::run_node_classification(&E2gclModel::default(), &d, &cfg, 2, 0).unwrap();
    assert_eq!(run.accuracies.len() + run.failed_runs.len(), 2);
    for a in &run.accuracies {
        assert!((0.0..=1.0).contains(a));
    }
}

/// A dataset whose features are identically zero still completes the full
/// pipeline: the guard must not mistake degenerate-but-finite embeddings for
/// a numeric fault.
#[test]
fn zero_feature_dataset_through_run_node_classification() {
    let g = CsrGraph::from_edges(20, &[(0, 1), (1, 2), (2, 3), (4, 5), (10, 11)]);
    let x = Matrix::zeros(20, 4);
    let labels: Vec<usize> = (0..20).map(|v| v % 2).collect();
    let d = NodeDataset {
        name: "zero-features".into(),
        graph: g,
        features: x,
        labels,
        num_classes: 2,
    };
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        ..Default::default()
    };
    let run =
        e2gcl::pipeline::run_node_classification(&E2gclModel::default(), &d, &cfg, 1, 3).unwrap();
    assert!(run.failed_runs.is_empty(), "{:?}", run.failed_runs);
    assert_eq!(run.accuracies.len(), 1);
}
