//! Cross-crate tests of the §IV view generator on realistic datasets.

use e2gcl::prelude::*;
use e2gcl_graph::norm;
use e2gcl_linalg::ops;
use e2gcl_nn::GcnEncoder;
use e2gcl_views::ops::{apply_general, AugmentationOp, GraphView};
use e2gcl_views::{ViewConfig, ViewGenerator};

fn dataset() -> NodeDataset {
    NodeDataset::generate(&spec("cora-sim").unwrap(), 0.1, 31)
}

/// Prop. 1 on a real dataset graph: random op sequences reduce exactly.
#[test]
fn prop1_holds_on_dataset_graphs() {
    let d = dataset();
    let mut rng = SeedRng::new(0);
    let n = d.num_nodes();
    let dims = d.features.cols();
    for trial in 0..10 {
        let base = GraphView::from_graph(&d.graph, &d.features);
        let mut direct = base.clone();
        let mut reduced = base.clone();
        for _ in 0..8 {
            let op = match rng.below(6) {
                0 => AugmentationOp::EdgeDeletion(rng.below(n), rng.below(n)),
                1 => AugmentationOp::EdgeAddition(rng.below(n), rng.below(n)),
                2 => AugmentationOp::FeaturePerturbation(
                    rng.below(n),
                    rng.below(dims),
                    rng.uniform_range(-1.0, 1.0),
                ),
                3 => AugmentationOp::FeatureMasking(rng.below(n), rng.below(dims)),
                4 => AugmentationOp::NodeDropping(rng.below(n)),
                _ => AugmentationOp::FeatureDropping(rng.below(dims)),
            };
            let general = op.to_general(&reduced);
            op.apply(&mut direct);
            apply_general(&mut reduced, &general);
            assert_eq!(direct, reduced, "trial {trial} diverged on {op:?}");
        }
    }
}

/// Locality: a node's embedding on its positive view stays closer to its
/// original embedding than to a random other node's embedding.
#[test]
fn positive_views_preserve_node_identity() {
    let d = dataset();
    let mut rng = SeedRng::new(1);
    let generator = ViewGenerator::new(&d.graph, &d.features, ViewConfig::default(), &mut rng);
    let encoder = GcnEncoder::new(&[d.features.cols(), 32, 16], &mut rng);
    let adj = norm::normalized_adjacency(&d.graph);
    let h = encoder.embed(&adj, &d.features);
    let (vg, vx) = generator.sample_global_view(1.0, 0.6, &mut rng);
    let hv = encoder.embed(&norm::normalized_adjacency(&vg), &vx);
    let mut closer = 0usize;
    let trials = 200;
    for _ in 0..trials {
        let v = rng.below(d.num_nodes());
        let other = rng.below(d.num_nodes());
        let to_self = ops::dist(hv.row(v), h.row(v));
        let to_other = ops::dist(hv.row(v), h.row(other));
        if to_self <= to_other {
            closer += 1;
        }
    }
    assert!(
        closer as f64 / trials as f64 > 0.8,
        "only {closer}/{trials} views stayed closest to their own node"
    );
}

/// The per-node Alg. 3 form and the batched global form agree on scale: the
/// ego view of `v` contains roughly the nodes a GCN at `v` would see.
#[test]
fn ego_views_grow_with_hops() {
    let d = dataset();
    let mut rng = SeedRng::new(2);
    let mut sizes = Vec::new();
    for layers in [1usize, 2, 3] {
        let generator = ViewGenerator::new(
            &d.graph,
            &d.features,
            ViewConfig {
                layers,
                ..Default::default()
            },
            &mut rng.fork(&format!("gen{layers}")),
        );
        let mut total = 0usize;
        for v in 0..20 {
            total += generator.sample_ego_view(v, 1.0, 0.0, &mut rng).nodes.len();
        }
        sizes.push(total);
    }
    assert!(sizes[0] < sizes[1] && sizes[1] <= sizes[2], "{sizes:?}");
}

/// Diversity: two sampled views differ, and their raw aggregates differ on
/// most nodes (the Eq. (15) diversity reward is strictly positive).
#[test]
fn sampled_view_pairs_are_diverse() {
    let d = dataset();
    let mut rng = SeedRng::new(3);
    let generator = ViewGenerator::new(&d.graph, &d.features, ViewConfig::default(), &mut rng);
    let (g1, x1) = generator.sample_global_view(1.0, 0.6, &mut rng);
    let (g2, x2) = generator.sample_global_view(0.8, 0.8, &mut rng);
    let r1 = norm::raw_aggregate(&g1, &x1, 2);
    let r2 = norm::raw_aggregate(&g2, &x2, 2);
    let mut diverse = 0usize;
    for v in 0..d.num_nodes() {
        if ops::dist(r1.row(v), r2.row(v)) > 1e-6 {
            diverse += 1;
        }
    }
    assert!(
        diverse as f64 / d.num_nodes() as f64 > 0.9,
        "only {diverse}/{} nodes have diverse views",
        d.num_nodes()
    );
}

/// Feature-importance wiring survives the full pipeline: class-anchor dims
/// are perturbed less often than background dims.
#[test]
fn importance_aware_perturbation_on_dataset() {
    let d = dataset();
    let mut rng = SeedRng::new(4);
    let generator = ViewGenerator::new(&d.graph, &d.features, ViewConfig::default(), &mut rng);
    // Anchor block of class 0 vs the trailing background block.
    let dims = d.features.cols();
    let block = dims / (d.num_classes + 1);
    let mut anchor_changes = 0.0f64;
    let mut anchor_count = 0.0f64;
    let mut bg_changes = 0.0f64;
    let mut bg_count = 0.0f64;
    for t in 0..5 {
        let (_, vx) = generator.sample_global_view(1.0, 1.0, &mut rng.fork(&t.to_string()));
        for v in 0..d.num_nodes() {
            let c = d.labels[v];
            for dim in (c * block)..(c * block + block) {
                if d.features.get(v, dim) != 0.0 {
                    anchor_count += 1.0;
                    if (vx.get(v, dim) - d.features.get(v, dim)).abs() > 1e-9 {
                        anchor_changes += 1.0;
                    }
                }
            }
            for dim in (d.num_classes * block)..dims {
                if d.features.get(v, dim) != 0.0 {
                    bg_count += 1.0;
                    if (vx.get(v, dim) - d.features.get(v, dim)).abs() > 1e-9 {
                        bg_changes += 1.0;
                    }
                }
            }
        }
    }
    let anchor_rate = anchor_changes / anchor_count.max(1.0);
    let bg_rate = bg_changes / bg_count.max(1.0);
    assert!(
        anchor_rate < bg_rate,
        "anchor perturb rate {anchor_rate} should be below background {bg_rate}"
    );
}
