//! Golden determinism fingerprints for every `pretrain` path.
//!
//! Each case trains a model on a fixed tiny dataset with a fixed seed and
//! hashes every bit-relevant output (loss curve, final embeddings, and
//! checkpoint embeddings) into a single u64. The constants below were
//! recorded from the hand-rolled per-model training loops; the engine-routed
//! loops must reproduce them **bit-identically** (guards enabled, no faults
//! injected, clipping off — the `Proceed` path mutates nothing).
//!
//! Fingerprints are **per dispatch path** (DESIGN.md §16): the scalar
//! blocked kernels and the AVX2+FMA kernels each have a fixed element-level
//! reduction contract, bit-identical run-to-run and across
//! `RAYON_NUM_THREADS`, but the two contracts differ (8 fused lanes vs. 4
//! unfused). The test validates against the table matching the *active*
//! dispatch path — it never regenerates silently, and an unlisted path is
//! a hard failure.
//!
//! To (re)record after an intentional numeric change, run (per path):
//!
//! ```text
//! GOLDEN_PRINT=1 E2GCL_KERNEL_CONFIG=scalar cargo test -q --test golden_determinism -- --nocapture
//! GOLDEN_PRINT=1 E2GCL_KERNEL_CONFIG=avx2   cargo test -q --test golden_determinism -- --nocapture
//! ```
//!
//! and paste the printed table over the matching `GOLDEN_*` constant. Any
//! unintentional change to a fingerprint is a refactor bug, not an update.

use e2gcl::models::adgcl::AdgclModel;
use e2gcl::models::bgrl::{AfgrlModel, BgrlModel};
use e2gcl::models::dgi::DgiModel;
use e2gcl::models::gae::{GaeModel, VgaeModel};
use e2gcl::models::grace::GraceModel;
use e2gcl::models::mvgrl::MvgrlModel;
use e2gcl::models::walks::WalkModel;
use e2gcl::prelude::*;

/// FNV-1a (the shared [`e2gcl::durable::Fnv1a64`] hasher) over the bit
/// patterns of everything numerically meaningful in a [`PretrainResult`].
/// Wall-clock fields (timings) are deliberately skipped.
fn hash_matrix(h: &mut e2gcl::durable::Fnv1a64, m: &Matrix) {
    h.write_u64(m.rows() as u64);
    h.write_u64(m.cols() as u64);
    for &v in m.as_slice() {
        h.write_f32(v);
    }
}

fn fingerprint(r: &PretrainResult) -> u64 {
    let mut h = e2gcl::durable::Fnv1a64::new();
    h.write_u64(r.loss_curve.len() as u64);
    for &l in &r.loss_curve {
        h.write_f32(l);
    }
    hash_matrix(&mut h, &r.embeddings);
    h.write_u64(r.checkpoints.len() as u64);
    for (_, m) in &r.checkpoints {
        hash_matrix(&mut h, m);
    }
    h.finish()
}

fn tiny_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 4,
        batch_size: 64,
        hidden_dim: 32,
        embed_dim: 16,
        checkpoint_every: Some(2),
        ..TrainConfig::default()
    }
}

fn e2gcl_variant(loss: LossKind, encoder: EncoderKind, view_mode: ViewMode) -> E2gclModel {
    E2gclModel::new(E2gclConfig {
        loss,
        encoder,
        view_mode,
        ..E2gclConfig::default()
    })
}

/// `(case name, model, checkpoints enabled)`. The per-node ego path is
/// fingerprinted without checkpoints: the pre-engine loop never recorded
/// any, and pinning that here would freeze the gap rather than the numerics.
fn cases() -> Vec<(&'static str, Box<dyn ContrastiveModel>, bool)> {
    vec![
        ("grace", Box::new(GraceModel::grace()), true),
        ("gca", Box::new(GraceModel::gca()), true),
        ("bgrl", Box::new(BgrlModel::default()), true),
        ("afgrl", Box::new(AfgrlModel::default()), true),
        ("dgi", Box::new(DgiModel), true),
        ("gae", Box::new(GaeModel), true),
        ("vgae", Box::new(VgaeModel::default()), true),
        ("mvgrl", Box::new(MvgrlModel::default()), true),
        ("adgcl", Box::new(AdgclModel::default()), true),
        ("deepwalk", Box::new(WalkModel::deepwalk()), true),
        ("node2vec", Box::new(WalkModel::node2vec()), true),
        ("e2gcl-margin-gcn", Box::new(E2gclModel::default()), true),
        (
            "e2gcl-infonce-sage",
            Box::new(e2gcl_variant(
                LossKind::InfoNce,
                EncoderKind::Sage,
                ViewMode::GlobalBatched,
            )),
            true,
        ),
        (
            "e2gcl-margin-sgc",
            Box::new(e2gcl_variant(
                LossKind::Margin,
                EncoderKind::Sgc,
                ViewMode::GlobalBatched,
            )),
            true,
        ),
        (
            "e2gcl-per-node-ego",
            Box::new(e2gcl_variant(
                LossKind::Margin,
                EncoderKind::Gcn,
                ViewMode::PerNodeEgo,
            )),
            false,
        ),
    ]
}

/// Seed-state fingerprints recorded from the pre-engine training loops.
// Regenerated ONCE for the blocked-GEMM PR (DESIGN.md §11), for three
// legitimate numeric-order reasons (semantics unchanged):
// `matmul_transpose`/`syrk` moved to a fixed 4-lane reduction
// (`ops::lane_dot`), the InfoNCE backward was reformulated as GEMMs, and
// `matmul`/`transpose_matmul` dropped their `a == 0.0` skip (exact zeros —
// e.g. from ReLU — now contribute `±0.0` terms to the chains they used to
// skip). The `deepwalk`/`node2vec`/`e2gcl-margin-sgc` fingerprints came out
// unchanged, as expected: those paths avoid all three effects.
const GOLDEN_SCALAR: &[(&str, u64)] = &[
    ("grace", 0xcb8a917ae87670a2),
    ("gca", 0x9ff2446c8d276df2),
    ("bgrl", 0x65ab5b100e6e4e36),
    ("afgrl", 0xb25acc4fccee9853),
    ("dgi", 0x67a1c37e39f7c833),
    ("gae", 0x089a37fb8b16db6e),
    ("vgae", 0xb9271bb4e50f72fe),
    ("mvgrl", 0xc6359ffb362f310c),
    ("adgcl", 0x40c5eb5fa7f79278),
    ("deepwalk", 0x7481d94f09b4f097),
    ("node2vec", 0xa19f41d34123344e),
    ("e2gcl-margin-gcn", 0x2b6c6a6de5717f8d),
    ("e2gcl-infonce-sage", 0x59fa7c7894852bb4),
    ("e2gcl-margin-sgc", 0xde4bdcd50c87962e),
    ("e2gcl-per-node-ego", 0x6cf508447739a263),
];

/// Recorded under `E2GCL_KERNEL_CONFIG=avx2` on the AVX2+FMA reference
/// host for the kernel-dispatch PR. Differences from the scalar table come
/// only from the per-path reduction contract (8 fused lanes vs. 4 unfused,
/// fused axpy/SpMM chains); tile geometry and parallel grain are bit-inert
/// within the path (pinned by `crates/linalg/tests/simd_contract.rs`).
const GOLDEN_AVX2: &[(&str, u64)] = &[
    ("grace", 0x036ff8bbd46cc3b4),
    ("gca", 0x004b390800817736),
    ("bgrl", 0xa1e37eabab62ed3d),
    ("afgrl", 0xb7247b1c6c7fdf34),
    ("dgi", 0x3b3be8155c825298),
    ("gae", 0x4e245d4ecb2687d1),
    ("vgae", 0x8c361d701a8e09c9),
    ("mvgrl", 0x1617bc219e32de75),
    ("adgcl", 0x838c93fb3bf3d013),
    // deepwalk/node2vec avoid the dense GEMM/lane-dot hot path entirely,
    // so their fingerprints are identical across dispatch paths.
    ("deepwalk", 0x7481d94f09b4f097),
    ("node2vec", 0xa19f41d34123344e),
    ("e2gcl-margin-gcn", 0x723b35a0d48ef009),
    ("e2gcl-infonce-sage", 0xfee08b9ea58a10ff),
    ("e2gcl-margin-sgc", 0x373791dc41d93f39),
    ("e2gcl-per-node-ego", 0x835d0dcdac2540ad),
];

/// The golden table for the active dispatch path.
fn golden_for_active_path() -> (&'static str, &'static [(&'static str, u64)]) {
    match e2gcl_linalg::dispatch::current_path() {
        e2gcl_linalg::DispatchPath::Scalar => ("scalar", GOLDEN_SCALAR),
        e2gcl_linalg::DispatchPath::Avx2 => ("avx2", GOLDEN_AVX2),
    }
}

#[test]
fn pretrain_fingerprints_are_bit_stable() {
    let data = NodeDataset::generate(&spec("cora-sim").expect("spec"), 0.05, 0);
    let print_mode = std::env::var("GOLDEN_PRINT").is_ok();
    let (path_name, golden) = golden_for_active_path();
    let mut failures = Vec::new();
    for (name, model, with_checkpoints) in cases() {
        let cfg = TrainConfig {
            checkpoint_every: if with_checkpoints { Some(2) } else { None },
            ..tiny_cfg()
        };
        let mut rng = SeedRng::new(7);
        let out = model
            .pretrain(&data.graph, &data.features, &cfg, &mut rng)
            .unwrap_or_else(|e| panic!("{name}: pretrain failed: {e}"));
        let fp = fingerprint(&out);
        if print_mode {
            println!("    (\"{name}\", {fp:#018x}),");
            continue;
        }
        let expected = golden
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("{name}: missing golden entry for path {path_name}"))
            .1;
        if fp != expected {
            failures.push(format!(
                "{name} [{path_name}]: got {fp:#018x}, golden {expected:#018x}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "fingerprint drift (training is no longer bit-identical):\n{}",
        failures.join("\n")
    );
}
