//! Golden fingerprints + thread-count invariance for the sub-quadratic
//! contrastive loss strategies (DESIGN.md §15).
//!
//! The default `LossStrategy::Full` path is pinned by
//! `golden_determinism.rs`; this file pins the `smallneg`/`localized`
//! training paths the same way AND proves each run is bit-identical across
//! `RAYON_NUM_THREADS` by re-exec'ing itself under different pool sizes
//! (the rayon stand-in fixes its pool per process).
//!
//! Fingerprints are **per dispatch path** (DESIGN.md §16), like
//! `golden_determinism.rs`: the table matching the active kernel path is
//! validated, never silently regenerated. The re-exec children inherit
//! `E2GCL_KERNEL_CONFIG`, so thread-invariance is proven for the same
//! dispatched kernels the parent ran.
//!
//! To (re)record after an intentional numeric change, run (per path):
//!
//! ```text
//! GOLDEN_PRINT=1 E2GCL_KERNEL_CONFIG=scalar cargo test -q --test loss_strategy_determinism -- --nocapture
//! GOLDEN_PRINT=1 E2GCL_KERNEL_CONFIG=avx2   cargo test -q --test loss_strategy_determinism -- --nocapture
//! ```

use e2gcl::durable::Fnv1a64;
use e2gcl::models::grace::GraceModel;
use e2gcl::prelude::*;
use std::process::Command;

const CHILD_ENV: &str = "E2GCL_LOSS_STRATEGY_DETERMINISM_CHILD";

fn hash_matrix(h: &mut Fnv1a64, m: &Matrix) {
    h.write_u64(m.rows() as u64);
    h.write_u64(m.cols() as u64);
    for &v in m.as_slice() {
        h.write_f32(v);
    }
}

fn fingerprint(r: &PretrainResult) -> u64 {
    let mut h = Fnv1a64::new();
    h.write_u64(r.loss_curve.len() as u64);
    for &l in &r.loss_curve {
        h.write_f32(l);
    }
    hash_matrix(&mut h, &r.embeddings);
    h.finish()
}

fn cfg_with(loss: LossStrategy, minibatch: Option<MinibatchConfig>) -> TrainConfig {
    TrainConfig {
        epochs: 4,
        batch_size: 64,
        hidden_dim: 32,
        embed_dim: 16,
        loss,
        minibatch,
        ..TrainConfig::default()
    }
}

/// `(case name, model, config)`: every sub-quadratic strategy through both
/// supporting models, full-batch and mini-batch.
fn cases() -> Vec<(&'static str, Box<dyn ContrastiveModel>, TrainConfig)> {
    let smallneg = LossStrategy::SmallNeg { negatives: 48 };
    let localized = LossStrategy::Localized { hops: 2 };
    let mb = Some(MinibatchConfig {
        batch_nodes: 48,
        fanout: Some(5),
    });
    vec![
        (
            "grace-smallneg",
            Box::new(GraceModel::grace()),
            cfg_with(smallneg.clone(), None),
        ),
        (
            "grace-localized",
            Box::new(GraceModel::grace()),
            cfg_with(localized.clone(), None),
        ),
        (
            "grace-smallneg-minibatch",
            Box::new(GraceModel::grace()),
            cfg_with(smallneg.clone(), mb.clone()),
        ),
        (
            "e2gcl-smallneg",
            Box::new(E2gclModel::default()),
            cfg_with(smallneg, None),
        ),
        (
            "e2gcl-localized",
            Box::new(E2gclModel::default()),
            cfg_with(localized.clone(), None),
        ),
        (
            "e2gcl-localized-minibatch",
            Box::new(E2gclModel::default()),
            cfg_with(localized, mb),
        ),
    ]
}

/// Fingerprints recorded at introduction (PR 9). Any unintentional change
/// is a determinism regression in the sub-quadratic kernels or in the
/// per-epoch negative re-selection, not an update.
const GOLDEN_SCALAR: &[(&str, u64)] = &[
    ("grace-smallneg", 0x9dbd6fd2f7d24e57),
    ("grace-localized", 0x3d99ce4487401304),
    ("grace-smallneg-minibatch", 0xdcea1a90ef2a94d3),
    ("e2gcl-smallneg", 0xacf5adcd97d35859),
    ("e2gcl-localized", 0x131fe52ed8ce4ac1),
    ("e2gcl-localized-minibatch", 0xe83a5206e54724aa),
];

/// Recorded under `E2GCL_KERNEL_CONFIG=avx2` on the AVX2+FMA reference
/// host for the kernel-dispatch PR (same per-path policy as
/// `golden_determinism.rs`).
const GOLDEN_AVX2: &[(&str, u64)] = &[
    ("grace-smallneg", 0x84b61dc9cd033152),
    ("grace-localized", 0x54a31d04c1953dbf),
    ("grace-smallneg-minibatch", 0x45a103478d5756e3),
    ("e2gcl-smallneg", 0x6d1dc5edda3e905a),
    ("e2gcl-localized", 0xacd48a79a7098d72),
    ("e2gcl-localized-minibatch", 0x7512bd514d38f672),
];

/// The golden table for the active dispatch path.
fn golden_for_active_path() -> (&'static str, &'static [(&'static str, u64)]) {
    match e2gcl_linalg::dispatch::current_path() {
        e2gcl_linalg::DispatchPath::Scalar => ("scalar", GOLDEN_SCALAR),
        e2gcl_linalg::DispatchPath::Avx2 => ("avx2", GOLDEN_AVX2),
    }
}

fn all_fingerprints() -> Vec<(&'static str, u64)> {
    let data = NodeDataset::generate(&spec("cora-sim").expect("spec"), 0.05, 0);
    cases()
        .into_iter()
        .map(|(name, model, cfg)| {
            let out = model
                .pretrain(&data.graph, &data.features, &cfg, &mut SeedRng::new(7))
                .unwrap_or_else(|e| panic!("{name}: pretrain failed: {e}"));
            (name, fingerprint(&out))
        })
        .collect()
}

#[test]
fn strategy_fingerprints_are_bit_stable_across_thread_counts() {
    let fps = all_fingerprints();
    if std::env::var(CHILD_ENV).is_ok() {
        for (name, fp) in &fps {
            println!("FP:{name}={fp:016x}");
        }
        return;
    }
    if std::env::var("GOLDEN_PRINT").is_ok() {
        for (name, fp) in &fps {
            println!("    (\"{name}\", {fp:#018x}),");
        }
        return;
    }
    // Golden pin (this process), against the active dispatch path's table.
    let (path_name, golden) = golden_for_active_path();
    let mut failures = Vec::new();
    for (name, fp) in &fps {
        let expected = golden
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name}: missing golden entry for path {path_name}"))
            .1;
        if *fp != expected {
            failures.push(format!(
                "{name} [{path_name}]: got {fp:#018x}, golden {expected:#018x}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "strategy fingerprint drift:\n{}",
        failures.join("\n")
    );
    // Thread invariance (child processes with forced pool sizes).
    let exe = std::env::current_exe().expect("test binary path");
    for threads in ["1", "4"] {
        let out = Command::new(&exe)
            .arg("strategy_fingerprints_are_bit_stable_across_thread_counts")
            .arg("--exact")
            .arg("--nocapture")
            .env(CHILD_ENV, "1")
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("spawn child test process");
        assert!(
            out.status.success(),
            "child with {threads} threads failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        for (name, fp) in &fps {
            let marker = format!("FP:{name}={fp:016x}");
            assert!(
                stdout.contains(&marker),
                "{name} differs under RAYON_NUM_THREADS={threads}; \
                 expected {marker} in:\n{stdout}"
            );
        }
    }
}
