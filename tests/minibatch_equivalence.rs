//! Full-batch equivalence: a `minibatch` block whose configuration is
//! degenerate — `batch_nodes >= |V|` and unlimited `fanout` — must reproduce
//! the plain full-graph training path **bitwise**, because the models
//! dispatch that case to the existing step before drawing any additional
//! randomness (DESIGN.md §13). This pins the mini-batch refactor against the
//! golden fingerprints: if the degenerate path ever drifts, this fails
//! before `golden_determinism` does.

use e2gcl::models::grace::GraceModel;
use e2gcl::prelude::*;

/// FNV-1a over every bit-relevant field of a [`PretrainResult`]; wall-clock
/// checkpoint timestamps are skipped. Mirrors `golden_determinism.rs`.
fn hash_matrix(h: &mut e2gcl::durable::Fnv1a64, m: &Matrix) {
    h.write_u64(m.rows() as u64);
    h.write_u64(m.cols() as u64);
    for &v in m.as_slice() {
        h.write_f32(v);
    }
}

fn fingerprint(r: &PretrainResult) -> u64 {
    let mut h = e2gcl::durable::Fnv1a64::new();
    h.write_u64(r.loss_curve.len() as u64);
    for &l in &r.loss_curve {
        h.write_f32(l);
    }
    hash_matrix(&mut h, &r.embeddings);
    h.write_u64(r.checkpoints.len() as u64);
    for (_, m) in &r.checkpoints {
        hash_matrix(&mut h, m);
    }
    h.finish()
}

fn tiny_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 5,
        batch_size: 64,
        hidden_dim: 32,
        embed_dim: 16,
        checkpoint_every: Some(2),
        ..TrainConfig::default()
    }
}

fn assert_degenerate_minibatch_matches_full_graph(name: &str, model: &dyn ContrastiveModel) {
    let data = NodeDataset::generate(&spec("cora-sim").expect("spec"), 0.05, 0);
    let n = data.num_nodes();

    let run = |minibatch: Option<MinibatchConfig>| {
        let cfg = TrainConfig {
            minibatch,
            ..tiny_cfg()
        };
        model
            .pretrain(&data.graph, &data.features, &cfg, &mut SeedRng::new(7))
            .expect("pretrain")
    };

    let full = run(None);
    let degenerate = run(Some(MinibatchConfig {
        batch_nodes: n,
        fanout: None,
    }));

    assert_eq!(
        full.loss_curve
            .iter()
            .map(|l| l.to_bits())
            .collect::<Vec<_>>(),
        degenerate
            .loss_curve
            .iter()
            .map(|l| l.to_bits())
            .collect::<Vec<_>>(),
        "{name}: degenerate mini-batch loss curve diverged from full-graph"
    );
    assert_eq!(
        fingerprint(&full),
        fingerprint(&degenerate),
        "{name}: degenerate mini-batch run is not bit-identical to full-graph"
    );

    // Sanity check the dispatch itself: an honestly mini-batched run on the
    // same seed takes a different trajectory (it must not silently fall
    // through to the full-graph step).
    let sampled = run(Some(MinibatchConfig {
        batch_nodes: (n / 3).max(2),
        fanout: Some(4),
    }));
    assert_ne!(
        fingerprint(&full),
        fingerprint(&sampled),
        "{name}: sampled mini-batch run unexpectedly matched the full-graph path"
    );
}

#[test]
fn e2gcl_degenerate_minibatch_is_bitwise_full_graph() {
    assert_degenerate_minibatch_matches_full_graph("e2gcl", &E2gclModel::default());
}

#[test]
fn grace_degenerate_minibatch_is_bitwise_full_graph() {
    assert_degenerate_minibatch_matches_full_graph("grace", &GraceModel::grace());
}

#[test]
fn gca_degenerate_minibatch_is_bitwise_full_graph() {
    // GCA's adaptive corruption rejects honest mini-batching, but the
    // degenerate block dispatches to the full-graph step before the
    // rejection triggers — existing GCA configs keep working.
    let data = NodeDataset::generate(&spec("cora-sim").expect("spec"), 0.05, 0);
    let model = GraceModel::gca();
    let run = |minibatch: Option<MinibatchConfig>| {
        let cfg = TrainConfig {
            minibatch,
            ..tiny_cfg()
        };
        model
            .pretrain(&data.graph, &data.features, &cfg, &mut SeedRng::new(7))
            .expect("pretrain")
    };
    let full = run(None);
    let degenerate = run(Some(MinibatchConfig {
        batch_nodes: data.num_nodes(),
        fanout: None,
    }));
    assert_eq!(fingerprint(&full), fingerprint(&degenerate));
}
