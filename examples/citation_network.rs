//! Citation-network scenario: the Table IV workflow in miniature.
//!
//! Pre-trains several contrastive models on a Cora-like citation graph and
//! compares them against the supervised references, printing a small
//! leaderboard. Also demonstrates the node selector standalone: how the
//! coreset covers paper topics (classes) under a shrinking budget.
//!
//! ```sh
//! cargo run --release --example citation_network
//! ```

use e2gcl::eval;
use e2gcl::models::grace::GraceModel;
use e2gcl::models::walks::WalkModel;
use e2gcl::pipeline::run_node_classification;
use e2gcl::prelude::*;
use e2gcl_selector::greedy::GreedySelector;
use e2gcl_selector::NodeSelector;

fn main() {
    let data = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.3, 11);
    println!(
        "citation graph: {} papers, {} citations, {} topics\n",
        data.num_nodes(),
        data.graph.num_edges(),
        data.num_classes
    );

    // --- Leaderboard: contrastive models + supervised references -------
    let cfg = TrainConfig {
        epochs: 20,
        ..TrainConfig::default()
    };
    let models: Vec<Box<dyn ContrastiveModel>> = vec![
        Box::new(E2gclModel::default()),
        Box::new(GraceModel::grace()),
        Box::new(GraceModel::gca()),
        Box::new(WalkModel::deepwalk()),
    ];
    println!("{:<10} {:>10} {:>12}", "model", "accuracy", "train time");
    for model in &models {
        let run = run_node_classification(model.as_ref(), &data, &cfg, 3, 0)
            .expect("the default config is valid");
        if run.accuracies.is_empty() {
            println!("{:<10} {:>10}", run.model, "FAILED");
            continue;
        }
        println!(
            "{:<10} {:>8.2} % {:>10.2}s",
            run.model,
            100.0 * run.mean,
            run.total_secs
        );
    }
    let gcn = eval::supervised_gcn_accuracy(
        &data.graph,
        &data.features,
        &data.labels,
        data.num_classes,
        &cfg,
        0,
    );
    let mlp =
        eval::supervised_mlp_accuracy(&data.features, &data.labels, data.num_classes, &cfg, 0);
    println!("{:<10} {:>8.2} %   (supervised)", "GCN", 100.0 * gcn);
    println!("{:<10} {:>8.2} %   (supervised)", "MLP", 100.0 * mlp);

    // --- Coreset coverage under shrinking budgets -----------------------
    println!("\ncoreset topic coverage (Alg. 2):");
    let selector = GreedySelector::default();
    for ratio in [0.4f64, 0.1, 0.025] {
        let budget = ((data.num_nodes() as f64) * ratio).round() as usize;
        let sel = selector.select(&data.graph, &data.features, budget, &mut SeedRng::new(5));
        let mut per_class = vec![0usize; data.num_classes];
        for &v in &sel.nodes {
            per_class[data.labels[v]] += 1;
        }
        let covered = per_class.iter().filter(|&&c| c > 0).count();
        println!(
            "  budget {:>4} (r = {:>5.3}): {}/{} topics covered, per-topic counts {:?}",
            budget, ratio, covered, data.num_classes, per_class
        );
    }
}
