//! Co-purchase recommendation scenario: link prediction on an Amazon-style
//! co-product graph (the §V-E1 task).
//!
//! A retailer wants "customers who bought X also bought Y" candidates.
//! We pre-train E²GCL on the *observed* co-purchase edges only, then score
//! held-out pairs with the logistic link decoder.
//!
//! ```sh
//! cargo run --release --example coproduct_recommendation
//! ```

use e2gcl::eval;
use e2gcl::models::grace::GraceModel;
use e2gcl::prelude::*;
use e2gcl_datasets::split::EdgeSplit;
use e2gcl_nn::probe::{LinkDecoder, ProbeConfig};

fn main() {
    // Photo analog at 10% scale: dense co-purchase structure (avg deg ~31).
    let data = NodeDataset::generate(&spec("photo-sim").unwrap(), 0.1, 23);
    println!(
        "co-purchase graph: {} products, {} observed co-purchases",
        data.num_nodes(),
        data.graph.num_edges()
    );

    // 70/10/20 edge split; pre-training sees the training graph only.
    let mut rng = SeedRng::new(0);
    let split = EdgeSplit::random(&data.graph, &mut rng);
    println!(
        "split: {} train / {} val / {} test edges",
        split.train_pos.len(),
        split.val_pos.len(),
        split.test_pos.len()
    );

    let cfg = TrainConfig {
        epochs: 15,
        ..TrainConfig::default()
    };
    for (name, out) in [
        (
            "E2GCL",
            E2gclModel::default()
                .pretrain(&split.train_graph, &data.features, &cfg, &mut rng)
                .expect("pre-training hit an unrecoverable numeric fault"),
        ),
        (
            "GRACE",
            GraceModel::grace()
                .pretrain(&split.train_graph, &data.features, &cfg, &mut rng)
                .expect("pre-training hit an unrecoverable numeric fault"),
        ),
    ] {
        let acc = eval::link_prediction_accuracy(&out.embeddings, &split, 1);
        println!("{name}: link-prediction accuracy {:.2} %", 100.0 * acc);

        // Show a few concrete recommendations for one product.
        let mut dec_rng = SeedRng::new(2);
        let train_neg = e2gcl_datasets::split::sample_non_edges(
            &split.train_graph,
            split.train_pos.len(),
            &mut dec_rng,
        );
        let decoder = LinkDecoder::fit(
            &out.embeddings,
            &split.train_pos,
            &train_neg,
            &ProbeConfig::default(),
            &mut dec_rng,
        );
        let product = 0usize;
        let candidates: Vec<(usize, usize)> = (1..data.num_nodes().min(200))
            .filter(|&u| !split.train_graph.has_edge(product, u))
            .map(|u| (product, u))
            .collect();
        let scores = decoder.score(&out.embeddings, &candidates);
        let mut ranked: Vec<(f32, usize)> = scores
            .iter()
            .zip(&candidates)
            .map(|(&s, &(_, u))| (s, u))
            .collect();
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let top: Vec<usize> = ranked.iter().take(5).map(|&(_, u)| u).collect();
        println!("  top-5 recommendations for product {product}: {top:?}");
    }
}
