//! Molecule-classification scenario: graph classification on an NCI1-style
//! compound screen (the §V-E2 task).
//!
//! Each graph is a small molecule; the task is predicting activity against
//! a target. One shared encoder is pre-trained contrastively on the
//! disjoint union of all molecules, each molecule is SUM-pooled into a
//! graph embedding, and a linear probe predicts activity.
//!
//! ```sh
//! cargo run --release --example molecule_classification
//! ```

use e2gcl::models::grace::GraceModel;
use e2gcl::pipeline::run_graph_classification;
use e2gcl::prelude::*;
use e2gcl_datasets::graph_dataset::graph_spec;

fn main() {
    let data = GraphDataset::generate(&graph_spec("nci1-sim").unwrap(), 0.5, 17);
    let avg_nodes: f64 = data
        .graphs
        .iter()
        .map(|g| g.num_nodes() as f64)
        .sum::<f64>()
        / data.len() as f64;
    println!(
        "compound screen: {} molecules, avg {:.1} atoms, {} classes",
        data.len(),
        avg_nodes,
        data.num_classes
    );

    let cfg = TrainConfig {
        epochs: 12,
        batch_size: 256,
        ..TrainConfig::default()
    };
    let models: Vec<Box<dyn ContrastiveModel>> =
        vec![Box::new(E2gclModel::default()), Box::new(GraceModel::gca())];
    println!("\n{:<8} {:>16}", "model", "accuracy");
    for model in models {
        let run = run_graph_classification(model.as_ref(), &data, &cfg, 3, 0)
            .expect("the default config is valid");
        if run.accuracies.is_empty() {
            println!("{:<8} {:>16}", model.name(), "FAILED");
            continue;
        }
        println!(
            "{:<8} {:>8.2} ± {:.2} %",
            model.name(),
            100.0 * run.mean,
            100.0 * run.std
        );
    }

    // Majority-class floor for context.
    let mut counts = vec![0usize; data.num_classes];
    for &c in &data.labels {
        counts[c] += 1;
    }
    let majority = *counts.iter().max().unwrap() as f32 / data.len() as f32;
    println!("majority-class baseline: {:.2} %", 100.0 * majority);
}
