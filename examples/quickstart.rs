//! Quickstart: pre-train E²GCL on a citation-style graph and evaluate with
//! the paper's linear-probe protocol.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use e2gcl::eval;
use e2gcl::prelude::*;

fn main() {
    // 1. A synthetic Cora analog at 30% scale (~800 nodes, 7 classes).
    let data = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.3, 42);
    println!(
        "dataset: {} — {} nodes, {} edges, {} features, {} classes (homophily {:.2})",
        data.name,
        data.num_nodes(),
        data.graph.num_edges(),
        data.feature_dim(),
        data.num_classes,
        data.edge_homophily(),
    );

    // 2. Pre-train with E²GCL: Alg. 2 selects a 40% coreset, Alg. 3
    //    generates importance-aware positive views, Eq. (5) trains the GCN.
    let model = E2gclModel::default();
    let cfg = TrainConfig {
        epochs: 25,
        ..TrainConfig::default()
    };
    let mut rng = SeedRng::new(7);
    let out = model
        .pretrain(&data.graph, &data.features, &cfg, &mut rng)
        .expect("pre-training hit an unrecoverable numeric fault");
    println!(
        "pre-trained in {:.2}s (selection {:.3}s), final loss {:.4}",
        out.total_time.as_secs_f64(),
        out.selection_time.as_secs_f64(),
        out.loss_curve.last().copied().unwrap_or(f32::NAN),
    );

    // 3. Freeze the encoder, train an l2-regularised linear probe on 10% of
    //    the labels, test on 80% — averaged over 5 random splits.
    let (mean, std) =
        eval::node_classification(&out.embeddings, &data.labels, data.num_classes, 5, 0);
    println!(
        "node classification: {:.2} ± {:.2} %",
        100.0 * mean,
        100.0 * std
    );

    // 4. Reference points: an untrained encoder and the raw features.
    let untrained = model
        .pretrain(
            &data.graph,
            &data.features,
            &TrainConfig { epochs: 0, ..cfg },
            &mut SeedRng::new(7),
        )
        .expect("the untrained baseline runs zero epochs and cannot fail");
    let (u_mean, _) =
        eval::node_classification(&untrained.embeddings, &data.labels, data.num_classes, 5, 0);
    let (f_mean, _) =
        eval::node_classification(&data.features, &data.labels, data.num_classes, 5, 0);
    println!("  vs untrained encoder: {:.2} %", 100.0 * u_mean);
    println!("  vs raw features:      {:.2} %", 100.0 * f_mean);
}
