//! Property-based tests for the dense linear-algebra substrate.

use e2gcl_linalg::{activations, dispatch, ops, stats, Matrix, SeedRng, Selection};
use proptest::prelude::*;

/// Strategy: a small matrix with bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Awkward dimensions for the blocked kernels: 1, primes, exact tile
/// multiples, and just-past-tile sizes (micro-tiles are 4x8 for the
/// axpy-style kernels, 2x4 with 4 reduction lanes for the dot-style ones).
fn awkward_dim() -> impl Strategy<Value = usize> {
    const DIMS: [usize; 14] = [1, 2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 31, 33];
    (0usize..DIMS.len()).prop_map(|i| DIMS[i])
}

/// Deterministic pseudo-random matrix for a (shape, salt) pair.
fn dense(rows: usize, cols: usize, salt: u64) -> Matrix {
    let mut rng = SeedRng::new(0x9e37 ^ salt);
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.normal()).collect())
}

/// Naive serial reference: one ascending-k accumulator per element.
fn ref_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Naive serial reference for `a^T * b`: ascending input rows.
fn ref_transpose_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), b.cols());
    for c in 0..a.cols() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for r in 0..a.rows() {
                acc += a.get(r, c) * b.get(r, j);
            }
            out.set(c, j, acc);
        }
    }
    out
}

proptest! {
    /// (AB)C == A(BC) up to float tolerance.
    #[test]
    fn matmul_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-2 * (1.0 + l.abs().max(r.abs())));
        }
    }

    /// Transpose is an involution and (AB)^T = B^T A^T.
    #[test]
    fn transpose_laws(a in matrix(3, 4), b in matrix(4, 2)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        for (l, r) in ab_t.as_slice().iter().zip(bt_at.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3 * (1.0 + l.abs()));
        }
    }

    /// The fused kernels agree with their explicit counterparts.
    #[test]
    fn fused_matmuls_agree(a in matrix(4, 3), b in matrix(4, 2), c in matrix(5, 3)) {
        let fused = a.transpose_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        for (l, r) in fused.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3 * (1.0 + l.abs()));
        }
        let fused = a.matmul_transpose(&c);
        let explicit = a.matmul(&c.transpose());
        for (l, r) in fused.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3 * (1.0 + l.abs()));
        }
    }

    /// L2-normalised rows have unit norm (or stay zero).
    #[test]
    fn l2_normalise_invariant(m in matrix(4, 6)) {
        let mut n = m.clone();
        n.l2_normalize_rows();
        for r in 0..n.rows() {
            let norm = ops::norm(n.row(r));
            let orig = ops::norm(m.row(r));
            if orig > 1e-6 {
                prop_assert!((norm - 1.0).abs() < 1e-4);
            } else {
                prop_assert!(norm <= orig + 1e-6);
            }
        }
    }

    /// Cauchy–Schwarz: |a·b| <= |a||b|; cosine in [-1, 1].
    #[test]
    fn cauchy_schwarz(a in prop::collection::vec(-5.0f32..5.0, 8),
                      b in prop::collection::vec(-5.0f32..5.0, 8)) {
        let dot = ops::dot(&a, &b).abs();
        let bound = ops::norm(&a) * ops::norm(&b);
        prop_assert!(dot <= bound * (1.0 + 1e-4) + 1e-5);
        let c = ops::cosine(&a, &b);
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&c));
    }

    /// Triangle inequality for Euclidean distance.
    #[test]
    fn triangle_inequality(a in prop::collection::vec(-5.0f32..5.0, 6),
                           b in prop::collection::vec(-5.0f32..5.0, 6),
                           c in prop::collection::vec(-5.0f32..5.0, 6)) {
        let ab = ops::dist(&a, &b);
        let bc = ops::dist(&b, &c);
        let ac = ops::dist(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-4);
    }

    /// Softmax rows are probability distributions regardless of input.
    #[test]
    fn softmax_is_distribution(m in matrix(3, 5)) {
        let mut s = m.clone();
        activations::softmax_rows_inplace(&mut s);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    /// Sample std is non-negative and zero for constant data.
    #[test]
    fn std_properties(xs in prop::collection::vec(-100.0f32..100.0, 2..20), c in -10.0f32..10.0) {
        prop_assert!(stats::std_dev(&xs) >= 0.0);
        let constant = vec![c; 5];
        prop_assert!(stats::std_dev(&constant).abs() < 1e-4);
    }

    /// Seeded sampling without replacement always yields distinct in-range
    /// indices, for any (n, k <= n).
    #[test]
    fn sampling_distinct(seed in any::<u64>(), n in 1usize..200, frac in 0.0f64..1.0) {
        let k = ((n as f64) * frac) as usize;
        let mut rng = SeedRng::new(seed);
        let s = rng.sample_without_replacement(n, k);
        prop_assert_eq!(s.len(), k);
        let set: std::collections::HashSet<_> = s.iter().collect();
        prop_assert_eq!(set.len(), k);
        prop_assert!(s.iter().all(|&i| i < n));
    }

    /// The blocked scalar `matmul` is bit-identical to the naive serial
    /// reference at awkward shapes: each element keeps a single accumulator
    /// reduced over k in ascending order, in the tile path and both tails.
    /// (Pinned to the scalar dispatch path: the AVX2 path has its own fused
    /// contract, property-tested in `simd_contract.rs`.)
    #[test]
    fn blocked_matmul_bitwise_equals_naive(m in awkward_dim(), k in awkward_dim(),
                                           n in awkward_dim(), salt in any::<u64>()) {
        let a = dense(m, k, salt);
        let b = dense(k, n, salt ^ 1);
        let got = dispatch::with_selection(Selection::SCALAR, || a.matmul(&b));
        let expect = ref_matmul(&a, &b);
        for (x, y) in got.as_slice().iter().zip(expect.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{}x{} * {}x{}", m, k, k, n);
        }
    }

    /// Same bitwise contract for the blocked scalar `transpose_matmul`.
    #[test]
    fn blocked_transpose_matmul_bitwise_equals_naive(r in awkward_dim(), c in awkward_dim(),
                                                     n in awkward_dim(), salt in any::<u64>()) {
        let a = dense(r, c, salt);
        let b = dense(r, n, salt ^ 2);
        let got = dispatch::with_selection(Selection::SCALAR, || a.transpose_matmul(&b));
        let expect = ref_transpose_matmul(&a, &b);
        for (x, y) in got.as_slice().iter().zip(expect.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{}x{} ^T * {}x{}", r, c, r, n);
        }
    }

    /// The blocked scalar `matmul_transpose` uses the multi-lane reduction:
    /// every element must be bit-identical to `ops::lane_dot` of the operand
    /// rows (its documented contract) and close to the plain serial dot.
    #[test]
    fn blocked_matmul_transpose_matches_lane_dot(m in awkward_dim(), n in awkward_dim(),
                                                 k in awkward_dim(), salt in any::<u64>()) {
        let a = dense(m, k, salt);
        let b = dense(n, k, salt ^ 3);
        let got = dispatch::with_selection(Selection::SCALAR, || a.matmul_transpose(&b));
        for i in 0..m {
            for j in 0..n {
                let lane = ops::lane_dot(a.row(i), b.row(j));
                prop_assert_eq!(got.get(i, j).to_bits(), lane.to_bits(),
                                "({},{}) of {}x{} * ({}x{})^T", i, j, m, k, n, k);
                let serial = ops::dot(a.row(i), b.row(j));
                let diff = (got.get(i, j) - serial).abs();
                prop_assert!(diff <= 1e-4 * (1.0 + serial.abs().max(got.get(i, j).abs())));
            }
        }
    }

    /// weighted_index never selects a zero-weight item when positive weights
    /// exist.
    #[test]
    fn weighted_index_avoids_zeros(seed in any::<u64>(), pos in 1usize..6) {
        let mut w = vec![0.0f32; 8];
        for wi in w.iter_mut().take(pos) {
            *wi = 1.0;
        }
        let mut rng = SeedRng::new(seed);
        for _ in 0..32 {
            let i = rng.weighted_index(&w);
            prop_assert!(i < pos, "picked zero-weight index {i}");
        }
    }
}
