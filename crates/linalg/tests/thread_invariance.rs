//! Thread-count invariance of the dispatched GEMM kernels.
//!
//! Determinism contract (DESIGN.md §11, §16): every kernel must produce
//! bitwise identical output regardless of `RAYON_NUM_THREADS`, on *each*
//! dispatch path. The vendored rayon stand-in reads that variable once per
//! process, so each (thread count, kernel config) pair needs its own
//! process: the test re-execs its own binary as a child per combination,
//! each child prints an FNV-1a fingerprint of the kernel outputs, and the
//! parent asserts fingerprints match across thread counts within a config
//! (and, on AVX2+FMA hosts, that the two configs legitimately differ —
//! the per-path golden tables would be meaningless otherwise).

use e2gcl_linalg::hash::Fnv1a64;
use e2gcl_linalg::{dispatch, Matrix, SeedRng};
use std::process::Command;

const CHILD_ENV: &str = "E2GCL_THREAD_INVARIANCE_CHILD";

fn dense(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SeedRng::new(seed);
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.normal()).collect())
}

fn fingerprint(ms: &[&Matrix]) -> u64 {
    let mut h = Fnv1a64::new();
    for m in ms {
        for &v in m.as_slice() {
            h.write_f32(v);
        }
    }
    h.finish()
}

/// Runs every blocked kernel at sizes large enough that the stand-in pool
/// actually fans out (it needs >= 128 parallel items; row-tiles are 4 rows
/// for the axpy kernels, 2 for the dot kernels).
fn compute_fingerprint() -> u64 {
    let a = dense(1024, 33, 7);
    let b = dense(33, 29, 8);
    let mm = a.matmul(&b); // 256 row-tiles
    let wide = dense(300, 600, 9);
    let rhs = dense(300, 31, 10);
    let tm = wide.transpose_matmul(&rhs); // 150 row-tiles of the 600x31 output
    let bt = dense(517, 33, 11);
    let mt = a.matmul_transpose(&bt); // 512 row-tiles
    let sy = dense(700, 17, 12).syrk(); // 350 row-tiles
    fingerprint(&[&mm, &tm, &mt, &sy])
}

/// Fingerprint from a re-exec'd child pinned to (`config`, `threads`).
fn child_fingerprint(exe: &std::path::Path, config: &str, threads: &str) -> String {
    let out = Command::new(exe)
        .arg("kernels_bitwise_invariant_across_thread_counts")
        .arg("--exact")
        .arg("--nocapture")
        .env(CHILD_ENV, "1")
        .env("RAYON_NUM_THREADS", threads)
        .env(dispatch::CONFIG_ENV, config)
        .output()
        .expect("spawn child test process");
    assert!(
        out.status.success(),
        "child ({config}, {threads} threads) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // With --nocapture the marker can share a line with libtest output.
    let at = stdout
        .find("FP:")
        .unwrap_or_else(|| panic!("no FP marker in child output: {stdout}"));
    stdout[at + 3..at + 19].to_string()
}

#[test]
fn kernels_bitwise_invariant_across_thread_counts() {
    if std::env::var(CHILD_ENV).is_ok() {
        println!("FP:{:016x}", compute_fingerprint());
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let mut configs = vec!["scalar"];
    if dispatch::avx2_available() {
        configs.push("avx2");
    }
    let mut per_config = Vec::new();
    for config in &configs {
        let fp1 = child_fingerprint(&exe, config, "1");
        let fp4 = child_fingerprint(&exe, config, "4");
        assert_eq!(
            fp1, fp4,
            "[{config}] kernel output differs between RAYON_NUM_THREADS=1 and 4"
        );
        per_config.push(fp1);
    }
    if per_config.len() == 2 {
        // The two dispatch paths have different reduction contracts; if
        // they ever agreed the per-path golden split would be vestigial.
        assert_ne!(
            per_config[0], per_config[1],
            "scalar and avx2 paths produced identical bits on this workload"
        );
    }
    // The in-process pool (whatever its size and the ambient config) must
    // agree with the matching child config.
    let here = format!("{:016x}", compute_fingerprint());
    let ambient = match dispatch::current_path() {
        dispatch::DispatchPath::Scalar => 0,
        dispatch::DispatchPath::Avx2 => 1,
    };
    assert_eq!(
        per_config[ambient.min(per_config.len() - 1)],
        here,
        "parent fingerprint differs from children"
    );
}
