//! Bitwise contract tests for the AVX2 dispatch path.
//!
//! The AVX2 kernels' element-level reduction order is *defined* by the safe
//! scalar models in `e2gcl_linalg::simd::model` (8 fused lanes, the
//! documented combine order, ascending fused tail — see the `simd` module
//! docs). These properties pin the intrinsics to those models bitwise at
//! awkward shapes: odd k, k below the lane width, empty rows, and every
//! compiled tile geometry. They also pin the cross-kernel invariants the
//! blocked scalar path already enjoys: dot-style elements equal the lane
//! kernel, axpy-style elements equal a single fused chain, and tile
//! geometry / parallel grain never change any bit.
//!
//! All tests are skipped (trivially pass) on hosts without AVX2+FMA — the
//! dispatcher can never select the AVX2 path there.

use e2gcl_linalg::dispatch::{self, DispatchPath, Selection, TileConfig};
use e2gcl_linalg::simd::model;
use e2gcl_linalg::{Matrix, SeedRng};
use proptest::prelude::*;

fn avx2() -> bool {
    dispatch::avx2_available()
}

/// Lengths around the 8-lane width and the scalar tail boundary.
fn awkward_len() -> impl Strategy<Value = usize> {
    const LENS: [usize; 15] = [0, 1, 2, 3, 5, 7, 8, 9, 11, 15, 16, 17, 24, 31, 33];
    (0usize..LENS.len()).prop_map(|i| LENS[i])
}

fn awkward_dim() -> impl Strategy<Value = usize> {
    const DIMS: [usize; 12] = [1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17, 33];
    (0usize..DIMS.len()).prop_map(|i| DIMS[i])
}

fn dense_vec(n: usize, salt: u64) -> Vec<f32> {
    let mut rng = SeedRng::new(0x51d7 ^ salt);
    (0..n).map(|_| rng.normal()).collect()
}

fn dense(rows: usize, cols: usize, salt: u64) -> Matrix {
    Matrix::from_vec(rows, cols, dense_vec(rows * cols, salt))
}

/// An AVX2 selection with explicit tile geometry for every shape class.
fn avx2_sel(dot: (u8, u8), mm: (u8, u8), grain: u8) -> Selection {
    let t = TileConfig {
        mm_mr: mm.0,
        mm_nv: mm.1,
        dot_mr: dot.0,
        dot_nr: dot.1,
        grain,
    };
    Selection {
        path: DispatchPath::Avx2,
        tall: t,
        square: t,
        spmm: t,
    }
}

/// Reference for the axpy-style AVX2 kernels: one fused chain per element.
fn ref_fused_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let col: Vec<f32> = (0..b.rows()).map(|kk| b.get(kk, j)).collect();
            out.set(i, j, model::fused_chain_dot(a.row(i), &col));
        }
    }
    out
}

proptest! {
    /// `dispatch::lane_dot` on the AVX2 path is bit-identical to the safe
    /// scalar model at every awkward length (odd, below lane width, empty).
    #[test]
    fn avx2_lane_dot_matches_model(n in awkward_len(), salt in any::<u64>()) {
        if !avx2() { return Ok(()); }
        let a = dense_vec(n, salt);
        let b = dense_vec(n, salt ^ 1);
        let got = DispatchPath::Avx2.lane_dot(&a, &b);
        prop_assert_eq!(got.to_bits(), model::lane_dot8(&a, &b).to_bits(), "len {}", n);
    }

    /// AVX2 `lane_dot4` produces, per stored row, exactly the bits of the
    /// single-row lane kernel (the serve re-rank path relies on this).
    #[test]
    fn avx2_lane_dot4_matches_lane_dot(n in awkward_len(), salt in any::<u64>()) {
        if !avx2() { return Ok(()); }
        let a = dense_vec(n, salt);
        let rows: Vec<Vec<f32>> = (0..4).map(|j| dense_vec(n, salt ^ (j + 2))).collect();
        let got = DispatchPath::Avx2.lane_dot4(&a, &rows[0], &rows[1], &rows[2], &rows[3]);
        for (j, row) in rows.iter().enumerate() {
            prop_assert_eq!(got[j].to_bits(), model::lane_dot8(&a, row).to_bits(),
                            "row {} len {}", j, n);
        }
    }

    /// Every element of the AVX2 `matmul_transpose` is a `lane_dot8` of the
    /// operand rows, for every compiled dot-tile geometry — tile shape is a
    /// pure performance knob, never a bits knob.
    #[test]
    fn avx2_matmul_transpose_matches_model(m in awkward_dim(), n in awkward_dim(),
                                           k in awkward_len(), geom in 0usize..3,
                                           salt in any::<u64>()) {
        if !avx2() { return Ok(()); }
        let a = dense(m, k, salt);
        let b = dense(n, k, salt ^ 3);
        let sel = avx2_sel(TileConfig::DOT_GEOMETRIES[geom], (4, 2), 2);
        let got = dispatch::with_selection(sel, || a.matmul_transpose(&b));
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(got.get(i, j).to_bits(),
                                model::lane_dot8(a.row(i), b.row(j)).to_bits(),
                                "({},{}) geom {:?} k {}", i, j,
                                TileConfig::DOT_GEOMETRIES[geom], k);
            }
        }
    }

    /// AVX2 `syrk` equals AVX2 `matmul_transpose(self)` bitwise: the mirror
    /// step is exact because `lane_dot8(a, b) == lane_dot8(b, a)` bitwise.
    #[test]
    fn avx2_syrk_matches_matmul_transpose(n in awkward_dim(), k in awkward_len(),
                                          geom in 0usize..3, salt in any::<u64>()) {
        if !avx2() { return Ok(()); }
        let a = dense(n, k, salt);
        let sel = avx2_sel(TileConfig::DOT_GEOMETRIES[geom], (4, 2), 2);
        let (gram, full) = dispatch::with_selection(sel, || (a.syrk(), a.matmul_transpose(&a)));
        for (x, y) in gram.as_slice().iter().zip(full.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Every element of the AVX2 `matmul` is a single ascending fused chain
    /// over k, for every compiled axpy-panel geometry.
    #[test]
    fn avx2_matmul_matches_fused_model(m in awkward_dim(), k in awkward_dim(),
                                       n in awkward_dim(), geom in 0usize..3,
                                       salt in any::<u64>()) {
        if !avx2() { return Ok(()); }
        let a = dense(m, k, salt);
        let b = dense(k, n, salt ^ 5);
        let sel = avx2_sel((2, 4), TileConfig::MM_GEOMETRIES[geom], 2);
        let got = dispatch::with_selection(sel, || a.matmul(&b));
        let expect = ref_fused_matmul(&a, &b);
        for (x, y) in got.as_slice().iter().zip(expect.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{}x{} * {}x{} geom {:?}",
                            m, k, k, n, TileConfig::MM_GEOMETRIES[geom]);
        }
    }

    /// Every element of the AVX2 `transpose_matmul` is a single ascending
    /// fused chain over input rows, for every panel geometry.
    #[test]
    fn avx2_transpose_matmul_matches_fused_model(r in awkward_dim(), c in awkward_dim(),
                                                 n in awkward_dim(), geom in 0usize..3,
                                                 salt in any::<u64>()) {
        if !avx2() { return Ok(()); }
        let a = dense(r, c, salt);
        let b = dense(r, n, salt ^ 6);
        let sel = avx2_sel((2, 4), TileConfig::MM_GEOMETRIES[geom], 2);
        let got = dispatch::with_selection(sel, || a.transpose_matmul(&b));
        // a^T * b = fused chains over r: reuse the matmul model on a^T.
        let expect = ref_fused_matmul(&a.transpose(), &b);
        for (x, y) in got.as_slice().iter().zip(expect.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{}x{} ^T * {}x{} geom {:?}",
                            r, c, r, n, TileConfig::MM_GEOMETRIES[geom]);
        }
    }

    /// Parallel grain never changes bits: grain 1 and grain 16 agree on
    /// every kernel (the thread-invariance story for tile configs).
    #[test]
    fn avx2_grain_never_changes_bits(m in awkward_dim(), k in awkward_dim(),
                                     n in awkward_dim(), salt in any::<u64>()) {
        if !avx2() { return Ok(()); }
        let a = dense(m, k, salt);
        let b = dense(n, k, salt ^ 7);
        let run = |grain: u8| {
            let sel = avx2_sel((2, 4), (4, 2), grain);
            dispatch::with_selection(sel, || a.matmul_transpose(&b))
        };
        let g1 = run(1);
        let g16 = run(16);
        for (x, y) in g1.as_slice().iter().zip(g16.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn avx2_empty_rows_and_zero_k() {
    if !avx2() {
        return;
    }
    let sel = avx2_sel((2, 4), (4, 2), 2);
    dispatch::with_selection(sel, || {
        let a = Matrix::zeros(0, 7);
        let b = Matrix::zeros(5, 7);
        assert_eq!(a.matmul_transpose(&b).shape(), (0, 5));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(4, 0);
        let out = a.matmul_transpose(&b);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
        let a = Matrix::zeros(0, 0);
        assert_eq!(a.syrk().shape(), (0, 0));
    });
}
