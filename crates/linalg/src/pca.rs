//! Principal-component projection via power iteration.
//!
//! Backs the technique report's Appendix-B4 visualisation of selected
//! nodes: project the raw aggregates `R = A_n^L X` to 2-D and inspect how
//! the coreset covers the point cloud.

use crate::{ops, Matrix, SeedRng};

/// Projects `x`'s rows onto their top `k` principal components.
///
/// Components are extracted one at a time by power iteration on the
/// (implicitly formed) covariance, with deflation between components —
/// `O(iters · n · d)` per component, no eigendecomposition needed.
pub fn pca_project(x: &Matrix, k: usize, iters: usize, rng: &mut SeedRng) -> Matrix {
    let n = x.rows();
    let d = x.cols();
    let k = k.min(d);
    // Centre the data.
    let means = x.col_means();
    let mut centered = x.clone();
    for r in 0..n {
        for (v, &m) in centered.row_mut(r).iter_mut().zip(&means) {
            *v -= m;
        }
    }
    let mut components: Vec<Vec<f32>> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut w: Vec<f32> = (0..d).map(|_| rng.normal()).collect();
        normalize(&mut w);
        for _ in 0..iters {
            // w <- C w = X^T (X w), with deflation against found components.
            let xw: Vec<f32> = (0..n).map(|r| ops::dot(centered.row(r), &w)).collect();
            let mut next = vec![0.0f32; d];
            for (r, &s) in xw.iter().enumerate() {
                ops::axpy_slice(&mut next, s, centered.row(r));
            }
            for c in &components {
                let proj = ops::dot(&next, c);
                ops::axpy_slice(&mut next, -proj, c);
            }
            if normalize(&mut next) < 1e-12 {
                break; // rank-deficient: remaining variance is zero
            }
            w = next;
        }
        components.push(w);
    }
    let mut out = Matrix::zeros(n, k);
    for r in 0..n {
        for (c, comp) in components.iter().enumerate() {
            out.set(r, c, ops::dot(centered.row(r), comp));
        }
    }
    out
}

/// Normalises in place, returning the pre-normalisation norm.
fn normalize(v: &mut [f32]) -> f32 {
    let n = ops::norm(v);
    if n > 1e-12 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points along a line in 5-D: PC1 must capture essentially all
    /// variance.
    #[test]
    fn recovers_dominant_direction() {
        let mut rng = SeedRng::new(0);
        let n = 100;
        let mut x = Matrix::zeros(n, 5);
        for r in 0..n {
            let t = rng.normal() * 10.0;
            // Direction (1, 2, 0, 0, 0) plus small noise.
            x.set(r, 0, t + 0.01 * rng.normal());
            x.set(r, 1, 2.0 * t + 0.01 * rng.normal());
            x.set(r, 2, 0.01 * rng.normal());
        }
        let p = pca_project(&x, 2, 50, &mut rng);
        let var1: f32 = (0..n).map(|r| p.get(r, 0).powi(2)).sum();
        let var2: f32 = (0..n).map(|r| p.get(r, 1).powi(2)).sum();
        assert!(var1 > 100.0 * var2, "PC1 var {var1} vs PC2 var {var2}");
    }

    /// Projection dimensions are uncorrelated (orthogonal components).
    #[test]
    fn components_decorrelated() {
        let mut rng = SeedRng::new(1);
        let n = 80;
        let mut x = Matrix::zeros(n, 4);
        for v in x.as_mut_slice() {
            *v = rng.normal();
        }
        let p = pca_project(&x, 2, 60, &mut rng);
        let c1: Vec<f32> = (0..n).map(|r| p.get(r, 0)).collect();
        let c2: Vec<f32> = (0..n).map(|r| p.get(r, 1)).collect();
        let corr = crate::stats::pearson(&c1, &c2);
        assert!(corr.abs() < 0.15, "components correlated: {corr}");
    }

    #[test]
    fn k_clamped_to_dims() {
        let mut rng = SeedRng::new(2);
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 5.0]]);
        let p = pca_project(&x, 10, 20, &mut rng);
        assert_eq!(p.cols(), 2);
        assert_eq!(p.rows(), 3);
    }

    #[test]
    fn centering_removes_translation() {
        let mut rng = SeedRng::new(3);
        let mut a = Matrix::zeros(30, 3);
        for v in a.as_mut_slice() {
            *v = rng.normal();
        }
        let mut b = a.clone();
        for r in 0..30 {
            for v in b.row_mut(r) {
                *v += 100.0; // constant shift
            }
        }
        let pa = pca_project(&a, 1, 40, &mut SeedRng::new(4));
        let pb = pca_project(&b, 1, 40, &mut SeedRng::new(4));
        // Same projection up to sign.
        let same: f32 = (0..30).map(|r| (pa.get(r, 0) - pb.get(r, 0)).abs()).sum();
        let flip: f32 = (0..30).map(|r| (pa.get(r, 0) + pb.get(r, 0)).abs()).sum();
        assert!(
            same.min(flip) < 1e-2,
            "translation changed PCA: {same} / {flip}"
        );
    }
}
