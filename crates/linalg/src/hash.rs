//! FNV-1a 64-bit hashing — the workspace's one integrity/fingerprint hash.
//!
//! Every checksum in the workspace (durable checkpoints, serve artifacts,
//! RNG fork-label mixing, golden determinism fingerprints) is the same
//! FNV-1a fold; this module is its single definition. It is tiny,
//! dependency-free and detects the bit-flips/truncations an integrity check
//! is for — it is **not** cryptographic.
//!
//! Two entry points:
//! * [`fnv1a64`] — one-shot hash of a byte slice (checksums).
//! * [`Fnv1a64`] — incremental hasher for fingerprints built from many
//!   heterogeneous values (loss curves, matrices) without materialising a
//!   byte buffer.

/// The FNV-1a 64-bit offset basis (the hash of the empty input).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.write(bytes);
    h.finish()
}

/// Incremental FNV-1a 64-bit hasher.
///
/// Feeding the same bytes in the same order as [`fnv1a64`] produces the
/// same value; the typed helpers define the workspace's canonical encoding
/// of multi-byte values (little-endian, `f32` by zero-extended bit
/// pattern).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fnv1a64(u64);

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a64 {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Folds one byte.
    #[inline]
    pub fn write_byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Folds a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_byte(b);
        }
    }

    /// Folds a `u64` as its 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds an `f32` by its zero-extended bit pattern (8 bytes, so `f32`
    /// and `u64` streams cannot alias each other byte-for-byte).
    pub fn write_f32(&mut self, v: f32) {
        self.write_u64(u64::from(v.to_bits()));
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Reference values from the FNV specification.
        assert_eq!(fnv1a64(b""), FNV_OFFSET);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn typed_writes_are_the_le_byte_encoding() {
        let mut a = Fnv1a64::new();
        a.write_u64(0x0102_0304_0506_0708);
        assert_eq!(
            a.finish(),
            fnv1a64(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01])
        );
        let mut b = Fnv1a64::new();
        b.write_f32(1.5);
        let mut c = Fnv1a64::new();
        c.write_u64(u64::from(1.5f32.to_bits()));
        assert_eq!(b.finish(), c.finish());
    }
}
