//! Vector helpers shared across the workspace.

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Squared Euclidean distance between two slices.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance.
#[inline]
pub fn dist(a: &[f32], b: &[f32]) -> f32 {
    sq_dist(a, b).sqrt()
}

/// L2 norm of a slice.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity; returns 0 for zero vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

/// Dot product with four independent partial sums so the reduction
/// autovectorizes: lane `l` accumulates elements `l, l+4, l+8, ...` in
/// ascending order, the lanes combine as `(s0 + s1) + (s2 + s3)`, and the
/// `len % 4` tail is added last in ascending order. The order is fixed by
/// construction, so the result is deterministic (but differs from the
/// single-accumulator [`dot`] in the last bits).
///
/// This is the element-level contract of the blocked
/// [`crate::Matrix::matmul_transpose`] and [`crate::Matrix::syrk_into`]
/// kernels: every output element they produce is bit-identical to
/// `lane_dot` of the corresponding rows.
#[inline]
pub fn lane_dot(a: &[f32], b: &[f32]) -> f32 {
    const LANES: usize = 4;
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    for (ca, cb) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)) {
        for ((s, &x), &y) in acc.iter_mut().zip(ca).zip(cb) {
            *s += x * y;
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    let tail = a.len() - a.len() % LANES;
    for (&x, &y) in a[tail..].iter().zip(&b[tail..]) {
        s += x * y;
    }
    s
}

/// Four [`lane_dot`]s of one row `a` against four equal-length rows,
/// register-tiled so every loaded chunk of `a` is reused four times (the
/// 1 x 4 analogue of the blocked GEMM micro-kernel's tile). Lane
/// decomposition, combine order and tail order are exactly those of
/// [`lane_dot`], so `out[j]` is bit-identical to `lane_dot(a, b_j)`.
#[inline]
pub fn lane_dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    const LANES: usize = 4;
    debug_assert!(a.len() == b0.len() && a.len() == b1.len());
    debug_assert!(a.len() == b2.len() && a.len() == b3.len());
    let mut acc = [[0.0f32; LANES]; 4];
    let it = a
        .chunks_exact(LANES)
        .zip(b0.chunks_exact(LANES))
        .zip(b1.chunks_exact(LANES))
        .zip(b2.chunks_exact(LANES))
        .zip(b3.chunks_exact(LANES));
    for ((((ca, c0), c1), c2), c3) in it {
        for l in 0..LANES {
            let x = ca[l];
            acc[0][l] += x * c0[l];
            acc[1][l] += x * c1[l];
            acc[2][l] += x * c2[l];
            acc[3][l] += x * c3[l];
        }
    }
    let tail = a.len() - a.len() % LANES;
    let mut out = [0.0f32; 4];
    for (j, b) in [b0, b1, b2, b3].into_iter().enumerate() {
        let lanes = acc[j];
        let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for (&x, &y) in a[tail..].iter().zip(&b[tail..]) {
            s += x * y;
        }
        out[j] = s;
    }
    out
}

/// `y += s * x` for slices.
#[inline]
pub fn axpy_slice(y: &mut [f32], s: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += s * xv;
    }
}

/// Index of the maximum value (first on ties). Returns `None` for empty input.
pub fn argmax(a: &[f32]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in a.iter().enumerate().skip(1) {
        if v > a[best] {
            best = i;
        }
    }
    Some(best)
}

/// Index of the minimum value (first on ties). Returns `None` for empty input.
pub fn argmin(a: &[f32]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in a.iter().enumerate().skip(1) {
        if v < a[best] {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn distances() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert!((dist(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn lane_dot4_is_bitwise_lane_dot() {
        // Lengths straddling the LANES boundary, including ragged tails.
        for len in [1usize, 3, 4, 5, 7, 8, 13, 32, 33] {
            let gen = |salt: usize| -> Vec<f32> {
                (0..len)
                    .map(|i| ((i * 31 + salt * 17 + 7) % 23) as f32 / 7.0 - 1.5)
                    .collect()
            };
            let a = gen(0);
            let b: Vec<Vec<f32>> = (1..=4).map(gen).collect();
            let tiled = lane_dot4(&a, &b[0], &b[1], &b[2], &b[3]);
            for j in 0..4 {
                assert_eq!(
                    tiled[j].to_bits(),
                    lane_dot(&a, &b[j]).to_bits(),
                    "len {len}, row {j}"
                );
            }
        }
    }

    #[test]
    fn cosine_cases() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn argmax_argmin_ties_and_empty() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmin(&[2.0, 0.0, 0.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn axpy_slice_updates() {
        let mut y = vec![1.0, 1.0];
        axpy_slice(&mut y, 2.0, &[1.0, -1.0]);
        assert_eq!(y, vec![3.0, -1.0]);
    }
}
