//! First-run kernel autotuner and the persisted `kernel_tune.json` format.
//!
//! The autotuner benchmarks a small grid of (tile geometry, rayon
//! parallel-grain) configurations per matrix-shape class — tall-skinny
//! embedding products, square-ish similarity blocks, and SpMM-style panels
//! — on the detected dispatch path, and persists the winner keyed by the
//! detected CPU feature set. Tile choices are pure performance knobs (they
//! never change per-element reduction order — see [`crate::simd`]), so a
//! tuned process produces bit-identical results to a default-tiled one on
//! the same path.
//!
//! Persistence follows the PR 6 artifact policy: a corrupt file is
//! quarantined to `<path>.corrupt` and re-tuned rather than panicking; a
//! file tuned under a feature set the host does not satisfy is ignored.
//! Version bumps of [`TUNE_VERSION`] invalidate old files the same way.
//! The library only *reads* tune files (see [`crate::dispatch`]); writing
//! happens here, driven by `kernel_bench` and `e2gcl kernels --tune`.

use crate::dispatch::{
    avx2_available, detected_features, DispatchPath, KernelConfigError, Selection, TileConfig,
};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Version of the persisted tune-file schema. Bump on incompatible change.
pub const TUNE_VERSION: u64 = 1;

/// The persisted autotune result.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelTune {
    /// Must equal [`TUNE_VERSION`].
    pub version: u64,
    /// Dispatch path the tiles were tuned for (`scalar` | `avx2`).
    pub path: String,
    /// CPU features detected when tuning ran; the file only applies on
    /// hosts that still advertise all of them.
    pub features: Vec<String>,
    /// Tall-skinny dense outputs (n×d embedding products).
    pub tall: TileConfig,
    /// Square-ish dense outputs (similarity blocks).
    pub square: TileConfig,
    /// Sparse-times-dense panels (only `grain` and `mm_nv` apply).
    pub spmm: TileConfig,
}

impl KernelTune {
    /// The dispatch path this tune selects.
    pub fn dispatch_path(&self) -> Option<DispatchPath> {
        DispatchPath::parse(&self.path)
    }

    /// Whether this host still advertises every feature the tune was keyed
    /// by (and supports the tuned path at all).
    pub fn check_host(&self) -> Result<(), KernelConfigError> {
        let host = detected_features();
        let missing: Vec<&str> = self
            .features
            .iter()
            .map(String::as_str)
            .filter(|f| !host.contains(f))
            .collect();
        let path_ok = match self.dispatch_path() {
            Some(DispatchPath::Avx2) => avx2_available(),
            Some(DispatchPath::Scalar) => true,
            None => false,
        };
        if missing.is_empty() && path_ok {
            Ok(())
        } else {
            Err(KernelConfigError::FeatureMismatch {
                path: String::new(),
                file_features: self.features.join(","),
                host_features: host.join(","),
            })
        }
    }

    /// The [`Selection`] this tune resolves to.
    pub fn selection(&self) -> Selection {
        let path = self.dispatch_path().unwrap_or(DispatchPath::Scalar);
        Selection {
            path,
            tall: self.tall,
            square: self.square,
            spmm: self.spmm,
        }
    }
}

/// Parses and validates a tune file. Errors are human-readable causes; the
/// caller decides between quarantine (corrupt) and ignore (mismatch).
pub fn load(path: &str) -> Result<KernelTune, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let tune: KernelTune =
        serde_json::from_str(&text).map_err(|e| format!("parse failed: {e:?}"))?;
    if tune.version != TUNE_VERSION {
        return Err(format!(
            "version {} != supported {TUNE_VERSION}",
            tune.version
        ));
    }
    if tune.dispatch_path().is_none() {
        return Err(format!("unknown dispatch path `{}`", tune.path));
    }
    for (name, t) in [
        ("tall", &tune.tall),
        ("square", &tune.square),
        ("spmm", &tune.spmm),
    ] {
        if !t.is_valid() {
            return Err(format!("{name} tile config {t:?} names no compiled kernel"));
        }
    }
    Ok(tune)
}

/// Serialises `tune` to `path` (write-to-temp + rename, so readers never
/// observe a torn file).
pub fn persist(path: &str, tune: &KernelTune) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    let json = serde_json::to_string(tune).expect("KernelTune serialises");
    std::fs::write(&tmp, json.as_bytes())?;
    std::fs::rename(&tmp, path)
}

/// Moves a corrupt tune file to `<path>.corrupt` (PR 6 artifact policy)
/// and returns the quarantine path.
pub fn quarantine(path: &str) -> std::io::Result<String> {
    let dst = format!("{path}.corrupt");
    std::fs::rename(path, &dst)?;
    Ok(dst)
}

/// Outcome of [`ensure`]: the active tune plus whether it was produced by
/// a fresh autotune run (vs. loaded from disk).
pub struct TuneOutcome {
    pub tune: KernelTune,
    pub tuned_now: bool,
    pub events: Vec<String>,
}

/// Loads a valid tune from `path`, or runs the autotuner and persists the
/// winner. Corrupt files are quarantined first; feature-mismatched files
/// are left in place and superseded by the fresh result.
pub fn ensure(path: &str) -> TuneOutcome {
    let mut events = Vec::new();
    if std::path::Path::new(path).is_file() {
        match load(path) {
            Ok(tune) if tune.check_host().is_ok() => {
                return TuneOutcome {
                    tune,
                    tuned_now: false,
                    events,
                };
            }
            Ok(_) => events.push(format!("{path}: feature set mismatch, retuning")),
            Err(cause) => match quarantine(path) {
                Ok(q) => events.push(format!("quarantined corrupt {path} to {q} ({cause})")),
                Err(e) => events.push(format!("corrupt {path} ({cause}); quarantine failed: {e}")),
            },
        }
    }
    let tune = autotune();
    match persist(path, &tune) {
        Ok(()) => events.push(format!("autotuned and persisted {path}")),
        Err(e) => events.push(format!("autotune ok but persist to {path} failed: {e}")),
    }
    TuneOutcome {
        tune,
        tuned_now: true,
        events,
    }
}

/// Deterministic bench operand: values in [-1, 1), no RNG state needed.
fn bench_matrix(rows: usize, cols: usize) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| ((i * 2_654_435_761_usize) & 0xffff) as f32 / 32768.0 - 1.0)
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Times `f` (after one warm-up call) and returns the best of `reps` runs.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Sweeps dot geometries × grains on a representative `matmul_transpose`
/// shape, returning the fastest `(dot_mr, dot_nr, grain)`.
fn tune_dot_class(base: Selection, m: usize, n: usize, k: usize) -> (u8, u8, u8) {
    let a = bench_matrix(m, k);
    let b = bench_matrix(n, k);
    let mut out = Matrix::zeros(m, n);
    let mut best = (
        f64::INFINITY,
        TileConfig::AVX2.dot_mr,
        TileConfig::AVX2.dot_nr,
        1u8,
    );
    for &(mr, nr) in &TileConfig::DOT_GEOMETRIES {
        for &grain in &TileConfig::GRAINS {
            let mut sel = base;
            for t in [&mut sel.tall, &mut sel.square] {
                t.dot_mr = mr;
                t.dot_nr = nr;
                t.grain = grain;
            }
            let secs = crate::dispatch::with_selection(sel, || {
                best_secs(2, || a.matmul_transpose_into(&b, &mut out))
            });
            if secs < best.0 {
                best = (secs, mr, nr, grain);
            }
        }
    }
    (best.1, best.2, best.3)
}

/// Sweeps axpy-panel geometries on a representative `matmul` shape with a
/// fixed grain, returning the fastest `(mm_mr, mm_nv)`.
fn tune_mm_class(base: Selection, grain: u8, m: usize, k: usize, n: usize) -> (u8, u8) {
    let a = bench_matrix(m, k);
    let b = bench_matrix(k, n);
    let mut out = Matrix::zeros(m, n);
    let mut best = (
        f64::INFINITY,
        TileConfig::AVX2.mm_mr,
        TileConfig::AVX2.mm_nv,
    );
    for &(mr, nv) in &TileConfig::MM_GEOMETRIES {
        let mut sel = base;
        for t in [&mut sel.tall, &mut sel.square] {
            t.mm_mr = mr;
            t.mm_nv = nv;
            t.grain = grain;
        }
        let secs =
            crate::dispatch::with_selection(sel, || best_secs(2, || a.matmul_into(&b, &mut out)));
        if secs < best.0 {
            best = (secs, mr, nv);
        }
    }
    (best.1, best.2)
}

/// Benchmarks the tile/grain grid per shape class on the detected dispatch
/// path and returns the winning configuration (takes ~1–2 s). On the
/// scalar path only `grain` is swept: the scalar tiles are compile-time
/// constants, and grain 1 (today's chunking) always wins by construction
/// of the PR 4 kernels, so the scalar result is the [`Selection::SCALAR`]
/// defaults.
pub fn autotune() -> KernelTune {
    let base = Selection::detected_default();
    // Debug builds (tests) shrink the workloads: the sweep still exercises
    // every configuration, it just stops being a meaningful benchmark.
    let s = if cfg!(debug_assertions) { 8 } else { 1 };
    let (tall, square, spmm) = if base.path == DispatchPath::Avx2 {
        // Tall-skinny: embedding-style n×d against a d-row operand.
        let (t_mr, t_nr, t_grain) = tune_dot_class(base, 4096 / s, 192 / s, 64);
        let (t_mm_mr, t_mm_nv) = tune_mm_class(base, t_grain, 4096 / s, 64, 64);
        // Square-ish: similarity-block shapes.
        let (s_mr, s_nr, s_grain) = tune_dot_class(base, 768 / s, 768 / s, 128);
        let (s_mm_mr, s_mm_nv) = tune_mm_class(base, s_grain, 512 / s, 256 / s, 256 / s);
        let tall = TileConfig {
            mm_mr: t_mm_mr,
            mm_nv: t_mm_nv,
            dot_mr: t_mr,
            dot_nr: t_nr,
            grain: t_grain,
        };
        let square = TileConfig {
            mm_mr: s_mm_mr,
            mm_nv: s_mm_nv,
            dot_mr: s_mr,
            dot_nr: s_nr,
            grain: s_grain,
        };
        // SpMM panels share the axpy family; reuse the tall-class winner
        // for geometry and its grain for row batching.
        let spmm = tall;
        (tall, square, spmm)
    } else {
        (TileConfig::SCALAR, TileConfig::SCALAR, TileConfig::SCALAR)
    };
    KernelTune {
        version: TUNE_VERSION,
        path: base.path.as_str().to_string(),
        features: detected_features()
            .into_iter()
            .map(str::to_string)
            .collect(),
        tall,
        square,
        spmm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KernelTune {
        KernelTune {
            version: TUNE_VERSION,
            path: "scalar".to_string(),
            features: vec![],
            tall: TileConfig::SCALAR,
            square: TileConfig::SCALAR,
            spmm: TileConfig::SCALAR,
        }
    }

    #[test]
    fn tune_round_trips_through_json() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: KernelTune = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn load_rejects_bad_version_and_path() {
        let dir = std::env::temp_dir();
        let p = dir.join("e2gcl_tune_bad_version.json");
        let mut t = sample();
        t.version = 999;
        persist(p.to_str().unwrap(), &t).unwrap();
        assert!(load(p.to_str().unwrap()).unwrap_err().contains("version"));

        let mut t = sample();
        t.path = "neon".to_string();
        persist(p.to_str().unwrap(), &t).unwrap();
        assert!(load(p.to_str().unwrap()).unwrap_err().contains("path"));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn ensure_quarantines_corrupt_file_and_retunes() {
        let dir = std::env::temp_dir();
        let p = dir.join("e2gcl_tune_corrupt.json");
        let q = dir.join("e2gcl_tune_corrupt.json.corrupt");
        let _ = std::fs::remove_file(&q);
        std::fs::write(&p, b"{not json").unwrap();
        let out = ensure(p.to_str().unwrap());
        assert!(out.tuned_now);
        assert!(q.is_file(), "corrupt file should be quarantined");
        assert!(load(p.to_str().unwrap()).is_ok(), "fresh tune persisted");
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(&q);
    }

    #[test]
    fn scalar_tune_selects_scalar_defaults() {
        let t = sample();
        assert_eq!(t.selection(), Selection::SCALAR);
        assert!(t.check_host().is_ok());
    }
}
