//! Dense linear-algebra substrate for the E²GCL reproduction.
//!
//! The paper's models (GCN encoders, projection heads, linear probes) only
//! need a small, predictable set of dense operations over `f32` row-major
//! matrices. This crate provides exactly that set, with a deterministic,
//! seedable RNG story so every experiment in the workspace is reproducible.
//!
//! Design notes:
//! * Row-major `Vec<f32>` storage: node-representation matrices are tall and
//!   thin (`|V| x d`), and every consumer walks them row-by-row.
//! * Hot kernels ([`Matrix::matmul`]) parallelise over output rows with
//!   rayon; everything else is simple scalar code that LLVM vectorises.
//! * No `unsafe`.

pub mod activations;
pub mod alloc_stats;
pub mod error;
pub mod hash;
pub mod init;
pub mod matrix;
pub mod ops;
pub mod pca;
pub mod rng;
pub mod stats;

pub use error::TrainError;
pub use matrix::Matrix;
pub use rng::{RngState, SeedRng};
