//! Dense linear-algebra substrate for the E²GCL reproduction.
//!
//! The paper's models (GCN encoders, projection heads, linear probes) only
//! need a small, predictable set of dense operations over `f32` row-major
//! matrices. This crate provides exactly that set, with a deterministic,
//! seedable RNG story so every experiment in the workspace is reproducible.
//!
//! Design notes:
//! * Row-major `Vec<f32>` storage: node-representation matrices are tall and
//!   thin (`|V| x d`), and every consumer walks them row-by-row.
//! * Hot kernels ([`Matrix::matmul`]) parallelise over output rows with
//!   rayon and route through [`dispatch`]: runtime-detected AVX2+FMA
//!   micro-kernels ([`simd`]) with the scalar blocked path as fallback,
//!   tile/grain shapes picked by a persisted autotuner ([`tune`]).
//!   Everything else is simple scalar code that LLVM vectorises.
//! * `unsafe` is confined to [`simd`]: `std::arch` intrinsics behind
//!   runtime feature detection, pinned bitwise to safe scalar contract
//!   models by proptests.

pub mod activations;
pub mod alloc_stats;
pub mod dispatch;
pub mod error;
pub mod hash;
pub mod init;
pub mod matrix;
pub mod ops;
pub mod pca;
pub mod rng;
pub mod simd;
pub mod stats;
pub mod tune;

pub use dispatch::{DispatchPath, Selection};
pub use error::TrainError;
pub use matrix::Matrix;
pub use rng::{RngState, SeedRng};
