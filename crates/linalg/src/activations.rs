//! Element-wise activations and their derivatives.

use crate::Matrix;

/// ReLU applied in place.
pub fn relu_inplace(m: &mut Matrix) {
    m.map_inplace(|v| v.max(0.0));
}

/// Derivative mask of ReLU evaluated at the *pre-activation* `z`:
/// 1 where `z > 0`, else 0.
pub fn relu_grad_mask(z: &Matrix) -> Matrix {
    z.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Sigmoid applied element-wise in place.
pub fn sigmoid_inplace(m: &mut Matrix) {
    m.map_inplace(sigmoid);
}

/// Multiplies `dst` element-wise by the ReLU gradient mask of the
/// pre-activation `z` without materialising the mask matrix. Bit-identical
/// to `dst.mul_assign_elem(&relu_grad_mask(z))`.
pub fn relu_mask_mul_inplace(dst: &mut Matrix, z: &Matrix) {
    assert_eq!(dst.shape(), z.shape(), "relu mask shape mismatch");
    for (d, &v) in dst.as_mut_slice().iter_mut().zip(z.as_slice()) {
        *d *= if v > 0.0 { 1.0 } else { 0.0 };
    }
}

/// PReLU-free ELU (alpha = 1), used by some projection heads.
pub fn elu_inplace(m: &mut Matrix) {
    m.map_inplace(|v| if v > 0.0 { v } else { v.exp_m1() });
}

/// Derivative of ELU at pre-activation `z`.
pub fn elu_grad_mask(z: &Matrix) -> Matrix {
    z.map(|v| if v > 0.0 { 1.0 } else { v.exp() })
}

/// Multiplies `dst` element-wise by the ELU gradient mask of the
/// pre-activation `z` without materialising the mask matrix. Bit-identical
/// to `dst.mul_assign_elem(&elu_grad_mask(z))`.
pub fn elu_mask_mul_inplace(dst: &mut Matrix, z: &Matrix) {
    assert_eq!(dst.shape(), z.shape(), "elu mask shape mismatch");
    for (d, &v) in dst.as_mut_slice().iter_mut().zip(z.as_slice()) {
        *d *= if v > 0.0 { 1.0 } else { v.exp() };
    }
}

/// Row-wise softmax in place (stable: subtracts the row max).
pub fn softmax_rows_inplace(m: &mut Matrix) {
    let cols = m.cols();
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        } else {
            for v in row.iter_mut() {
                *v = 1.0 / cols as f32;
            }
        }
    }
}

/// Stable `ln(1 + e^x)`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negative() {
        let mut m = Matrix::from_rows(&[&[-1.0, 2.0], &[0.0, -3.0]]);
        relu_inplace(&mut m);
        assert_eq!(m, Matrix::from_rows(&[&[0.0, 2.0], &[0.0, 0.0]]));
    }

    #[test]
    fn relu_mask_matches_sign() {
        let z = Matrix::from_rows(&[&[-1.0, 2.0, 0.0]]);
        let g = relu_grad_mask(&z);
        assert_eq!(g, Matrix::from_rows(&[&[0.0, 1.0, 0.0]]));
    }

    #[test]
    fn sigmoid_symmetry_and_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(5.0) + sigmoid(-5.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(-1000.0) >= 0.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        softmax_rows_inplace(&mut m);
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(m.row(r).iter().all(|&v| v >= 0.0));
        }
        // Monotone: larger logits get larger probability.
        assert!(m.get(0, 2) > m.get(0, 1) && m.get(0, 1) > m.get(0, 0));
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let mut m = Matrix::from_rows(&[&[1000.0, 1000.0]]);
        softmax_rows_inplace(&mut m);
        assert!((m.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softplus_stable() {
        assert!((softplus(0.0) - 2.0f32.ln()).abs() < 1e-6);
        assert!((softplus(50.0) - 50.0).abs() < 1e-4);
        assert!(softplus(-50.0) >= 0.0);
    }

    #[test]
    fn fused_masks_match_materialised_masks() {
        let z = Matrix::from_rows(&[&[-1.5, 0.0, 2.0], &[0.3, -0.1, -7.0]]);
        let d = Matrix::from_rows(&[&[1.0, -2.0, 3.0], &[0.5, 4.0, -1.0]]);
        let mut relu_fused = d.clone();
        relu_mask_mul_inplace(&mut relu_fused, &z);
        let mut relu_ref = d.clone();
        relu_ref.mul_assign_elem(&relu_grad_mask(&z));
        assert_eq!(relu_fused, relu_ref);
        let mut elu_fused = d.clone();
        elu_mask_mul_inplace(&mut elu_fused, &z);
        let mut elu_ref = d.clone();
        elu_ref.mul_assign_elem(&elu_grad_mask(&z));
        assert_eq!(elu_fused, elu_ref);
    }

    #[test]
    fn elu_continuous_at_zero() {
        let z = Matrix::from_rows(&[&[-1e-4, 1e-4]]);
        let mut m = z.clone();
        elu_inplace(&mut m);
        assert!((m.get(0, 0) - m.get(0, 1)).abs() < 1e-3);
    }
}
