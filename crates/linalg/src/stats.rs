//! Descriptive statistics used for result reporting (mean ± std, timing).

/// Mean of a slice; 0 for empty input.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / (xs.len() - 1) as f32;
    var.sqrt()
}

/// `(mean, std)` pair.
pub fn mean_std(xs: &[f32]) -> (f32, f32) {
    (mean(xs), std_dev(xs))
}

/// Min of a slice; +inf for empty.
pub fn min(xs: &[f32]) -> f32 {
    xs.iter().cloned().fold(f32::INFINITY, f32::min)
}

/// Max of a slice; -inf for empty.
pub fn max(xs: &[f32]) -> f32 {
    xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
}

/// Pearson correlation coefficient; 0 when either side is constant.
pub fn pearson(xs: &[f32], ys: &[f32]) -> f32 {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx < 1e-12 || vy < 1e-12 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        // Sample std of this classic set is ~2.138.
        assert!((std_dev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(min(&[]), f32::INFINITY);
        assert_eq!(max(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-6);
        let neg = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-6);
        let flat = [5.0, 5.0, 5.0];
        assert_eq!(pearson(&xs, &flat), 0.0);
    }
}
