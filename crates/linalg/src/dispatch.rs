//! Runtime kernel dispatch: CPU feature detection, the per-shape-class tile
//! configuration, and resolution of the `E2GCL_KERNEL_CONFIG` override.
//!
//! # Resolution order (fixed, documented in DESIGN.md §16)
//!
//! 1. `E2GCL_KERNEL_CONFIG=scalar` — force the PR 4 scalar blocked path.
//! 2. `E2GCL_KERNEL_CONFIG=avx2` — force the AVX2+FMA path with default
//!    tiles; a typed [`KernelConfigError::FeatureUnavailable`] is recorded
//!    (and the library falls back to scalar) if the host lacks AVX2+FMA.
//! 3. `E2GCL_KERNEL_CONFIG=<path>` — load a persisted [`tune`] file. A
//!    missing or corrupt explicitly-named file is a typed error (corrupt
//!    files are quarantined to `<path>.corrupt` first, matching the PR 6
//!    artifact policy); the library falls back to detected defaults and the
//!    CLI turns the recorded error into a usage message + exit.
//! 4. Unset — load `./kernel_tune.json` if present and valid for the
//!    detected feature set. A corrupt implicit file is quarantined and a
//!    feature-mismatched one ignored (both recorded as [`events`]); either
//!    way resolution continues with detected defaults. The library never
//!    *writes* the tune file — only `kernel_bench` (first-run autotune) and
//!    `e2gcl kernels --tune` do, via [`crate::tune::ensure`].
//!
//! Resolution runs once per process ([`std::sync::OnceLock`]) so every
//! kernel in the process agrees on the path. Tests pin a configuration
//! without env vars via [`with_selection`], which installs a thread-local
//! override — kernel entry points capture [`current`] **once on the calling
//! thread** and pass the `Copy` [`Selection`] into rayon workers (the
//! vendored rayon spawns fresh OS threads that do not inherit thread-locals).
//!
//! [`tune`]: crate::tune

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::fmt;
use std::sync::OnceLock;

/// Environment variable overriding kernel dispatch (`scalar`, `avx2`, or a
/// path to a persisted `kernel_tune.json`).
pub const CONFIG_ENV: &str = "E2GCL_KERNEL_CONFIG";

/// Default tune-file name probed in the working directory when
/// [`CONFIG_ENV`] is unset.
pub const TUNE_FILE_DEFAULT: &str = "kernel_tune.json";

/// One-line usage blurb for [`CONFIG_ENV`], shared by the CLI and bench
/// error paths.
pub const CONFIG_USAGE: &str =
    "E2GCL_KERNEL_CONFIG accepts `scalar`, `avx2`, or a path to a kernel_tune.json \
     produced by `kernel_bench` or `e2gcl kernels --tune`";

/// Which micro-kernel family executes the dense hot path. Within a path,
/// every tile configuration is bit-identical (tile geometry never changes
/// per-element reduction order); across paths bits differ (the AVX2 path
/// uses the 8-lane fused contract of [`crate::simd::model`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchPath {
    /// PR 4 scalar blocked kernels (the `ops::lane_dot` 4-lane contract).
    Scalar,
    /// AVX2+FMA micro-kernels (the `simd::model::lane_dot8` contract).
    Avx2,
}

impl DispatchPath {
    pub fn as_str(self) -> &'static str {
        match self {
            DispatchPath::Scalar => "scalar",
            DispatchPath::Avx2 => "avx2",
        }
    }

    pub fn parse(s: &str) -> Option<DispatchPath> {
        match s {
            "scalar" => Some(DispatchPath::Scalar),
            "avx2" => Some(DispatchPath::Avx2),
            _ => None,
        }
    }

    /// Path-routed `lane_dot`: the element-level similarity kernel used by
    /// `matmul_transpose` / `syrk` / the fused InfoNCE losses / serve
    /// re-ranking. Callers inside rayon workers must use a path captured
    /// before the parallel region, not [`current_path`].
    #[inline]
    pub fn lane_dot(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            DispatchPath::Scalar => crate::ops::lane_dot(a, b),
            DispatchPath::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    crate::simd::call::lane_dot8(a, b)
                }
                #[cfg(not(target_arch = "x86_64"))]
                crate::ops::lane_dot(a, b)
            }
        }
    }

    /// Path-routed `lane_dot4`: one query row against four stored rows,
    /// each result bit-identical to [`DispatchPath::lane_dot`] of that row.
    #[inline]
    pub fn lane_dot4(self, a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
        match self {
            DispatchPath::Scalar => crate::ops::lane_dot4(a, b0, b1, b2, b3),
            DispatchPath::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    crate::simd::call::lane_dot4(a, b0, b1, b2, b3)
                }
                #[cfg(not(target_arch = "x86_64"))]
                crate::ops::lane_dot4(a, b0, b1, b2, b3)
            }
        }
    }
}

impl fmt::Display for DispatchPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tile/grain configuration for one matrix-shape class. Geometry fields
/// select among compiled micro-kernel instantiations; `grain` scales how
/// many tile-rows one rayon work item covers. None of these affect bits —
/// they are pure performance knobs (see module docs of [`crate::simd`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileConfig {
    /// Axpy-panel rows (`matmul` / `transpose_matmul` register tile).
    pub mm_mr: u8,
    /// Axpy-panel width in ymm vectors (8 columns each).
    pub mm_nv: u8,
    /// Dot-tile rows (`matmul_transpose` / `syrk`).
    pub dot_mr: u8,
    /// Dot-tile columns.
    pub dot_nr: u8,
    /// Tile-row groups per rayon work item.
    pub grain: u8,
}

impl TileConfig {
    /// Dot-tile geometries the AVX2 kernels are compiled for.
    pub const DOT_GEOMETRIES: [(u8, u8); 3] = [(1, 4), (2, 4), (4, 2)];
    /// Axpy-panel geometries the AVX2 kernels are compiled for.
    pub const MM_GEOMETRIES: [(u8, u8); 3] = [(2, 4), (4, 2), (4, 1)];
    /// Parallel-grain candidates the autotuner sweeps.
    pub const GRAINS: [u8; 3] = [1, 4, 16];

    /// Scalar-path default: grain 1 reproduces the PR 4 chunking exactly
    /// (geometry fields are unused — the scalar tiles are compile-time
    /// constants in `matrix.rs`).
    pub const SCALAR: TileConfig = TileConfig {
        mm_mr: 4,
        mm_nv: 2,
        dot_mr: 2,
        dot_nr: 4,
        grain: 1,
    };

    /// AVX2-path default before any autotune has run.
    pub const AVX2: TileConfig = TileConfig {
        mm_mr: 4,
        mm_nv: 2,
        dot_mr: 2,
        dot_nr: 4,
        grain: 4,
    };

    /// Whether the geometry fields name compiled kernel instantiations.
    pub fn is_valid(&self) -> bool {
        Self::DOT_GEOMETRIES.contains(&(self.dot_mr, self.dot_nr))
            && Self::MM_GEOMETRIES.contains(&(self.mm_mr, self.mm_nv))
            && self.grain >= 1
    }
}

/// Matrix-shape classes the autotuner distinguishes. Classification keys on
/// the *output* aspect ratio: embedding-style products (n×d against d×d,
/// n ≫ d) behave differently from square-ish similarity blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShapeClass {
    /// Output at least 8× taller than wide (or wider than tall).
    TallSkinny,
    /// Everything else dense.
    Square,
    /// Sparse-times-dense panels.
    Spmm,
}

impl ShapeClass {
    /// Classifies a dense output of `rows x cols`.
    #[inline]
    pub fn of_output(rows: usize, cols: usize) -> ShapeClass {
        if rows >= 8 * cols.max(1) || cols >= 8 * rows.max(1) {
            ShapeClass::TallSkinny
        } else {
            ShapeClass::Square
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            ShapeClass::TallSkinny => "tall",
            ShapeClass::Square => "square",
            ShapeClass::Spmm => "spmm",
        }
    }
}

/// The full resolved kernel configuration: one dispatch path plus a tile
/// config per shape class. Small and `Copy` so kernel entry points can
/// capture it once and move it into rayon closures by value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Selection {
    pub path: DispatchPath,
    pub tall: TileConfig,
    pub square: TileConfig,
    pub spmm: TileConfig,
}

impl Selection {
    pub const SCALAR: Selection = Selection {
        path: DispatchPath::Scalar,
        tall: TileConfig::SCALAR,
        square: TileConfig::SCALAR,
        spmm: TileConfig::SCALAR,
    };

    pub const AVX2: Selection = Selection {
        path: DispatchPath::Avx2,
        tall: TileConfig::AVX2,
        square: TileConfig::AVX2,
        spmm: TileConfig::AVX2,
    };

    /// The default selection for the detected feature set.
    pub fn detected_default() -> Selection {
        if avx2_available() {
            Selection::AVX2
        } else {
            Selection::SCALAR
        }
    }

    /// Tile config for a dense output of `rows x cols`.
    #[inline]
    pub fn tiles_for(&self, rows: usize, cols: usize) -> TileConfig {
        match ShapeClass::of_output(rows, cols) {
            ShapeClass::TallSkinny => self.tall,
            _ => self.square,
        }
    }
}

/// True when the host supports both AVX2 and FMA (the feature pair every
/// kernel in [`crate::simd::avx2`] is compiled for).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The CPU feature names relevant to dispatch that this host advertises, in
/// a fixed order (recorded in bench artifacts and the tune file).
pub fn detected_features() -> Vec<&'static str> {
    let mut out = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            out.push("sse4.2");
        }
        if std::arch::is_x86_feature_detected!("avx") {
            out.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            out.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            out.push("fma");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            out.push("avx512f");
        }
    }
    out
}

/// Typed failures resolving the kernel configuration. The library never
/// panics on these: it records the error, falls back to a safe selection,
/// and lets the CLI/bench front-ends surface it (see [`startup_error`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelConfigError {
    /// `E2GCL_KERNEL_CONFIG` named a path that does not exist and is not a
    /// recognised keyword.
    MissingFile { path: String },
    /// An explicitly-named tune file failed to parse or validate; it has
    /// been quarantined to `<path>.corrupt` when possible.
    Corrupt {
        path: String,
        cause: String,
        quarantined_to: Option<String>,
    },
    /// An explicitly-named tune file was produced under a feature set this
    /// host does not satisfy (e.g. an `avx2` tune on a scalar-only host).
    FeatureMismatch {
        path: String,
        file_features: String,
        host_features: String,
    },
    /// `E2GCL_KERNEL_CONFIG=avx2` on a host without AVX2+FMA.
    FeatureUnavailable { requested: String },
}

impl fmt::Display for KernelConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelConfigError::MissingFile { path } => {
                write!(f, "kernel config `{path}` is not a file (and not a keyword)")
            }
            KernelConfigError::Corrupt {
                path,
                cause,
                quarantined_to,
            } => match quarantined_to {
                Some(q) => write!(f, "kernel tune file {path} is corrupt ({cause}); quarantined to {q}"),
                None => write!(f, "kernel tune file {path} is corrupt ({cause})"),
            },
            KernelConfigError::FeatureMismatch {
                path,
                file_features,
                host_features,
            } => write!(
                f,
                "kernel tune file {path} was tuned for [{file_features}] but this host has [{host_features}]"
            ),
            KernelConfigError::FeatureUnavailable { requested } => {
                write!(f, "kernel path `{requested}` requires AVX2+FMA, which this host lacks")
            }
        }
    }
}

impl std::error::Error for KernelConfigError {}

/// Where the active selection came from (recorded in bench artifacts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectionSource {
    /// Detected defaults, no tune file involved.
    Default,
    /// Forced by `E2GCL_KERNEL_CONFIG=scalar|avx2`.
    Env(&'static str),
    /// Loaded from a persisted tune file.
    File(String),
}

impl fmt::Display for SelectionSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionSource::Default => f.write_str("detected-default"),
            SelectionSource::Env(v) => write!(f, "env:{v}"),
            SelectionSource::File(p) => write!(f, "file:{p}"),
        }
    }
}

#[derive(Debug)]
struct Resolved {
    selection: Selection,
    source: SelectionSource,
    error: Option<KernelConfigError>,
    events: Vec<String>,
}

static RESOLVED: OnceLock<Resolved> = OnceLock::new();

fn resolve() -> Resolved {
    match std::env::var(CONFIG_ENV) {
        Ok(v) if v == "scalar" => Resolved {
            selection: Selection::SCALAR,
            source: SelectionSource::Env("scalar"),
            error: None,
            events: Vec::new(),
        },
        Ok(v) if v == "avx2" => {
            if avx2_available() {
                Resolved {
                    selection: Selection::AVX2,
                    source: SelectionSource::Env("avx2"),
                    error: None,
                    events: Vec::new(),
                }
            } else {
                Resolved {
                    selection: Selection::SCALAR,
                    source: SelectionSource::Default,
                    error: Some(KernelConfigError::FeatureUnavailable {
                        requested: "avx2".to_string(),
                    }),
                    events: vec!["forced avx2 unavailable; fell back to scalar".to_string()],
                }
            }
        }
        Ok(path) => resolve_explicit_file(&path),
        Err(_) => resolve_implicit(),
    }
}

/// `E2GCL_KERNEL_CONFIG=<path>`: failures are typed errors (fatal at the
/// CLI), but the library still gets a working fallback selection.
fn resolve_explicit_file(path: &str) -> Resolved {
    if !std::path::Path::new(path).is_file() {
        return Resolved {
            selection: Selection::detected_default(),
            source: SelectionSource::Default,
            error: Some(KernelConfigError::MissingFile {
                path: path.to_string(),
            }),
            events: Vec::new(),
        };
    }
    match crate::tune::load(path) {
        Ok(tune) => match tune.check_host() {
            Ok(()) => Resolved {
                selection: tune.selection(),
                source: SelectionSource::File(path.to_string()),
                error: None,
                events: Vec::new(),
            },
            Err(err) => Resolved {
                selection: Selection::detected_default(),
                source: SelectionSource::Default,
                error: Some(err),
                events: Vec::new(),
            },
        },
        Err(cause) => {
            let quarantined_to = crate::tune::quarantine(path).ok();
            Resolved {
                selection: Selection::detected_default(),
                source: SelectionSource::Default,
                error: Some(KernelConfigError::Corrupt {
                    path: path.to_string(),
                    cause,
                    quarantined_to,
                }),
                events: Vec::new(),
            }
        }
    }
}

/// No env override: probe `./kernel_tune.json`, degrading gracefully —
/// corrupt files are quarantined, mismatched ones ignored, and either way
/// the process continues on detected defaults (retuning happens on the next
/// `kernel_bench` / `e2gcl kernels --tune` run, never here).
fn resolve_implicit() -> Resolved {
    let path = TUNE_FILE_DEFAULT;
    if !std::path::Path::new(path).is_file() {
        return Resolved {
            selection: Selection::detected_default(),
            source: SelectionSource::Default,
            error: None,
            events: Vec::new(),
        };
    }
    match crate::tune::load(path) {
        Ok(tune) => match tune.check_host() {
            Ok(()) => Resolved {
                selection: tune.selection(),
                source: SelectionSource::File(path.to_string()),
                error: None,
                events: Vec::new(),
            },
            Err(err) => Resolved {
                selection: Selection::detected_default(),
                source: SelectionSource::Default,
                error: None,
                events: vec![format!("ignored {path}: {err}")],
            },
        },
        Err(cause) => {
            let event = match crate::tune::quarantine(path) {
                Ok(q) => format!("quarantined corrupt {path} to {q} ({cause}); will retune"),
                Err(e) => format!("corrupt {path} ({cause}); quarantine failed: {e}"),
            };
            Resolved {
                selection: Selection::detected_default(),
                source: SelectionSource::Default,
                error: None,
                events: vec![event],
            }
        }
    }
}

fn resolved() -> &'static Resolved {
    RESOLVED.get_or_init(resolve)
}

/// The process-wide selection (resolution order in the module docs).
pub fn active_selection() -> Selection {
    resolved().selection
}

/// Where [`active_selection`] came from, for artifact attribution.
pub fn active_source() -> String {
    resolved().source.to_string()
}

/// The typed configuration error recorded during resolution, if any. The
/// CLI checks this at startup and turns it into a usage message + exit
/// instead of silently running on the fallback selection.
pub fn startup_error() -> Option<&'static KernelConfigError> {
    resolved().error.as_ref()
}

/// Non-fatal resolution events (quarantines, ignored mismatched files).
pub fn startup_events() -> &'static [String] {
    &resolved().events
}

thread_local! {
    static OVERRIDE: Cell<Option<Selection>> = const { Cell::new(None) };
}

struct OverrideGuard(Option<Selection>);

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        OVERRIDE.with(|c| c.set(self.0));
    }
}

/// Runs `f` with `sel` as the current selection on this thread (restored on
/// exit, including unwind). Used by tests and the autotuner to pin a
/// configuration without touching the environment. The override is
/// thread-local by design: kernel entry points capture [`current`] on the
/// calling thread before fanning out to rayon workers.
pub fn with_selection<R>(sel: Selection, f: impl FnOnce() -> R) -> R {
    let _guard = OverrideGuard(OVERRIDE.with(|c| c.replace(Some(sel))));
    f()
}

/// The selection kernel entry points should capture: the thread-local
/// override if one is installed, else the process-wide resolution.
#[inline]
pub fn current() -> Selection {
    OVERRIDE.with(|c| c.get()).unwrap_or_else(active_selection)
}

/// Shorthand for `current().path`.
#[inline]
pub fn current_path() -> DispatchPath {
    current().path
}

/// Dispatched `lane_dot` for call sites *outside* parallel regions. Inside
/// rayon closures, capture [`current_path`] first and call the method on it.
#[inline]
pub fn lane_dot(a: &[f32], b: &[f32]) -> f32 {
    current_path().lane_dot(a, b)
}

/// Dispatched `lane_dot4`; same thread-capture caveat as [`lane_dot`].
#[inline]
pub fn lane_dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    current_path().lane_dot4(a, b0, b1, b2, b3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_classes() {
        assert_eq!(ShapeClass::of_output(4096, 64), ShapeClass::TallSkinny);
        assert_eq!(ShapeClass::of_output(64, 4096), ShapeClass::TallSkinny);
        assert_eq!(ShapeClass::of_output(512, 512), ShapeClass::Square);
        assert_eq!(ShapeClass::of_output(512, 256), ShapeClass::Square);
        assert_eq!(ShapeClass::of_output(0, 0), ShapeClass::Square);
    }

    #[test]
    fn defaults_are_valid() {
        assert!(TileConfig::SCALAR.is_valid());
        assert!(TileConfig::AVX2.is_valid());
    }

    #[test]
    fn with_selection_overrides_and_restores() {
        let base = current();
        with_selection(Selection::SCALAR, || {
            assert_eq!(current().path, DispatchPath::Scalar);
            with_selection(Selection::AVX2, || {
                assert_eq!(current().path, DispatchPath::Avx2);
            });
            assert_eq!(current().path, DispatchPath::Scalar);
        });
        assert_eq!(current(), base);
    }

    #[test]
    fn scalar_lane_dot_matches_ops() {
        let a: Vec<f32> = (0..23).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..23).map(|i| (i as f32).cos()).collect();
        assert_eq!(
            DispatchPath::Scalar.lane_dot(&a, &b).to_bits(),
            crate::ops::lane_dot(&a, &b).to_bits()
        );
    }
}
