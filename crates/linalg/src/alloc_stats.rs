//! Process-wide counter of fresh [`crate::Matrix`] buffer allocations.
//!
//! The training engine's scratch-buffer contract promises that steady-state
//! epochs reuse matrices instead of allocating new ones. That promise is
//! only enforceable if it is observable: every place a `Matrix` acquires a
//! new (or regrown) heap buffer bumps this counter, so a test or bench can
//! bracket a region and assert its allocation count — zero for the GCN
//! forward/backward hot path once scratch is warm.
//!
//! The counter is a single relaxed atomic: ordering does not matter for a
//! monotone tally, and the cost (one uncontended `fetch_add` per matrix
//! *allocation*, never per element) is invisible next to the buffer zeroing
//! it accompanies.

use std::sync::atomic::{AtomicU64, Ordering};

static MATRIX_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Records one fresh matrix-buffer allocation (or capacity regrowth).
#[inline]
pub(crate) fn record() {
    MATRIX_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Total matrix-buffer allocations since process start. Monotone; meaningful
/// only as a delta around a bracketed region.
pub fn matrix_allocs() -> u64 {
    MATRIX_ALLOCS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use crate::Matrix;

    // The counter is process-global and unit tests run concurrently, so this
    // only asserts monotone lower bounds; exact zero-alloc assertions live in
    // single-test integration binaries (see the nn scratch tests).
    #[test]
    fn fresh_matrices_count() {
        let before = super::matrix_allocs();
        let a = Matrix::zeros(8, 8);
        let _b = a.clone();
        assert!(super::matrix_allocs() >= before + 2);
    }
}
