//! Deterministic, forkable RNG used by every crate in the workspace.
//!
//! All experiments in the paper report mean ± std over seeded repetitions;
//! to make each run bit-reproducible we route every source of randomness
//! through [`SeedRng`], a thin wrapper over ChaCha8 that supports cheap
//! *forking*: deriving an independent stream for a sub-component from a
//! parent seed plus a label, so adding randomness to one component never
//! perturbs another.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seedable, forkable RNG (ChaCha8).
#[derive(Clone, Debug)]
pub struct SeedRng {
    inner: ChaCha8Rng,
}

/// The exact, serialisable stream position of a [`SeedRng`].
///
/// Captured by [`SeedRng::state`] and restored by [`SeedRng::from_state`];
/// the restored generator continues the keystream bit-for-bit, which is what
/// durable training checkpoints rely on for bitwise-identical resumption.
/// Persists through the fixed binary layout of [`RngState::to_bytes`], not
/// serde — checkpoint files are checksummed binary, not JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RngState {
    /// ChaCha key words (derived from the original seed).
    pub key: [u32; 8],
    /// Block counter the next refill will use.
    pub counter: u64,
    /// Next unread word within the current block (16 ⇒ exhausted).
    pub idx: u32,
}

impl RngState {
    /// Serialises the state to a fixed 44-byte little-endian layout
    /// (8×4 key + 8 counter + 4 idx) for inclusion in binary checkpoints.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(44);
        for w in self.key {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&self.counter.to_le_bytes());
        out.extend_from_slice(&self.idx.to_le_bytes());
        out
    }

    /// Inverse of [`RngState::to_bytes`]; `None` on a length mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 44 {
            return None;
        }
        let word = |at: usize| {
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
        };
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = word(i * 4);
        }
        let mut counter = [0u8; 8];
        counter.copy_from_slice(&bytes[32..40]);
        Some(Self {
            key,
            counter: u64::from_le_bytes(counter),
            idx: word(40),
        })
    }
}

impl SeedRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Exports the exact stream position (see [`RngState`]).
    pub fn state(&self) -> RngState {
        let (key, counter, idx) = self.inner.state();
        RngState {
            key,
            counter,
            idx: idx as u32,
        }
    }

    /// Reconstructs an RNG at an exported stream position.
    pub fn from_state(state: &RngState) -> Self {
        Self {
            inner: ChaCha8Rng::from_state(state.key, state.counter, state.idx as usize),
        }
    }

    /// Derives an independent RNG for a named sub-component.
    ///
    /// The child stream depends only on the parent seed *position* and the
    /// label hash, so two forks with different labels never collide.
    pub fn fork(&mut self, label: &str) -> SeedRng {
        let h = crate::hash::fnv1a64(label.as_bytes());
        SeedRng::new(self.inner.gen::<u64>() ^ h)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform `f64` in `[0, 1)` — for weighted sampling over populations
    /// large enough that `f32`'s 24-bit mantissa would quantise the draw.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1 = self.uniform().max(1e-12);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    pub fn sample_without_replacement(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n} without replacement");
        if k * 3 >= n {
            // Dense regime: partial Fisher-Yates.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + self.below(n - i);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        } else {
            // Sparse regime: rejection sampling with a seen-set.
            let mut seen = std::collections::HashSet::with_capacity(k * 2);
            let mut out = Vec::with_capacity(k);
            while out.len() < k {
                let c = self.below(n);
                if seen.insert(c) {
                    out.push(c);
                }
            }
            out
        }
    }

    /// Samples one index from a non-negative weight vector.
    ///
    /// Falls back to uniform if all weights are zero/non-finite.
    pub fn weighted_index(&mut self, weights: &[f32]) -> usize {
        let total: f64 = weights.iter().map(|&w| f64::from(w.max(0.0))).sum();
        if total <= 0.0 || !total.is_finite() {
            return self.below(weights.len());
        }
        let mut t = self.inner.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            t -= f64::from(w.max(0.0));
            if t <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Raw u64 (for hashing / sub-seeding).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeedRng::new(7);
        let mut b = SeedRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_resumes_bitwise() {
        let mut a = SeedRng::new(41);
        // Burn an odd number of draws so the underlying block is mid-read.
        for _ in 0..13 {
            a.uniform();
        }
        let snap = a.state();
        let mut b = SeedRng::from_state(&snap);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // And the byte round trip is lossless.
        let bytes = snap.to_bytes();
        assert_eq!(bytes.len(), 44);
        assert_eq!(RngState::from_bytes(&bytes), Some(snap));
        assert_eq!(RngState::from_bytes(&bytes[..43]), None);
    }

    #[test]
    fn restored_fork_matches_original_fork() {
        // Forking consumes stream words, so a restored RNG must fork to the
        // same children as the one it was captured from.
        let mut a = SeedRng::new(17);
        a.below(100);
        let mut b = SeedRng::from_state(&a.state());
        let mut fa = a.fork("train");
        let mut fb = b.fork("train");
        for _ in 0..50 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    #[test]
    fn forks_are_label_dependent() {
        let mut a = SeedRng::new(7);
        let mut b = SeedRng::new(7);
        let mut fa = a.fork("x");
        let mut fb = b.fork("y");
        // Different labels must diverge (overwhelmingly likely).
        assert_ne!(fa.next_u64(), fb.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SeedRng::new(1);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_mean_roughly_zero() {
        let mut r = SeedRng::new(2);
        let n = 20_000;
        let mean: f32 = (0..n).map(|_| r.normal()).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn sample_without_replacement_distinct() {
        let mut r = SeedRng::new(3);
        for &(n, k) in &[(10usize, 10usize), (100, 5), (50, 40)] {
            let s = r.sample_without_replacement(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k);
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SeedRng::new(4);
        let w = [0.0, 0.0, 1.0, 0.0];
        for _ in 0..50 {
            assert_eq!(r.weighted_index(&w), 2);
        }
        // Degenerate all-zero weights: still returns a valid index.
        let z = [0.0, 0.0];
        let i = r.weighted_index(&z);
        assert!(i < 2);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SeedRng::new(5);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        assert!(r.bernoulli(2.0)); // clamped
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SeedRng::new(6);
        let mut v: Vec<usize> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
