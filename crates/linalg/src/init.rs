//! Parameter initialisers.

use crate::{Matrix, SeedRng};

/// Glorot/Xavier uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))` — the standard GCN initialiser.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut SeedRng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.uniform_range(-a, a);
    }
    m
}

/// Kaiming/He normal initialisation for ReLU stacks: `N(0, 2/fan_in)`.
pub fn kaiming_normal(rows: usize, cols: usize, rng: &mut SeedRng) -> Matrix {
    let std = (2.0 / rows as f32).sqrt();
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.normal() * std;
    }
    m
}

/// Uniform initialisation in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut SeedRng) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.uniform_range(lo, hi);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_bound() {
        let mut rng = SeedRng::new(0);
        let m = xavier_uniform(10, 20, &mut rng);
        let a = (6.0 / 30.0f32).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= a));
        // Not all zero.
        assert!(m.frobenius_norm() > 0.0);
    }

    #[test]
    fn kaiming_std_roughly_right() {
        let mut rng = SeedRng::new(1);
        let m = kaiming_normal(200, 200, &mut rng);
        let n = (200 * 200) as f32;
        let var = m.as_slice().iter().map(|v| v * v).sum::<f32>() / n;
        let expect = 2.0 / 200.0;
        assert!(
            (var - expect).abs() < expect * 0.2,
            "var {var} expect {expect}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = xavier_uniform(4, 4, &mut SeedRng::new(9));
        let b = xavier_uniform(4, 4, &mut SeedRng::new(9));
        assert_eq!(a, b);
    }
}
