//! Row-major dense `f32` matrix.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major `f32` matrix.
///
/// Rows correspond to nodes / samples throughout the workspace; columns to
/// feature or embedding dimensions.
///
/// Every constructor that acquires a fresh buffer (and [`Clone`]) bumps the
/// [`crate::alloc_stats`] counter; the `*_into` kernel variants and
/// [`Matrix::reset_zeroed`]/[`Matrix::copy_from`] reuse an existing buffer
/// and stay off it — that is the scratch layer's allocation-reuse contract.
#[derive(PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        crate::alloc_stats::record();
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.rows = source.rows;
        self.cols = source.cols;
        if self.data.capacity() < source.data.len() {
            crate::alloc_stats::record();
        }
        self.data.clone_from(&source.data);
    }
}

/// An empty `0 x 0` matrix with no heap buffer. The natural seed for a
/// scratch slot: the first `reset_zeroed`/`copy_from`/`*_into` call grows it
/// (counted as an allocation), after which it is reused for free.
impl Default for Matrix {
    fn default() -> Self {
        Self {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        crate::alloc_stats::record();
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        crate::alloc_stats::record();
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        crate::alloc_stats::record();
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        crate::alloc_stats::record();
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Reshapes in place to `rows x cols`, reusing the existing buffer when
    /// its capacity suffices (counted as a fresh allocation otherwise).
    /// Element contents afterwards are unspecified; callers overwrite them.
    fn reshape(&mut self, rows: usize, cols: usize) {
        let n = rows * cols;
        if self.data.capacity() < n {
            crate::alloc_stats::record();
        }
        self.data.resize(n, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Reshapes to `rows x cols` and zeroes every element, reusing the
    /// buffer when possible. The scratch-layer replacement for
    /// [`Matrix::zeros`].
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.reshape(rows, cols);
        self.data.fill(0.0);
    }

    /// Becomes a copy of `src`, reusing the buffer when possible. The
    /// scratch-layer replacement for [`Clone::clone`].
    pub fn copy_from(&mut self, src: &Matrix) {
        self.reshape(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Copies `src` into row `r`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols);
        self.row_mut(r).copy_from_slice(src);
    }

    /// Returns a new matrix whose rows are `self`'s rows at `indices`.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        self.select_rows_impl(indices, &mut out);
        out
    }

    /// [`Matrix::select_rows`] into a reusable output buffer (reshaped to
    /// `indices.len() x cols`, contents fully overwritten).
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.reshape(indices.len(), self.cols);
        self.select_rows_impl(indices, out);
    }

    fn select_rows_impl(&self, indices: &[usize], out: &mut Matrix) {
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_impl(&mut out);
        out
    }

    /// [`Matrix::transpose`] into a reusable output buffer (reshaped to
    /// `cols x rows`, contents fully overwritten).
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reshape(self.cols, self.rows);
        self.transpose_impl(out);
    }

    fn transpose_impl(&self, out: &mut Matrix) {
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Dense matrix product `self * other`.
    ///
    /// Parallelised over output rows; the inner loops are laid out in the
    /// `ikj` order so the innermost loop streams both operands contiguously.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_impl(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a reusable output buffer (reshaped and
    /// zeroed; bit-identical result).
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset_zeroed(self.rows, other.cols);
        self.matmul_impl(other, out);
    }

    fn matmul_impl(&self, other: &Matrix, out: &mut Matrix) {
        let oc = other.cols;
        out.data
            .par_chunks_mut(oc)
            .zip(self.data.par_chunks(self.cols))
            .for_each(|(out_row, a_row)| {
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &other.data[k * oc..(k + 1) * oc];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            });
    }

    /// `self^T * other` without materialising the transpose.
    ///
    /// Parallelised over output rows (columns of `self`). Each output
    /// element still accumulates over input rows in ascending order, so the
    /// result is bit-identical to the serial formulation.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul shape mismatch: {}x{} ^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.transpose_matmul_impl(other, &mut out);
        out
    }

    /// [`Matrix::transpose_matmul`] into a reusable output buffer (reshaped
    /// and zeroed; bit-identical result).
    pub fn transpose_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul shape mismatch: {}x{} ^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset_zeroed(self.cols, other.cols);
        self.transpose_matmul_impl(other, out);
    }

    fn transpose_matmul_impl(&self, other: &Matrix, out: &mut Matrix) {
        let oc = other.cols;
        let sc = self.cols;
        out.data
            .par_chunks_mut(oc)
            .enumerate()
            .for_each(|(c, out_row)| {
                // out[c] = Σ_r self[r][c] * other[r], r ascending.
                for r in 0..self.rows {
                    let a = self.data[r * sc + c];
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &other.data[r * oc..(r + 1) * oc];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            });
    }

    /// `self * other^T`, parallelised over rows of `self`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_transpose_impl(other, &mut out);
        out
    }

    /// [`Matrix::matmul_transpose`] into a reusable output buffer (reshaped,
    /// contents fully overwritten; bit-identical result).
    pub fn matmul_transpose_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reshape(self.rows, other.rows);
        self.matmul_transpose_impl(other, out);
    }

    fn matmul_transpose_impl(&self, other: &Matrix, out: &mut Matrix) {
        let on = other.rows;
        out.data
            .par_chunks_mut(on)
            .zip(self.data.par_chunks(self.cols))
            .for_each(|(out_row, a_row)| {
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &other.data[j * other.cols..(j + 1) * other.cols];
                    let mut acc = 0.0f32;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            });
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise in-place subtraction.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// Element-wise sum, returning a new matrix.
    pub fn add(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Element-wise difference, returning a new matrix.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// Element-wise product (Hadamard), in place.
    pub fn mul_assign_elem(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Scales every element in place.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// `self += s * other` (matrix axpy).
    pub fn axpy(&mut self, s: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Adds `bias` (length `cols`) to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (a, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *a += b;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Returns a copy with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// L2-normalises every row in place (rows with zero norm are left as-is).
    pub fn l2_normalize_rows(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for v in row {
                    *v /= norm;
                }
            }
        }
    }

    /// Mean of each column.
    pub fn col_means(&self) -> Vec<f32> {
        let mut means = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (m, &v) in means.iter_mut().zip(self.row(r)) {
                *m += v;
            }
        }
        let n = self.rows.max(1) as f32;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Stacks two matrices vertically.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Concatenates two matrices horizontally (same row count).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[-1.0, 2.0]]);
        let expect = a.transpose().matmul(&b);
        let got = a.transpose_matmul(&b);
        assert_eq!(expect, got);
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.0]]);
        let expect = a.matmul(&b.transpose());
        let got = a.matmul_transpose(&b);
        assert_eq!(expect, got);
    }

    #[test]
    fn row_ops() {
        let mut m = Matrix::zeros(2, 3);
        m.set_row(1, &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
        m.add_row_broadcast(&[1.0, 1.0, 1.0]);
        assert_eq!(m.row(0), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn select_rows_picks_in_order() {
        let m = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s, Matrix::from_rows(&[&[3.0], &[1.0]]));
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let mut m = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        m.l2_normalize_rows();
        assert!((m.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((m.get(0, 1) - 0.8).abs() < 1e-6);
        assert_eq!(m.row(1), &[0.0, 0.0]); // zero row untouched
    }

    #[test]
    fn stack_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(1, 3);
        assert_eq!(a.vstack(&b).shape(), (3, 3));
        let c = Matrix::zeros(2, 2);
        assert_eq!(a.hstack(&c).shape(), (2, 5));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn into_variants_match_allocating_kernels_bitwise() {
        let mut rng_state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let a = Matrix::from_vec(17, 9, (0..17 * 9).map(|_| next()).collect());
        let b = Matrix::from_vec(9, 13, (0..9 * 13).map(|_| next()).collect());
        let c = Matrix::from_vec(17, 13, (0..17 * 13).map(|_| next()).collect());

        // Deliberately mis-shaped, dirty scratch: every kernel must reshape
        // and fully define its output.
        let mut out = Matrix::filled(2, 3, f32::NAN);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));

        a.transpose_matmul_into(&c, &mut out);
        assert_eq!(out, a.transpose_matmul(&c));

        a.matmul_transpose_into(&a, &mut out);
        assert_eq!(out, a.matmul_transpose(&a));

        a.transpose_into(&mut out);
        assert_eq!(out, a.transpose());
    }

    #[test]
    fn transpose_matmul_parallel_matches_explicit_transpose() {
        // Large enough to cross the rayon stand-in's parallel threshold.
        let n = 300;
        let a = Matrix::from_vec(n, 7, (0..n * 7).map(|i| (i as f32).sin()).collect());
        let b = Matrix::from_vec(n, 5, (0..n * 5).map(|i| (i as f32).cos()).collect());
        let got = a.transpose_matmul(&b);
        let expect = a.transpose().matmul(&b);
        assert_eq!(got, expect);
    }

    #[test]
    fn reset_and_copy_reuse_buffers() {
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut m = Matrix::filled(4, 4, 7.0);
        m.reset_zeroed(3, 2);
        assert_eq!(m, Matrix::zeros(3, 2));
        m.copy_from(&src);
        assert_eq!(m, src);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::filled(2, 2, 2.0));
        a.scale(0.25);
        assert_eq!(a, Matrix::filled(2, 2, 0.5));
    }

    #[test]
    fn frobenius_norm_known() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn col_means_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.col_means(), vec![2.0, 3.0]);
    }
}
