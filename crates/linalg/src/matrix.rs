//! Row-major dense `f32` matrix.

use crate::ops;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Micro-tile geometry for the blocked GEMM kernels.
///
/// `matmul`/`transpose_matmul` are axpy-style (broadcast one `a` scalar
/// against a contiguous `b` panel): they tile `MR` output rows by `NR`
/// output columns, which keeps the `MR x NR` accumulator block (8 SSE
/// registers of 4 lanes) live across the whole k / r reduction. Each output
/// element is still a single accumulator reduced in ascending order, so
/// these kernels are bit-identical to the naive loops.
///
/// `matmul_transpose`/`syrk` are dot-style (both operands row-major over
/// k): they tile `MR_DOT x NR_DOT` output elements, each carrying `LANES`
/// independent partial sums combined in the fixed [`ops::lane_dot`] order.
const MR: usize = 4;
const NR: usize = 8;
const MR_DOT: usize = 2;
const NR_DOT: usize = 4;
const LANES: usize = 4;

/// One block of up to `MR` rows of `out = a_chunk * b` (`b` is `k x oc`,
/// row-major). Full `MR x NR` panels run register-tiled; the row/column
/// remainders fall back to the streaming axpy path. Both paths accumulate
/// each element over `kk` ascending with a single accumulator, so the block
/// result is bit-identical to the naive ikj loop. `out` must be pre-zeroed.
fn mm_block(a: &[f32], b: &[f32], out: &mut [f32], k: usize, oc: usize) {
    let rows = out.len() / oc;
    let j_main = oc - oc % NR;
    if rows == MR {
        let (r0, rest) = a.split_at(k);
        let (r1, rest) = rest.split_at(k);
        let (r2, r3) = rest.split_at(k);
        let ar = [r0, r1, r2, r3];
        let mut j = 0;
        while j < j_main {
            let mut acc = [[0.0f32; NR]; MR];
            for kk in 0..k {
                let bp = &b[kk * oc + j..kk * oc + j + NR];
                for (accm, arm) in acc.iter_mut().zip(&ar) {
                    let av = arm[kk];
                    for (s, &bv) in accm.iter_mut().zip(bp) {
                        *s += av * bv;
                    }
                }
            }
            for (m, accm) in acc.iter().enumerate() {
                out[m * oc + j..m * oc + j + NR].copy_from_slice(accm);
            }
            j += NR;
        }
    }
    // Row remainder (rows < MR) and the column tail of full blocks share
    // the streaming scalar path.
    let j0 = if rows == MR { j_main } else { 0 };
    if j0 < oc {
        for m in 0..rows {
            let arow = &a[m * k..(m + 1) * k];
            let orow = &mut out[m * oc + j0..m * oc + oc];
            for (kk, &av) in arow.iter().enumerate() {
                let bp = &b[kk * oc + j0..kk * oc + oc];
                for (o, &bv) in orow.iter_mut().zip(bp) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// One block of up to `MR` rows of `out = a^T * b` starting at column `c0`
/// of `a` (`a` is `nrows x sc`, `b` is `nrows x oc`).
///
/// The reduction here runs over input rows `r`, which is the *large*
/// dimension in GCN backward passes — so unlike [`mm_block`] this streams
/// each `b` row contiguously once per block (prefetch-friendly at any
/// depth) and keeps the `MR` output rows hot in L1 as accumulators, giving
/// `MR`-fold reuse of every `b` row. Each output element still accumulates
/// over `r` ascending with a single chain, so the result is bit-identical
/// to the naive loop. `out` must be pre-zeroed.
fn tm_block(a: &[f32], b: &[f32], out: &mut [f32], c0: usize, sc: usize, oc: usize, nrows: usize) {
    let rows = out.len() / oc;
    for r in 0..nrows {
        let base = r * sc + c0;
        let ap = &a[base..base + rows];
        let br = &b[r * oc..(r + 1) * oc];
        for (m, &av) in ap.iter().enumerate() {
            let orow = &mut out[m * oc..(m + 1) * oc];
            for (o, &bv) in orow.iter_mut().zip(br) {
                *o += av * bv;
            }
        }
    }
}

/// `MR_DOT x NR_DOT` register-tiled dot micro-kernel: computes
/// `out[m][j] = lane_dot(a_m, b_j)` for two `a` rows against four `b` rows,
/// reusing every loaded chunk eight times. Lane decomposition, combine
/// order and tail order are exactly those of [`ops::lane_dot`], so each
/// element is bit-identical to calling `lane_dot` directly.
fn mt_tile(
    a0: &[f32],
    a1: &[f32],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) -> [[f32; NR_DOT]; MR_DOT] {
    let k = a0.len();
    let mut acc = [[[0.0f32; LANES]; NR_DOT]; MR_DOT];
    let it = a0
        .chunks_exact(LANES)
        .zip(a1.chunks_exact(LANES))
        .zip(b0.chunks_exact(LANES))
        .zip(b1.chunks_exact(LANES))
        .zip(b2.chunks_exact(LANES))
        .zip(b3.chunks_exact(LANES));
    for (((((c0, c1), d0), d1), d2), d3) in it {
        for l in 0..LANES {
            let x0 = c0[l];
            let x1 = c1[l];
            acc[0][0][l] += x0 * d0[l];
            acc[0][1][l] += x0 * d1[l];
            acc[0][2][l] += x0 * d2[l];
            acc[0][3][l] += x0 * d3[l];
            acc[1][0][l] += x1 * d0[l];
            acc[1][1][l] += x1 * d1[l];
            acc[1][2][l] += x1 * d2[l];
            acc[1][3][l] += x1 * d3[l];
        }
    }
    let tail = k - k % LANES;
    let mut out = [[0.0f32; NR_DOT]; MR_DOT];
    for (m, arow) in [a0, a1].into_iter().enumerate() {
        for (j, brow) in [b0, b1, b2, b3].into_iter().enumerate() {
            let lanes = acc[m][j];
            let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
            for (&x, &y) in arow[tail..].iter().zip(&brow[tail..]) {
                s += x * y;
            }
            out[m][j] = s;
        }
    }
    out
}

/// One block of up to `MR_DOT` rows of `out = a_chunk * b^T` (`b` is
/// `on x k`, row-major). Full `MR_DOT x NR_DOT` tiles go through
/// [`mt_tile`]; remainders call [`ops::lane_dot`] per element — both
/// produce identical bits for every element. Fully overwrites `out`.
fn mt_block(a: &[f32], b: &[f32], out: &mut [f32], k: usize, on: usize) {
    let rows = out.len() / on;
    if rows == MR_DOT {
        let (a0, a1) = a.split_at(k);
        let (o0, o1) = out.split_at_mut(on);
        let j_main = on - on % NR_DOT;
        let mut j = 0;
        while j < j_main {
            let t = mt_tile(
                a0,
                a1,
                &b[j * k..(j + 1) * k],
                &b[(j + 1) * k..(j + 2) * k],
                &b[(j + 2) * k..(j + 3) * k],
                &b[(j + 3) * k..(j + 4) * k],
            );
            o0[j..j + NR_DOT].copy_from_slice(&t[0]);
            o1[j..j + NR_DOT].copy_from_slice(&t[1]);
            j += NR_DOT;
        }
        for jj in j_main..on {
            let brow = &b[jj * k..(jj + 1) * k];
            o0[jj] = ops::lane_dot(a0, brow);
            o1[jj] = ops::lane_dot(a1, brow);
        }
    } else {
        for (jj, o) in out.iter_mut().enumerate() {
            *o = ops::lane_dot(a, &b[jj * k..(jj + 1) * k]);
        }
    }
}

/// Upper-triangle rows `[i0, i0 + rows)` of the Gram matrix `a * a^T`
/// (`a` is `n x k`): elements `j >= i` per row `i`, via the same
/// [`mt_tile`]/[`ops::lane_dot`] kernel as [`mt_block`]. Elements below the
/// diagonal are left untouched (the caller mirrors them afterwards).
fn syrk_block(a: &[f32], out: &mut [f32], i0: usize, k: usize, n: usize) {
    let rows = out.len() / n;
    if rows == MR_DOT {
        let a0 = &a[i0 * k..(i0 + 1) * k];
        let a1 = &a[(i0 + 1) * k..(i0 + 2) * k];
        let (o0, o1) = out.split_at_mut(n);
        // Corner elements before the shared tile region (j >= i per row).
        o0[i0] = ops::lane_dot(a0, a0);
        o0[i0 + 1] = ops::lane_dot(a0, a1);
        o1[i0 + 1] = ops::lane_dot(a1, a1);
        let mut j = i0 + MR_DOT;
        while j + NR_DOT <= n {
            let t = mt_tile(
                a0,
                a1,
                &a[j * k..(j + 1) * k],
                &a[(j + 1) * k..(j + 2) * k],
                &a[(j + 2) * k..(j + 3) * k],
                &a[(j + 3) * k..(j + 4) * k],
            );
            o0[j..j + NR_DOT].copy_from_slice(&t[0]);
            o1[j..j + NR_DOT].copy_from_slice(&t[1]);
            j += NR_DOT;
        }
        for jj in j..n {
            let brow = &a[jj * k..(jj + 1) * k];
            o0[jj] = ops::lane_dot(a0, brow);
            o1[jj] = ops::lane_dot(a1, brow);
        }
    } else {
        // Single remainder row (odd n).
        for m in 0..rows {
            let i = i0 + m;
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[m * n..(m + 1) * n];
            for (jj, o) in orow.iter_mut().enumerate().skip(i) {
                *o = ops::lane_dot(arow, &a[jj * k..(jj + 1) * k]);
            }
        }
    }
}

/// A dense row-major `f32` matrix.
///
/// Rows correspond to nodes / samples throughout the workspace; columns to
/// feature or embedding dimensions.
///
/// Every constructor that acquires a fresh buffer (and [`Clone`]) bumps the
/// [`crate::alloc_stats`] counter; the `*_into` kernel variants and
/// [`Matrix::reset_zeroed`]/[`Matrix::copy_from`] reuse an existing buffer
/// and stay off it — that is the scratch layer's allocation-reuse contract.
#[derive(PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        crate::alloc_stats::record();
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.rows = source.rows;
        self.cols = source.cols;
        if self.data.capacity() < source.data.len() {
            crate::alloc_stats::record();
        }
        self.data.clone_from(&source.data);
    }
}

/// An empty `0 x 0` matrix with no heap buffer. The natural seed for a
/// scratch slot: the first `reset_zeroed`/`copy_from`/`*_into` call grows it
/// (counted as an allocation), after which it is reused for free.
impl Default for Matrix {
    fn default() -> Self {
        Self {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        crate::alloc_stats::record();
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        crate::alloc_stats::record();
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        crate::alloc_stats::record();
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        crate::alloc_stats::record();
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Reshapes in place to `rows x cols`, reusing the existing buffer when
    /// its capacity suffices (counted as a fresh allocation otherwise).
    /// Element contents afterwards are unspecified; callers overwrite them.
    fn reshape(&mut self, rows: usize, cols: usize) {
        let n = rows * cols;
        if self.data.capacity() < n {
            crate::alloc_stats::record();
        }
        self.data.resize(n, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Reshapes to `rows x cols` and zeroes every element, reusing the
    /// buffer when possible. The scratch-layer replacement for
    /// [`Matrix::zeros`].
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.reshape(rows, cols);
        self.data.fill(0.0);
    }

    /// Becomes a copy of `src`, reusing the buffer when possible. The
    /// scratch-layer replacement for [`Clone::clone`].
    pub fn copy_from(&mut self, src: &Matrix) {
        self.reshape(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Copies `src` into row `r`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols);
        self.row_mut(r).copy_from_slice(src);
    }

    /// Returns a new matrix whose rows are `self`'s rows at `indices`.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        self.select_rows_impl(indices, &mut out);
        out
    }

    /// [`Matrix::select_rows`] into a reusable output buffer (reshaped to
    /// `indices.len() x cols`, contents fully overwritten).
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.reshape(indices.len(), self.cols);
        self.select_rows_impl(indices, out);
    }

    fn select_rows_impl(&self, indices: &[usize], out: &mut Matrix) {
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_impl(&mut out);
        out
    }

    /// [`Matrix::transpose`] into a reusable output buffer (reshaped to
    /// `cols x rows`, contents fully overwritten).
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reshape(self.cols, self.rows);
        self.transpose_impl(out);
    }

    fn transpose_impl(&self, out: &mut Matrix) {
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Dense matrix product `self * other`.
    ///
    /// Parallelised over output rows; the inner loops are laid out in the
    /// `ikj` order so the innermost loop streams both operands contiguously.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_impl(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a reusable output buffer (reshaped and
    /// zeroed; bit-identical result).
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset_zeroed(self.rows, other.cols);
        self.matmul_impl(other, out);
    }

    fn matmul_impl(&self, other: &Matrix, out: &mut Matrix) {
        let oc = other.cols;
        let k = self.cols;
        if out.data.is_empty() || k == 0 {
            // `out` is pre-zeroed by the callers; nothing to accumulate.
            return;
        }
        let b = &other.data;
        #[cfg(target_arch = "x86_64")]
        {
            // Selection captured once here, on the calling thread: rayon
            // workers are fresh OS threads with no thread-local override.
            let sel = crate::dispatch::current();
            if sel.path == crate::dispatch::DispatchPath::Avx2 {
                let t = sel.tiles_for(self.rows, oc);
                let cr = t.mm_mr as usize * t.grain as usize;
                out.data
                    .par_chunks_mut(cr * oc)
                    .zip(self.data.par_chunks(cr * k))
                    .for_each(|(out_chunk, a_chunk)| {
                        crate::simd::call::mm_rows(a_chunk, b, out_chunk, k, oc, t.mm_mr, t.mm_nv);
                    });
                return;
            }
        }
        out.data
            .par_chunks_mut(MR * oc)
            .zip(self.data.par_chunks(MR * k))
            .for_each(|(out_chunk, a_chunk)| {
                mm_block(a_chunk, b, out_chunk, k, oc);
            });
    }

    /// `self^T * other` without materialising the transpose.
    ///
    /// Parallelised over output rows (columns of `self`). Each output
    /// element still accumulates over input rows in ascending order, so the
    /// result is bit-identical to the serial formulation.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul shape mismatch: {}x{} ^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.transpose_matmul_impl(other, &mut out);
        out
    }

    /// [`Matrix::transpose_matmul`] into a reusable output buffer (reshaped
    /// and zeroed; bit-identical result).
    pub fn transpose_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul shape mismatch: {}x{} ^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset_zeroed(self.cols, other.cols);
        self.transpose_matmul_impl(other, out);
    }

    fn transpose_matmul_impl(&self, other: &Matrix, out: &mut Matrix) {
        let oc = other.cols;
        let sc = self.cols;
        let nrows = self.rows;
        if out.data.is_empty() {
            return;
        }
        let a = &self.data;
        let b = &other.data;
        #[cfg(target_arch = "x86_64")]
        {
            let sel = crate::dispatch::current();
            if sel.path == crate::dispatch::DispatchPath::Avx2 {
                let t = sel.tiles_for(sc, oc);
                let cr = t.mm_mr as usize * t.grain as usize;
                out.data
                    .par_chunks_mut(cr * oc)
                    .enumerate()
                    .for_each(|(tile, out_chunk)| {
                        crate::simd::call::tm_rows(
                            a,
                            b,
                            out_chunk,
                            tile * cr,
                            sc,
                            oc,
                            nrows,
                            t.mm_mr,
                            t.mm_nv,
                        );
                    });
                return;
            }
        }
        out.data
            .par_chunks_mut(MR * oc)
            .enumerate()
            .for_each(|(tile, out_chunk)| {
                tm_block(a, b, out_chunk, tile * MR, sc, oc, nrows);
            });
    }

    /// `self * other^T`, parallelised over rows of `self`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_transpose_impl(other, &mut out);
        out
    }

    /// [`Matrix::matmul_transpose`] into a reusable output buffer (reshaped,
    /// contents fully overwritten; bit-identical result).
    pub fn matmul_transpose_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reshape(self.rows, other.rows);
        self.matmul_transpose_impl(other, out);
    }

    fn matmul_transpose_impl(&self, other: &Matrix, out: &mut Matrix) {
        let on = other.rows;
        let k = self.cols;
        if out.data.is_empty() {
            return;
        }
        if k == 0 {
            // Empty reduction: every element is an empty lane_dot (0.0).
            // `out` may hold stale scratch contents, so overwrite explicitly.
            out.data.fill(0.0);
            return;
        }
        let b = &other.data;
        #[cfg(target_arch = "x86_64")]
        {
            let sel = crate::dispatch::current();
            if sel.path == crate::dispatch::DispatchPath::Avx2 {
                let t = sel.tiles_for(self.rows, on);
                let cr = t.dot_mr as usize * t.grain as usize;
                out.data
                    .par_chunks_mut(cr * on)
                    .zip(self.data.par_chunks(cr * k))
                    .for_each(|(out_chunk, a_chunk)| {
                        crate::simd::call::mt_rows(
                            a_chunk, b, out_chunk, k, on, t.dot_mr, t.dot_nr,
                        );
                    });
                return;
            }
        }
        out.data
            .par_chunks_mut(MR_DOT * on)
            .zip(self.data.par_chunks(MR_DOT * k))
            .for_each(|(out_chunk, a_chunk)| {
                mt_block(a_chunk, b, out_chunk, k, on);
            });
    }

    /// `self * self^T` — the Gram matrix of the rows of `self`.
    ///
    /// Bit-identical to `self.matmul_transpose(self)` but roughly half the
    /// work: only the upper triangle (including the diagonal) is computed
    /// with the dispatched lane-dot kernel ([`ops::lane_dot`] on the scalar
    /// path, [`crate::simd::model::lane_dot8`] on AVX2), then mirrored
    /// across the diagonal. The mirror is exact because `lane_dot(a, b)`
    /// and `lane_dot(b, a)` produce identical bits on either path (each
    /// partial product commutes; the summation order is the same).
    pub fn syrk(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.rows);
        self.syrk_impl(&mut out);
        out
    }

    /// [`Matrix::syrk`] into a reusable output buffer (reshaped, contents
    /// fully overwritten; bit-identical result).
    pub fn syrk_into(&self, out: &mut Matrix) {
        out.reshape(self.rows, self.rows);
        self.syrk_impl(out);
    }

    fn syrk_impl(&self, out: &mut Matrix) {
        let n = self.rows;
        let k = self.cols;
        if out.data.is_empty() {
            return;
        }
        if k == 0 {
            out.data.fill(0.0);
            return;
        }
        let a = &self.data;
        // Upper triangle (j >= i), parallel over row tiles.
        #[allow(unused_mut)] // only assigned on x86_64
        let mut done = false;
        #[cfg(target_arch = "x86_64")]
        {
            let sel = crate::dispatch::current();
            if sel.path == crate::dispatch::DispatchPath::Avx2 {
                let t = sel.tiles_for(n, n);
                let cr = t.dot_mr as usize * t.grain as usize;
                out.data
                    .par_chunks_mut(cr * n)
                    .enumerate()
                    .for_each(|(tile, out_chunk)| {
                        crate::simd::call::syrk_rows(
                            a,
                            out_chunk,
                            tile * cr,
                            k,
                            n,
                            t.dot_mr,
                            t.dot_nr,
                        );
                    });
                done = true;
            }
        }
        if !done {
            out.data
                .par_chunks_mut(MR_DOT * n)
                .enumerate()
                .for_each(|(tile, out_chunk)| {
                    syrk_block(a, out_chunk, tile * MR_DOT, k, n);
                });
        }
        // Mirror into the strict lower triangle. Serial: it is a pure copy
        // (memory bound) and keeping it single-threaded avoids any write
        // ordering question.
        for i in 1..n {
            for j in 0..i {
                out.data[i * n + j] = out.data[j * n + i];
            }
        }
    }

    /// `self += other^T`. Requires `self` to be `n x m` where `other` is
    /// `m x n`. Walked in 32x32 tiles so both operands stream through cache.
    pub fn add_transpose_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.cols, other.rows),
            "add_transpose_assign shape mismatch: {}x{} += ({}x{})^T",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        const TB: usize = 32;
        let (r, c) = (self.rows, self.cols);
        for ib in (0..r).step_by(TB) {
            for jb in (0..c).step_by(TB) {
                for i in ib..(ib + TB).min(r) {
                    let orow = &mut self.data[i * c..(i + 1) * c];
                    for (j, o) in orow.iter_mut().enumerate().take((jb + TB).min(c)).skip(jb) {
                        *o += other.data[j * other.cols + i];
                    }
                }
            }
        }
    }

    /// `self += self^T` for a square matrix. Off-diagonal pairs receive the
    /// same sum `m[i][j] + m[j][i]` on both sides, so the result is exactly
    /// symmetric; diagonal entries are doubled.
    pub fn symmetrize_additive(&mut self) {
        assert_eq!(
            self.rows, self.cols,
            "symmetrize_additive needs a square matrix, got {}x{}",
            self.rows, self.cols
        );
        let n = self.rows;
        for i in 0..n {
            self.data[i * n + i] *= 2.0;
            for j in (i + 1)..n {
                let s = self.data[i * n + j] + self.data[j * n + i];
                self.data[i * n + j] = s;
                self.data[j * n + i] = s;
            }
        }
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise in-place subtraction.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// Element-wise sum, returning a new matrix.
    pub fn add(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Element-wise difference, returning a new matrix.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// Element-wise product (Hadamard), in place.
    pub fn mul_assign_elem(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Scales every element in place.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// `self += s * other` (matrix axpy).
    pub fn axpy(&mut self, s: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Adds `bias` (length `cols`) to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (a, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *a += b;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Returns a copy with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// L2-normalises every row in place (rows with zero norm are left as-is).
    pub fn l2_normalize_rows(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for v in row {
                    *v /= norm;
                }
            }
        }
    }

    /// Mean of each column.
    pub fn col_means(&self) -> Vec<f32> {
        let mut means = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (m, &v) in means.iter_mut().zip(self.row(r)) {
                *m += v;
            }
        }
        let n = self.rows.max(1) as f32;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Stacks two matrices vertically.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Concatenates two matrices horizontally (same row count).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[-1.0, 2.0]]);
        let expect = a.transpose().matmul(&b);
        let got = a.transpose_matmul(&b);
        assert_eq!(expect, got);
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.0]]);
        let expect = a.matmul(&b.transpose());
        let got = a.matmul_transpose(&b);
        assert_eq!(expect, got);
    }

    #[test]
    fn row_ops() {
        let mut m = Matrix::zeros(2, 3);
        m.set_row(1, &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
        m.add_row_broadcast(&[1.0, 1.0, 1.0]);
        assert_eq!(m.row(0), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn select_rows_picks_in_order() {
        let m = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s, Matrix::from_rows(&[&[3.0], &[1.0]]));
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let mut m = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        m.l2_normalize_rows();
        assert!((m.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((m.get(0, 1) - 0.8).abs() < 1e-6);
        assert_eq!(m.row(1), &[0.0, 0.0]); // zero row untouched
    }

    #[test]
    fn stack_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(1, 3);
        assert_eq!(a.vstack(&b).shape(), (3, 3));
        let c = Matrix::zeros(2, 2);
        assert_eq!(a.hstack(&c).shape(), (2, 5));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn into_variants_match_allocating_kernels_bitwise() {
        let mut rng_state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let a = Matrix::from_vec(17, 9, (0..17 * 9).map(|_| next()).collect());
        let b = Matrix::from_vec(9, 13, (0..9 * 13).map(|_| next()).collect());
        let c = Matrix::from_vec(17, 13, (0..17 * 13).map(|_| next()).collect());

        // Deliberately mis-shaped, dirty scratch: every kernel must reshape
        // and fully define its output.
        let mut out = Matrix::filled(2, 3, f32::NAN);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));

        a.transpose_matmul_into(&c, &mut out);
        assert_eq!(out, a.transpose_matmul(&c));

        a.matmul_transpose_into(&a, &mut out);
        assert_eq!(out, a.matmul_transpose(&a));

        a.transpose_into(&mut out);
        assert_eq!(out, a.transpose());
    }

    #[test]
    fn transpose_matmul_parallel_matches_explicit_transpose() {
        // Large enough to cross the rayon stand-in's parallel threshold.
        let n = 300;
        let a = Matrix::from_vec(n, 7, (0..n * 7).map(|i| (i as f32).sin()).collect());
        let b = Matrix::from_vec(n, 5, (0..n * 5).map(|i| (i as f32).cos()).collect());
        let got = a.transpose_matmul(&b);
        let expect = a.transpose().matmul(&b);
        assert_eq!(got, expect);
    }

    #[test]
    fn reset_and_copy_reuse_buffers() {
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut m = Matrix::filled(4, 4, 7.0);
        m.reset_zeroed(3, 2);
        assert_eq!(m, Matrix::zeros(3, 2));
        m.copy_from(&src);
        assert_eq!(m, src);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::filled(2, 2, 2.0));
        a.scale(0.25);
        assert_eq!(a, Matrix::filled(2, 2, 0.5));
    }

    #[test]
    fn frobenius_norm_known() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn col_means_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.col_means(), vec![2.0, 3.0]);
    }

    /// The old inner loops skipped `a == 0.0` entries, silently dropping
    /// `0.0 * NaN` products; all three kernels must propagate NaN even
    /// through exact-zero operand entries.
    #[test]
    fn nan_propagates_even_through_zero_entries() {
        // matmul: a[1][2] = 0.0 pairs with b[2][3] = NaN in out[1][3].
        let mut a = Matrix::filled(3, 4, 1.0);
        a.set(1, 2, 0.0);
        let mut b = Matrix::filled(4, 5, 1.0);
        b.set(2, 3, f32::NAN);
        let out = a.matmul(&b);
        assert!(out.get(1, 3).is_nan(), "matmul dropped 0*NaN");
        assert!(out.get(0, 3).is_nan());
        assert!(!out.get(1, 2).is_nan());

        // transpose_matmul: a[2][1] = 0.0 pairs with b[2][3] = NaN in
        // out[1][3] (reduction over input rows).
        let mut a = Matrix::filled(4, 3, 1.0);
        a.set(2, 1, 0.0);
        let mut b = Matrix::filled(4, 5, 1.0);
        b.set(2, 3, f32::NAN);
        let out = a.transpose_matmul(&b);
        assert!(out.get(1, 3).is_nan(), "transpose_matmul dropped 0*NaN");
        assert!(out.get(0, 3).is_nan());
        assert!(!out.get(1, 2).is_nan());

        // matmul_transpose: a[1][2] = 0.0 pairs with b[0][2] = NaN.
        let mut a = Matrix::filled(3, 4, 1.0);
        a.set(1, 2, 0.0);
        let mut b = Matrix::filled(2, 4, 1.0);
        b.set(0, 2, f32::NAN);
        let out = a.matmul_transpose(&b);
        assert!(out.get(1, 0).is_nan(), "matmul_transpose dropped 0*NaN");
        assert!(out.get(0, 0).is_nan());
        assert!(!out.get(1, 1).is_nan());
    }

    /// `syrk` must be bit-identical to the full `matmul_transpose(self)`
    /// (that is the mirror-across-the-diagonal contract), at shapes hitting
    /// the tile path, the remainder row, and the lane tail.
    #[test]
    fn syrk_matches_matmul_transpose_bitwise() {
        for (n, k) in [(1, 1), (2, 4), (5, 3), (8, 9), (13, 7), (17, 16)] {
            let a = Matrix::from_vec(n, k, (0..n * k).map(|i| (i as f32 * 0.7).sin()).collect());
            let full = a.matmul_transpose(&a);
            let half = a.syrk();
            for (x, y) in half.as_slice().iter().zip(full.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "syrk mismatch at n={n} k={k}");
            }
            // Warm reuse through a dirty scratch buffer.
            let mut out = Matrix::filled(1, 3, f32::NAN);
            a.syrk_into(&mut out);
            assert_eq!(out, full);
        }
    }

    #[test]
    fn add_transpose_assign_known() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let other = Matrix::from_rows(&[&[10.0, 40.0], &[20.0, 50.0], &[30.0, 60.0]]);
        m.add_transpose_assign(&other);
        assert_eq!(
            m,
            Matrix::from_rows(&[&[11.0, 22.0, 33.0], &[44.0, 55.0, 66.0]])
        );
    }

    #[test]
    fn symmetrize_additive_known() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.symmetrize_additive();
        assert_eq!(m, Matrix::from_rows(&[&[2.0, 5.0], &[5.0, 8.0]]));
    }
}
