//! Explicit SIMD micro-kernels and their scalar reduction-contract models.
//!
//! This module is the only `unsafe` code in the workspace. It provides
//! AVX2+FMA implementations of the dense hot-path kernels — `lane_dot` /
//! `lane_dot4`, the GEMM micro-panels behind [`crate::Matrix::matmul`] /
//! [`crate::Matrix::matmul_transpose`] / [`crate::Matrix::transpose_matmul`]
//! / [`crate::Matrix::syrk`], and the SpMM dense-column panel — selected at
//! runtime by [`crate::dispatch`] (feature detection + tile configuration),
//! with the PR 4 scalar blocked kernels as the fallback path.
//!
//! # The AVX2 element-level reduction contract
//!
//! Exactly as `ops::lane_dot` fixes the scalar path's element order, the
//! [`model`] submodule fixes the AVX2 path's. Every element any AVX2 kernel
//! produces is bit-identical to the corresponding safe scalar model:
//!
//! * **Dot-style elements** ([`model::lane_dot8`], the 8-lane analogue of
//!   [`crate::ops::lane_dot`]): lane `l` accumulates elements
//!   `l, l+8, l+16, …` in ascending order via *fused* multiply-add
//!   (`s_l = fma(x, y, s_l)`, one rounding — `_mm256_fmadd_ps` and
//!   [`f32::mul_add`] produce identical bits under IEEE-754); the eight
//!   lanes combine as `t_l = s_l + s_{l+4}` (the `vextractf128` + `addps`
//!   fold) followed by `(t_0 + t_2) + (t_1 + t_3)` (the `movehl` /
//!   `shuffle` fold); the `len % 8` tail is appended last, ascending, with
//!   scalar fused multiply-adds.
//! * **Axpy-style elements** ([`model::fused_chain_dot`], used by `matmul`,
//!   `transpose_matmul` and SpMM): a single accumulator per element,
//!   advanced in ascending reduction order with fused multiply-adds. Same
//!   order as the scalar path, fused rounding instead of two roundings.
//!
//! Tile geometry (how many rows/columns a micro-panel covers) and the rayon
//! parallel grain never enter either contract: elements are independent
//! accumulation chains, so **every tile configuration of a dispatch path
//! produces identical bits** — the autotuner can pick shapes freely without
//! invalidating that path's golden fingerprints. Bitwise equality of the
//! intrinsics against these models is property-tested at odd lengths,
//! `k < 8`, and empty inputs in `crates/linalg/tests/simd_contract.rs`.

/// Safe scalar models of the AVX2 reduction contract. These are the
/// *definition* of the AVX2 path's element-level bit behaviour; the
/// intrinsic kernels must (and are tested to) reproduce them exactly.
pub mod model {
    /// Number of independent accumulator lanes in the AVX2 dot contract.
    pub const LANES: usize = 8;

    /// The 8-lane fused-multiply-add dot product: the AVX2 analogue of
    /// [`crate::ops::lane_dot`]. See the module docs for the exact lane
    /// split, combine order, and tail order.
    pub fn lane_dot8(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = [0.0f32; LANES];
        for (ca, cb) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)) {
            for ((s, &x), &y) in acc.iter_mut().zip(ca).zip(cb) {
                *s = x.mul_add(y, *s);
            }
        }
        let t = [
            acc[0] + acc[4],
            acc[1] + acc[5],
            acc[2] + acc[6],
            acc[3] + acc[7],
        ];
        let mut s = (t[0] + t[2]) + (t[1] + t[3]);
        let tail = a.len() - a.len() % LANES;
        for (&x, &y) in a[tail..].iter().zip(&b[tail..]) {
            s = x.mul_add(y, s);
        }
        s
    }

    /// The single-chain fused-multiply-add dot: the per-element contract of
    /// the AVX2 axpy-style kernels (`matmul`, `transpose_matmul`, SpMM),
    /// which accumulate one chain per output element in ascending reduction
    /// order — the same order as the scalar path, with fused rounding.
    pub fn fused_chain_dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut s = 0.0f32;
        for (&x, &y) in a.iter().zip(b) {
            s = x.mul_add(y, s);
        }
        s
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    //! AVX2+FMA intrinsic kernels. Every function here requires the host to
    //! support `avx2` and `fma` (callers guard with
    //! [`crate::dispatch::avx2_available`], which wraps
    //! `is_x86_feature_detected!`); calling them on other hardware is
    //! undefined behaviour, which is why they are all `unsafe`.
    #![allow(clippy::missing_safety_doc)] // safety contract documented above
    #![allow(clippy::needless_range_loop)] // index loops mirror register tiles

    use std::arch::x86_64::*;

    /// Folds the eight lanes of `v` in the documented contract order:
    /// `t_l = s_l + s_{l+4}`, then `(t_0 + t_2) + (t_1 + t_3)`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum8(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let q = _mm_add_ps(lo, hi); // [t0, t1, t2, t3]
        let m = _mm_movehl_ps(q, q); // [t2, t3, t2, t3]
        let w = _mm_add_ps(q, m); // [t0+t2, t1+t3, ..]
        let w1 = _mm_shuffle_ps(w, w, 0b01); // lane 0 = t1+t3
        _mm_cvtss_f32(_mm_add_ss(w, w1)) // (t0+t2) + (t1+t3)
    }

    /// Raw-pointer `lane_dot8` over `k` elements.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot_raw(a: *const f32, b: *const f32, k: usize) -> f32 {
        let k8 = k - k % 8;
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < k8 {
            acc = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(i)), _mm256_loadu_ps(b.add(i)), acc);
            i += 8;
        }
        let mut s = hsum8(acc);
        while i < k {
            s = (*a.add(i)).mul_add(*b.add(i), s);
            i += 1;
        }
        s
    }

    /// [`super::model::lane_dot8`] with intrinsics: identical bits.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn lane_dot8(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        dot_raw(a.as_ptr(), b.as_ptr(), a.len())
    }

    /// Four [`lane_dot8`]s of `a` against four rows, register-tiled so each
    /// loaded chunk of `a` is reused four times. `out[j]` is bit-identical
    /// to `lane_dot8(a, b_j)`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn lane_dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
        debug_assert!(a.len() == b0.len() && a.len() == b1.len());
        debug_assert!(a.len() == b2.len() && a.len() == b3.len());
        let k = a.len();
        let bp = [b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr()];
        let ap = a.as_ptr();
        let k8 = k - k % 8;
        let mut acc = [_mm256_setzero_ps(); 4];
        let mut i = 0;
        while i < k8 {
            let av = _mm256_loadu_ps(ap.add(i));
            for j in 0..4 {
                acc[j] = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp[j].add(i)), acc[j]);
            }
            i += 8;
        }
        let mut out = [0.0f32; 4];
        for j in 0..4 {
            let mut s = hsum8(acc[j]);
            let mut t = k8;
            while t < k {
                s = (*ap.add(t)).mul_add(*bp[j].add(t), s);
                t += 1;
            }
            out[j] = s;
        }
        out
    }

    /// `MR x NR` dot micro-tile: `out[m][j] = lane_dot8(a_m, b_j)` with all
    /// `MR * NR` accumulators live in ymm registers across the k loop.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot_tile<const MR: usize, const NR: usize>(
        ap: [*const f32; MR],
        bp: [*const f32; NR],
        k: usize,
    ) -> [[f32; NR]; MR] {
        let k8 = k - k % 8;
        let mut acc = [[_mm256_setzero_ps(); NR]; MR];
        let mut i = 0;
        while i < k8 {
            let mut bv = [_mm256_setzero_ps(); NR];
            for j in 0..NR {
                bv[j] = _mm256_loadu_ps(bp[j].add(i));
            }
            for m in 0..MR {
                let av = _mm256_loadu_ps(ap[m].add(i));
                for j in 0..NR {
                    acc[m][j] = _mm256_fmadd_ps(av, bv[j], acc[m][j]);
                }
            }
            i += 8;
        }
        let mut out = [[0.0f32; NR]; MR];
        for m in 0..MR {
            for j in 0..NR {
                let mut s = hsum8(acc[m][j]);
                let mut t = k8;
                while t < k {
                    s = (*ap[m].add(t)).mul_add(*bp[j].add(t), s);
                    t += 1;
                }
                out[m][j] = s;
            }
        }
        out
    }

    /// One chunk of `out = a_chunk * b^T` rows through `MR x NR` dot tiles
    /// (column tails and remainder rows fall back to per-element
    /// [`dot_raw`] — identical bits). Fully overwrites `out`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn mt_rows_g<const MR: usize, const NR: usize>(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        on: usize,
    ) {
        let rows = out.len() / on;
        let (ab, bb, ob) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut r = 0;
        while r + MR <= rows {
            let mut ap = [ab; MR];
            for m in 0..MR {
                ap[m] = ab.add((r + m) * k);
            }
            let mut j = 0;
            while j + NR <= on {
                let mut bp = [bb; NR];
                for t in 0..NR {
                    bp[t] = bb.add((j + t) * k);
                }
                let tile = dot_tile::<MR, NR>(ap, bp, k);
                for m in 0..MR {
                    for t in 0..NR {
                        *ob.add((r + m) * on + j + t) = tile[m][t];
                    }
                }
                j += NR;
            }
            while j < on {
                let brow = bb.add(j * k);
                for m in 0..MR {
                    *ob.add((r + m) * on + j) = dot_raw(ap[m], brow, k);
                }
                j += 1;
            }
            r += MR;
        }
        for rr in r..rows {
            let arow = ab.add(rr * k);
            for j in 0..on {
                *ob.add(rr * on + j) = dot_raw(arow, bb.add(j * k), k);
            }
        }
    }

    /// Geometry-dispatching entry for `matmul_transpose` row chunks. The
    /// `(dot_mr, dot_nr)` pair must be one of the grid in
    /// [`crate::dispatch::TileConfig::DOT_GEOMETRIES`]; anything else falls
    /// back to the 2x4 default (same bits either way).
    ///
    /// # Safety
    /// Host must support AVX2+FMA; `a.len() >= rows*k`, `b.len() >= on*k`,
    /// `out.len()` a multiple of `on`.
    pub unsafe fn mt_rows(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        on: usize,
        dot_mr: u8,
        dot_nr: u8,
    ) {
        match (dot_mr, dot_nr) {
            (1, 4) => mt_rows_g::<1, 4>(a, b, out, k, on),
            (4, 2) => mt_rows_g::<4, 2>(a, b, out, k, on),
            _ => mt_rows_g::<2, 4>(a, b, out, k, on),
        }
    }

    /// Upper-triangle (`j >= i`) rows `[i0, i0 + rows)` of `a * a^T`
    /// through the same dot tiles as [`mt_rows`]: every element produced is
    /// bit-identical to `lane_dot8` of the operand rows, so the caller's
    /// mirror step is exact. Elements below the diagonal are untouched.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn syrk_rows_g<const MR: usize, const NR: usize>(
        a: &[f32],
        out: &mut [f32],
        i0: usize,
        k: usize,
        n: usize,
    ) {
        let rows = out.len() / n;
        let (ab, ob) = (a.as_ptr(), out.as_mut_ptr());
        let mut r = 0;
        // Full MR-row groups: per-element corner up to the block's last
        // diagonal, then NR-wide tiles, then the column tail.
        while r + MR <= rows {
            let gb = i0 + r;
            let mut ap = [ab; MR];
            for m in 0..MR {
                ap[m] = ab.add((gb + m) * k);
            }
            for m in 0..MR {
                for j in (gb + m)..(gb + MR).min(n) {
                    *ob.add((r + m) * n + j) = dot_raw(ap[m], ab.add(j * k), k);
                }
            }
            let mut j = gb + MR;
            while j + NR <= n {
                let mut bp = [ab; NR];
                for t in 0..NR {
                    bp[t] = ab.add((j + t) * k);
                }
                let tile = dot_tile::<MR, NR>(ap, bp, k);
                for m in 0..MR {
                    for t in 0..NR {
                        *ob.add((r + m) * n + j + t) = tile[m][t];
                    }
                }
                j += NR;
            }
            while j < n {
                let brow = ab.add(j * k);
                for m in 0..MR {
                    *ob.add((r + m) * n + j) = dot_raw(ap[m], brow, k);
                }
                j += 1;
            }
            r += MR;
        }
        for rr in r..rows {
            let i = i0 + rr;
            let arow = ab.add(i * k);
            for j in i..n {
                *ob.add(rr * n + j) = dot_raw(arow, ab.add(j * k), k);
            }
        }
    }

    /// Geometry-dispatching entry for `syrk` row chunks.
    ///
    /// # Safety
    /// Host must support AVX2+FMA; `a` is `n x k` row-major, `out.len()` a
    /// multiple of `n`, `i0 + out.len()/n <= n`.
    pub unsafe fn syrk_rows(
        a: &[f32],
        out: &mut [f32],
        i0: usize,
        k: usize,
        n: usize,
        dot_mr: u8,
        dot_nr: u8,
    ) {
        match (dot_mr, dot_nr) {
            (1, 4) => syrk_rows_g::<1, 4>(a, out, i0, k, n),
            (4, 2) => syrk_rows_g::<4, 2>(a, out, i0, k, n),
            _ => syrk_rows_g::<2, 4>(a, out, i0, k, n),
        }
    }

    /// Scalar fused-chain element: the tail path of the axpy kernels.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn fused_chain_raw(a: *const f32, stride_a: usize, b: *const f32, k: usize) -> f32 {
        let mut s = 0.0f32;
        for kk in 0..k {
            s = (*a.add(kk)).mul_add(*b.add(kk * stride_a), s);
        }
        s
    }

    /// One chunk of `out = a_chunk * b` rows: `MR` output rows by `NV` ymm
    /// column vectors per micro-panel, accumulators in registers across the
    /// whole k loop (each element a single fused chain, ascending k).
    /// `out` need not be pre-zeroed: panels fully overwrite their elements.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn mm_rows_g<const MR: usize, const NV: usize>(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        oc: usize,
    ) {
        let rows = out.len() / oc;
        let (ab, bb, ob) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let jw = NV * 8;
        let j_main = oc - oc % jw;
        let mut r = 0;
        while r + MR <= rows {
            let mut j = 0;
            while j < j_main {
                let mut acc = [[_mm256_setzero_ps(); NV]; MR];
                for kk in 0..k {
                    let brow = bb.add(kk * oc + j);
                    let mut bv = [_mm256_setzero_ps(); NV];
                    for v in 0..NV {
                        bv[v] = _mm256_loadu_ps(brow.add(v * 8));
                    }
                    for m in 0..MR {
                        let av = _mm256_set1_ps(*ab.add((r + m) * k + kk));
                        for v in 0..NV {
                            acc[m][v] = _mm256_fmadd_ps(av, bv[v], acc[m][v]);
                        }
                    }
                }
                for m in 0..MR {
                    for v in 0..NV {
                        _mm256_storeu_ps(ob.add((r + m) * oc + j + v * 8), acc[m][v]);
                    }
                }
                j += jw;
            }
            for m in 0..MR {
                let arow = ab.add((r + m) * k);
                for jj in j_main..oc {
                    *ob.add((r + m) * oc + jj) = fused_chain_raw(arow, oc, bb.add(jj), k);
                }
            }
            r += MR;
        }
        for rr in r..rows {
            let arow = ab.add(rr * k);
            for jj in 0..oc {
                *ob.add(rr * oc + jj) = fused_chain_raw(arow, oc, bb.add(jj), k);
            }
        }
    }

    /// Geometry-dispatching entry for `matmul` row chunks. `(mm_mr, mm_nv)`
    /// from [`crate::dispatch::TileConfig::MM_GEOMETRIES`].
    ///
    /// # Safety
    /// Host must support AVX2+FMA; `a.len() >= rows*k`, `b.len() >= k*oc`,
    /// `out.len()` a multiple of `oc`.
    pub unsafe fn mm_rows(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        oc: usize,
        mm_mr: u8,
        mm_nv: u8,
    ) {
        match (mm_mr, mm_nv) {
            (2, 4) => mm_rows_g::<2, 4>(a, b, out, k, oc),
            (4, 1) => mm_rows_g::<4, 1>(a, b, out, k, oc),
            _ => mm_rows_g::<4, 2>(a, b, out, k, oc),
        }
    }

    /// One chunk of `out = a^T * b` rows starting at column `c0` of `a`:
    /// like [`mm_rows`] with the reduction running over input rows `r`
    /// (each element a single fused chain, ascending `r`). The `a` scalars
    /// are strided broadcasts (`a[r*sc + c0 + m]`); `b` rows stream
    /// contiguously. Fully overwrites `out`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tm_rows_g<const MR: usize, const NV: usize>(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        c0: usize,
        sc: usize,
        oc: usize,
        nrows: usize,
    ) {
        let rows = out.len() / oc;
        let (ab, bb, ob) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let jw = NV * 8;
        let j_main = oc - oc % jw;
        let mut m0 = 0;
        while m0 + MR <= rows {
            let mut j = 0;
            while j < j_main {
                let mut acc = [[_mm256_setzero_ps(); NV]; MR];
                for r in 0..nrows {
                    let brow = bb.add(r * oc + j);
                    let mut bv = [_mm256_setzero_ps(); NV];
                    for v in 0..NV {
                        bv[v] = _mm256_loadu_ps(brow.add(v * 8));
                    }
                    let arow = ab.add(r * sc + c0 + m0);
                    for m in 0..MR {
                        let av = _mm256_set1_ps(*arow.add(m));
                        for v in 0..NV {
                            acc[m][v] = _mm256_fmadd_ps(av, bv[v], acc[m][v]);
                        }
                    }
                }
                for m in 0..MR {
                    for v in 0..NV {
                        _mm256_storeu_ps(ob.add((m0 + m) * oc + j + v * 8), acc[m][v]);
                    }
                }
                j += jw;
            }
            for m in 0..MR {
                for jj in j_main..oc {
                    let mut s = 0.0f32;
                    for r in 0..nrows {
                        s = (*ab.add(r * sc + c0 + m0 + m)).mul_add(*bb.add(r * oc + jj), s);
                    }
                    *ob.add((m0 + m) * oc + jj) = s;
                }
            }
            m0 += MR;
        }
        for m in m0..rows {
            for jj in 0..oc {
                let mut s = 0.0f32;
                for r in 0..nrows {
                    s = (*ab.add(r * sc + c0 + m)).mul_add(*bb.add(r * oc + jj), s);
                }
                *ob.add(m * oc + jj) = s;
            }
        }
    }

    /// Geometry-dispatching entry for `transpose_matmul` row chunks (shares
    /// the `(mm_mr, mm_nv)` axpy geometry).
    ///
    /// # Safety
    /// Host must support AVX2+FMA; `a` is `nrows x sc`, `b` is `nrows x oc`,
    /// `out.len()` a multiple of `oc`, `c0 + out.len()/oc <= sc`.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn tm_rows(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        c0: usize,
        sc: usize,
        oc: usize,
        nrows: usize,
        mm_mr: u8,
        mm_nv: u8,
    ) {
        match (mm_mr, mm_nv) {
            (2, 4) => tm_rows_g::<2, 4>(a, b, out, c0, sc, oc, nrows),
            (4, 1) => tm_rows_g::<4, 1>(a, b, out, c0, sc, oc, nrows),
            _ => tm_rows_g::<4, 2>(a, b, out, c0, sc, oc, nrows),
        }
    }

    /// One SpMM output row: `NV` ymm column accumulators held across the
    /// row's nonzeros (ascending CSR entry order, fused — each element one
    /// chain), column tail per element. Fully overwrites `out_row`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn spmm_row_g<const NV: usize>(
        cols: &[u32],
        vals: &[f32],
        xs: &[f32],
        d: usize,
        out_row: &mut [f32],
    ) {
        let (xb, ob) = (xs.as_ptr(), out_row.as_mut_ptr());
        let jw = NV * 8;
        let j_main = d - d % jw;
        let mut j = 0;
        while j < j_main {
            let mut acc = [_mm256_setzero_ps(); NV];
            for (&c, &v) in cols.iter().zip(vals) {
                let av = _mm256_set1_ps(v);
                let xrow = xb.add(c as usize * d + j);
                for t in 0..NV {
                    acc[t] = _mm256_fmadd_ps(av, _mm256_loadu_ps(xrow.add(t * 8)), acc[t]);
                }
            }
            for t in 0..NV {
                _mm256_storeu_ps(ob.add(j + t * 8), acc[t]);
            }
            j += jw;
        }
        for jj in j_main..d {
            let mut s = 0.0f32;
            for (&c, &v) in cols.iter().zip(vals) {
                s = v.mul_add(*xb.add(c as usize * d + jj), s);
            }
            *ob.add(jj) = s;
        }
    }

    /// Geometry-dispatching entry for one SpMM output row (`mm_nv` panels).
    ///
    /// # Safety
    /// Host must support AVX2+FMA; every `cols` entry `c` must satisfy
    /// `(c+1)*d <= xs.len()`; `out_row.len() == d`.
    pub unsafe fn spmm_row(cols: &[u32], vals: &[f32], xs: &[f32], d: usize, out_row: &mut [f32]) {
        spmm_row_g::<2>(cols, vals, xs, d, out_row)
    }
}

/// Safe entry points for the AVX2 kernels, used by the blocked-kernel
/// routing in `matrix.rs` and the SpMM path in `e2gcl-graph`. Each asserts
/// AVX2+FMA support before entering the intrinsics — the dispatch layer
/// only ever selects the AVX2 path after detection, so the assert is
/// defence in depth, not a hot-path branch (it reads a cached atomic).
#[cfg(target_arch = "x86_64")]
pub mod call {
    use super::avx2;

    #[inline]
    fn require_avx2() {
        assert!(
            crate::dispatch::avx2_available(),
            "AVX2 kernel path selected on a host without AVX2+FMA"
        );
    }

    /// See [`avx2::lane_dot8`].
    #[inline]
    pub fn lane_dot8(a: &[f32], b: &[f32]) -> f32 {
        require_avx2();
        // SAFETY: AVX2+FMA support asserted above.
        unsafe { avx2::lane_dot8(a, b) }
    }

    /// See [`avx2::lane_dot4`].
    #[inline]
    pub fn lane_dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
        require_avx2();
        // SAFETY: AVX2+FMA support asserted above.
        unsafe { avx2::lane_dot4(a, b0, b1, b2, b3) }
    }

    /// See [`avx2::mm_rows`].
    #[inline]
    pub fn mm_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, oc: usize, mr: u8, nv: u8) {
        require_avx2();
        // SAFETY: AVX2+FMA support asserted above; slice bounds are the
        // callers' documented invariants.
        unsafe { avx2::mm_rows(a, b, out, k, oc, mr, nv) }
    }

    /// See [`avx2::tm_rows`].
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn tm_rows(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        c0: usize,
        sc: usize,
        oc: usize,
        nrows: usize,
        mr: u8,
        nv: u8,
    ) {
        require_avx2();
        // SAFETY: as in `mm_rows`.
        unsafe { avx2::tm_rows(a, b, out, c0, sc, oc, nrows, mr, nv) }
    }

    /// See [`avx2::mt_rows`].
    #[inline]
    pub fn mt_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, on: usize, mr: u8, nr: u8) {
        require_avx2();
        // SAFETY: as in `mm_rows`.
        unsafe { avx2::mt_rows(a, b, out, k, on, mr, nr) }
    }

    /// See [`avx2::syrk_rows`].
    #[inline]
    pub fn syrk_rows(a: &[f32], out: &mut [f32], i0: usize, k: usize, n: usize, mr: u8, nr: u8) {
        require_avx2();
        // SAFETY: as in `mm_rows`.
        unsafe { avx2::syrk_rows(a, out, i0, k, n, mr, nr) }
    }

    /// See [`avx2::spmm_row`].
    #[inline]
    pub fn spmm_row(cols: &[u32], vals: &[f32], xs: &[f32], d: usize, out_row: &mut [f32]) {
        require_avx2();
        // SAFETY: as in `mm_rows`; CSR column bounds are the sparse
        // constructor's invariant.
        unsafe { avx2::spmm_row(cols, vals, xs, d, out_row) }
    }
}

#[cfg(test)]
mod tests {
    use super::model;

    #[test]
    fn lane_dot8_known_values() {
        // Products of small integers are exact, so the fused contract must
        // agree with the plain dot here.
        let a: Vec<f32> = (0..19).map(|i| (i % 5) as f32).collect();
        let b: Vec<f32> = (0..19).map(|i| ((i * 3) % 7) as f32 - 3.0).collect();
        let exact: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        assert_eq!(model::lane_dot8(&a, &b), exact);
        assert_eq!(model::fused_chain_dot(&a, &b), exact);
        assert_eq!(model::lane_dot8(&[], &[]), 0.0);
    }
}
