//! Workspace error taxonomy for the fault-tolerant training runtime.
//!
//! Every layer of the reproduction — dataset registries, training loops,
//! the evaluation pipeline, the bench harness and the CLI — reports
//! failures through [`TrainError`]. The enum lives in this crate because
//! `e2gcl-linalg` is the one crate every other workspace member depends
//! on; `e2gcl` re-exports it through its prelude.
//!
//! The taxonomy is deliberately small and hand-rolled (no `thiserror`):
//! numeric failures carry the epoch where the guard fired so a divergent
//! run can be localised, and lookup failures carry the valid-name list so
//! the CLI can print actionable messages.

use std::fmt;

/// A training-runtime failure.
#[derive(Clone, Debug, PartialEq)]
pub enum TrainError {
    /// The epoch loss was NaN or infinite.
    NonFiniteLoss { epoch: usize },
    /// The loss stayed finite but blew past the divergence threshold
    /// relative to the first healthy epoch's baseline.
    DivergedLoss {
        epoch: usize,
        loss: f32,
        baseline: f32,
    },
    /// A gradient matrix contained NaN or infinite entries.
    NonFiniteGradient { epoch: usize },
    /// A forward pass produced NaN or infinite embeddings (the parameters
    /// are already poisoned at this point).
    NonFiniteEmbedding { epoch: usize },
    /// A configuration value fails validation (see `TrainConfig::validate`).
    InvalidConfig(String),
    /// A dataset name not present in the registry.
    UnknownDataset { name: String, valid: Vec<String> },
    /// A model name not present in the bench/CLI registry.
    UnknownModel { name: String, valid: Vec<String> },
    /// A durable-checkpoint operation (save, load, or resume) failed: I/O
    /// error, corrupt file, config mismatch, or a model that does not
    /// support state snapshots.
    Checkpoint(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::NonFiniteLoss { epoch } => {
                write!(f, "non-finite loss at epoch {epoch}")
            }
            TrainError::DivergedLoss {
                epoch,
                loss,
                baseline,
            } => write!(
                f,
                "diverged loss at epoch {epoch}: |{loss:.4e}| vs baseline {baseline:.4e}"
            ),
            TrainError::NonFiniteGradient { epoch } => {
                write!(f, "non-finite gradient at epoch {epoch}")
            }
            TrainError::NonFiniteEmbedding { epoch } => {
                write!(f, "non-finite embeddings at epoch {epoch}")
            }
            TrainError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            TrainError::UnknownDataset { name, valid } => write!(
                f,
                "unknown dataset '{name}'; valid names: {}",
                valid.join(", ")
            ),
            TrainError::UnknownModel { name, valid } => write!(
                f,
                "unknown model '{name}'; valid names: {}",
                valid.join(", ")
            ),
            TrainError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl TrainError {
    /// True for the numeric (per-epoch) failure variants — the ones a
    /// guard policy can retry or skip, as opposed to configuration or
    /// lookup mistakes that no amount of retrying will fix.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            TrainError::NonFiniteLoss { .. }
                | TrainError::DivergedLoss { .. }
                | TrainError::NonFiniteGradient { .. }
                | TrainError::NonFiniteEmbedding { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_epoch_for_numeric_variants() {
        let e = TrainError::NonFiniteLoss { epoch: 7 };
        assert!(e.to_string().contains("epoch 7"));
        let e = TrainError::NonFiniteGradient { epoch: 3 };
        assert!(e.to_string().contains("epoch 3"));
        let e = TrainError::NonFiniteEmbedding { epoch: 1 };
        assert!(e.to_string().contains("epoch 1"));
        let e = TrainError::DivergedLoss {
            epoch: 2,
            loss: 1e9,
            baseline: 1.0,
        };
        assert!(e.to_string().contains("epoch 2"));
    }

    #[test]
    fn display_lists_valid_names_for_lookup_variants() {
        let e = TrainError::UnknownDataset {
            name: "corra".into(),
            valid: vec!["cora-sim".into(), "citeseer-sim".into()],
        };
        let s = e.to_string();
        assert!(s.contains("corra") && s.contains("cora-sim") && s.contains("citeseer-sim"));
        let e = TrainError::UnknownModel {
            name: "GRACY".into(),
            valid: vec!["GRACE".into()],
        };
        assert!(e.to_string().contains("GRACY"));
    }

    #[test]
    fn numeric_classification() {
        assert!(TrainError::NonFiniteLoss { epoch: 0 }.is_numeric());
        assert!(TrainError::DivergedLoss {
            epoch: 0,
            loss: 0.0,
            baseline: 0.0
        }
        .is_numeric());
        assert!(!TrainError::InvalidConfig("x".into()).is_numeric());
        assert!(!TrainError::Checkpoint("x".into()).is_numeric());
        assert!(!TrainError::UnknownDataset {
            name: "x".into(),
            valid: vec![]
        }
        .is_numeric());
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TrainError::NonFiniteLoss { epoch: 0 });
    }
}
