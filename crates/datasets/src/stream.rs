//! Streaming, sharded DC-SBM graph construction for the million-node tier.
//!
//! [`e2gcl_graph::generators::dc_sbm_with_confusion`] is the right tool up
//! to ~100k nodes, but it has two costs that explode at a million:
//!
//! * every edge draw picks its source with `SeedRng::weighted_index`, a
//!   linear scan over all `|V|` propensities — `O(|V|)` *per draw*, so
//!   `O(|V|² · d̄)` overall;
//! * the edge list (`Vec<(usize, usize)>`) plus the per-node `Vec<Vec<u32>>`
//!   adjacency of `CsrGraph::from_edges` materialise every duplicate edge
//!   and one heap allocation per node.
//!
//! [`StreamingSbm`] replaces both. Weighted sampling goes through prefix-sum
//! [`CumTable`]s (one binary search per draw), and the edge stream is never
//! stored: draws are split into shards, each with its own up-front-forked
//! RNG, and the stream is *replayed* — once to count degrees (which sizes
//! the CSR arrays exactly), once to scatter endpoints into place. A final
//! in-place sort/dedup pass per node yields [`CsrGraph::from_csr_parts`]
//! input. Peak memory is three flat arrays (`offsets`, `cursor`,
//! pre-dedup `neighbors`), independent of shard count.
//!
//! The output distribution matches the in-memory generator (same mixture:
//! θ-weighted source, homophily/adjacent-confusion community choice,
//! θ-weighted destination within the community; duplicates collapse), but
//! the bitstreams differ — `CumTable` consumes one `f64` where
//! `weighted_index` consumes one `f64` *plus* a scan whose rounding
//! differs — so graphs built here are deterministic per seed yet not
//! bit-identical to `dc_sbm_with_confusion`. The shard layout
//! (`draws_per_shard`) is part of the deterministic definition: changing it
//! re-partitions the per-shard RNG streams and yields a different (equally
//! valid) graph.

use e2gcl_graph::CsrGraph;
use e2gcl_linalg::SeedRng;

/// Default draws per shard (~4.2M): a million-node, degree-32 graph replays
/// as four shards while anything test-sized stays single-shard.
pub const DEFAULT_SHARD_DRAWS: usize = 1 << 22;

/// Prefix-sum table for O(log n) weighted index sampling.
struct CumTable {
    /// `cum[i]` = total weight of indices `0..=i`.
    cum: Vec<f64>,
    total: f64,
}

impl CumTable {
    /// Builds from weights floored at `1e-6` (mirroring the in-memory
    /// generator, which floors propensities so no node is unreachable).
    fn new(weights: impl Iterator<Item = f32>) -> Self {
        let mut total = 0.0f64;
        let cum: Vec<f64> = weights
            .map(|w| {
                total += f64::from(w.max(1e-6));
                total
            })
            .collect();
        Self { cum, total }
    }

    fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Samples an index with probability proportional to its weight.
    /// Consumes exactly one `f64` from `rng`.
    fn sample(&self, rng: &mut SeedRng) -> usize {
        debug_assert!(!self.is_empty());
        let t = rng.uniform_f64() * self.total;
        self.cum.partition_point(|&c| c < t).min(self.cum.len() - 1)
    }
}

/// Community membership and sampling tables shared by every shard.
struct SbmTables {
    /// `members[c]` — node ids of community `c`, in ascending order.
    members: Vec<Vec<usize>>,
    /// θ-weighted sampler over each community's members.
    comm: Vec<CumTable>,
    /// θ-weighted sampler over all nodes.
    global: CumTable,
}

/// A degree-corrected SBM whose CSR adjacency is assembled by sharded
/// stream replay instead of an in-memory edge list (module docs).
///
/// Field semantics match [`e2gcl_graph::generators::dc_sbm_with_confusion`].
pub struct StreamingSbm<'a> {
    /// Community of each node (values `< num_classes`).
    pub labels: &'a [usize],
    /// Number of communities.
    pub num_classes: usize,
    /// Expected average degree of the output (duplicates collapse, so very
    /// dense settings come out slightly sparser).
    pub target_avg_degree: f64,
    /// Probability an edge stays inside its source's community.
    pub p_in: f64,
    /// Per-node degree propensity (mean ~1).
    pub theta: &'a [f32],
    /// Probability a cross-community edge lands ring-adjacent.
    pub adjacent_bias: f64,
    /// Edge draws replayed per shard ([`DEFAULT_SHARD_DRAWS`]).
    pub draws_per_shard: usize,
}

impl StreamingSbm<'_> {
    /// Builds the graph, drawing all randomness from `rng`.
    ///
    /// # Panics
    /// Panics on inconsistent inputs (label out of range, θ length
    /// mismatch, zero `draws_per_shard`).
    pub fn build(&self, rng: &mut SeedRng) -> CsrGraph {
        let n = self.labels.len();
        let tables = self.tables();
        let plans = self.shard_plans(rng);

        // Pass 1 — count endpoint occurrences (duplicates included); the
        // prefix sum sizes every node's pre-dedup neighbour slot range.
        let mut counts = vec![0u32; n];
        self.replay(&tables, &plans, |u, v| {
            counts[u] += 1;
            counts[v] += 1;
        });
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for &c in &counts {
            offsets.push(offsets.last().copied().unwrap_or(0) + c as usize);
        }
        drop(counts);

        // Pass 2 — identical replay scatters endpoints into their slots.
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut neighbors = vec![0u32; *offsets.last().expect("offsets non-empty")];
        self.replay(&tables, &plans, |u, v| {
            neighbors[cursor[u]] = v as u32;
            cursor[u] += 1;
            neighbors[cursor[v]] = u as u32;
            cursor[v] += 1;
        });
        drop(cursor);

        // Pass 3 — per-node in-place sort + dedup + compaction. The write
        // head never passes the node's read range, so this is allocation-free.
        let mut write = 0usize;
        let mut final_offsets = Vec::with_capacity(n + 1);
        final_offsets.push(0usize);
        for v in 0..n {
            let (lo, hi) = (offsets[v], offsets[v + 1]);
            neighbors[lo..hi].sort_unstable();
            let mut prev = None;
            for i in lo..hi {
                let w = neighbors[i];
                if prev != Some(w) {
                    neighbors[write] = w;
                    write += 1;
                    prev = Some(w);
                }
            }
            final_offsets.push(write);
        }
        neighbors.truncate(write);
        neighbors.shrink_to_fit();
        CsrGraph::from_csr_parts(n, final_offsets, neighbors)
    }

    /// Total edge draws, matching the in-memory generator's budget.
    fn num_draws(&self) -> usize {
        (self.labels.len() as f64 * self.target_avg_degree / 2.0).round() as usize
    }

    /// Forks one RNG per shard *up front*, so both replay passes (and any
    /// external consumer of the same stream) see identical draws.
    fn shard_plans(&self, rng: &mut SeedRng) -> Vec<(usize, SeedRng)> {
        assert!(self.draws_per_shard > 0, "draws_per_shard must be >= 1");
        let mut remaining = self.num_draws();
        let mut plans = Vec::new();
        let mut shard = 0usize;
        while remaining > 0 {
            let draws = remaining.min(self.draws_per_shard);
            plans.push((draws, rng.fork(&format!("shard-{shard}"))));
            remaining -= draws;
            shard += 1;
        }
        plans
    }

    fn tables(&self) -> SbmTables {
        let n = self.labels.len();
        assert_eq!(self.theta.len(), n, "theta length mismatch");
        assert!(self.num_classes >= 1);
        assert!(self.labels.iter().all(|&c| c < self.num_classes));
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); self.num_classes];
        for (v, &c) in self.labels.iter().enumerate() {
            members[c].push(v);
        }
        let comm = members
            .iter()
            .map(|ms| CumTable::new(ms.iter().map(|&v| self.theta[v])))
            .collect();
        SbmTables {
            members,
            comm,
            global: CumTable::new(self.theta.iter().copied()),
        }
    }

    /// Replays every shard's edge stream in order, invoking `emit(u, v)`
    /// for each accepted draw (`u != v`; duplicates are emitted as drawn).
    /// Shard RNGs are cloned, so replaying twice yields the same stream.
    fn replay<F: FnMut(usize, usize)>(
        &self,
        tables: &SbmTables,
        plans: &[(usize, SeedRng)],
        mut emit: F,
    ) {
        let k = self.num_classes;
        for (draws, shard_rng) in plans {
            let mut rng = shard_rng.clone();
            for _ in 0..*draws {
                let u = tables.global.sample(&mut rng);
                let cu = self.labels[u];
                let target_comm = if f64::from(rng.uniform()) < self.p_in || k == 1 {
                    cu
                } else if k > 2 && f64::from(rng.uniform()) < self.adjacent_bias {
                    // Ring-adjacent confusion: class c leaks into c ± 1.
                    if rng.bernoulli(0.5) {
                        (cu + 1) % k
                    } else {
                        (cu + k - 1) % k
                    }
                } else {
                    // Uniform over the other communities.
                    let mut c = rng.below(k - 1);
                    if c >= cu {
                        c += 1;
                    }
                    c
                };
                if tables.comm[target_comm].is_empty() {
                    continue;
                }
                let vi = tables.comm[target_comm].sample(&mut rng);
                let v = tables.members[target_comm][vi];
                if u != v {
                    emit(u, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_graph::generators::pareto_theta;

    fn ring_labels(n: usize, k: usize) -> Vec<usize> {
        (0..n).map(|v| v % k).collect()
    }

    fn sbm<'a>(labels: &'a [usize], theta: &'a [f32], draws_per_shard: usize) -> StreamingSbm<'a> {
        StreamingSbm {
            labels,
            num_classes: 5,
            target_avg_degree: 8.0,
            p_in: 0.8,
            theta,
            adjacent_bias: 0.5,
            draws_per_shard,
        }
    }

    /// The CSR assembled by two-pass replay must equal `from_edges` fed the
    /// *identical* per-shard edge stream — pins sharded assembly against
    /// the reference constructor's symmetrise/sort/dedup semantics.
    #[test]
    fn matches_from_edges_on_the_same_stream() {
        let n = 600;
        let labels = ring_labels(n, 5);
        let mut theta_rng = SeedRng::new(11);
        let theta = pareto_theta(n, 2.5, &mut theta_rng);
        // Small shards force multi-shard replay.
        let cfg = sbm(&labels, &theta, 500);

        let streamed = cfg.build(&mut SeedRng::new(9));

        let tables = cfg.tables();
        let plans = cfg.shard_plans(&mut SeedRng::new(9));
        assert!(plans.len() > 1, "test must exercise multiple shards");
        let mut edges = Vec::new();
        cfg.replay(&tables, &plans, |u, v| edges.push((u, v)));
        let naive = CsrGraph::from_edges(n, &edges);

        assert_eq!(streamed, naive);
        streamed.validate().unwrap();
    }

    #[test]
    fn deterministic_per_seed_and_shard_layout() {
        let n = 400;
        let labels = ring_labels(n, 5);
        let theta = vec![1.0f32; n];
        let a = sbm(&labels, &theta, 300).build(&mut SeedRng::new(1));
        let b = sbm(&labels, &theta, 300).build(&mut SeedRng::new(1));
        assert_eq!(a, b);
        let c = sbm(&labels, &theta, 300).build(&mut SeedRng::new(2));
        assert_ne!(a, c, "different seed must change the graph");
        // The shard layout is part of the deterministic definition.
        let d = sbm(&labels, &theta, 128).build(&mut SeedRng::new(1));
        assert_ne!(a, d, "different shard layout must change the stream");
    }

    #[test]
    fn hits_degree_and_homophily_targets() {
        let n = 2000;
        let labels = ring_labels(n, 5);
        let theta = vec![1.0f32; n];
        let g = sbm(&labels, &theta, DEFAULT_SHARD_DRAWS).build(&mut SeedRng::new(3));
        g.validate().unwrap();
        assert_eq!(g.num_nodes(), n);
        let avg = g.avg_degree();
        assert!((avg - 8.0).abs() < 1.5, "avg degree {avg}");
        let mut intra = 0usize;
        let mut total = 0usize;
        for (u, v) in g.edges() {
            total += 1;
            intra += usize::from(labels[u] == labels[v]);
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.7, "intra-community fraction {frac}");
    }

    #[test]
    fn theta_skews_degrees() {
        let n = 500;
        let labels = vec![0usize; n];
        let mut theta = vec![1.0f32; n];
        theta[0] = 50.0;
        let g = StreamingSbm {
            labels: &labels,
            num_classes: 1,
            target_avg_degree: 6.0,
            p_in: 1.0,
            theta: &theta,
            adjacent_bias: 0.0,
            draws_per_shard: DEFAULT_SHARD_DRAWS,
        }
        .build(&mut SeedRng::new(4));
        let avg = g.avg_degree();
        assert!(
            g.degree(0) as f64 > 3.0 * avg,
            "deg0 {} avg {avg}",
            g.degree(0)
        );
    }

    #[test]
    fn cum_table_respects_weights() {
        let t = CumTable::new([0.0f32, 0.0, 1.0, 0.0].into_iter());
        let mut rng = SeedRng::new(5);
        let mut hits = [0usize; 4];
        for _ in 0..200 {
            hits[t.sample(&mut rng)] += 1;
        }
        // Floored weights leave ~1e-6 mass on the zero entries.
        assert!(hits[2] > 190, "{hits:?}");
    }
}
