//! Feature and label synthesis for the dataset analogs.

use e2gcl_linalg::{Matrix, SeedRng};

/// Draws class labels with mildly imbalanced class sizes (Zipf-ish weights),
/// mirroring the class imbalance the paper's §III-A discusses.
pub fn imbalanced_labels(n: usize, num_classes: usize, rng: &mut SeedRng) -> Vec<usize> {
    assert!(num_classes >= 1);
    let weights: Vec<f32> = (0..num_classes)
        .map(|c| 1.0 / (1.0 + c as f32).powf(0.6))
        .collect();
    let mut labels: Vec<usize> = (0..n).map(|_| rng.weighted_index(&weights)).collect();
    // Guarantee every class is inhabited so downstream stratification works.
    for (c, label) in labels.iter_mut().enumerate().take(num_classes.min(n)) {
        *label = c;
    }
    rng.shuffle(&mut labels);
    labels
}

/// Generates sparse binary class-correlated features.
///
/// The feature space is partitioned into one anchor block per class plus a
/// shared background. A node turns each bit of an anchor block on with
/// probability `signal`, and any other bit on with probability `noise`.
/// This mimics bag-of-words citation features: class-specific vocabulary on
/// a noisy common base, and gives the view generator's feature-importance
/// score (§IV-C2) something real to detect.
///
/// `mismatch` is the fraction of nodes whose anchor block is drawn from a
/// *random other class*. Real-world features are informative but far from
/// linearly separable (the paper's MLP scores ~57% on Cora while GCN scores
/// ~82%); mismatched nodes are exactly the ones only neighbourhood
/// aggregation can fix, which reproduces that gap.
pub fn class_features(
    labels: &[usize],
    num_classes: usize,
    dim: usize,
    signal: f32,
    noise: f32,
    mismatch: f32,
    rng: &mut SeedRng,
) -> Matrix {
    assert!(dim >= num_classes, "need at least one anchor dim per class");
    // The last block is pure background; anchor_block() derives the layout.
    let mut x = Matrix::zeros(labels.len(), dim);
    for (v, &c) in labels.iter().enumerate() {
        let anchor_class = if num_classes > 2 && rng.bernoulli(mismatch) {
            // Mismatches go to ring-adjacent classes (consistent with the
            // structural confusion of the DC-SBM generator).
            if rng.bernoulli(0.5) {
                (c + 1) % num_classes
            } else {
                (c + num_classes - 1) % num_classes
            }
        } else if num_classes == 2 && rng.bernoulli(mismatch) {
            1 - c
        } else {
            c
        };
        let (lo, hi) = anchor_block(num_classes, dim, anchor_class);
        let row = x.row_mut(v);
        for (i, cell) in row.iter_mut().enumerate() {
            let p = if i >= lo && i < hi { signal } else { noise };
            if rng.bernoulli(p) {
                *cell = 1.0;
            }
        }
    }
    x
}

/// Anchor block of a class in the feature layout produced by
/// [`class_features`]: the half-open dim range `[lo, hi)`.
pub fn anchor_block(num_classes: usize, dim: usize, class: usize) -> (usize, usize) {
    let block = dim / (num_classes + 1);
    (class * block, class * block + block)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_classes() {
        let mut rng = SeedRng::new(1);
        let labels = imbalanced_labels(100, 7, &mut rng);
        assert_eq!(labels.len(), 100);
        for c in 0..7 {
            assert!(labels.contains(&c), "class {c} missing");
        }
    }

    #[test]
    fn labels_are_imbalanced() {
        let mut rng = SeedRng::new(2);
        let labels = imbalanced_labels(5000, 5, &mut rng);
        let mut counts = vec![0usize; 5];
        for &c in &labels {
            counts[c] += 1;
        }
        assert!(counts[0] > counts[4], "class 0 should dominate: {counts:?}");
    }

    #[test]
    fn features_binary_and_class_correlated() {
        let mut rng = SeedRng::new(3);
        let labels: Vec<usize> = (0..200).map(|v| v % 4).collect();
        let x = class_features(&labels, 4, 100, 0.5, 0.01, 0.0, &mut rng);
        assert!(x.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        // Anchor-block density must far exceed background density.
        let (lo, hi) = anchor_block(4, 100, 0);
        let mut on_anchor = 0.0;
        let mut on_other = 0.0;
        let mut n_anchor = 0.0;
        let mut n_other = 0.0;
        for (v, &c) in labels.iter().enumerate() {
            if c != 0 {
                continue;
            }
            for (i, &f) in x.row(v).iter().enumerate() {
                if i >= lo && i < hi {
                    on_anchor += f;
                    n_anchor += 1.0;
                } else {
                    on_other += f;
                    n_other += 1.0;
                }
            }
        }
        let anchor_density = on_anchor / n_anchor;
        let other_density = on_other / n_other;
        assert!(
            anchor_density > 10.0 * other_density,
            "{anchor_density} vs {other_density}"
        );
    }

    #[test]
    fn anchor_blocks_disjoint() {
        let k = 6;
        let dim = 120;
        for c1 in 0..k {
            for c2 in (c1 + 1)..k {
                let (a_lo, a_hi) = anchor_block(k, dim, c1);
                let (b_lo, b_hi) = anchor_block(k, dim, c2);
                assert!(a_hi <= b_lo || b_hi <= a_lo);
            }
        }
    }
}
