//! Train/validation/test splits for nodes, edges, and graphs.

use e2gcl_graph::CsrGraph;
use e2gcl_linalg::SeedRng;

/// A node split (`§V-A2`: 10% train / 10% val / 80% test by default).
#[derive(Clone, Debug)]
pub struct NodeSplit {
    /// Training node indices.
    pub train: Vec<usize>,
    /// Validation node indices.
    pub val: Vec<usize>,
    /// Test node indices.
    pub test: Vec<usize>,
}

impl NodeSplit {
    /// Random split of `n` nodes into `train_frac` / `val_frac` / remainder.
    pub fn random(n: usize, train_frac: f64, val_frac: f64, rng: &mut SeedRng) -> NodeSplit {
        assert!(train_frac + val_frac <= 1.0);
        let mut idx: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut idx);
        let n_train = ((n as f64) * train_frac).round() as usize;
        let n_val = ((n as f64) * val_frac).round() as usize;
        let train = idx[..n_train].to_vec();
        let val = idx[n_train..n_train + n_val].to_vec();
        let test = idx[n_train + n_val..].to_vec();
        NodeSplit { train, val, test }
    }

    /// The paper's evaluation split: 10/10/80.
    pub fn paper(n: usize, rng: &mut SeedRng) -> NodeSplit {
        Self::random(n, 0.10, 0.10, rng)
    }
}

/// A link-prediction split (`§V-E1`: 70% train / 10% val / 20% test edges,
/// with equal-size sampled negatives, and a *training graph* that excludes
/// held-out edges to avoid leakage).
#[derive(Clone, Debug)]
pub struct EdgeSplit {
    /// Graph containing only training edges (pre-training happens here).
    pub train_graph: CsrGraph,
    /// Positive training edges.
    pub train_pos: Vec<(usize, usize)>,
    /// Positive validation edges.
    pub val_pos: Vec<(usize, usize)>,
    /// Positive test edges.
    pub test_pos: Vec<(usize, usize)>,
    /// Negative validation pairs (non-edges).
    pub val_neg: Vec<(usize, usize)>,
    /// Negative test pairs (non-edges).
    pub test_neg: Vec<(usize, usize)>,
}

impl EdgeSplit {
    /// Splits `g`'s edges 70/10/20 and samples matching negatives.
    pub fn random(g: &CsrGraph, rng: &mut SeedRng) -> EdgeSplit {
        let mut edges: Vec<(usize, usize)> = g.edges().collect();
        rng.shuffle(&mut edges);
        let n = edges.len();
        let n_train = (n as f64 * 0.7).round() as usize;
        let n_val = (n as f64 * 0.1).round() as usize;
        let train_pos = edges[..n_train].to_vec();
        let val_pos = edges[n_train..n_train + n_val].to_vec();
        let test_pos = edges[n_train + n_val..].to_vec();
        let train_graph = CsrGraph::from_edges(g.num_nodes(), &train_pos);
        let val_neg = sample_non_edges(g, val_pos.len(), rng);
        let test_neg = sample_non_edges(g, test_pos.len(), rng);
        EdgeSplit {
            train_graph,
            train_pos,
            val_pos,
            test_pos,
            val_neg,
            test_neg,
        }
    }
}

/// Samples `k` distinct node pairs that are not edges of `g` (and not
/// self-pairs).
pub fn sample_non_edges(g: &CsrGraph, k: usize, rng: &mut SeedRng) -> Vec<(usize, usize)> {
    let n = g.num_nodes();
    assert!(n >= 2, "need at least two nodes to sample non-edges");
    let mut seen = std::collections::HashSet::with_capacity(k * 2);
    let mut out = Vec::with_capacity(k);
    let mut attempts = 0usize;
    let max_attempts = k.saturating_mul(200).max(10_000);
    while out.len() < k && attempts < max_attempts {
        attempts += 1;
        let u = rng.below(n);
        let v = rng.below(n);
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        if a == b || g.has_edge(a, b) || !seen.insert((a, b)) {
            continue;
        }
        out.push((a, b));
    }
    out
}

/// A graph-level split for graph classification (70/10/20).
#[derive(Clone, Debug)]
pub struct GraphSplit {
    /// Training graph indices.
    pub train: Vec<usize>,
    /// Validation graph indices.
    pub val: Vec<usize>,
    /// Test graph indices.
    pub test: Vec<usize>,
}

impl GraphSplit {
    /// Random 70/10/20 split of `n` graphs.
    pub fn random(n: usize, rng: &mut SeedRng) -> GraphSplit {
        let s = NodeSplit::random(n, 0.7, 0.1, rng);
        GraphSplit {
            train: s.train,
            val: s.val,
            test: s.test,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_split_partitions() {
        let mut rng = SeedRng::new(0);
        let s = NodeSplit::paper(1000, &mut rng);
        assert_eq!(s.train.len(), 100);
        assert_eq!(s.val.len(), 100);
        assert_eq!(s.test.len(), 800);
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn edge_split_no_leakage() {
        let mut rng = SeedRng::new(1);
        let mut edges = Vec::new();
        for u in 0..50usize {
            edges.push((u, (u + 1) % 50));
            edges.push((u, (u + 7) % 50));
        }
        let g = CsrGraph::from_edges(50, &edges);
        let s = EdgeSplit::random(&g, &mut rng);
        // Held-out positives must be absent from the training graph.
        for &(u, v) in s.val_pos.iter().chain(&s.test_pos) {
            assert!(!s.train_graph.has_edge(u, v), "leaked edge ({u},{v})");
        }
        for &(u, v) in &s.train_pos {
            assert!(s.train_graph.has_edge(u, v));
        }
        let total = s.train_pos.len() + s.val_pos.len() + s.test_pos.len();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn negatives_are_non_edges() {
        let mut rng = SeedRng::new(2);
        let g = CsrGraph::from_edges(20, &[(0, 1), (1, 2), (2, 3)]);
        let negs = sample_non_edges(&g, 30, &mut rng);
        assert_eq!(negs.len(), 30);
        for &(u, v) in &negs {
            assert!(u < v);
            assert!(!g.has_edge(u, v));
        }
        // Distinct pairs.
        let set: std::collections::HashSet<_> = negs.iter().collect();
        assert_eq!(set.len(), negs.len());
    }

    #[test]
    fn non_edge_sampling_saturates_gracefully() {
        // Complete graph on 4 nodes: no non-edges exist at all.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let mut rng = SeedRng::new(3);
        let negs = sample_non_edges(&g, 5, &mut rng);
        assert!(negs.is_empty());
    }

    #[test]
    fn graph_split_fractions() {
        let mut rng = SeedRng::new(4);
        let s = GraphSplit::random(100, &mut rng);
        assert_eq!(s.train.len(), 70);
        assert_eq!(s.val.len(), 10);
        assert_eq!(s.test.len(), 20);
    }
}
