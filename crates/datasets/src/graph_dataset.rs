//! Multi-graph datasets for graph classification (Table IX analogs).

use e2gcl_graph::CsrGraph;
use e2gcl_linalg::{Matrix, SeedRng, TrainError};

/// Specification of a graph-classification analog.
#[derive(Clone, Debug)]
pub struct GraphDatasetSpec {
    /// Analog name, e.g. `"nci1-sim"`.
    pub name: &'static str,
    /// TU dataset this stands in for.
    pub paper_name: &'static str,
    /// Number of graphs.
    pub num_graphs: usize,
    /// Mean node count per graph.
    pub avg_nodes: usize,
    /// Node feature dimension.
    pub feature_dim: usize,
    /// Number of graph classes.
    pub num_classes: usize,
}

/// Valid analog names accepted by [`graph_spec`].
pub fn graph_names() -> Vec<&'static str> {
    vec!["nci1-sim", "ptcmr-sim", "proteins-sim"]
}

/// The three Table-IX graph-classification analogs.
///
/// Sizes follow the TU datasets' published statistics (graph counts scaled
/// down ~10x to fit the session budget; per-graph sizes match). Unknown
/// names return [`TrainError::UnknownDataset`] with the valid names.
pub fn graph_spec(name: &str) -> Result<GraphDatasetSpec, TrainError> {
    match name {
        "nci1-sim" => Ok(GraphDatasetSpec {
            name: "nci1-sim",
            paper_name: "NCI1",
            num_graphs: 400,
            avg_nodes: 30,
            feature_dim: 37,
            num_classes: 2,
        }),
        "ptcmr-sim" => Ok(GraphDatasetSpec {
            name: "ptcmr-sim",
            paper_name: "PTC_MR",
            num_graphs: 240,
            avg_nodes: 14,
            feature_dim: 18,
            num_classes: 2,
        }),
        "proteins-sim" => Ok(GraphDatasetSpec {
            name: "proteins-sim",
            paper_name: "PROTEINS",
            num_graphs: 300,
            avg_nodes: 39,
            feature_dim: 3,
            num_classes: 2,
        }),
        other => Err(TrainError::UnknownDataset {
            name: other.to_string(),
            valid: graph_names().iter().map(|s| s.to_string()).collect(),
        }),
    }
}

/// A collection of labelled graphs.
#[derive(Clone, Debug)]
pub struct GraphDataset {
    /// Analog name.
    pub name: String,
    /// The graphs.
    pub graphs: Vec<CsrGraph>,
    /// Per-graph node features, parallel to `graphs`.
    pub features: Vec<Matrix>,
    /// Graph-level class labels.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl GraphDataset {
    /// Generates the analog. Both classes share a random-tree backbone at
    /// (near) equal density; they differ in *motif content* — class 0 plants
    /// rings, class 1 plants cliques — and in a weak class-conditional atom
    /// mixture, with a fraction of graphs mislabelled outright. That keeps
    /// graph classification a real problem (TU accuracies are 68-77%), not a
    /// degree-counting exercise.
    pub fn generate(spec: &GraphDatasetSpec, scale: f64, seed: u64) -> GraphDataset {
        let mut rng = SeedRng::new(seed ^ 0x6a_3a7);
        let num_graphs = ((spec.num_graphs as f64 * scale).round() as usize).max(20);
        let mut graphs = Vec::with_capacity(num_graphs);
        let mut features = Vec::with_capacity(num_graphs);
        let mut labels = Vec::with_capacity(num_graphs);
        for gi in 0..num_graphs {
            let class = gi % spec.num_classes;
            let mut g_rng = rng.fork(&format!("graph-{gi}"));
            let n = (spec.avg_nodes as f32 * g_rng.uniform_range(0.6, 1.4)).round() as usize;
            let n = n.max(6);
            // Shared backbone: random recursive tree (n-1 edges).
            let mut edges: Vec<(usize, usize)> = (1..n).map(|v| (v, g_rng.below(v))).collect();
            // Planted motif at matched edge budget: a 6-ring (6 edges) for
            // class 0, a 4-clique (6 edges) for class 1.
            if class == 0 {
                let len = 6.min(n);
                let start = g_rng.below(n - len + 1);
                for i in 0..len {
                    edges.push((start + i, start + (i + 1) % len));
                }
            } else {
                let k = 4.min(n);
                let members = g_rng.sample_without_replacement(n, k);
                for i in 0..k {
                    for j in (i + 1)..k {
                        edges.push((members[i], members[j]));
                    }
                }
            }
            // A few extra random edges for both classes (structural noise).
            for _ in 0..(n / 8) {
                edges.push((g_rng.below(n), g_rng.below(n)));
            }
            let graph = CsrGraph::from_edges(n, &edges);
            // Features: weak class-conditional atom mixture.
            let mut x = Matrix::zeros(n, spec.feature_dim);
            for v in 0..n {
                let bias = (class * spec.feature_dim / spec.num_classes) % spec.feature_dim;
                let t = if g_rng.bernoulli(0.3) {
                    (bias + g_rng.below((spec.feature_dim / spec.num_classes).max(1)))
                        % spec.feature_dim
                } else {
                    g_rng.below(spec.feature_dim)
                };
                x.set(v, t, 1.0);
            }
            // Irreducible ambiguity: ~12% of graphs carry the wrong label.
            let reported = if g_rng.bernoulli(0.12) {
                (class + 1) % spec.num_classes
            } else {
                class
            };
            graphs.push(graph);
            features.push(x);
            labels.push(reported);
        }
        GraphDataset {
            name: spec.name.to_string(),
            graphs,
            features,
            labels,
            num_classes: spec.num_classes,
        }
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_resolve() {
        for n in ["nci1-sim", "ptcmr-sim", "proteins-sim"] {
            let s = graph_spec(n).unwrap();
            assert_eq!(s.name, n);
            assert!(s.num_graphs >= 100);
        }
        assert!(graph_spec("imagenet").is_err());
    }

    #[test]
    fn generation_shapes_consistent() {
        let d = GraphDataset::generate(&graph_spec("ptcmr-sim").unwrap(), 0.5, 0);
        assert_eq!(d.len(), 120);
        assert_eq!(d.graphs.len(), d.features.len());
        assert_eq!(d.graphs.len(), d.labels.len());
        for (g, x) in d.graphs.iter().zip(&d.features) {
            assert_eq!(g.num_nodes(), x.rows());
            assert_eq!(x.cols(), 18);
            g.validate().unwrap();
        }
    }

    #[test]
    fn classes_differ_in_motifs_not_density() {
        let d = GraphDataset::generate(&graph_spec("nci1-sim").unwrap(), 0.25, 1);
        let mut deg = [0.0f64; 2];
        let mut tri = [0.0f64; 2];
        let mut cnt = [0usize; 2];
        for (g, &c) in d.graphs.iter().zip(&d.labels) {
            deg[c] += g.avg_degree();
            tri[c] += e2gcl_graph::stats::total_triangles(g) as f64;
            cnt[c] += 1;
        }
        assert!(cnt[0] > 0 && cnt[1] > 0);
        let deg0 = deg[0] / cnt[0] as f64;
        let deg1 = deg[1] / cnt[1] as f64;
        // Density matched within ~15%...
        assert!(
            (deg0 - deg1).abs() < 0.15 * deg0.max(deg1),
            "{deg0} vs {deg1}"
        );
        // ...but clique-class graphs carry clearly more triangles (labels
        // are 12% noisy, so compare means, not every instance).
        let tri0 = tri[0] / cnt[0] as f64;
        let tri1 = tri[1] / cnt[1] as f64;
        assert!(tri1 > 1.5 * tri0, "triangles {tri0} vs {tri1}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GraphDataset::generate(&graph_spec("proteins-sim").unwrap(), 0.2, 9);
        let b = GraphDataset::generate(&graph_spec("proteins-sim").unwrap(), 0.2, 9);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.graphs[0], b.graphs[0]);
    }
}
