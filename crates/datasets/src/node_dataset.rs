//! A node-classification dataset: one graph, features, labels.

use crate::registry::DatasetSpec;
use crate::stream::{StreamingSbm, DEFAULT_SHARD_DRAWS};
use crate::synth;
use e2gcl_graph::{generators, CsrGraph};
use e2gcl_linalg::{Matrix, SeedRng};
use serde::{Deserialize, Serialize};

/// One attributed, labelled graph (the `G(V, A, X)` + `Y` of the paper).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeDataset {
    /// Analog name this dataset was generated from.
    pub name: String,
    /// Undirected structure `A`.
    pub graph: CsrGraph,
    /// Node features `X` (`|V| x d_x`, binary).
    pub features: Matrix,
    /// Ground-truth class per node (used only by decoders/evaluation, never
    /// by contrastive pre-training).
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl NodeDataset {
    /// Generates the analog described by `spec` at `scale` (fraction of
    /// `sim_nodes`, clamped to at least 8 per class) with the given seed.
    pub fn generate(spec: &DatasetSpec, scale: f64, seed: u64) -> NodeDataset {
        let mut rng = SeedRng::new(seed ^ 0x0da7_a5e7);
        let n = ((spec.sim_nodes as f64 * scale).round() as usize).max(spec.sim_classes * 8);
        let labels = synth::imbalanced_labels(n, spec.sim_classes, &mut rng.fork("labels"));
        let theta = generators::pareto_theta(n, spec.degree_tail_shape, &mut rng.fork("theta"));
        let graph = if spec.streaming {
            // Million-node tier: sharded stream replay keeps peak memory at
            // three flat CSR-sized arrays (see `crate::stream`).
            StreamingSbm {
                labels: &labels,
                num_classes: spec.sim_classes,
                target_avg_degree: spec.sim_avg_degree,
                p_in: spec.homophily,
                theta: &theta,
                adjacent_bias: spec.class_confusion,
                draws_per_shard: DEFAULT_SHARD_DRAWS,
            }
            .build(&mut rng.fork("structure"))
        } else {
            generators::dc_sbm_with_confusion(
                &labels,
                spec.sim_classes,
                spec.sim_avg_degree,
                spec.homophily,
                &theta,
                spec.class_confusion,
                &mut rng.fork("structure"),
            )
        };
        let features = synth::class_features(
            &labels,
            spec.sim_classes,
            spec.sim_features,
            spec.feature_signal,
            spec.feature_noise,
            spec.feature_mismatch,
            &mut rng.fork("features"),
        );
        // Irreducible label ambiguity: flip a fraction of *reported* labels
        // to an adjacent class after structure/features are fixed.
        let labels = {
            let mut noisy = labels;
            let mut noise_rng = rng.fork("label-noise");
            let k = spec.sim_classes;
            if k > 1 && spec.label_noise > 0.0 {
                for lbl in &mut noisy {
                    if noise_rng.bernoulli(spec.label_noise) {
                        *lbl = if k == 2 || noise_rng.bernoulli(0.5) {
                            (*lbl + 1) % k
                        } else {
                            (*lbl + k - 1) % k
                        };
                    }
                }
            }
            noisy
        };
        NodeDataset {
            name: spec.name.to_string(),
            graph,
            features,
            labels,
            num_classes: spec.sim_classes,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Serialises the dataset to JSON at `path`.
    pub fn save_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Loads a dataset previously written by [`Self::save_json`].
    pub fn load_json(path: &std::path::Path) -> std::io::Result<NodeDataset> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Measured homophily: fraction of edges whose endpoints share a label.
    pub fn edge_homophily(&self) -> f64 {
        let mut same = 0usize;
        let mut total = 0usize;
        for (u, v) in self.graph.edges() {
            total += 1;
            if self.labels[u] == self.labels[v] {
                same += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            same as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::spec;

    #[test]
    fn cora_sim_matches_spec() {
        let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 1.0, 0);
        assert_eq!(d.num_nodes(), 2708);
        assert_eq!(d.feature_dim(), 512);
        assert_eq!(d.num_classes, 7);
        let avg = d.graph.avg_degree();
        assert!((avg - 3.89).abs() < 1.0, "avg degree {avg}");
        d.graph.validate().unwrap();
    }

    #[test]
    fn homophily_near_target() {
        let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 1.0, 1);
        let h = d.edge_homophily();
        assert!(h > 0.75, "homophily {h}");
    }

    #[test]
    fn scale_shrinks_graph() {
        let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.25, 2);
        assert!((d.num_nodes() as i64 - 677).abs() <= 1);
    }

    #[test]
    fn tiny_scale_clamps_to_class_floor() {
        let s = spec("cora-sim").unwrap();
        let d = NodeDataset::generate(&s, 0.0001, 3);
        assert!(d.num_nodes() >= s.sim_classes * 8);
        for c in 0..s.sim_classes {
            assert!(d.labels.contains(&c));
        }
    }

    #[test]
    fn json_roundtrip() {
        let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 77);
        let path = std::env::temp_dir().join("e2gcl-dataset-roundtrip.json");
        d.save_json(&path).unwrap();
        let back = NodeDataset::load_json(&path).unwrap();
        assert_eq!(back.graph, d.graph);
        assert_eq!(back.features, d.features);
        assert_eq!(back.labels, d.labels);
        assert_eq!(back.num_classes, d.num_classes);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn streaming_spec_generates_valid_deterministic_graphs() {
        let s = spec("products-sim-1m").unwrap();
        assert!(s.streaming, "the 1M tier must route through the streamer");
        // 0.002 of a million nodes: big enough to measure degree, small
        // enough for a unit test.
        let a = NodeDataset::generate(&s, 0.002, 5);
        assert_eq!(a.num_nodes(), 2000);
        assert_eq!(a.num_classes, s.sim_classes);
        a.graph.validate().unwrap();
        // Duplicate edges collapse, and at 2k nodes the heavy-tailed hubs
        // absorb many repeats — the measured degree sits below the target.
        let avg = a.graph.avg_degree();
        assert!(
            avg > s.sim_avg_degree * 0.6 && avg <= s.sim_avg_degree + 1.0,
            "avg degree {avg}"
        );
        let b = NodeDataset::generate(&s, 0.002, 5);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.features, b.features);
        let c = NodeDataset::generate(&s, 0.002, 6);
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = NodeDataset::generate(&spec("citeseer-sim").unwrap(), 0.2, 42);
        let b = NodeDataset::generate(&spec("citeseer-sim").unwrap(), 0.2, 42);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
        let c = NodeDataset::generate(&spec("citeseer-sim").unwrap(), 0.2, 43);
        assert_ne!(a.graph, c.graph);
    }
}
