//! Named dataset analogs and their target statistics.

use e2gcl_linalg::TrainError;
use serde::{Deserialize, Serialize};

/// Specification of one synthetic analog.
///
/// `paper_*` fields record the statistics the paper reports (Table III) for
/// the real dataset; `sim_*` fields are what we actually generate. The large
/// OGB graphs and very high-dimensional feature spaces are scaled down (see
/// `DESIGN.md` §1); everything else matches.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Analog name, e.g. `"cora-sim"`.
    pub name: &'static str,
    /// Name of the real dataset this stands in for.
    pub paper_name: &'static str,
    /// Node count reported in Table III.
    pub paper_nodes: usize,
    /// Edge count reported in Table III.
    pub paper_edges: usize,
    /// Average degree reported in Table III.
    pub paper_avg_degree: f64,
    /// Feature dimension reported in Table III.
    pub paper_features: usize,
    /// Class count reported in Table III.
    pub paper_classes: usize,

    /// Nodes we generate at `scale = 1.0`.
    pub sim_nodes: usize,
    /// Average degree we target.
    pub sim_avg_degree: f64,
    /// Feature dimension we generate.
    pub sim_features: usize,
    /// Class count we generate (matches the paper's).
    pub sim_classes: usize,
    /// Homophily: probability an edge endpoint stays in its community.
    pub homophily: f64,
    /// Pareto shape of the degree-propensity distribution (lower = heavier
    /// tail). Product/co-purchase graphs are heavier-tailed than citations.
    pub degree_tail_shape: f32,
    /// Probability a class-anchor feature bit is on for members.
    pub feature_signal: f32,
    /// Probability a background feature bit is on.
    pub feature_noise: f32,
    /// Fraction of nodes whose anchor features come from a ring-adjacent
    /// class (keeps raw features from being linearly separable, mirroring
    /// the paper's MLP ≪ GCN gap).
    pub feature_mismatch: f32,
    /// Probability a cross-class edge lands on a ring-adjacent class
    /// (category confusion; keeps dense graphs from saturating).
    pub class_confusion: f64,
    /// Fraction of nodes whose *reported* label is flipped to an adjacent
    /// class after generation — irreducible label ambiguity. Dense SBM
    /// graphs are separable by neighbourhood majority at any homophily, so
    /// this is what actually caps attainable accuracy, mirroring the real
    /// datasets' ~90% ceilings.
    pub label_noise: f32,
    /// Build the structure with the sharded streaming generator
    /// ([`crate::stream::StreamingSbm`]) instead of the in-memory DC-SBM.
    /// Set only on the million-node tier: the streaming path samples through
    /// prefix-sum tables, so its edge stream (while distributionally the
    /// same) is not bit-identical to the in-memory generator's.
    #[serde(default)]
    pub streaming: bool,
}

/// All node-classification analogs, in the paper's Table III order.
pub fn all_node_specs() -> Vec<DatasetSpec> {
    names()
        .iter()
        .map(|n| spec(n).expect("registry names are exhaustive"))
        .collect()
}

/// The five small datasets used in Tables IV and VI–VIII.
pub fn small_node_specs() -> Vec<DatasetSpec> {
    names()
        .iter()
        .take(5)
        .map(|n| spec(n).expect("registry names are exhaustive"))
        .collect()
}

/// Looks up an analog spec by name.
///
/// Unknown names return [`TrainError::UnknownDataset`] carrying the valid
/// names, so callers (notably the CLI) can print them and exit cleanly.
pub fn spec(name: &str) -> Result<DatasetSpec, TrainError> {
    let base = DatasetSpec {
        name: "",
        paper_name: "",
        paper_nodes: 0,
        paper_edges: 0,
        paper_avg_degree: 0.0,
        paper_features: 0,
        paper_classes: 0,
        sim_nodes: 0,
        sim_avg_degree: 0.0,
        sim_features: 0,
        sim_classes: 0,
        homophily: 0.85,
        degree_tail_shape: 3.0,
        feature_signal: 0.22,
        feature_noise: 0.015,
        feature_mismatch: 0.4,
        class_confusion: 0.7,
        label_noise: 0.0,
        streaming: false,
    };
    match name {
        "cora-sim" => Ok(DatasetSpec {
            name: "cora-sim",
            paper_name: "Cora",
            paper_nodes: 2708,
            paper_edges: 5278,
            paper_avg_degree: 3.89,
            paper_features: 1433,
            paper_classes: 7,
            sim_nodes: 2708,
            sim_avg_degree: 3.89,
            sim_features: 512,
            sim_classes: 7,
            ..base
        }),
        "citeseer-sim" => Ok(DatasetSpec {
            name: "citeseer-sim",
            paper_name: "Citeseer",
            paper_nodes: 3327,
            paper_edges: 4552,
            paper_avg_degree: 2.74,
            paper_features: 3703,
            paper_classes: 6,
            sim_nodes: 3327,
            sim_avg_degree: 2.74,
            sim_features: 600,
            sim_classes: 6,
            // Citeseer is the sparsest, least homophilous of the set.
            homophily: 0.78,
            ..base
        }),
        "photo-sim" => Ok(DatasetSpec {
            name: "photo-sim",
            paper_name: "Photo",
            paper_nodes: 7650,
            paper_edges: 119_081,
            paper_avg_degree: 31.13,
            paper_features: 745,
            paper_classes: 8,
            sim_nodes: 7650,
            sim_avg_degree: 31.13,
            sim_features: 512,
            sim_classes: 8,
            degree_tail_shape: 2.2,
            homophily: 0.52,
            feature_mismatch: 0.3,
            label_noise: 0.07,
            ..base
        }),
        "computers-sim" => Ok(DatasetSpec {
            name: "computers-sim",
            paper_name: "Computers",
            paper_nodes: 13_752,
            paper_edges: 245_861,
            paper_avg_degree: 35.76,
            paper_features: 767,
            paper_classes: 10,
            sim_nodes: 13_752,
            sim_avg_degree: 35.76,
            sim_features: 512,
            sim_classes: 10,
            degree_tail_shape: 2.2,
            homophily: 0.5,
            feature_mismatch: 0.35,
            label_noise: 0.10,
            ..base
        }),
        "cs-sim" => Ok(DatasetSpec {
            name: "cs-sim",
            paper_name: "CS",
            paper_nodes: 18_333,
            paper_edges: 81_894,
            paper_avg_degree: 8.93,
            paper_features: 6805,
            paper_classes: 15,
            sim_nodes: 18_333,
            sim_avg_degree: 8.93,
            sim_features: 768,
            sim_classes: 15,
            homophily: 0.72,
            feature_mismatch: 0.25,
            label_noise: 0.055,
            ..base
        }),
        "arxiv-sim" => Ok(DatasetSpec {
            name: "arxiv-sim",
            paper_name: "Arxiv",
            paper_nodes: 169_343,
            paper_edges: 1_166_243,
            paper_avg_degree: 13.77,
            paper_features: 128,
            paper_classes: 40,
            // Scaled 169k -> 20k nodes (DESIGN.md §1).
            sim_nodes: 20_000,
            sim_avg_degree: 13.77,
            sim_features: 128,
            sim_classes: 40,
            homophily: 0.6,
            ..base
        }),
        "products-sim" => Ok(DatasetSpec {
            name: "products-sim",
            paper_name: "Products",
            paper_nodes: 1_569_960,
            paper_edges: 264_339_468,
            paper_avg_degree: 336.74,
            paper_features: 200,
            paper_classes: 107,
            // Scaled 1.57M -> 50k nodes, degree 336 -> 40 (DESIGN.md §1).
            sim_nodes: 50_000,
            sim_avg_degree: 40.0,
            sim_features: 100,
            sim_classes: 47,
            homophily: 0.55,
            degree_tail_shape: 2.0,
            ..base
        }),
        "products-sim-1m" => Ok(DatasetSpec {
            name: "products-sim-1m",
            paper_name: "Products",
            paper_nodes: 1_569_960,
            paper_edges: 264_339_468,
            paper_avg_degree: 336.74,
            paper_features: 200,
            paper_classes: 107,
            // The million-node tier for mini-batch scaling runs
            // (DESIGN.md §13): node count matches the paper's order of
            // magnitude; degree 336 -> 32 keeps a full generation run
            // (~16M edge draws) tractable on one core.
            sim_nodes: 1_000_000,
            sim_avg_degree: 32.0,
            sim_features: 100,
            sim_classes: 47,
            homophily: 0.55,
            degree_tail_shape: 2.0,
            streaming: true,
            ..base
        }),
        other => Err(TrainError::UnknownDataset {
            name: other.to_string(),
            valid: names().iter().map(|s| s.to_string()).collect(),
        }),
    }
}

/// Valid analog names accepted by [`spec`].
pub fn names() -> Vec<&'static str> {
    vec![
        "cora-sim",
        "citeseer-sim",
        "photo-sim",
        "computers-sim",
        "cs-sim",
        "arxiv-sim",
        "products-sim",
        "products-sim-1m",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves() {
        for n in names() {
            let s = spec(n).unwrap();
            assert_eq!(s.name, n);
            assert!(s.sim_nodes > 0);
            assert!(s.sim_classes > 1);
            assert!(s.sim_features > 0);
            // Dense co-purchase analogs sit near 0.5 homophily (their
            // difficulty comes from label ambiguity, not structure).
            assert!(s.homophily >= 0.5 && s.homophily < 1.0);
            assert!((0.0..0.5).contains(&s.label_noise));
            assert!((0.0..=1.0).contains(&s.class_confusion));
        }
    }

    #[test]
    fn small_specs_are_first_five() {
        let small = small_node_specs();
        assert_eq!(small.len(), 5);
        assert_eq!(small[0].name, "cora-sim");
        assert_eq!(small[4].name, "cs-sim");
    }

    #[test]
    fn unknown_name_errors_and_lists_valid_names() {
        let err = spec("imagenet").unwrap_err();
        match &err {
            TrainError::UnknownDataset { name, valid } => {
                assert_eq!(name, "imagenet");
                assert_eq!(valid.len(), names().len());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(err.to_string().contains("cora-sim"), "{err}");
    }

    #[test]
    fn small_graphs_match_paper_counts() {
        for n in [
            "cora-sim",
            "citeseer-sim",
            "photo-sim",
            "computers-sim",
            "cs-sim",
        ] {
            let s = spec(n).unwrap();
            assert_eq!(
                s.sim_nodes, s.paper_nodes,
                "{n} node count should match paper"
            );
            assert_eq!(
                s.sim_classes, s.paper_classes,
                "{n} class count should match paper"
            );
        }
    }
}
