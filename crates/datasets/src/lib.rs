//! Synthetic analogs of the paper's benchmark datasets.
//!
//! The paper evaluates on Cora, Citeseer, Photo, Computers, CS, Arxiv and
//! Products (node classification, Table III), Photo/Computers/CS (link
//! prediction) and NCI1/PTC_MR/PROTEINS (graph classification, Table IX).
//! Those datasets are not available offline, so this crate generates
//! *analogs*: degree-corrected stochastic-block-model graphs with
//! class-correlated sparse binary features whose headline statistics match
//! (a scaled version of) Table III. See `DESIGN.md` §1 for why this
//! substitution preserves the paper's comparisons.
//!
//! Entry points:
//! * [`registry::spec`] / [`registry::all_node_specs`] — the named analogs;
//! * [`NodeDataset::generate`] — materialise an analog at a given scale/seed;
//! * [`GraphDataset`] — multi-graph collections for graph classification;
//! * [`split`] — node, edge (link-prediction) and graph splits.

pub mod graph_dataset;
pub mod node_dataset;
pub mod registry;
pub mod split;
pub mod stream;
pub mod synth;

pub use graph_dataset::GraphDataset;
pub use node_dataset::NodeDataset;
pub use registry::{spec, DatasetSpec};
pub use split::{EdgeSplit, NodeSplit};
