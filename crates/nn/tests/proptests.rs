//! Property-based gradient and invariance tests for the NN substrate.

use e2gcl_graph::{norm, CsrGraph};
use e2gcl_linalg::{ops, Matrix, SeedRng};
use e2gcl_nn::{loss, GcnEncoder, Linear};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// InfoNCE is scale-invariant (it works on cosine similarities) and
    /// bounded below by 0.
    #[test]
    fn info_nce_scale_invariant(z1 in matrix(4, 3), z2 in matrix(4, 3), s in 0.5f32..4.0) {
        // Skip degenerate near-zero rows where normalisation is unstable.
        for r in 0..4 {
            prop_assume!(ops::norm(z1.row(r)) > 0.1);
            prop_assume!(ops::norm(z2.row(r)) > 0.1);
        }
        let base = loss::info_nce(&z1, &z2, 0.5).loss;
        let mut z1s = z1.clone();
        z1s.scale(s);
        let scaled = loss::info_nce(&z1s, &z2, 0.5).loss;
        prop_assert!((base - scaled).abs() < 1e-3 * (1.0 + base.abs()));
        prop_assert!(base >= -1e-5);
    }

    /// Margin contrastive loss on identical views with no negatives is zero;
    /// and the gradient of the positive term vanishes there.
    #[test]
    fn margin_loss_fixed_point(h in matrix(3, 4)) {
        let negatives = vec![Vec::new(); 3];
        let out = loss::margin_contrastive(&h, &h, &h, &negatives, 1.0);
        prop_assert!(out.loss.abs() < 1e-6);
        prop_assert!(out.d_hat.frobenius_norm() < 1e-6);
        prop_assert!(out.d_tilde.frobenius_norm() < 1e-6);
    }

    /// Softmax cross-entropy is non-negative, and its gradient rows sum to
    /// ~0 (probabilities minus one-hot).
    #[test]
    fn cross_entropy_gradient_rows_sum_zero(logits in matrix(4, 5), labels in prop::collection::vec(0usize..5, 4)) {
        let (l, grad) = loss::softmax_cross_entropy(&logits, &labels);
        prop_assert!(l >= -1e-6);
        for r in 0..4 {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {r} grad sum {s}");
        }
    }

    /// BCE gradient signs: positive targets always get non-positive
    /// gradients, negative targets non-negative.
    #[test]
    fn bce_gradient_signs(logits in prop::collection::vec(-10.0f32..10.0, 6)) {
        let targets = [1.0f32, 1.0, 1.0, 0.0, 0.0, 0.0];
        let (_, grad) = loss::bce_with_logits(&logits, &targets);
        for (i, g) in grad.iter().enumerate() {
            if targets[i] == 1.0 {
                prop_assert!(*g <= 1e-7);
            } else {
                prop_assert!(*g >= -1e-7);
            }
        }
    }

    /// Cosine bootstrap is within [0, 4] and zero iff aligned.
    #[test]
    fn cosine_bootstrap_bounds(o in matrix(3, 4), t in matrix(3, 4)) {
        for r in 0..3 {
            prop_assume!(ops::norm(o.row(r)) > 0.1);
            prop_assume!(ops::norm(t.row(r)) > 0.1);
        }
        let (l, _) = loss::cosine_bootstrap(&o, &t);
        prop_assert!((-1e-5..=4.0 + 1e-4).contains(&l));
        let (self_l, _) = loss::cosine_bootstrap(&o, &o);
        prop_assert!(self_l.abs() < 1e-5);
    }

    /// GCN forward is deterministic and permutation-consistent: relabelling
    /// the nodes permutes the embeddings the same way.
    #[test]
    fn gcn_permutation_equivariance(seed in any::<u64>()) {
        let mut rng = SeedRng::new(seed);
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut x = Matrix::zeros(5, 3);
        for v in x.as_mut_slice() {
            *v = rng.normal();
        }
        let enc = GcnEncoder::new(&[3, 4, 2], &mut rng);
        let adj = norm::normalized_adjacency(&g);
        let h = enc.embed(&adj, &x);
        // Rotate labels by one (the cycle automorphism maps i -> i+1).
        let perm: Vec<usize> = (0..5).map(|i| (i + 1) % 5).collect();
        let g2 = CsrGraph::from_edges(5, &[(1, 2), (2, 3), (3, 4), (4, 0), (0, 1)]);
        let x2 = x.select_rows(&[4, 0, 1, 2, 3]); // node i of g2 is node i-1 of g
        let h2 = enc.embed(&norm::normalized_adjacency(&g2), &x2);
        for v in 0..5 {
            let mapped = perm[(v + 4) % 5]; // sanity: identity of the cycle
            let _ = mapped;
            for c in 0..2 {
                prop_assert!((h2.get(v, c) - h.get((v + 4) % 5, c)).abs() < 1e-4);
            }
        }
    }

    /// A linear layer trained one SGD step on a quadratic loss decreases it
    /// for any small learning rate (descent property).
    #[test]
    fn linear_sgd_descends(seed in any::<u64>(), lr in 0.001f32..0.05) {
        let mut rng = SeedRng::new(seed);
        let mut l = Linear::new(3, 2, &mut rng);
        let mut x = Matrix::zeros(4, 3);
        for v in x.as_mut_slice() {
            *v = rng.normal();
        }
        let loss_of = |l: &Linear| -> f32 {
            let y = l.apply(&x);
            0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
        };
        let before = loss_of(&l);
        prop_assume!(before > 1e-3);
        let (y, cache) = l.forward(&x);
        let grads = l.backward(&cache, &y);
        l.step(&grads, lr, 0.0);
        prop_assert!(loss_of(&l) <= before);
    }

    /// `SmallNegInfoNce` with every row in the negative set (each anchor
    /// then scores against the other n−1 rows, self excluded, exactly like
    /// NT-Xent) must be **bitwise** equal to the fused full kernel — loss
    /// and both gradients — at awkward shapes. n = 1 has no full-kernel
    /// counterpart (InfoNCE needs at least one negative): the small-neg
    /// path must return exactly zero loss and gradients there.
    #[test]
    fn smallneg_all_rows_is_bitwise_full_info_nce(seed in any::<u64>(), dim in 1usize..9) {
        use e2gcl_nn::{ContrastiveLoss, SmallNegInfoNce};
        use e2gcl_nn::loss::InfoNceScratch;
        for n in [1usize, 2, 7, 33] {
            let mut rng = SeedRng::new(seed ^ (n as u64) << 32);
            let gen = |rng: &mut SeedRng| {
                let mut m = Matrix::zeros(n, dim);
                for v in m.as_mut_slice() {
                    *v = rng.normal();
                }
                // Keep rows away from the normalisation singularity.
                for r in 0..n {
                    if ops::norm(m.row(r)) < 0.1 {
                        m.row_mut(r)[0] += 1.0;
                    }
                }
                m
            };
            let z1 = gen(&mut rng);
            let z2 = gen(&mut rng);
            let mut strat = SmallNegInfoNce::new(0.5);
            strat.set_negatives(&(0..n).collect::<Vec<_>>());
            let small = strat.compute(&z1, &z2);
            if n == 1 {
                prop_assert_eq!(small.to_bits(), 0.0f32.to_bits());
                prop_assert!(strat.d_z1().as_slice().iter().all(|v| *v == 0.0));
                prop_assert!(strat.d_z2().as_slice().iter().all(|v| *v == 0.0));
                continue;
            }
            let mut s = InfoNceScratch::default();
            let full = loss::info_nce_with(&z1, &z2, 0.5, &mut s);
            prop_assert_eq!(small.to_bits(), full.to_bits(), "loss at n={}", n);
            for (a, b) in strat.d_z1().as_slice().iter().zip(s.d_z1().as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "d_z1 at n={}", n);
            }
            for (a, b) in strat.d_z2().as_slice().iter().zip(s.d_z2().as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "d_z2 at n={}", n);
            }
        }
    }
}
