//! Thread-count invariance of the parallel InfoNCE path.
//!
//! Same re-exec pattern as the linalg `thread_invariance` test: the rayon
//! stand-in fixes its pool size per process, so the test spawns one child
//! per `RAYON_NUM_THREADS` setting and compares fingerprints of the loss
//! and both gradients.

use e2gcl_graph::CsrGraph;
use e2gcl_linalg::hash::Fnv1a64;
use e2gcl_linalg::{Matrix, SeedRng};
use e2gcl_nn::loss::{info_nce_with, InfoNceScratch};
use e2gcl_nn::{ContrastiveLoss, LocalizedInfoNce, Neighborhoods, SmallNegInfoNce};
use std::process::Command;

const CHILD_ENV: &str = "E2GCL_NN_THREAD_INVARIANCE_CHILD";
const SUBQ_CHILD_ENV: &str = "E2GCL_NN_SUBQ_THREAD_INVARIANCE_CHILD";

fn dense(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SeedRng::new(seed);
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.normal()).collect())
}

/// 600 anchors: enough rows/row-tiles that every parallel stage of
/// `info_nce_with` (normalisation, the NT-Xent row pass, the gradient
/// GEMMs) fans out on a multi-thread pool.
fn compute_fingerprint() -> u64 {
    let z1 = dense(600, 16, 40);
    let z2 = dense(600, 16, 41);
    let mut s = InfoNceScratch::default();
    let loss = info_nce_with(&z1, &z2, 0.5, &mut s);
    let mut h = Fnv1a64::new();
    h.write_f32(loss);
    for &v in s.d_z1().as_slice() {
        h.write_f32(v);
    }
    for &v in s.d_z2().as_slice() {
        h.write_f32(v);
    }
    h.finish()
}

#[test]
fn info_nce_bitwise_invariant_across_thread_counts() {
    if std::env::var(CHILD_ENV).is_ok() {
        println!("FP:{:016x}", compute_fingerprint());
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let mut fps = Vec::new();
    for threads in ["1", "4"] {
        let out = Command::new(&exe)
            .arg("info_nce_bitwise_invariant_across_thread_counts")
            .arg("--exact")
            .arg("--nocapture")
            .env(CHILD_ENV, "1")
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("spawn child test process");
        assert!(
            out.status.success(),
            "child with {threads} threads failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        // With --nocapture the marker can share a line with libtest output.
        let at = stdout
            .find("FP:")
            .unwrap_or_else(|| panic!("no FP marker in child output: {stdout}"));
        fps.push(stdout[at + 3..at + 19].to_string());
    }
    assert_eq!(
        fps[0], fps[1],
        "info_nce output differs between RAYON_NUM_THREADS=1 and 4"
    );
    let here = format!("{:016x}", compute_fingerprint());
    assert_eq!(fps[0], here, "parent fingerprint differs from children");
}

fn hash_strategy(h: &mut Fnv1a64, loss: f32, strat: &dyn ContrastiveLoss) {
    h.write_f32(loss);
    for &v in strat.d_z1().as_slice() {
        h.write_f32(v);
    }
    for &v in strat.d_z2().as_slice() {
        h.write_f32(v);
    }
}

/// 600 anchors again, but through the sub-quadratic kernels on their
/// *general* paths: small-neg with k = 96 < n (fused select/GEMM/scatter
/// backward) and localized on a ring graph with 2-hop neighbourhoods
/// (sparse softmax, per-anchor parallel pass 1, per-row parallel pass 2).
fn subq_fingerprint() -> u64 {
    let n = 600;
    let z1 = dense(n, 16, 42);
    let z2 = dense(n, 16, 43);
    let mut h = Fnv1a64::new();
    let mut small = SmallNegInfoNce::new(0.5);
    small.set_negatives(&(0..n).step_by(6).map(|v| v + 1).collect::<Vec<_>>());
    let l = small.compute(&z1, &z2);
    hash_strategy(&mut h, l, &small);
    let edges: Vec<(usize, usize)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    let ring = CsrGraph::from_edges(n, &edges);
    let mut local = LocalizedInfoNce::new(0.5, Neighborhoods::from_graph(&ring, 2));
    let l = local.compute(&z1, &z2);
    hash_strategy(&mut h, l, &local);
    h.finish()
}

#[test]
fn sub_quadratic_losses_bitwise_invariant_across_thread_counts() {
    if std::env::var(SUBQ_CHILD_ENV).is_ok() {
        println!("FP:{:016x}", subq_fingerprint());
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let mut fps = Vec::new();
    for threads in ["1", "4"] {
        let out = Command::new(&exe)
            .arg("sub_quadratic_losses_bitwise_invariant_across_thread_counts")
            .arg("--exact")
            .arg("--nocapture")
            .env(SUBQ_CHILD_ENV, "1")
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("spawn child test process");
        assert!(
            out.status.success(),
            "child with {threads} threads failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let at = stdout
            .find("FP:")
            .unwrap_or_else(|| panic!("no FP marker in child output: {stdout}"));
        fps.push(stdout[at + 3..at + 19].to_string());
    }
    assert_eq!(
        fps[0], fps[1],
        "sub-quadratic loss output differs between RAYON_NUM_THREADS=1 and 4"
    );
    let here = format!("{:016x}", subq_fingerprint());
    assert_eq!(fps[0], here, "parent fingerprint differs from children");
}
