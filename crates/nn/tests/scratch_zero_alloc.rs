//! Exact allocation accounting for the scratch layer.
//!
//! This file intentionally holds a SINGLE test: `alloc_stats` is a
//! process-global counter and cargo runs tests inside one binary
//! concurrently, so exact-equality assertions are only sound when the test
//! binary has nothing else running.

use e2gcl_graph::{norm, CsrGraph};
use e2gcl_linalg::alloc_stats::matrix_allocs;
use e2gcl_linalg::{Matrix, SeedRng};
use e2gcl_nn::loss::{self, InfoNceScratch, MarginScratch};
use e2gcl_nn::{GcnEncoder, GcnWorkspace, Mlp, MlpWorkspace, SageEncoder, SageWorkspace};

fn fixture() -> (e2gcl_graph::SparseMatrix, e2gcl_graph::SparseMatrix, Matrix) {
    let edges: Vec<(usize, usize)> = (0..40).map(|i| (i, (i * 7 + 3) % 40)).collect();
    let g = CsrGraph::from_edges(40, &edges);
    let sym_adj = norm::normalized_adjacency(&g);
    let mean_adj = norm::row_normalized_adjacency(&g);
    let mut rng = SeedRng::new(11);
    let mut x = Matrix::zeros(40, 8);
    for v in x.as_mut_slice() {
        *v = rng.normal();
    }
    (sym_adj, mean_adj, x)
}

/// Once workspaces and loss scratch are warm, a full epoch-shaped pass
/// (encoder forward, loss, encoder backward) performs ZERO new matrix
/// allocations — the heart of the engine's scratch-buffer contract.
#[test]
fn warm_scratch_epoch_allocates_zero_matrices() {
    let (sym_adj, mean_adj, x) = fixture();
    let mut rng = SeedRng::new(12);
    let gcn = GcnEncoder::new(&[8, 16, 4], &mut rng);
    let sage = SageEncoder::new(&[8, 16, 4], &mut rng);
    let head = Mlp::new(4, 8, 4, &mut rng);

    let mut gcn_ws1 = GcnWorkspace::new();
    let mut gcn_ws2 = GcnWorkspace::new();
    let mut sage_ws = SageWorkspace::new();
    let mut head_ws = MlpWorkspace::new();
    let mut nce = InfoNceScratch::default();
    let mut margin = MarginScratch::default();
    let mut d_h = Matrix::default();
    let negatives: Vec<Vec<usize>> = (0..40).map(|i| vec![(i + 1) % 40]).collect();

    let epoch = |gcn_ws1: &mut GcnWorkspace,
                 gcn_ws2: &mut GcnWorkspace,
                 sage_ws: &mut SageWorkspace,
                 head_ws: &mut MlpWorkspace,
                 nce: &mut InfoNceScratch,
                 margin: &mut MarginScratch,
                 d_h: &mut Matrix| {
        // GRACE-shaped flow: two GCN views, projection head, InfoNCE.
        gcn.forward_with(&sym_adj, &x, gcn_ws1);
        gcn.forward_with(&sym_adj, &x, gcn_ws2);
        head.forward_with(gcn_ws1.output(), head_ws);
        let _ = loss::info_nce_with(head_ws.output(), gcn_ws2.output(), 0.5, nce);
        head.backward_with(gcn_ws1.output(), nce.d_z1(), head_ws);
        gcn.backward_with(&sym_adj, gcn_ws1, head_ws.d_input());
        gcn.backward_with(&sym_adj, gcn_ws2, nce.d_z2());
        // E²GCL-shaped flow: SAGE encoder, margin loss.
        sage.forward_with(&mean_adj, &x, sage_ws);
        let _ = loss::margin_contrastive_with(
            sage_ws.output(),
            gcn_ws2.output(),
            gcn_ws1.output(),
            &negatives,
            1.0,
            margin,
        );
        sage.backward_with(&mean_adj, &x, sage_ws, margin.d_hat());
        // Bootstrap gradient into a plain reusable buffer.
        let _ = loss::cosine_bootstrap_with(sage_ws.output(), gcn_ws1.output(), d_h);
    };

    // Two warm-up epochs grow every buffer to its steady-state capacity.
    for _ in 0..2 {
        epoch(
            &mut gcn_ws1,
            &mut gcn_ws2,
            &mut sage_ws,
            &mut head_ws,
            &mut nce,
            &mut margin,
            &mut d_h,
        );
    }

    let before = matrix_allocs();
    for _ in 0..3 {
        epoch(
            &mut gcn_ws1,
            &mut gcn_ws2,
            &mut sage_ws,
            &mut head_ws,
            &mut nce,
            &mut margin,
            &mut d_h,
        );
    }
    let after = matrix_allocs();
    assert_eq!(
        after - before,
        0,
        "steady-state epochs must not allocate matrices"
    );
}
