//! Pluggable contrastive-loss strategies: the O(n²) full InfoNCE and two
//! sub-quadratic alternatives behind one [`ContrastiveLoss`] trait.
//!
//! * [`FullInfoNce`] — the existing fused [`loss::info_nce_with`] kernel,
//!   unchanged numerics (golden fingerprints stay valid);
//! * [`SmallNegInfoNce`] — anchors score against a fixed set of `k`
//!   representative negative rows ("Does GCL Need a Large Number of
//!   Negative Samples?" / E2Neg): O(n·k) similarity work and memory,
//!   computed by the same blocked GEMM kernels as the full loss;
//! * [`LocalizedInfoNce`] — negatives restricted to each anchor's CSR
//!   L-hop neighbourhood ("Localized Contrastive Learning on Graphs"):
//!   a CSR-driven sparse softmax, O(nnz·d) with nnz the total
//!   neighbourhood size, and no dense n×n block anywhere.
//!
//! # Determinism contract
//!
//! All three kernels are bit-identical run-to-run and across
//! `RAYON_NUM_THREADS`:
//!
//! * every similarity is the *dispatched* lane-dot kernel
//!   ([`e2gcl_linalg::dispatch`]: [`ops::lane_dot`] on the scalar path,
//!   its 8-lane fused analogue on AVX2) — directly, or via the blocked
//!   [`Matrix::matmul_transpose_into`] whose element-level contract *is*
//!   that kernel, so bits are identical within a dispatch config;
//! * parallel passes own disjoint rows/slices and read only shared
//!   inputs, so any interleaving produces the same bits;
//! * every cross-row reduction (loss sums, gradient scatters into
//!   negative rows) runs serially in a fixed documented order — anchors
//!   ascending, side 1 before side 2, negative slots ascending.
//!
//! See `DESIGN.md` §15 for the full contract and complexity table.

use crate::loss::{self, InfoNceScratch};
use e2gcl_graph::CsrGraph;
use e2gcl_linalg::{ops, Matrix};
use rayon::prelude::*;

/// One fused forward+backward contrastive objective over two row-aligned
/// views. Strategies carry their own scratch: `compute` allocates nothing
/// once warm, and the gradients of the *last* `compute` are readable via
/// [`d_z1`](Self::d_z1)/[`d_z2`](Self::d_z2).
pub trait ContrastiveLoss {
    /// Stable kernel name for logs and benches (`"full"`, `"smallneg"`,
    /// `"localized"`).
    fn name(&self) -> &'static str;

    /// Fused loss over the two views' embeddings (`n×d`, row-aligned
    /// positives). Returns the mean loss over the strategy's anchor terms.
    fn compute(&mut self, z1: &Matrix, z2: &Matrix) -> f32;

    /// `∂L/∂z1` from the last [`compute`](Self::compute).
    fn d_z1(&self) -> &Matrix;

    /// `∂L/∂z2` from the last [`compute`](Self::compute).
    fn d_z2(&self) -> &Matrix;
}

/// The full O(n²) symmetric NT-Xent, wrapping [`loss::info_nce_with`].
#[derive(Debug, Default)]
pub struct FullInfoNce {
    tau: f32,
    s: InfoNceScratch,
}

impl FullInfoNce {
    /// A full-loss strategy at temperature `tau`.
    pub fn new(tau: f32) -> Self {
        FullInfoNce {
            tau,
            s: InfoNceScratch::default(),
        }
    }
}

impl ContrastiveLoss for FullInfoNce {
    fn name(&self) -> &'static str {
        "full"
    }

    fn compute(&mut self, z1: &Matrix, z2: &Matrix) -> f32 {
        // The strategy accepts whatever shape each call brings; shape
        // stability is the caller's concern (see `info_nce_checked`).
        self.s.reset();
        loss::info_nce_with(z1, z2, self.tau, &mut self.s)
    }

    fn d_z1(&self) -> &Matrix {
        self.s.d_z1()
    }

    fn d_z2(&self) -> &Matrix {
        self.s.d_z2()
    }
}

/// Reusable buffers for [`small_neg_info_nce_with`]: normalised views, the
/// gathered `k×d` negative blocks, four `n×k` similarity/coefficient
/// blocks, per-anchor positive/loss/coefficient vectors and the gradient
/// chain.
#[derive(Debug, Default)]
pub struct SmallNegScratch {
    u1: Matrix,
    u2: Matrix,
    n1: Vec<f32>,
    n2: Vec<f32>,
    neg1: Matrix,
    neg2: Matrix,
    s12: Matrix,
    s11: Matrix,
    s21: Matrix,
    s22: Matrix,
    pos: Vec<f32>,
    slot_of: Vec<u32>,
    loss1: Vec<f32>,
    loss2: Vec<f32>,
    cpos1: Vec<f32>,
    cpos2: Vec<f32>,
    du1: Matrix,
    du2: Matrix,
    gtmp: Matrix,
    sc1: Matrix,
    sc2: Matrix,
    sctmp: Matrix,
    d_z1: Matrix,
    d_z2: Matrix,
}

impl SmallNegScratch {
    /// `∂L/∂z1` from the last [`small_neg_info_nce_with`].
    pub fn d_z1(&self) -> &Matrix {
        &self.d_z1
    }

    /// `∂L/∂z2` from the last [`small_neg_info_nce_with`].
    pub fn d_z2(&self) -> &Matrix {
        &self.d_z2
    }
}

/// Per-side inputs for the small-negative-set softmax row pass.
struct SideCtx<'a> {
    pos: &'a [f32],
    slot_of: &'a [u32],
    scale: f32,
    g_unit: f32,
}

/// One NT-Xent side over a small negative set, parallel over anchor rows.
///
/// Consumes the `1/tau`-scaled `n×k` similarity blocks in place, replacing
/// them with gradient coefficients `g_unit·p` (softmax probabilities `p`
/// over anchor `i`'s `2k+1−dup` terms). Where the anchor itself is in the
/// negative set (`slot_of[i] != MAX`), its inter slot duplicates the
/// positive and its intra slot is the self-similarity — both are excluded
/// and their coefficients zeroed. `row_loss[i]` gets the anchor's scaled
/// loss term and `cpos[i]` the positive's coefficient
/// `g_unit·(p_pos − 1)`. Rows are independent, so the pass is trivially
/// thread-count invariant.
fn small_neg_rows(
    s_ab: &mut Matrix,
    s_aa: &mut Matrix,
    cx: &SideCtx<'_>,
    row_loss: &mut [f32],
    cpos: &mut [f32],
) {
    let k = s_ab.cols();
    let (scale, g_unit) = (cx.scale, cx.g_unit);
    let (pos, slot_of) = (cx.pos, cx.slot_of);
    s_ab.as_mut_slice()
        .par_chunks_mut(k)
        .zip(s_aa.as_mut_slice().par_chunks_mut(k))
        .zip(row_loss.par_iter_mut())
        .zip(cpos.par_iter_mut())
        .enumerate()
        .for_each(|(i, (((ab, aa), l), c))| {
            let self_slot = slot_of[i] as usize;
            let p = pos[i];
            // Log-sum-exp over {positive} ∪ inter ∪ intra, stabilised by
            // the row max (self slots excluded).
            let mut mx = p;
            for (j, &v) in ab.iter().enumerate() {
                if j != self_slot {
                    mx = mx.max(v);
                }
            }
            for (j, &v) in aa.iter().enumerate() {
                if j != self_slot {
                    mx = mx.max(v);
                }
            }
            let e_pos = (p - mx).exp();
            let mut denom = e_pos;
            for (j, v) in ab.iter_mut().enumerate() {
                if j == self_slot {
                    *v = 0.0;
                } else {
                    *v = (*v - mx).exp();
                    denom += *v;
                }
            }
            for (j, v) in aa.iter_mut().enumerate() {
                if j == self_slot {
                    *v = 0.0;
                } else {
                    *v = (*v - mx).exp();
                    denom += *v;
                }
            }
            *l = (mx + denom.ln() - p) * scale;
            let gd = g_unit / denom;
            for v in ab.iter_mut() {
                *v *= gd;
            }
            for v in aa.iter_mut() {
                *v *= gd;
            }
            *c = e_pos * gd - g_unit;
        });
}

/// Small-negative-set symmetric InfoNCE: every anchor contrasts its
/// positive against the `k` rows listed in `negatives` (taken from both
/// views), instead of against all `n` rows. O(n·k·d) compute, O(n·k)
/// memory. Loss is still normalised by `2n` anchors, so with `negatives`
/// covering every row this is mathematically the full objective.
///
/// `negatives` must be strictly ascending and in range. An anchor that is
/// itself a negative is excluded from its own denominator (the positive is
/// counted exactly once, the self intra-view similarity never).
///
/// This always runs the general O(n·k) kernel; [`SmallNegInfoNce`]
/// additionally dispatches the all-rows case to the bitwise-identical full
/// kernel.
pub fn small_neg_info_nce_with(
    z1: &Matrix,
    z2: &Matrix,
    tau: f32,
    negatives: &[usize],
    s: &mut SmallNegScratch,
) -> f32 {
    let n = z1.rows();
    let d = z1.cols();
    assert_eq!(z2.rows(), n);
    assert_eq!(z2.cols(), d);
    assert!(
        !negatives.is_empty(),
        "small-neg InfoNCE needs >= 1 negative"
    );
    assert!(
        negatives.windows(2).all(|w| w[0] < w[1]),
        "negatives must be strictly ascending"
    );
    let last = *negatives.last().expect("nonempty negatives");
    assert!(last < n, "negative index {last} out of range for {n} rows");
    let inv_tau = 1.0 / tau;

    loss::normalize_rows_into(z1, &mut s.u1, &mut s.n1);
    loss::normalize_rows_into(z2, &mut s.u2, &mut s.n2);

    // Gather the negative rows once; the four n×k similarity blocks are
    // then plain blocked GEMMs whose elements are `lane_dot`s.
    s.u1.select_rows_into(negatives, &mut s.neg1);
    s.u2.select_rows_into(negatives, &mut s.neg2);
    s.u1.matmul_transpose_into(&s.neg2, &mut s.s12); // u1_i · u2_{M[m]}
    s.u1.matmul_transpose_into(&s.neg1, &mut s.s11); // u1_i · u1_{M[m]}
    s.u2.matmul_transpose_into(&s.neg1, &mut s.s21); // u2_i · u1_{M[m]}
    s.u2.matmul_transpose_into(&s.neg2, &mut s.s22); // u2_i · u2_{M[m]}
    s.s12.scale(inv_tau);
    s.s11.scale(inv_tau);
    s.s21.scale(inv_tau);
    s.s22.scale(inv_tau);

    // Positive similarities as an n-vector (the diagonal the full kernel
    // reads from its n×n block). lane_dot is commutative bitwise, so one
    // vector serves both sides.
    s.pos.clear();
    s.pos.resize(n, 0.0);
    {
        let (pos, u1, u2) = (&mut s.pos, &s.u1, &s.u2);
        // Dispatch path captured on the calling thread: the similarities
        // here must be bit-identical to the matmul_transpose elements
        // above, and rayon workers don't inherit a thread-local override.
        let kpath = e2gcl_linalg::dispatch::current_path();
        pos.par_iter_mut().enumerate().for_each(|(i, p)| {
            *p = kpath.lane_dot(u1.row(i), u2.row(i)) * inv_tau;
        });
    }
    // Anchor row -> its slot in the negative set (u32::MAX when absent).
    s.slot_of.clear();
    s.slot_of.resize(n, u32::MAX);
    for (slot, &m) in negatives.iter().enumerate() {
        s.slot_of[m] = slot as u32;
    }

    let scale = 1.0 / (2 * n) as f32;
    let cx = SideCtx {
        pos: &s.pos,
        slot_of: &s.slot_of,
        scale,
        g_unit: scale * inv_tau,
    };
    s.loss1.clear();
    s.loss1.resize(n, 0.0);
    s.loss2.clear();
    s.loss2.resize(n, 0.0);
    s.cpos1.clear();
    s.cpos1.resize(n, 0.0);
    s.cpos2.clear();
    s.cpos2.resize(n, 0.0);
    small_neg_rows(&mut s.s12, &mut s.s11, &cx, &mut s.loss1, &mut s.cpos1);
    small_neg_rows(&mut s.s21, &mut s.s22, &cx, &mut s.loss2, &mut s.cpos2);
    // Per-anchor terms summed serially in a fixed order (side 1 rows
    // ascending, then side 2), independent of the thread count.
    let mut loss = 0.0f64;
    for &l in &s.loss1 {
        loss += f64::from(l);
    }
    for &l in &s.loss2 {
        loss += f64::from(l);
    }

    // Anchor-side gradients: four n×k · k×d GEMMs plus the row-owned
    // positive terms.
    s.s12.matmul_into(&s.neg2, &mut s.du1); // du1 = G12·N2 ...
    s.s11.matmul_into(&s.neg1, &mut s.gtmp);
    s.du1.add_assign(&s.gtmp); // ... + G11·N1
    s.s21.matmul_into(&s.neg1, &mut s.du2); // du2 = G21·N1 ...
    s.s22.matmul_into(&s.neg2, &mut s.gtmp);
    s.du2.add_assign(&s.gtmp); // ... + G22·N2
    {
        let (du1, du2) = (&mut s.du1, &mut s.du2);
        let (u1, u2) = (&s.u1, &s.u2);
        let (c1, c2) = (&s.cpos1, &s.cpos2);
        du1.as_mut_slice()
            .par_chunks_mut(d)
            .enumerate()
            .for_each(|(i, row)| ops::axpy_slice(row, c1[i] + c2[i], u2.row(i)));
        du2.as_mut_slice()
            .par_chunks_mut(d)
            .enumerate()
            .for_each(|(i, row)| ops::axpy_slice(row, c1[i] + c2[i], u1.row(i)));
    }
    // Negative-side gradients: k×d blocks via transposed GEMMs, scattered
    // serially into the negative rows in slot order (fixed order — the
    // only cross-row reduction outside the blocked kernels).
    s.s11.transpose_matmul_into(&s.u1, &mut s.sc1); // d/dN1 = G11ᵀ·u1 ...
    s.s21.transpose_matmul_into(&s.u2, &mut s.sctmp);
    s.sc1.add_assign(&s.sctmp); // ... + G21ᵀ·u2
    s.s12.transpose_matmul_into(&s.u1, &mut s.sc2); // d/dN2 = G12ᵀ·u1 ...
    s.s22.transpose_matmul_into(&s.u2, &mut s.sctmp);
    s.sc2.add_assign(&s.sctmp); // ... + G22ᵀ·u2
    {
        let (du1, du2) = (&mut s.du1, &mut s.du2);
        let (sc1, sc2) = (&s.sc1, &s.sc2);
        for (slot, &m) in negatives.iter().enumerate() {
            ops::axpy_slice(du1.row_mut(m), 1.0, sc1.row(slot));
            ops::axpy_slice(du2.row_mut(m), 1.0, sc2.row(slot));
        }
    }

    loss::normalize_backward_into(&s.u1, &s.n1, &s.du1, &mut s.d_z1);
    loss::normalize_backward_into(&s.u2, &s.n2, &s.du2, &mut s.d_z2);
    loss as f32
}

/// Small-negative-set strategy: negatives are set per epoch (e.g. from
/// `GreedySelector::select_from_aggregate`) and every anchor contrasts
/// against that fixed set.
///
/// When the negative set covers *every* row (`k == n`), the objective is
/// the full symmetric InfoNCE, so `compute` dispatches to the full
/// [`loss::info_nce_with`] kernel — bitwise-identical to [`FullInfoNce`],
/// the same degenerate-dispatch pattern `MinibatchConfig::is_full_batch`
/// uses for full-batch mini-batching.
#[derive(Debug, Default)]
pub struct SmallNegInfoNce {
    tau: f32,
    negatives: Vec<usize>,
    s: SmallNegScratch,
    full: InfoNceScratch,
    used_full: bool,
}

impl SmallNegInfoNce {
    /// A small-negative-set strategy at temperature `tau`. Call
    /// [`set_negatives`](Self::set_negatives) before the first `compute`.
    pub fn new(tau: f32) -> Self {
        SmallNegInfoNce {
            tau,
            ..SmallNegInfoNce::default()
        }
    }

    /// Replaces the negative set. Indices are sorted and deduplicated here
    /// so the kernel's slot order (and therefore its scatter order) is a
    /// function of the *set*, not of the selection order.
    pub fn set_negatives(&mut self, negatives: &[usize]) {
        self.negatives.clear();
        self.negatives.extend_from_slice(negatives);
        self.negatives.sort_unstable();
        self.negatives.dedup();
    }

    /// The current (sorted, deduplicated) negative set.
    pub fn negatives(&self) -> &[usize] {
        &self.negatives
    }
}

impl ContrastiveLoss for SmallNegInfoNce {
    fn name(&self) -> &'static str {
        "smallneg"
    }

    fn compute(&mut self, z1: &Matrix, z2: &Matrix) -> f32 {
        let n = z1.rows();
        // Degenerate dispatch: a sorted deduplicated in-range set of size n
        // is exactly 0..n, i.e. the full objective. (The full kernel
        // asserts n >= 2; n == 1 stays on the general path, where the lone
        // anchor has no negatives and contributes zero loss and gradient.)
        if n >= 2 && self.negatives.len() == n {
            self.used_full = true;
            self.full.reset();
            return loss::info_nce_with(z1, z2, self.tau, &mut self.full);
        }
        self.used_full = false;
        small_neg_info_nce_with(z1, z2, self.tau, &self.negatives, &mut self.s)
    }

    fn d_z1(&self) -> &Matrix {
        if self.used_full {
            self.full.d_z1()
        } else {
            self.s.d_z1()
        }
    }

    fn d_z2(&self) -> &Matrix {
        if self.used_full {
            self.full.d_z2()
        } else {
            self.s.d_z2()
        }
    }
}

/// Flat CSR of per-node L-hop neighbourhoods (sorted ascending, self
/// excluded) — the negative-candidate topology of [`LocalizedInfoNce`].
#[derive(Clone, Debug, Default)]
pub struct Neighborhoods {
    n: usize,
    offsets: Vec<usize>,
    cols: Vec<u32>,
}

impl Neighborhoods {
    /// Builds the L-hop neighbourhood lists of `g`. `hops == 1` reuses the
    /// CSR adjacency directly (sorted, self-loop-free by the graph's
    /// invariants); `hops >= 2` runs one bounded BFS per node, parallel
    /// over nodes with order-preserving collection, so the result is
    /// deterministic.
    pub fn from_graph(g: &CsrGraph, hops: usize) -> Neighborhoods {
        assert!(hops >= 1, "neighbourhoods need hops >= 1");
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut cols: Vec<u32>;
        if hops == 1 {
            cols = Vec::with_capacity(2 * g.num_edges());
            for v in 0..n {
                cols.extend_from_slice(g.neighbors(v));
                offsets.push(cols.len());
            }
        } else {
            let lists: Vec<Vec<usize>> = (0..n)
                .into_par_iter()
                .map(|v| g.khop_neighbors(v, hops))
                .collect();
            let total: usize = lists.iter().map(Vec::len).sum();
            cols = Vec::with_capacity(total);
            for list in &lists {
                cols.extend(list.iter().map(|&u| u as u32));
                offsets.push(cols.len());
            }
        }
        Neighborhoods { n, offsets, cols }
    }

    /// Number of nodes the topology covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the topology covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sorted neighbourhood of node `v` (excluding `v`).
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.cols[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Total neighbourhood entries across all nodes.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }
}

/// Reusable buffers for [`localized_info_nce_with`]: normalised views,
/// flat per-(anchor, neighbour) coefficient buffers for all four
/// view-pair combinations, the anchor-side prefix/reverse indexes and the
/// gradient chain.
#[derive(Debug, Default)]
pub struct LocalizedScratch {
    u1: Matrix,
    u2: Matrix,
    n1: Vec<f32>,
    n2: Vec<f32>,
    aoff: Vec<usize>,
    anchor_of: Vec<u32>,
    e12: Vec<f32>,
    e11: Vec<f32>,
    e21: Vec<f32>,
    e22: Vec<f32>,
    loss: Vec<f32>,
    cpos: Vec<f32>,
    rev_off: Vec<usize>,
    rev_anchor: Vec<u32>,
    rev_flat: Vec<u32>,
    du1: Matrix,
    du2: Matrix,
    d_z1: Matrix,
    d_z2: Matrix,
}

impl LocalizedScratch {
    /// `∂L/∂z1` from the last [`localized_info_nce_with`].
    pub fn d_z1(&self) -> &Matrix {
        &self.d_z1
    }

    /// `∂L/∂z2` from the last [`localized_info_nce_with`].
    pub fn d_z2(&self) -> &Matrix {
        &self.d_z2
    }
}

/// Splits `buf` into consecutive slices `buf[off[a]..off[a+1]]` — the
/// per-anchor views the parallel coefficient pass hands to disjoint
/// workers.
fn split_by_offsets<'a>(mut buf: &'a mut [f32], off: &[usize]) -> Vec<&'a mut [f32]> {
    let mut out = Vec::with_capacity(off.len().saturating_sub(1));
    for w in off.windows(2) {
        let (head, tail) = buf.split_at_mut(w[1] - w[0]);
        out.push(head);
        buf = tail;
    }
    out
}

/// Localized symmetric InfoNCE: each anchor `i` contrasts its positive
/// against only its neighbourhood `N(i)` from `nb` (both views, inter and
/// intra), a CSR-driven sparse softmax with no dense n×n similarity.
/// O(nnz·d) compute and O(nnz) coefficient memory, where
/// `nnz = Σ_{i ∈ anchors} |N(i)|`.
///
/// `z1`/`z2` hold **all** rows of the (sub)graph; `anchors` selects which
/// rows contribute loss terms (duplicates are not allowed — each row owns
/// at most one anchor slot). Gradients flow into anchor rows and their
/// neighbours; all other rows of `d_z1`/`d_z2` are zero. An anchor with an
/// empty neighbourhood contributes a zero loss term and zero gradient.
///
/// The loss is the mean over the `2·|anchors|` directed anchor terms.
pub fn localized_info_nce_with(
    z1: &Matrix,
    z2: &Matrix,
    tau: f32,
    nb: &Neighborhoods,
    anchors: &[usize],
    s: &mut LocalizedScratch,
) -> f32 {
    let n = z1.rows();
    let d = z1.cols();
    assert_eq!(z2.rows(), n);
    assert_eq!(z2.cols(), d);
    assert_eq!(nb.len(), n, "topology must cover every embedding row");
    let a = anchors.len();
    let inv_tau = 1.0 / tau;

    loss::normalize_rows_into(z1, &mut s.u1, &mut s.n1);
    loss::normalize_rows_into(z2, &mut s.u2, &mut s.n2);
    s.du1.reset_zeroed(n, d);
    s.du2.reset_zeroed(n, d);
    if a == 0 {
        s.d_z1.reset_zeroed(n, d);
        s.d_z2.reset_zeroed(n, d);
        return 0.0;
    }

    // Anchor prefix offsets into the flat coefficient buffers, and the
    // row -> anchor-slot inverse (u32::MAX for non-anchor rows).
    s.aoff.clear();
    s.aoff.reserve(a + 1);
    s.aoff.push(0);
    for &i in anchors {
        assert!(i < n, "anchor {i} out of range for {n} rows");
        s.aoff
            .push(s.aoff[s.aoff.len() - 1] + nb.neighbors(i).len());
    }
    let nnz = *s.aoff.last().expect("offsets nonempty");
    s.anchor_of.clear();
    s.anchor_of.resize(n, u32::MAX);
    for (slot, &i) in anchors.iter().enumerate() {
        assert!(
            s.anchor_of[i] == u32::MAX,
            "anchor {i} listed twice — anchors must be unique"
        );
        s.anchor_of[i] = slot as u32;
    }
    for buf in [&mut s.e12, &mut s.e11, &mut s.e21, &mut s.e22] {
        buf.clear();
        buf.resize(nnz, 0.0);
    }
    s.loss.clear();
    s.loss.resize(a, 0.0);
    s.cpos.clear();
    s.cpos.resize(a, 0.0);

    // Pass 1 — parallel over anchors, each worker owning its four
    // coefficient slices plus its loss/cpos cells: similarities on the
    // fly (lane_dot), one stabilised softmax per side, coefficients in
    // place. `scale` normalises by the 2·a directed anchor terms.
    let scale = 1.0 / (2 * a) as f32;
    let g_unit = scale * inv_tau;
    {
        let (u1, u2) = (&s.u1, &s.u2);
        // Dispatch path captured before the parallel region (rayon workers
        // don't inherit a thread-local override).
        let kpath = e2gcl_linalg::dispatch::current_path();
        let e12s = split_by_offsets(&mut s.e12, &s.aoff);
        let e11s = split_by_offsets(&mut s.e11, &s.aoff);
        let e21s = split_by_offsets(&mut s.e21, &s.aoff);
        let e22s = split_by_offsets(&mut s.e22, &s.aoff);
        e12s.into_par_iter()
            .zip(e11s.into_par_iter())
            .zip(e21s.into_par_iter())
            .zip(e22s.into_par_iter())
            .zip(anchors.par_iter())
            .zip(s.loss.par_iter_mut())
            .zip(s.cpos.par_iter_mut())
            .for_each(|((((((e12, e11), e21), e22), &i), l), c)| {
                let ui1 = u1.row(i);
                let ui2 = u2.row(i);
                let p = kpath.lane_dot(ui1, ui2) * inv_tau;
                let ns = nb.neighbors(i);
                for (t, &jn) in ns.iter().enumerate() {
                    let j = jn as usize;
                    e12[t] = kpath.lane_dot(ui1, u2.row(j)) * inv_tau;
                    e11[t] = kpath.lane_dot(ui1, u1.row(j)) * inv_tau;
                    e21[t] = kpath.lane_dot(ui2, u1.row(j)) * inv_tau;
                    e22[t] = kpath.lane_dot(ui2, u2.row(j)) * inv_tau;
                }
                *l = 0.0;
                *c = 0.0;
                for (ab, aa) in [(&mut *e12, &mut *e11), (&mut *e21, &mut *e22)] {
                    let mut mx = p;
                    for &v in ab.iter() {
                        mx = mx.max(v);
                    }
                    for &v in aa.iter() {
                        mx = mx.max(v);
                    }
                    let e_pos = (p - mx).exp();
                    let mut denom = e_pos;
                    for v in ab.iter_mut() {
                        *v = (*v - mx).exp();
                        denom += *v;
                    }
                    for v in aa.iter_mut() {
                        *v = (*v - mx).exp();
                        denom += *v;
                    }
                    *l += (mx + denom.ln() - p) * scale;
                    let gd = g_unit / denom;
                    for v in ab.iter_mut() {
                        *v *= gd;
                    }
                    for v in aa.iter_mut() {
                        *v *= gd;
                    }
                    *c += e_pos * gd - g_unit;
                }
            });
    }
    // Serial fixed-order loss sum (anchor slots ascending; each slot
    // already holds both directed terms).
    let mut loss = 0.0f64;
    for &l in &s.loss {
        loss += f64::from(l);
    }

    // Reverse index: for every row j, the (anchor slot, flat coefficient
    // index) pairs with j ∈ N(anchor). Built serially by counting sort —
    // entries for each j are ordered by (anchor slot, neighbour slot),
    // giving pass 2 a fixed per-row accumulation order.
    s.rev_off.clear();
    s.rev_off.resize(n + 1, 0);
    for &i in anchors {
        for &jn in nb.neighbors(i) {
            s.rev_off[jn as usize + 1] += 1;
        }
    }
    for j in 0..n {
        s.rev_off[j + 1] += s.rev_off[j];
    }
    s.rev_anchor.clear();
    s.rev_anchor.resize(nnz, 0);
    s.rev_flat.clear();
    s.rev_flat.resize(nnz, 0);
    {
        let mut cursor: Vec<usize> = s.rev_off[..n].to_vec();
        for (slot, &i) in anchors.iter().enumerate() {
            let base = s.aoff[slot];
            for (t, &jn) in nb.neighbors(i).iter().enumerate() {
                let j = jn as usize;
                s.rev_anchor[cursor[j]] = slot as u32;
                s.rev_flat[cursor[j]] = (base + t) as u32;
                cursor[j] += 1;
            }
        }
    }

    // Pass 2 — parallel over output rows, each row owned by one worker
    // and accumulated in a fixed order: anchor-side terms (neighbour
    // slots ascending), the positive term, then reverse terms (anchor
    // slots ascending).
    {
        let (u1, u2) = (&s.u1, &s.u2);
        let (e12, e11, e21, e22) = (&s.e12, &s.e11, &s.e21, &s.e22);
        let (aoff, anchor_of, cpos) = (&s.aoff, &s.anchor_of, &s.cpos);
        let (rev_off, rev_anchor, rev_flat) = (&s.rev_off, &s.rev_anchor, &s.rev_flat);
        s.du1
            .as_mut_slice()
            .par_chunks_mut(d)
            .zip(s.du2.as_mut_slice().par_chunks_mut(d))
            .enumerate()
            .for_each(|(j, (r1, r2))| {
                let slot = anchor_of[j] as usize;
                if slot != u32::MAX as usize {
                    let base = aoff[slot];
                    for (t, &jn) in nb.neighbors(j).iter().enumerate() {
                        let cj = jn as usize;
                        let f = base + t;
                        ops::axpy_slice(r1, e12[f], u2.row(cj));
                        ops::axpy_slice(r1, e11[f], u1.row(cj));
                        ops::axpy_slice(r2, e21[f], u1.row(cj));
                        ops::axpy_slice(r2, e22[f], u2.row(cj));
                    }
                    ops::axpy_slice(r1, cpos[slot], u2.row(j));
                    ops::axpy_slice(r2, cpos[slot], u1.row(j));
                }
                for idx in rev_off[j]..rev_off[j + 1] {
                    let aslot = rev_anchor[idx] as usize;
                    let f = rev_flat[idx] as usize;
                    let i = anchors[aslot];
                    ops::axpy_slice(r1, e11[f], u1.row(i));
                    ops::axpy_slice(r1, e21[f], u2.row(i));
                    ops::axpy_slice(r2, e12[f], u1.row(i));
                    ops::axpy_slice(r2, e22[f], u2.row(i));
                }
            });
    }

    loss::normalize_backward_into(&s.u1, &s.n1, &s.du1, &mut s.d_z1);
    loss::normalize_backward_into(&s.u2, &s.n2, &s.du2, &mut s.d_z2);
    loss as f32
}

/// Localized strategy: neighbourhood-restricted negatives over a fixed
/// topology, optionally over an anchor subset (mini-batch seed rows). The
/// paper this follows trains without a projection head; model steps feed
/// encoder outputs straight in.
#[derive(Debug, Default)]
pub struct LocalizedInfoNce {
    tau: f32,
    nb: Neighborhoods,
    anchors: Option<Vec<usize>>,
    all: Vec<usize>,
    s: LocalizedScratch,
}

impl LocalizedInfoNce {
    /// A localized strategy at temperature `tau` over topology `nb`.
    pub fn new(tau: f32, nb: Neighborhoods) -> Self {
        LocalizedInfoNce {
            tau,
            nb,
            ..LocalizedInfoNce::default()
        }
    }

    /// Replaces the neighbourhood topology (mini-batch steps rebuild it
    /// per sampled subgraph).
    pub fn set_topology(&mut self, nb: Neighborhoods) {
        self.nb = nb;
    }

    /// Restricts loss terms to `anchors` (`None` = every row anchors).
    pub fn set_anchors(&mut self, anchors: Option<Vec<usize>>) {
        self.anchors = anchors;
    }

    /// The current topology.
    pub fn neighborhoods(&self) -> &Neighborhoods {
        &self.nb
    }
}

impl ContrastiveLoss for LocalizedInfoNce {
    fn name(&self) -> &'static str {
        "localized"
    }

    fn compute(&mut self, z1: &Matrix, z2: &Matrix) -> f32 {
        let n = z1.rows();
        let anchors: &[usize] = match &self.anchors {
            Some(a) => a,
            None => {
                if self.all.len() != n {
                    self.all = (0..n).collect();
                }
                &self.all
            }
        };
        localized_info_nce_with(z1, z2, self.tau, &self.nb, anchors, &mut self.s)
    }

    fn d_z1(&self) -> &Matrix {
        self.s.d_z1()
    }

    fn d_z2(&self) -> &Matrix {
        self.s.d_z2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_linalg::SeedRng;

    fn rand_matrix(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = SeedRng::new(seed);
        let mut m = Matrix::zeros(r, c);
        for v in m.as_mut_slice() {
            *v = rng.normal();
        }
        m
    }

    /// Central finite-difference check against an analytic gradient.
    fn fd_check(
        x: &Matrix,
        analytic: &Matrix,
        mut f: impl FnMut(&Matrix) -> f32,
        tol: f32,
        what: &str,
    ) {
        let eps = 1e-2f32;
        let mut xp = x.clone();
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let orig = xp.get(r, c);
                xp.set(r, c, orig + eps);
                let lp = f(&xp);
                xp.set(r, c, orig - eps);
                let lm = f(&xp);
                xp.set(r, c, orig);
                let fd = (lp - lm) / (2.0 * eps);
                let an = analytic.get(r, c);
                assert!(
                    (fd - an).abs() < tol * (1.0 + fd.abs().max(an.abs())),
                    "{what}({r},{c}): fd {fd} vs analytic {an}"
                );
            }
        }
    }

    fn ring_graph(n: usize) -> CsrGraph {
        let edges: Vec<(usize, usize)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn small_neg_grad_check() {
        let z1 = rand_matrix(6, 5, 40);
        let z2 = rand_matrix(6, 5, 41);
        let negatives = vec![0, 2, 5];
        let mut s = SmallNegScratch::default();
        let _ = small_neg_info_nce_with(&z1, &z2, 0.7, &negatives, &mut s);
        let (d1, d2) = (s.d_z1().clone(), s.d_z2().clone());
        let f1 = |x: &Matrix| {
            let mut fs = SmallNegScratch::default();
            small_neg_info_nce_with(x, &z2, 0.7, &negatives, &mut fs)
        };
        fd_check(&z1, &d1, f1, 5e-2, "smallneg d_z1");
        let f2 = |x: &Matrix| {
            let mut fs = SmallNegScratch::default();
            small_neg_info_nce_with(&z1, x, 0.7, &negatives, &mut fs)
        };
        fd_check(&z2, &d2, f2, 5e-2, "smallneg d_z2");
    }

    /// With negatives = all rows the general kernel computes the full
    /// objective (different summation order, so tolerance not bitwise).
    #[test]
    fn small_neg_all_rows_matches_full_within_tolerance() {
        let z1 = rand_matrix(9, 4, 42);
        let z2 = rand_matrix(9, 4, 43);
        let all: Vec<usize> = (0..9).collect();
        let mut s = SmallNegScratch::default();
        let l = small_neg_info_nce_with(&z1, &z2, 0.5, &all, &mut s);
        let full = loss::info_nce(&z1, &z2, 0.5);
        assert!((l - full.loss).abs() < 1e-5, "{l} vs {}", full.loss);
        for (a, b) in [(s.d_z1(), &full.d_z1), (s.d_z2(), &full.d_z2)] {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    /// The strategy's degenerate dispatch is *bitwise* the full kernel.
    #[test]
    fn small_neg_strategy_all_rows_dispatches_to_full_bitwise() {
        let z1 = rand_matrix(7, 4, 44);
        let z2 = rand_matrix(7, 4, 45);
        let mut strat = SmallNegInfoNce::new(0.5);
        // Unsorted with duplicates: set semantics still recognise 0..7.
        strat.set_negatives(&[6, 0, 3, 1, 5, 2, 4, 3]);
        let l = strat.compute(&z1, &z2);
        let mut fs = InfoNceScratch::default();
        let lf = loss::info_nce_with(&z1, &z2, 0.5, &mut fs);
        assert_eq!(l.to_bits(), lf.to_bits());
        assert_eq!(strat.d_z1(), fs.d_z1());
        assert_eq!(strat.d_z2(), fs.d_z2());
        assert_eq!(strat.name(), "smallneg");
    }

    #[test]
    fn small_neg_single_anchor_is_zero() {
        let z1 = rand_matrix(1, 4, 46);
        let z2 = rand_matrix(1, 4, 47);
        let mut strat = SmallNegInfoNce::new(0.5);
        strat.set_negatives(&[0]);
        let l = strat.compute(&z1, &z2);
        assert_eq!(l, 0.0);
        assert!(strat.d_z1().as_slice().iter().all(|&v| v == 0.0));
        assert!(strat.d_z2().as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn small_neg_scratch_reuse_is_bitwise() {
        let z1 = rand_matrix(8, 4, 48);
        let z2 = rand_matrix(8, 4, 49);
        let negatives = vec![1, 4, 6];
        let mut cold = SmallNegScratch::default();
        let lc = small_neg_info_nce_with(&z1, &z2, 0.6, &negatives, &mut cold);
        let mut warm = SmallNegScratch::default();
        // Pollute with a different shape and set, then recompute.
        let _ = small_neg_info_nce_with(
            &rand_matrix(5, 3, 50),
            &rand_matrix(5, 3, 51),
            0.6,
            &[0, 2],
            &mut warm,
        );
        let lw = small_neg_info_nce_with(&z1, &z2, 0.6, &negatives, &mut warm);
        assert_eq!(lc.to_bits(), lw.to_bits());
        assert_eq!(cold.d_z1(), warm.d_z1());
        assert_eq!(cold.d_z2(), warm.d_z2());
    }

    #[test]
    fn neighborhoods_match_khop() {
        let g = ring_graph(8);
        for hops in 1..=3 {
            let nb = Neighborhoods::from_graph(&g, hops);
            assert_eq!(nb.len(), 8);
            for v in 0..8 {
                let expect: Vec<u32> = g
                    .khop_neighbors(v, hops)
                    .iter()
                    .map(|&u| u as u32)
                    .collect();
                assert_eq!(nb.neighbors(v), expect.as_slice(), "v={v} hops={hops}");
            }
        }
    }

    #[test]
    fn localized_grad_check() {
        let g = ring_graph(7);
        let nb = Neighborhoods::from_graph(&g, 2);
        let anchors: Vec<usize> = (0..7).collect();
        let z1 = rand_matrix(7, 5, 52);
        let z2 = rand_matrix(7, 5, 53);
        let mut s = LocalizedScratch::default();
        let _ = localized_info_nce_with(&z1, &z2, 0.7, &nb, &anchors, &mut s);
        let (d1, d2) = (s.d_z1().clone(), s.d_z2().clone());
        let f1 = |x: &Matrix| {
            let mut fs = LocalizedScratch::default();
            localized_info_nce_with(x, &z2, 0.7, &nb, &anchors, &mut fs)
        };
        fd_check(&z1, &d1, f1, 5e-2, "localized d_z1");
        let f2 = |x: &Matrix| {
            let mut fs = LocalizedScratch::default();
            localized_info_nce_with(&z1, x, 0.7, &nb, &anchors, &mut fs)
        };
        fd_check(&z2, &d2, f2, 5e-2, "localized d_z2");
    }

    /// Dense reference: the localized objective computed naively per
    /// anchor in f64, gradients by finite differences above — here the
    /// loss value itself.
    #[test]
    fn localized_matches_naive_reference() {
        let g = ring_graph(6);
        let nb = Neighborhoods::from_graph(&g, 1);
        let anchors = vec![0, 2, 5];
        let z1 = rand_matrix(6, 4, 54);
        let z2 = rand_matrix(6, 4, 55);
        let tau = 0.5f64;
        let mut s = LocalizedScratch::default();
        let l = localized_info_nce_with(&z1, &z2, tau as f32, &nb, &anchors, &mut s);

        let unit = |m: &Matrix, r: usize| -> Vec<f64> {
            let row = m.row(r);
            let n = row
                .iter()
                .map(|&v| f64::from(v) * f64::from(v))
                .sum::<f64>()
                .sqrt();
            row.iter().map(|&v| f64::from(v) / n.max(1e-12)).collect()
        };
        let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
        let mut expect = 0.0f64;
        for &i in &anchors {
            let ui1 = unit(&z1, i);
            let ui2 = unit(&z2, i);
            let p = dot(&ui1, &ui2) / tau;
            for (anchor, own, other) in [(&ui1, &z1, &z2), (&ui2, &z2, &z1)] {
                let mut denom = p.exp();
                for &jn in nb.neighbors(i) {
                    let j = jn as usize;
                    denom += (dot(anchor, &unit(other, j)) / tau).exp();
                    denom += (dot(anchor, &unit(own, j)) / tau).exp();
                }
                expect += denom.ln() - p;
            }
        }
        expect /= (2 * anchors.len()) as f64;
        assert!(
            (f64::from(l) - expect).abs() < 1e-5,
            "{l} vs reference {expect}"
        );
    }

    #[test]
    fn localized_isolated_anchor_contributes_zero() {
        // Node 3 is isolated: edges only among {0,1,2}.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2)]);
        let nb = Neighborhoods::from_graph(&g, 1);
        let z1 = rand_matrix(4, 4, 56);
        let z2 = rand_matrix(4, 4, 57);
        let mut s_all = LocalizedScratch::default();
        let l_all = localized_info_nce_with(&z1, &z2, 0.5, &nb, &[0, 1, 2, 3], &mut s_all);
        // The isolated anchor's gradient rows are exactly zero.
        assert!(s_all.d_z1().row(3).iter().all(|&v| v == 0.0));
        assert!(s_all.d_z2().row(3).iter().all(|&v| v == 0.0));
        // And its loss term is zero: the connected-only mean differs just
        // by the anchor-count normalisation 2·4 vs 2·3.
        let mut s_conn = LocalizedScratch::default();
        let l_conn = localized_info_nce_with(&z1, &z2, 0.5, &nb, &[0, 1, 2], &mut s_conn);
        assert!((l_all * 4.0 - l_conn * 3.0).abs() < 1e-6);
    }

    #[test]
    fn localized_anchor_subset_and_strategy_agree() {
        let g = ring_graph(9);
        let nb = Neighborhoods::from_graph(&g, 1);
        let z1 = rand_matrix(9, 4, 58);
        let z2 = rand_matrix(9, 4, 59);
        let anchors = vec![1, 4, 7];
        let mut s = LocalizedScratch::default();
        let l_fn = localized_info_nce_with(&z1, &z2, 0.5, &nb, &anchors, &mut s);
        let mut strat = LocalizedInfoNce::new(0.5, Neighborhoods::from_graph(&g, 1));
        strat.set_anchors(Some(anchors));
        let l_strat = strat.compute(&z1, &z2);
        assert_eq!(l_fn.to_bits(), l_strat.to_bits());
        assert_eq!(s.d_z1(), strat.d_z1());
        assert_eq!(strat.name(), "localized");
        // None = all rows.
        strat.set_anchors(None);
        let l_all = strat.compute(&z1, &z2);
        let mut s_all = LocalizedScratch::default();
        let all: Vec<usize> = (0..9).collect();
        let l_ref = localized_info_nce_with(&z1, &z2, 0.5, &nb, &all, &mut s_all);
        assert_eq!(l_all.to_bits(), l_ref.to_bits());
    }

    #[test]
    fn localized_scratch_reuse_is_bitwise() {
        let g = ring_graph(8);
        let nb = Neighborhoods::from_graph(&g, 2);
        let z1 = rand_matrix(8, 4, 60);
        let z2 = rand_matrix(8, 4, 61);
        let all: Vec<usize> = (0..8).collect();
        let mut cold = LocalizedScratch::default();
        let lc = localized_info_nce_with(&z1, &z2, 0.5, &nb, &all, &mut cold);
        let mut warm = LocalizedScratch::default();
        let g2 = ring_graph(5);
        let nb2 = Neighborhoods::from_graph(&g2, 1);
        let _ = localized_info_nce_with(
            &rand_matrix(5, 3, 62),
            &rand_matrix(5, 3, 63),
            0.5,
            &nb2,
            &[0, 3],
            &mut warm,
        );
        let lw = localized_info_nce_with(&z1, &z2, 0.5, &nb, &all, &mut warm);
        assert_eq!(lc.to_bits(), lw.to_bits());
        assert_eq!(cold.d_z1(), warm.d_z1());
        assert_eq!(cold.d_z2(), warm.d_z2());
    }

    #[test]
    fn full_strategy_is_bitwise_info_nce() {
        let z1 = rand_matrix(6, 4, 64);
        let z2 = rand_matrix(6, 4, 65);
        let mut strat = FullInfoNce::new(0.5);
        let l = strat.compute(&z1, &z2);
        let out = loss::info_nce(&z1, &z2, 0.5);
        assert_eq!(l.to_bits(), out.loss.to_bits());
        assert_eq!(strat.d_z1(), &out.d_z1);
        assert_eq!(strat.d_z2(), &out.d_z2);
        assert_eq!(strat.name(), "full");
    }

    /// Strategies are object-safe: the model steps hold them behind the
    /// trait when they don't need strategy-specific setters.
    #[test]
    fn strategies_work_behind_the_trait_object() {
        let z1 = rand_matrix(6, 4, 66);
        let z2 = rand_matrix(6, 4, 67);
        let g = ring_graph(6);
        let mut smallneg = SmallNegInfoNce::new(0.5);
        smallneg.set_negatives(&[0, 3]);
        let mut strategies: Vec<Box<dyn ContrastiveLoss>> = vec![
            Box::new(FullInfoNce::new(0.5)),
            Box::new(smallneg),
            Box::new(LocalizedInfoNce::new(0.5, Neighborhoods::from_graph(&g, 1))),
        ];
        for s in &mut strategies {
            let l = s.compute(&z1, &z2);
            assert!(l.is_finite(), "{} produced {l}", s.name());
            assert_eq!(s.d_z1().shape(), (6, 4));
            assert_eq!(s.d_z2().shape(), (6, 4));
        }
    }
}
