//! Frozen (inference-only) encoders — the serving-side view of a trained
//! model.
//!
//! The GCL protocol the paper follows (§V, Alg. 1) is pretrain-once /
//! probe-many: after pre-training the encoder is *frozen* and reused for
//! every downstream query. [`FrozenEncoder`] captures exactly that
//! contract: the trained weights of one encoder family plus the forward
//! pass, with no optimiser state, caches, or gradients attached. It is the
//! unit of persistence for `e2gcl-serve` artifacts and the engine behind
//! inductive (ego-subgraph) inference.
//!
//! [`EncoderWorkspace`] is the matching scratch buffer: repeated
//! [`FrozenEncoder::embed_with`] calls reuse one workspace and stay off the
//! allocator once warm (the GCN/SAGE paths reuse the PR-2 `*Workspace`
//! types; the single-matmul SGC path has no workspace to speak of and
//! writes through a plain output buffer).

use crate::gcn::{GcnEncoder, GcnWorkspace};
use crate::sage::{SageEncoder, SageWorkspace};
use crate::sgc::SgcEncoder;
use e2gcl_graph::{norm, CsrGraph, SparseMatrix};
use e2gcl_linalg::Matrix;

/// A trained encoder with its weights frozen for inference.
#[derive(Clone, Debug)]
pub enum FrozenEncoder {
    /// The Eq. (1) GCN (the paper's default).
    Gcn(GcnEncoder),
    /// SGC — `A_n^L X W`, the Theorem-1 relaxation as an encoder.
    Sgc(SgcEncoder),
    /// GraphSAGE-mean.
    Sage(SageEncoder),
}

/// Reusable forward buffers for one [`FrozenEncoder`]; build with
/// [`FrozenEncoder::workspace`] and thread through [`FrozenEncoder::embed_with`].
#[derive(Debug)]
pub enum EncoderWorkspace {
    /// Scratch for the GCN forward.
    Gcn(GcnWorkspace),
    /// Scratch for the SAGE forward.
    Sage(SageWorkspace),
    /// SGC output staging (the forward itself is one SpMM power + matmul).
    Sgc(Matrix),
}

impl FrozenEncoder {
    /// Short kind name (artifact headers, logs).
    pub fn kind(&self) -> &'static str {
        match self {
            FrozenEncoder::Gcn(_) => "gcn",
            FrozenEncoder::Sgc(_) => "sgc",
            FrozenEncoder::Sage(_) => "sage",
        }
    }

    /// How many hops of the graph influence one node's embedding — the `L`
    /// of the paper's `A_n^L X θ` relaxation. An `L`-hop ego subgraph (with
    /// full-graph degrees; see `e2gcl-serve`) reproduces a node's
    /// full-graph embedding exactly.
    pub fn receptive_hops(&self) -> usize {
        match self {
            FrozenEncoder::Gcn(e) => e.num_layers(),
            FrozenEncoder::Sgc(e) => e.layers,
            FrozenEncoder::Sage(e) => e.num_layers(),
        }
    }

    /// Input feature dimension `d_x`.
    pub fn input_dim(&self) -> usize {
        match self {
            FrozenEncoder::Gcn(e) => e.input_dim(),
            FrozenEncoder::Sgc(e) => e.input_dim(),
            FrozenEncoder::Sage(e) => e.input_dim(),
        }
    }

    /// Output embedding dimension.
    pub fn output_dim(&self) -> usize {
        match self {
            FrozenEncoder::Gcn(e) => e.output_dim(),
            FrozenEncoder::Sgc(e) => e.output_dim(),
            FrozenEncoder::Sage(e) => e.output_dim(),
        }
    }

    /// Flat weight matrices, in the family's canonical order.
    pub fn params(&self) -> &[Matrix] {
        match self {
            FrozenEncoder::Gcn(e) => e.params(),
            FrozenEncoder::Sgc(e) => e.params(),
            FrozenEncoder::Sage(e) => e.params(),
        }
    }

    /// The adjacency operator this family aggregates with: symmetric GCN
    /// normalisation for GCN/SGC, row-stochastic mean for SAGE.
    pub fn adjacency(&self, g: &CsrGraph) -> SparseMatrix {
        match self {
            FrozenEncoder::Gcn(_) | FrozenEncoder::Sgc(_) => norm::normalized_adjacency(g),
            FrozenEncoder::Sage(_) => norm::row_normalized_adjacency(g),
        }
    }

    /// True when this family normalises symmetrically
    /// (`D̃^{-1/2}(A+I)D̃^{-1/2}`); false for SAGE's row-stochastic mean.
    pub fn symmetric_norm(&self) -> bool {
        !matches!(self, FrozenEncoder::Sage(_))
    }

    /// Inference forward pass (allocating).
    pub fn embed(&self, adj: &SparseMatrix, x: &Matrix) -> Matrix {
        match self {
            FrozenEncoder::Gcn(e) => e.embed(adj, x),
            FrozenEncoder::Sgc(e) => e.embed(adj, x),
            FrozenEncoder::Sage(e) => e.embed(adj, x),
        }
    }

    /// A fresh scratch workspace for [`Self::embed_with`].
    pub fn workspace(&self) -> EncoderWorkspace {
        match self {
            FrozenEncoder::Gcn(_) => EncoderWorkspace::Gcn(GcnWorkspace::new()),
            FrozenEncoder::Sage(_) => EncoderWorkspace::Sage(SageWorkspace::new()),
            FrozenEncoder::Sgc(_) => EncoderWorkspace::Sgc(Matrix::default()),
        }
    }

    /// [`Self::embed`] through a reusable workspace: bit-identical output,
    /// no fresh activation buffers once the workspace is warm (GCN/SAGE).
    ///
    /// A workspace built for a different encoder family is transparently
    /// replaced with a fresh matching one (losing its warm buffers, nothing
    /// else).
    pub fn embed_with<'w>(
        &self,
        adj: &SparseMatrix,
        x: &Matrix,
        ws: &'w mut EncoderWorkspace,
    ) -> &'w Matrix {
        let aligned = matches!(
            (self, &*ws),
            (FrozenEncoder::Gcn(_), EncoderWorkspace::Gcn(_))
                | (FrozenEncoder::Sage(_), EncoderWorkspace::Sage(_))
                | (FrozenEncoder::Sgc(_), EncoderWorkspace::Sgc(_))
        );
        if !aligned {
            *ws = self.workspace();
        }
        match (self, ws) {
            (FrozenEncoder::Gcn(e), EncoderWorkspace::Gcn(w)) => {
                e.forward_with(adj, x, w);
                w.output()
            }
            (FrozenEncoder::Sage(e), EncoderWorkspace::Sage(w)) => {
                e.forward_with(adj, x, w);
                w.output()
            }
            (FrozenEncoder::Sgc(e), EncoderWorkspace::Sgc(out)) => {
                out.copy_from(&e.embed(adj, x));
                out
            }
            _ => unreachable!("workspace family aligned above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_linalg::SeedRng;

    fn graph() -> (CsrGraph, Matrix) {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let mut x = Matrix::zeros(5, 3);
        for v in 0..5 {
            for c in 0..3 {
                x.set(v, c, (v * 3 + c) as f32 * 0.1 - 0.5);
            }
        }
        (g, x)
    }

    fn families() -> Vec<FrozenEncoder> {
        let mut rng = SeedRng::new(42);
        vec![
            FrozenEncoder::Gcn(GcnEncoder::new(&[3, 4, 2], &mut rng)),
            FrozenEncoder::Sgc(SgcEncoder::new(3, 2, 2, &mut rng)),
            FrozenEncoder::Sage(SageEncoder::new(&[3, 4, 2], &mut rng)),
        ]
    }

    #[test]
    fn metadata_per_family() {
        for enc in families() {
            assert_eq!(enc.receptive_hops(), 2, "{}", enc.kind());
            assert_eq!(enc.input_dim(), 3, "{}", enc.kind());
            assert_eq!(enc.output_dim(), 2, "{}", enc.kind());
            assert!(!enc.params().is_empty());
        }
        let kinds: Vec<&str> = families().iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, vec!["gcn", "sgc", "sage"]);
    }

    #[test]
    fn embed_with_matches_embed_bitwise() {
        let (g, x) = graph();
        for enc in families() {
            let adj = enc.adjacency(&g);
            let direct = enc.embed(&adj, &x);
            let mut ws = enc.workspace();
            // Cold and warm passes both reproduce the allocating result.
            for _ in 0..2 {
                let out = enc.embed_with(&adj, &x, &mut ws);
                assert_eq!(out, &direct, "{}", enc.kind());
            }
        }
    }

    #[test]
    fn mismatched_workspace_is_replaced_not_wrong() {
        let (g, x) = graph();
        let encs = families();
        let adj = encs[0].adjacency(&g);
        let direct = encs[0].embed(&adj, &x);
        // Hand the GCN a SGC-family workspace: it must self-heal.
        let mut ws = encs[1].workspace();
        assert_eq!(encs[0].embed_with(&adj, &x, &mut ws), &direct);
        assert!(matches!(ws, EncoderWorkspace::Gcn(_)));
    }
}
