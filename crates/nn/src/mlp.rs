//! Linear layers and small MLPs (projection heads, decoders).

use e2gcl_linalg::{activations, init, Matrix, SeedRng};

/// A dense layer `Y = X W + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weight matrix (`in x out`).
    pub w: Matrix,
    /// Bias (`out`).
    pub b: Vec<f32>,
}

/// Cache for [`Linear::backward`].
#[derive(Debug)]
pub struct LinearCache {
    input: Matrix,
}

/// Gradients of a linear layer.
#[derive(Debug)]
pub struct LinearGrads {
    /// `∂L/∂W`.
    pub dw: Matrix,
    /// `∂L/∂b`.
    pub db: Vec<f32>,
    /// `∂L/∂X` (for chaining).
    pub dx: Matrix,
}

impl Linear {
    /// Xavier-initialised layer.
    pub fn new(d_in: usize, d_out: usize, rng: &mut SeedRng) -> Self {
        Self {
            w: init::xavier_uniform(d_in, d_out, rng),
            b: vec![0.0; d_out],
        }
    }

    /// Forward pass with cache.
    pub fn forward(&self, x: &Matrix) -> (Matrix, LinearCache) {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(&self.b);
        (y, LinearCache { input: x.clone() })
    }

    /// Inference-only forward.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(&self.b);
        y
    }

    /// Backward pass given `∂L/∂Y`.
    pub fn backward(&self, cache: &LinearCache, dy: &Matrix) -> LinearGrads {
        let dw = cache.input.transpose_matmul(dy);
        let mut db = vec![0.0f32; self.b.len()];
        for r in 0..dy.rows() {
            for (acc, &g) in db.iter_mut().zip(dy.row(r)) {
                *acc += g;
            }
        }
        let dx = dy.matmul_transpose(&self.w);
        LinearGrads { dw, db, dx }
    }

    /// SGD-style in-place update (used by probes; encoders go through
    /// [`crate::optim`]).
    pub fn step(&mut self, grads: &LinearGrads, lr: f32, weight_decay: f32) {
        if weight_decay > 0.0 {
            let wd = self.w.clone();
            self.w.axpy(-lr * weight_decay, &wd);
        }
        self.w.axpy(-lr, &grads.dw);
        for (b, &g) in self.b.iter_mut().zip(&grads.db) {
            *b -= lr * g;
        }
    }
}

/// A two-layer MLP `Y = ELU(X W1 + b1) W2 + b2` — the projection head used
/// by GRACE/GCA-style InfoNCE training.
#[derive(Clone, Debug)]
pub struct Mlp {
    /// First layer.
    pub l1: Linear,
    /// Second layer.
    pub l2: Linear,
}

/// Cache for [`Mlp::backward`].
#[derive(Debug)]
pub struct MlpCache {
    c1: LinearCache,
    z1: Matrix,
    c2: LinearCache,
}

/// Gradients of an MLP.
#[derive(Debug)]
pub struct MlpGrads {
    /// First-layer gradients.
    pub g1: LinearGrads,
    /// Second-layer gradients.
    pub g2: LinearGrads,
    /// `∂L/∂X`.
    pub dx: Matrix,
}

/// Reusable forward/backward buffers for one [`Mlp`] data flow (projection
/// heads in the per-epoch hot path). See [`crate::gcn::GcnWorkspace`] for
/// the allocation-reuse contract.
///
/// The input is not cached: pass the *same* `x` to
/// [`Mlp::backward_with`] that the preceding [`Mlp::forward_with`] saw.
#[derive(Debug)]
pub struct MlpWorkspace {
    /// First-layer pre-activation `Z1`.
    z1: Matrix,
    /// `ELU(Z1)`.
    a1: Matrix,
    /// Head output `Y`.
    y: Matrix,
    /// Backward: `∂L/∂A1`.
    da1: Matrix,
    /// Gradients of both layers. `grads.dx` is left empty — read the input
    /// gradient via [`MlpWorkspace::d_input`] instead.
    grads: MlpGrads,
}

impl Default for MlpWorkspace {
    fn default() -> Self {
        let empty = || LinearGrads {
            dw: Matrix::default(),
            db: Vec::new(),
            dx: Matrix::default(),
        };
        Self {
            z1: Matrix::default(),
            a1: Matrix::default(),
            y: Matrix::default(),
            da1: Matrix::default(),
            grads: MlpGrads {
                g1: empty(),
                g2: empty(),
                dx: Matrix::default(),
            },
        }
    }
}

impl MlpWorkspace {
    /// An empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Head output from the last [`Mlp::forward_with`].
    pub fn output(&self) -> &Matrix {
        &self.y
    }

    /// Layer gradients from the last [`Mlp::backward_with`] (feed to
    /// [`Mlp::step`]).
    pub fn grads(&self) -> &MlpGrads {
        &self.grads
    }

    /// `∂L/∂X` from the last [`Mlp::backward_with`].
    pub fn d_input(&self) -> &Matrix {
        &self.grads.g1.dx
    }
}

/// Column sums of `m` into a reusable vector (the bias gradient), matching
/// the accumulation order of [`Linear::backward`] exactly.
fn col_sums_into(m: &Matrix, out: &mut Vec<f32>, len: usize) {
    out.clear();
    out.resize(len, 0.0);
    for r in 0..m.rows() {
        for (acc, &g) in out.iter_mut().zip(m.row(r)) {
            *acc += g;
        }
    }
}

impl Mlp {
    /// Builds a `d_in -> hidden -> d_out` head.
    pub fn new(d_in: usize, hidden: usize, d_out: usize, rng: &mut SeedRng) -> Self {
        Self {
            l1: Linear::new(d_in, hidden, rng),
            l2: Linear::new(hidden, d_out, rng),
        }
    }

    /// Forward pass with cache.
    pub fn forward(&self, x: &Matrix) -> (Matrix, MlpCache) {
        let (z1, c1) = self.l1.forward(x);
        let mut a1 = z1.clone();
        activations::elu_inplace(&mut a1);
        let (y, c2) = self.l2.forward(&a1);
        (y, MlpCache { c1, z1, c2 })
    }

    /// Inference-only forward.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        let mut a1 = self.l1.apply(x);
        activations::elu_inplace(&mut a1);
        self.l2.apply(&a1)
    }

    /// Backward pass given `∂L/∂Y`.
    pub fn backward(&self, cache: &MlpCache, dy: &Matrix) -> MlpGrads {
        let g2 = self.l2.backward(&cache.c2, dy);
        let mut da1 = g2.dx.clone();
        let mask = activations::elu_grad_mask(&cache.z1);
        da1.mul_assign_elem(&mask);
        let g1 = self.l1.backward(&cache.c1, &da1);
        let dx = g1.dx.clone();
        MlpGrads { g1, g2, dx }
    }

    /// In-place SGD update.
    pub fn step(&mut self, grads: &MlpGrads, lr: f32, weight_decay: f32) {
        self.l1.step(&grads.g1, lr, weight_decay);
        self.l2.step(&grads.g2, lr, weight_decay);
    }

    /// [`Self::forward`] into a reusable workspace: bit-identical output
    /// ([`MlpWorkspace::output`]), zero matrix allocations once warm.
    pub fn forward_with(&self, x: &Matrix, ws: &mut MlpWorkspace) {
        x.matmul_into(&self.l1.w, &mut ws.z1);
        ws.z1.add_row_broadcast(&self.l1.b);
        ws.a1.copy_from(&ws.z1);
        activations::elu_inplace(&mut ws.a1);
        ws.a1.matmul_into(&self.l2.w, &mut ws.y);
        ws.y.add_row_broadcast(&self.l2.b);
    }

    /// [`Self::backward`] into the same workspace as the preceding
    /// [`Self::forward_with`] (pass the *same* `x`): bit-identical gradients
    /// ([`MlpWorkspace::grads`], [`MlpWorkspace::d_input`]).
    pub fn backward_with(&self, x: &Matrix, dy: &Matrix, ws: &mut MlpWorkspace) {
        ws.a1.transpose_matmul_into(dy, &mut ws.grads.g2.dw);
        col_sums_into(dy, &mut ws.grads.g2.db, self.l2.b.len());
        dy.matmul_transpose_into(&self.l2.w, &mut ws.grads.g2.dx);
        ws.da1.copy_from(&ws.grads.g2.dx);
        activations::elu_mask_mul_inplace(&mut ws.da1, &ws.z1);
        x.transpose_matmul_into(&ws.da1, &mut ws.grads.g1.dw);
        col_sums_into(&ws.da1, &mut ws.grads.g1.db, self.l1.b.len());
        ws.da1
            .matmul_transpose_into(&self.l1.w, &mut ws.grads.g1.dx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_forward_known() {
        let mut l = Linear::new(2, 1, &mut SeedRng::new(0));
        l.w = Matrix::from_rows(&[&[1.0], &[2.0]]);
        l.b = vec![0.5];
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 3.0]]);
        let (y, _) = l.forward(&x);
        assert_eq!(y, Matrix::from_rows(&[&[3.5], &[6.5]]));
    }

    #[test]
    fn linear_grad_check() {
        let mut rng = SeedRng::new(1);
        let l = Linear::new(3, 2, &mut rng);
        let x = Matrix::from_rows(&[&[0.3, -0.7, 1.2], &[1.0, 0.1, -0.4]]);
        let (y, cache) = l.forward(&x);
        // L = 0.5 ||Y||^2 so dL/dY = Y.
        let grads = l.backward(&cache, &y);
        let eps = 1e-3;
        // Check dW numerically.
        let mut l2 = l.clone();
        for r in 0..3 {
            for c in 0..2 {
                let orig = l2.w.get(r, c);
                l2.w.set(r, c, orig + eps);
                let lp = 0.5 * l2.apply(&x).as_slice().iter().map(|v| v * v).sum::<f32>();
                l2.w.set(r, c, orig - eps);
                let lm = 0.5 * l2.apply(&x).as_slice().iter().map(|v| v * v).sum::<f32>();
                l2.w.set(r, c, orig);
                let fd = (lp - lm) / (2.0 * eps);
                assert!((fd - grads.dw.get(r, c)).abs() < 1e-2, "dW({r},{c})");
            }
        }
        // Check dX numerically.
        let mut xm = x.clone();
        for r in 0..2 {
            for c in 0..3 {
                let orig = xm.get(r, c);
                xm.set(r, c, orig + eps);
                let lp = 0.5 * l.apply(&xm).as_slice().iter().map(|v| v * v).sum::<f32>();
                xm.set(r, c, orig - eps);
                let lm = 0.5 * l.apply(&xm).as_slice().iter().map(|v| v * v).sum::<f32>();
                xm.set(r, c, orig);
                let fd = (lp - lm) / (2.0 * eps);
                assert!((fd - grads.dx.get(r, c)).abs() < 1e-2, "dX({r},{c})");
            }
        }
    }

    #[test]
    fn mlp_grad_check_input() {
        let mut rng = SeedRng::new(2);
        let m = Mlp::new(3, 4, 2, &mut rng);
        let x = Matrix::from_rows(&[&[0.5, -0.2, 0.8]]);
        let (y, cache) = m.forward(&x);
        let grads = m.backward(&cache, &y);
        let eps = 1e-3;
        let mut xm = x.clone();
        for c in 0..3 {
            let orig = xm.get(0, c);
            xm.set(0, c, orig + eps);
            let lp = 0.5 * m.apply(&xm).as_slice().iter().map(|v| v * v).sum::<f32>();
            xm.set(0, c, orig - eps);
            let lm = 0.5 * m.apply(&xm).as_slice().iter().map(|v| v * v).sum::<f32>();
            xm.set(0, c, orig);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads.dx.get(0, c)).abs() < 2e-2 * (1.0 + fd.abs()),
                "dX(0,{c}): {fd} vs {}",
                grads.dx.get(0, c)
            );
        }
    }

    /// Workspace path must be bit-identical to the allocating path.
    #[test]
    fn workspace_path_matches_allocating_path_bitwise() {
        let mut rng = SeedRng::new(5);
        let m = Mlp::new(3, 4, 2, &mut rng);
        let x = Matrix::from_rows(&[&[0.5, -0.2, 0.8], &[-1.0, 0.3, 0.1]]);
        let (y, cache) = m.forward(&x);
        let grads = m.backward(&cache, &y);
        let mut ws = MlpWorkspace::new();
        for _ in 0..2 {
            m.forward_with(&x, &mut ws);
            assert_eq!(ws.output(), &y);
            let dy = ws.output().clone();
            m.backward_with(&x, &dy, &mut ws);
            assert_eq!(ws.grads().g1.dw, grads.g1.dw);
            assert_eq!(ws.grads().g1.db, grads.g1.db);
            assert_eq!(ws.grads().g2.dw, grads.g2.dw);
            assert_eq!(ws.grads().g2.db, grads.g2.db);
            assert_eq!(ws.d_input(), &grads.dx);
        }
    }

    #[test]
    fn step_moves_against_gradient() {
        let mut rng = SeedRng::new(3);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = Matrix::from_rows(&[&[1.0, -1.0]]);
        let before = {
            let y = l.apply(&x);
            0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
        };
        for _ in 0..50 {
            let (y, cache) = l.forward(&x);
            let grads = l.backward(&cache, &y);
            l.step(&grads, 0.1, 0.0);
        }
        let after = {
            let y = l.apply(&x);
            0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
        };
        assert!(
            after < before * 0.1,
            "loss should shrink: {before} -> {after}"
        );
    }
}
