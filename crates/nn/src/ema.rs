//! Exponential-moving-average target parameters (BGRL / AFGRL).

use e2gcl_linalg::Matrix;

/// Updates `target ← decay·target + (1−decay)·online`, element-wise, for a
/// matched list of parameter matrices.
pub fn ema_update(target: &mut [Matrix], online: &[Matrix], decay: f32) {
    assert_eq!(target.len(), online.len());
    for (t, o) in target.iter_mut().zip(online) {
        assert_eq!(t.shape(), o.shape());
        let (ts, os) = (t.as_mut_slice(), o.as_slice());
        for (tv, &ov) in ts.iter_mut().zip(os) {
            *tv = decay * *tv + (1.0 - decay) * ov;
        }
    }
}

/// Cosine-annealed decay schedule used by BGRL: starts at `base` and
/// approaches 1.0 as `step / total` grows.
pub fn annealed_decay(base: f32, step: usize, total: usize) -> f32 {
    if total == 0 {
        return base;
    }
    let progress = (step as f32 / total as f32).clamp(0.0, 1.0);
    1.0 - (1.0 - base) * (0.5 * (1.0 + (std::f32::consts::PI * progress).cos()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ema_converges_to_online() {
        let online = vec![Matrix::filled(2, 2, 1.0)];
        let mut target = vec![Matrix::zeros(2, 2)];
        for _ in 0..200 {
            ema_update(&mut target, &online, 0.9);
        }
        assert!((target[0].get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ema_decay_one_freezes_target() {
        let online = vec![Matrix::filled(1, 1, 5.0)];
        let mut target = vec![Matrix::filled(1, 1, 2.0)];
        ema_update(&mut target, &online, 1.0);
        assert_eq!(target[0].get(0, 0), 2.0);
    }

    #[test]
    fn annealed_decay_endpoints() {
        assert!((annealed_decay(0.99, 0, 100) - 0.99).abs() < 1e-6);
        assert!((annealed_decay(0.99, 100, 100) - 1.0).abs() < 1e-6);
        let mid = annealed_decay(0.99, 50, 100);
        assert!(mid > 0.99 && mid < 1.0);
    }
}
