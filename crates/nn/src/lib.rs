//! Neural-network substrate: the paper's encoders, losses and decoders with
//! hand-derived gradients.
//!
//! The reproduction environment has no autodiff framework, so each building
//! block implements an explicit `forward` that caches what its `backward`
//! needs. The architectures are exactly the ones the paper trains:
//!
//! * [`gcn::GcnEncoder`] — the Eq. (1) GCN `H^{l+1} = σ(A_n H^l W^l)`;
//! * [`mlp::Linear`] / [`mlp::Mlp`] — projection heads and decoders;
//! * [`loss`] — Eq. (5) margin contrastive loss, InfoNCE (GRACE/GCA), BCE,
//!   softmax cross-entropy, cosine bootstrap (BGRL);
//! * [`contrast`] — pluggable [`ContrastiveLoss`] strategies: the full
//!   O(n²) InfoNCE plus sub-quadratic small-negative-set and
//!   neighbourhood-localized kernels (DESIGN.md §15);
//! * [`optim`] — SGD and Adam;
//! * [`probe`] — the `l2`-regularised linear probe used by the evaluation
//!   protocol (§V-A2), plus the link-prediction decoder;
//! * [`ema`] — exponential-moving-average target parameters (BGRL/AFGRL);
//! * [`frozen`] — inference-only [`frozen::FrozenEncoder`], the unit of
//!   persistence and serving (`e2gcl-serve` artifacts);
//! * [`scratch`] — the per-run [`TrainScratch`] buffer pool; together with
//!   the `*Workspace` types ([`gcn::GcnWorkspace`], [`sage::SageWorkspace`],
//!   [`mlp::MlpWorkspace`]) and the `*_with` loss variants it lets
//!   steady-state training epochs run without allocating new matrices.
//!
//! Every gradient is validated against central finite differences in the
//! test suites (`grad check` tests in each module).

pub mod contrast;
pub mod ema;
pub mod frozen;
pub mod gcn;
pub mod loss;
pub mod mlp;
pub mod optim;
pub mod probe;
pub mod sage;
pub mod scratch;
pub mod sgc;

pub use contrast::{
    ContrastiveLoss, FullInfoNce, LocalizedInfoNce, Neighborhoods, SmallNegInfoNce,
};
pub use frozen::{EncoderWorkspace, FrozenEncoder};
pub use gcn::{GcnEncoder, GcnWorkspace};
pub use mlp::{Linear, Mlp, MlpWorkspace};
pub use optim::{Adam, Optimizer, Sgd};
pub use sage::{SageEncoder, SageWorkspace};
pub use scratch::TrainScratch;
pub use sgc::SgcEncoder;
