//! GraphSAGE-mean encoder (Hamilton et al. 2017) with manual backprop.
//!
//! `H^{l+1} = σ( H^l W_self + (D⁻¹ A H^l) W_neigh )` — separate transforms
//! for the node itself and the mean of its neighbours. Third member of the
//! encoder family behind the §IV-C encoder-agnosticism experiments.

use e2gcl_graph::SparseMatrix;
use e2gcl_linalg::{activations, init, Matrix, SeedRng};

/// A multi-layer GraphSAGE-mean encoder (ReLU between layers, linear last).
///
/// Parameters are stored flat as `[W_self⁰, W_neigh⁰, W_self¹, …]` so the
/// shared optimisers (`&mut [Matrix]`) apply directly.
#[derive(Clone, Debug)]
pub struct SageEncoder {
    params: Vec<Matrix>,
    num_layers: usize,
}

/// Cache for [`SageEncoder::backward`].
#[derive(Debug)]
pub struct SageCache {
    /// Layer inputs `H^l`.
    inputs: Vec<Matrix>,
    /// Mean-aggregated inputs `D⁻¹ A H^l`.
    aggregated: Vec<Matrix>,
    /// Pre-activations `Z^l`.
    pre_activation: Vec<Matrix>,
}

/// Reusable forward/backward buffers for one SAGE data flow
/// (the scratch-layer counterpart of [`SageCache`]; see
/// [`crate::gcn::GcnWorkspace`] for the contract).
///
/// Unlike the GCN workspace, layer *inputs* are not copied: layer 0 reads
/// the caller's `x` directly (pass the same `x` to
/// [`SageEncoder::backward_with`]) and deeper layers read the pooled
/// `hidden` activations.
#[derive(Debug, Default)]
pub struct SageWorkspace {
    /// Mean-aggregated inputs `D⁻¹ A H^l` per layer.
    aggregated: Vec<Matrix>,
    /// Pre-activations `Z^l` per layer.
    pre_activation: Vec<Matrix>,
    /// Post-ReLU activations for non-final layers.
    hidden: Vec<Matrix>,
    /// Final embeddings `H^L`.
    out: Matrix,
    /// Forward: staging for `(D⁻¹ A H^l) W_neigh`.
    zn: Matrix,
    /// Backward: running `∂L/∂Z^l`.
    dz: Matrix,
    /// Backward: staging for `dZ W_neighᵀ`.
    dzw: Matrix,
    /// Backward: staging for `Aᵀ (dZ W_neighᵀ)`.
    spmm_buf: Matrix,
    /// Backward: `dZ W_selfᵀ + Aᵀ(dZ W_neighᵀ)` through ReLU.
    dh: Matrix,
    /// Gradients in [`SageEncoder::params`] order.
    grads: Vec<Matrix>,
}

impl SageWorkspace {
    /// An empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_layers(&mut self, l_num: usize) {
        while self.aggregated.len() < l_num {
            self.aggregated.push(Matrix::default());
            self.pre_activation.push(Matrix::default());
            self.hidden.push(Matrix::default());
            self.grads.push(Matrix::default());
            self.grads.push(Matrix::default());
        }
    }

    /// Final embeddings from the last [`SageEncoder::forward_with`].
    pub fn output(&self) -> &Matrix {
        &self.out
    }

    /// Gradients from the last [`SageEncoder::backward_with`].
    pub fn grads(&self) -> &[Matrix] {
        &self.grads
    }

    /// Mutable gradient views (accumulation, clipping, fault injection).
    pub fn grads_mut(&mut self) -> &mut [Matrix] {
        &mut self.grads
    }
}

impl SageEncoder {
    /// Builds an encoder with the given layer dims, e.g. `[d_x, 128, 64]`.
    pub fn new(dims: &[usize], rng: &mut SeedRng) -> Self {
        assert!(dims.len() >= 2);
        let mut params = Vec::with_capacity(2 * (dims.len() - 1));
        for w in dims.windows(2) {
            params.push(init::xavier_uniform(w[0], w[1], rng)); // W_self
            params.push(init::xavier_uniform(w[0], w[1], rng)); // W_neigh
        }
        Self {
            params,
            num_layers: dims.len() - 1,
        }
    }

    /// Rebuilds an encoder from a trained flat parameter list
    /// `[W_self⁰, W_neigh⁰, …]` (the deserialisation path of `e2gcl-serve`
    /// artifacts).
    ///
    /// # Panics
    /// Panics unless `params` holds exactly two matrices per layer.
    pub fn from_params(params: Vec<Matrix>, num_layers: usize) -> Self {
        assert!(num_layers >= 1, "need at least one layer");
        assert_eq!(
            params.len(),
            2 * num_layers,
            "expected two matrices (self/neigh) per layer"
        );
        Self { params, num_layers }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.params[0].rows()
    }

    /// Output embedding dimension.
    pub fn output_dim(&self) -> usize {
        self.params[2 * (self.num_layers - 1)].cols()
    }

    fn w_self(&self, l: usize) -> &Matrix {
        &self.params[2 * l]
    }

    fn w_neigh(&self, l: usize) -> &Matrix {
        &self.params[2 * l + 1]
    }

    /// Flat parameter slice (`[W_self⁰, W_neigh⁰, …]`).
    pub fn params(&self) -> &[Matrix] {
        &self.params
    }

    /// Mutable flat parameter slice for the optimisers.
    pub fn params_mut(&mut self) -> &mut [Matrix] {
        &mut self.params
    }

    /// Forward pass. `mean_adj` must be the row-stochastic aggregation
    /// matrix (e.g. [`e2gcl_graph::norm::row_normalized_adjacency`]).
    pub fn forward(&self, mean_adj: &SparseMatrix, x: &Matrix) -> (Matrix, SageCache) {
        let l_num = self.num_layers;
        let mut inputs = Vec::with_capacity(l_num);
        let mut aggregated = Vec::with_capacity(l_num);
        let mut pre_activation = Vec::with_capacity(l_num);
        let mut h = x.clone();
        for l in 0..l_num {
            let agg = mean_adj.spmm(&h);
            let mut z = h.matmul(self.w_self(l));
            z.add_assign(&agg.matmul(self.w_neigh(l)));
            inputs.push(h);
            aggregated.push(agg);
            h = if l + 1 < l_num {
                let mut a = z.clone();
                activations::relu_inplace(&mut a);
                pre_activation.push(z);
                a
            } else {
                pre_activation.push(z.clone());
                z
            };
        }
        (
            h,
            SageCache {
                inputs,
                aggregated,
                pre_activation,
            },
        )
    }

    /// Inference-only forward.
    pub fn embed(&self, mean_adj: &SparseMatrix, x: &Matrix) -> Matrix {
        self.forward(mean_adj, x).0
    }

    /// [`Self::forward`] into a reusable workspace: bit-identical
    /// embeddings ([`SageWorkspace::output`]), zero matrix allocations once
    /// the workspace is warm.
    pub fn forward_with(&self, mean_adj: &SparseMatrix, x: &Matrix, ws: &mut SageWorkspace) {
        let l_num = self.num_layers;
        ws.ensure_layers(l_num);
        for l in 0..l_num {
            let input = if l == 0 { x } else { &ws.hidden[l - 1] };
            mean_adj.spmm_into(input, &mut ws.aggregated[l]);
            let input = if l == 0 { x } else { &ws.hidden[l - 1] };
            input.matmul_into(self.w_self(l), &mut ws.pre_activation[l]);
            ws.aggregated[l].matmul_into(self.w_neigh(l), &mut ws.zn);
            ws.pre_activation[l].add_assign(&ws.zn);
            if l + 1 < l_num {
                ws.hidden[l].copy_from(&ws.pre_activation[l]);
                activations::relu_inplace(&mut ws.hidden[l]);
            } else {
                ws.out.copy_from(&ws.pre_activation[l]);
            }
        }
    }

    /// [`Self::backward`] into the same workspace as the preceding
    /// [`Self::forward_with`] (pass the *same* `x`): bit-identical gradients
    /// ([`SageWorkspace::grads`]). The transposed aggregation matrix is
    /// still rebuilt per call — it tracks the per-epoch view graph.
    pub fn backward_with(
        &self,
        mean_adj: &SparseMatrix,
        x: &Matrix,
        ws: &mut SageWorkspace,
        d_out: &Matrix,
    ) {
        let l_num = self.num_layers;
        ws.dz.copy_from(d_out);
        let mean_adj_t = mean_adj.transpose();
        for l in (0..l_num).rev() {
            let input = if l == 0 { x } else { &ws.hidden[l - 1] };
            input.transpose_matmul_into(&ws.dz, &mut ws.grads[2 * l]); // dW_self
            ws.aggregated[l].transpose_matmul_into(&ws.dz, &mut ws.grads[2 * l + 1]); // dW_neigh
            if l > 0 {
                // dH = dZ W_selfᵀ + Aᵀ(dZ W_neighᵀ), through ReLU.
                ws.dz.matmul_transpose_into(self.w_self(l), &mut ws.dh);
                ws.dz.matmul_transpose_into(self.w_neigh(l), &mut ws.dzw);
                mean_adj_t.spmm_into(&ws.dzw, &mut ws.spmm_buf);
                ws.dh.add_assign(&ws.spmm_buf);
                activations::relu_mask_mul_inplace(&mut ws.dh, &ws.pre_activation[l - 1]);
                std::mem::swap(&mut ws.dz, &mut ws.dh);
            }
        }
    }

    /// Backward pass: gradients in [`Self::params`] order.
    pub fn backward(
        &self,
        mean_adj: &SparseMatrix,
        cache: &SageCache,
        d_out: &Matrix,
    ) -> Vec<Matrix> {
        let l_num = self.num_layers;
        let mut grads: Vec<Matrix> = Vec::with_capacity(2 * l_num);
        let mut dz = d_out.clone();
        let mean_adj_t = mean_adj.transpose();
        for l in (0..l_num).rev() {
            let dw_self = cache.inputs[l].transpose_matmul(&dz);
            let dw_neigh = cache.aggregated[l].transpose_matmul(&dz);
            if l > 0 {
                // dH = dZ W_selfᵀ + Aᵀ(dZ W_neighᵀ), through ReLU.
                let mut dh = dz.matmul_transpose(self.w_self(l));
                dh.add_assign(&mean_adj_t.spmm(&dz.matmul_transpose(self.w_neigh(l))));
                let mask = activations::relu_grad_mask(&cache.pre_activation[l - 1]);
                dh.mul_assign_elem(&mask);
                dz = dh;
            }
            grads.push(dw_neigh);
            grads.push(dw_self);
        }
        grads.reverse();
        grads
    }

    /// One SGD step with the gradients from [`Self::backward`].
    pub fn sgd_step(&mut self, grads: &[Matrix], lr: f32) {
        assert_eq!(self.params.len(), grads.len());
        for (p, g) in self.params.iter_mut().zip(grads) {
            p.axpy(-lr, g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_graph::{norm, CsrGraph};

    fn setup() -> (SparseMatrix, Matrix) {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let adj = norm::row_normalized_adjacency(&g);
        let mut rng = SeedRng::new(0);
        let mut x = Matrix::zeros(5, 3);
        for v in x.as_mut_slice() {
            *v = rng.normal();
        }
        (adj, x)
    }

    #[test]
    fn forward_shapes() {
        let (adj, x) = setup();
        let enc = SageEncoder::new(&[3, 6, 2], &mut SeedRng::new(1));
        let (h, cache) = enc.forward(&adj, &x);
        assert_eq!(h.shape(), (5, 2));
        assert_eq!(cache.inputs.len(), 2);
        assert_eq!(enc.params().len(), 4);
    }

    #[test]
    fn grad_check_all_params() {
        let (adj, x) = setup();
        let mut enc = SageEncoder::new(&[3, 4, 2], &mut SeedRng::new(2));
        let (h, cache) = enc.forward(&adj, &x);
        let grads = enc.backward(&adj, &cache, &h); // L = 0.5||H||²
        let eps = 1e-3f32;
        for (pi, _) in grads.iter().enumerate() {
            let (rows, cols) = grads[pi].shape();
            for r in 0..rows {
                for c in 0..cols {
                    let orig = enc.params()[pi].get(r, c);
                    enc.params_mut()[pi].set(r, c, orig + eps);
                    let lp = 0.5
                        * enc
                            .embed(&adj, &x)
                            .as_slice()
                            .iter()
                            .map(|v| v * v)
                            .sum::<f32>();
                    enc.params_mut()[pi].set(r, c, orig - eps);
                    let lm = 0.5
                        * enc
                            .embed(&adj, &x)
                            .as_slice()
                            .iter()
                            .map(|v| v * v)
                            .sum::<f32>();
                    enc.params_mut()[pi].set(r, c, orig);
                    let fd = (lp - lm) / (2.0 * eps);
                    let an = grads[pi].get(r, c);
                    assert!(
                        (fd - an).abs() < 2e-2 * (1.0 + fd.abs().max(an.abs())),
                        "param {pi} ({r},{c}): fd {fd} vs analytic {an}"
                    );
                }
            }
        }
    }

    /// Workspace path must be bit-identical to the allocating path.
    #[test]
    fn workspace_path_matches_allocating_path_bitwise() {
        let (adj, x) = setup();
        let enc = SageEncoder::new(&[3, 6, 2], &mut SeedRng::new(9));
        let (h, cache) = enc.forward(&adj, &x);
        let grads = enc.backward(&adj, &cache, &h);
        let mut ws = SageWorkspace::new();
        for _ in 0..2 {
            enc.forward_with(&adj, &x, &mut ws);
            assert_eq!(ws.output(), &h);
            let d_out = ws.output().clone();
            enc.backward_with(&adj, &x, &mut ws, &d_out);
            assert_eq!(ws.grads(), &grads[..]);
        }
    }

    #[test]
    fn sgd_descends() {
        let (adj, x) = setup();
        let mut enc = SageEncoder::new(&[3, 4, 2], &mut SeedRng::new(3));
        let loss = |e: &SageEncoder| {
            0.5 * e
                .embed(&adj, &x)
                .as_slice()
                .iter()
                .map(|v| v * v)
                .sum::<f32>()
        };
        let before = loss(&enc);
        for _ in 0..30 {
            let (h, cache) = enc.forward(&adj, &x);
            let grads = enc.backward(&adj, &cache, &h);
            enc.sgd_step(&grads, 0.05);
        }
        assert!(loss(&enc) < 0.2 * before);
    }

    #[test]
    fn isolated_node_uses_self_transform_only() {
        let g = CsrGraph::from_edges(2, &[]);
        let adj = norm::row_normalized_adjacency(&g);
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let enc = SageEncoder::new(&[2, 2], &mut SeedRng::new(4));
        let h = enc.embed(&adj, &x);
        // With self-loop-only aggregation the output is x(W_self + W_neigh).
        let mut w = enc.params()[0].clone();
        w.add_assign(&enc.params()[1]);
        assert_eq!(h, x.matmul(&w));
    }
}
