//! The Eq. (1) GCN encoder with manual backpropagation.
//!
//! `H^{l+1} = σ(A_n H^l W^l)` with ReLU between layers and a linear final
//! layer (the standard contrastive-learning encoder configuration). Because
//! `A_n` is symmetric, the backward pass reuses the same SpMM kernel.

use e2gcl_graph::SparseMatrix;
use e2gcl_linalg::{activations, init, Matrix, SeedRng};

/// A multi-layer GCN encoder `f_θ`.
#[derive(Clone, Debug)]
pub struct GcnEncoder {
    /// Per-layer weights `W^l` (`d_l x d_{l+1}`).
    weights: Vec<Matrix>,
}

/// Activations cached by [`GcnEncoder::forward`] for the backward pass.
#[derive(Debug)]
pub struct GcnCache {
    /// `P^l = A_n H^l` for each layer input (the SpMM result pre-weights).
    propagated: Vec<Matrix>,
    /// Pre-activation `Z^l = P^l W^l` for each layer.
    pre_activation: Vec<Matrix>,
}

/// Reusable forward/backward buffers for one GCN data flow.
///
/// [`GcnEncoder::forward_with`]/[`GcnEncoder::backward_with`] compute
/// bit-identical results to [`GcnEncoder::forward`]/[`GcnEncoder::backward`]
/// but write into these buffers instead of allocating: after the first
/// (warm-up) epoch a forward/backward pair allocates zero new matrices.
/// Keep one workspace per concurrent data flow — e.g. one per contrastive
/// view — since the forward activations must survive until the matching
/// backward.
#[derive(Debug, Default)]
pub struct GcnWorkspace {
    /// `P^l = A_n H^l` per layer.
    propagated: Vec<Matrix>,
    /// Pre-activation `Z^l = P^l W^l` per layer.
    pre_activation: Vec<Matrix>,
    /// Post-ReLU activations `H^{l+1}` for non-final layers.
    hidden: Vec<Matrix>,
    /// Final embeddings `H^L`.
    out: Matrix,
    /// Backward: running `∂L/∂Z^l`.
    dz: Matrix,
    /// Backward: staging for `dZ^l (W^l)^T`.
    dzw: Matrix,
    /// Backward: staging for `A_n (dZ W^T)`.
    dh: Matrix,
    /// Per-layer weight gradients, [`GcnEncoder::params`] order.
    grads: Vec<Matrix>,
}

impl GcnWorkspace {
    /// An empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_layers(&mut self, l_num: usize) {
        while self.propagated.len() < l_num {
            self.propagated.push(Matrix::default());
            self.pre_activation.push(Matrix::default());
            self.hidden.push(Matrix::default());
            self.grads.push(Matrix::default());
        }
    }

    /// Final embeddings from the last [`GcnEncoder::forward_with`].
    pub fn output(&self) -> &Matrix {
        &self.out
    }

    /// Weight gradients from the last [`GcnEncoder::backward_with`].
    pub fn grads(&self) -> &[Matrix] {
        &self.grads
    }

    /// Mutable gradient views (for accumulation across views, clipping, and
    /// the engine's fault injection).
    pub fn grads_mut(&mut self) -> &mut [Matrix] {
        &mut self.grads
    }
}

impl GcnEncoder {
    /// Creates an encoder with the given layer dimensions,
    /// e.g. `[d_x, 128, 64]` for the paper's 2-layer GCN.
    pub fn new(dims: &[usize], rng: &mut SeedRng) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        let weights = dims
            .windows(2)
            .map(|w| init::xavier_uniform(w[0], w[1], rng))
            .collect();
        Self { weights }
    }

    /// Rebuilds an encoder from previously trained per-layer weights (the
    /// deserialisation path of `e2gcl-serve` artifacts).
    ///
    /// # Panics
    /// Panics if `weights` is empty or consecutive layer shapes do not chain
    /// (`W^l` columns must equal `W^{l+1}` rows).
    pub fn from_weights(weights: Vec<Matrix>) -> Self {
        assert!(!weights.is_empty(), "need at least one layer");
        for pair in weights.windows(2) {
            assert_eq!(pair[0].cols(), pair[1].rows(), "layer shapes do not chain");
        }
        Self { weights }
    }

    /// Number of layers `L`.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Output embedding dimension.
    pub fn output_dim(&self) -> usize {
        self.weights
            .last()
            .expect("encoder has at least one layer")
            .cols()
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.weights[0].rows()
    }

    /// Immutable parameter views (for EMA targets and tests).
    pub fn params(&self) -> &[Matrix] {
        &self.weights
    }

    /// Mutable parameter views (for the optimiser).
    pub fn params_mut(&mut self) -> &mut [Matrix] {
        &mut self.weights
    }

    /// Forward pass returning the final embeddings and the cache for
    /// [`Self::backward`]. `adj` must be the pre-normalised `A_n` of the
    /// graph the features `x` live on.
    pub fn forward(&self, adj: &SparseMatrix, x: &Matrix) -> (Matrix, GcnCache) {
        let l_num = self.weights.len();
        let mut propagated = Vec::with_capacity(l_num);
        let mut pre_activation = Vec::with_capacity(l_num);
        let mut h = x.clone();
        for (l, w) in self.weights.iter().enumerate() {
            let p = adj.spmm(&h);
            let z = p.matmul(w);
            propagated.push(p);
            h = if l + 1 < l_num {
                let mut a = z.clone();
                activations::relu_inplace(&mut a);
                pre_activation.push(z);
                a
            } else {
                pre_activation.push(z.clone());
                z
            };
        }
        (
            h,
            GcnCache {
                propagated,
                pre_activation,
            },
        )
    }

    /// [`Self::forward`] into a reusable workspace: bit-identical
    /// embeddings (read them via [`GcnWorkspace::output`]) with zero matrix
    /// allocations once the workspace is warm.
    pub fn forward_with(&self, adj: &SparseMatrix, x: &Matrix, ws: &mut GcnWorkspace) {
        let l_num = self.weights.len();
        ws.ensure_layers(l_num);
        for (l, w) in self.weights.iter().enumerate() {
            let input = if l == 0 { x } else { &ws.hidden[l - 1] };
            adj.spmm_into(input, &mut ws.propagated[l]);
            ws.propagated[l].matmul_into(w, &mut ws.pre_activation[l]);
            if l + 1 < l_num {
                ws.hidden[l].copy_from(&ws.pre_activation[l]);
                activations::relu_inplace(&mut ws.hidden[l]);
            } else {
                ws.out.copy_from(&ws.pre_activation[l]);
            }
        }
    }

    /// [`Self::backward`] into the same workspace as the preceding
    /// [`Self::forward_with`]: bit-identical per-layer gradients (read them
    /// via [`GcnWorkspace::grads`]) with zero matrix allocations once warm.
    pub fn backward_with(&self, adj: &SparseMatrix, ws: &mut GcnWorkspace, d_out: &Matrix) {
        let l_num = self.weights.len();
        ws.dz.copy_from(d_out); // dL/dZ^{L-1} (final layer is linear)
        for l in (0..l_num).rev() {
            // dW^l = (A_n H^l)^T dZ^l
            ws.propagated[l].transpose_matmul_into(&ws.dz, &mut ws.grads[l]);
            if l > 0 {
                // dH^l = A_n^T (dZ^l W^l^T); A_n symmetric.
                ws.dz.matmul_transpose_into(&self.weights[l], &mut ws.dzw);
                adj.spmm_into(&ws.dzw, &mut ws.dh);
                // Through the ReLU of the previous layer.
                activations::relu_mask_mul_inplace(&mut ws.dh, &ws.pre_activation[l - 1]);
                std::mem::swap(&mut ws.dz, &mut ws.dh);
            }
        }
    }

    /// Inference-only forward (no cache).
    pub fn embed(&self, adj: &SparseMatrix, x: &Matrix) -> Matrix {
        let l_num = self.weights.len();
        let mut h = x.clone();
        for (l, w) in self.weights.iter().enumerate() {
            h = adj.spmm(&h).matmul(w);
            if l + 1 < l_num {
                activations::relu_inplace(&mut h);
            }
        }
        h
    }

    /// Backward pass: given `d_out = ∂L/∂H^L`, returns per-layer weight
    /// gradients (same shapes as [`Self::params`]).
    pub fn backward(&self, adj: &SparseMatrix, cache: &GcnCache, d_out: &Matrix) -> Vec<Matrix> {
        let l_num = self.weights.len();
        let mut grads: Vec<Matrix> = Vec::with_capacity(l_num);
        let mut dz = d_out.clone(); // dL/dZ^{L-1} (final layer is linear)
        for l in (0..l_num).rev() {
            // dW^l = (A_n H^l)^T dZ^l
            grads.push(cache.propagated[l].transpose_matmul(&dz));
            if l > 0 {
                // dH^l = A_n^T (dZ^l W^l^T); A_n symmetric.
                let dh = adj.spmm(&dz.matmul_transpose(&self.weights[l]));
                // Through the ReLU of the previous layer.
                let mask = activations::relu_grad_mask(&cache.pre_activation[l - 1]);
                let mut next = dh;
                next.mul_assign_elem(&mask);
                dz = next;
            }
        }
        grads.reverse();
        grads
    }

    /// Accumulates `scale * grads` into a gradient accumulator (allocating it
    /// on first use). Used when a training step sums losses over several
    /// forward passes (two positive views).
    pub fn accumulate(acc: &mut Option<Vec<Matrix>>, grads: Vec<Matrix>, scale: f32) {
        match acc {
            None => {
                let mut g = grads;
                for m in &mut g {
                    m.scale(scale);
                }
                *acc = Some(g);
            }
            Some(a) => {
                for (am, gm) in a.iter_mut().zip(&grads) {
                    am.axpy(scale, gm);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_graph::{norm, CsrGraph};

    fn tiny() -> (SparseMatrix, Matrix) {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let adj = norm::normalized_adjacency(&g);
        let x = Matrix::from_rows(&[
            &[1.0, 0.0, 0.5],
            &[0.0, 1.0, -0.5],
            &[1.0, 1.0, 0.0],
            &[0.0, 0.0, 1.0],
        ]);
        (adj, x)
    }

    #[test]
    fn forward_shapes() {
        let (adj, x) = tiny();
        let enc = GcnEncoder::new(&[3, 5, 2], &mut SeedRng::new(0));
        let (h, cache) = enc.forward(&adj, &x);
        assert_eq!(h.shape(), (4, 2));
        assert_eq!(cache.propagated.len(), 2);
        assert_eq!(cache.pre_activation[0].shape(), (4, 5));
    }

    #[test]
    fn embed_matches_forward() {
        let (adj, x) = tiny();
        let enc = GcnEncoder::new(&[3, 4, 2], &mut SeedRng::new(1));
        let (h, _) = enc.forward(&adj, &x);
        assert_eq!(enc.embed(&adj, &x), h);
    }

    /// Central finite-difference check of every weight gradient against the
    /// analytic backward pass, with loss L = 0.5 * ||H||_F^2 (so dL/dH = H).
    #[test]
    fn grad_check_weights() {
        let (adj, x) = tiny();
        let mut enc = GcnEncoder::new(&[3, 4, 2], &mut SeedRng::new(2));
        let (h, cache) = enc.forward(&adj, &x);
        let grads = enc.backward(&adj, &cache, &h);
        let eps = 1e-3f32;
        for (l, grad) in grads.iter().enumerate() {
            let (rows, cols) = enc.params()[l].shape();
            for r in 0..rows {
                for c in 0..cols {
                    let orig = enc.params()[l].get(r, c);
                    enc.params_mut()[l].set(r, c, orig + eps);
                    let hp = enc.embed(&adj, &x);
                    let lp = 0.5 * hp.as_slice().iter().map(|v| v * v).sum::<f32>();
                    enc.params_mut()[l].set(r, c, orig - eps);
                    let hm = enc.embed(&adj, &x);
                    let lm = 0.5 * hm.as_slice().iter().map(|v| v * v).sum::<f32>();
                    enc.params_mut()[l].set(r, c, orig);
                    let fd = (lp - lm) / (2.0 * eps);
                    let an = grad.get(r, c);
                    assert!(
                        (fd - an).abs() < 2e-2 * (1.0 + fd.abs().max(an.abs())),
                        "layer {l} ({r},{c}): fd {fd} vs analytic {an}"
                    );
                }
            }
        }
    }

    /// The workspace path must be *bit-identical* to the allocating path —
    /// the golden determinism fingerprints depend on it.
    #[test]
    fn workspace_path_matches_allocating_path_bitwise() {
        let (adj, x) = tiny();
        let enc = GcnEncoder::new(&[3, 5, 2], &mut SeedRng::new(7));
        let (h, cache) = enc.forward(&adj, &x);
        let grads = enc.backward(&adj, &cache, &h);
        let mut ws = GcnWorkspace::new();
        // Two passes: cold (growing buffers) and warm (pure reuse) must both
        // reproduce the allocating results exactly.
        for _ in 0..2 {
            enc.forward_with(&adj, &x, &mut ws);
            assert_eq!(ws.output(), &h);
            let d_out = ws.output().clone();
            enc.backward_with(&adj, &mut ws, &d_out);
            assert_eq!(ws.grads(), &grads[..]);
        }
    }

    #[test]
    fn accumulate_sums_and_scales() {
        let g1 = vec![Matrix::filled(2, 2, 1.0)];
        let g2 = vec![Matrix::filled(2, 2, 3.0)];
        let mut acc = None;
        GcnEncoder::accumulate(&mut acc, g1, 0.5);
        GcnEncoder::accumulate(&mut acc, g2, 1.0);
        assert_eq!(acc.unwrap()[0], Matrix::filled(2, 2, 3.5));
    }

    #[test]
    fn single_layer_encoder_is_linear() {
        let (adj, x) = tiny();
        let enc = GcnEncoder::new(&[3, 2], &mut SeedRng::new(3));
        let h = enc.embed(&adj, &x);
        // Linear layer: doubling the input doubles the output.
        let mut x2 = x.clone();
        x2.scale(2.0);
        let h2 = enc.embed(&adj, &x2);
        for (a, b) in h.as_slice().iter().zip(h2.as_slice()) {
            assert!((2.0 * a - b).abs() < 1e-5);
        }
    }
}
