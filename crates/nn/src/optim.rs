//! First-order optimisers over lists of parameter matrices.

use e2gcl_linalg::Matrix;

/// A stateful optimiser for a fixed list of parameter matrices.
pub trait Optimizer {
    /// Applies one update: `params[i] -= step(grads[i])`.
    fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]);
}

/// Plain SGD with optional weight decay.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
}

impl Sgd {
    /// SGD with the given learning rate and no decay.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            weight_decay: 0.0,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len());
        for (p, g) in params.iter_mut().zip(grads) {
            if self.weight_decay > 0.0 {
                let decay = p.clone();
                p.axpy(-self.lr * self.weight_decay, &decay);
            }
            p.axpy(-self.lr, g);
        }
    }
}

/// Adam (Kingma & Ba) with decoupled weight decay.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    /// Decoupled (AdamW-style) weight decay.
    pub weight_decay: f32,
    t: u32,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the paper-typical defaults (β₁=0.9, β₂=0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with decoupled weight decay.
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        Self {
            weight_decay,
            ..Self::new(lr)
        }
    }

    /// The mutable optimiser state for checkpointing: step count plus the
    /// first- and second-moment estimates (empty until the first `step`).
    pub fn state(&self) -> (u32, &[Matrix], &[Matrix]) {
        (self.t, &self.m, &self.v)
    }

    /// Restores state captured by [`Adam::state`], overwriting whatever the
    /// optimiser had accumulated. `m` and `v` must have equal lengths.
    pub fn restore_state(&mut self, t: u32, m: Vec<Matrix>, v: Vec<Matrix>) {
        assert_eq!(m.len(), v.len(), "moment lists must pair up");
        self.t = t;
        self.m = m;
        self.v = v;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len());
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
            self.v = self.m.clone();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "optimiser bound to a different param list"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i].as_slice();
            let m = self.m[i].as_mut_slice();
            let v = self.v[i].as_mut_slice();
            let p = params[i].as_mut_slice();
            for j in 0..g.len() {
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g[j];
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g[j] * g[j];
                let mhat = m[j] / b1t;
                let vhat = v[j] / b2t;
                p[j] -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * p[j]);
            }
        }
    }
}

/// Global L2 norm over a list of gradient matrices (`sqrt(sum of squares)`).
pub fn global_grad_norm(grads: &[Matrix]) -> f32 {
    let sq: f32 = grads
        .iter()
        .map(|g| g.as_slice().iter().map(|&v| v * v).sum::<f32>())
        .sum();
    sq.sqrt()
}

/// Scales every gradient in place so the *global* L2 norm is at most
/// `max_norm`; returns the pre-clip norm. Gradients containing NaN/Inf are
/// left untouched (the norm itself is non-finite, and the numeric guard —
/// not the clipper — is responsible for those).
pub fn clip_grad_norm(grads: &mut [Matrix], max_norm: f32) -> f32 {
    let norm = global_grad_norm(grads);
    if norm.is_finite() && norm > max_norm && max_norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            for v in g.as_mut_slice() {
                *v *= scale;
            }
        }
    }
    norm
}

/// True if any gradient entry is NaN or infinite.
pub fn grads_non_finite(grads: &[Matrix]) -> bool {
    grads.iter().any(|g| g.has_non_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic bowl: minimise 0.5 * ||p - target||^2.
    fn converges<O: Optimizer>(mut opt: O, iters: usize) -> f32 {
        let target = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let mut params = vec![Matrix::zeros(2, 2)];
        for _ in 0..iters {
            let mut g = params[0].clone();
            g.sub_assign(&target);
            opt.step(&mut params, &[g]);
        }
        let mut d = params[0].clone();
        d.sub_assign(&target);
        d.frobenius_norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(converges(Sgd::new(0.1), 200) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(converges(Adam::new(0.1), 500) < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut opt = Sgd {
            lr: 0.1,
            weight_decay: 1.0,
        };
        let mut params = vec![Matrix::filled(1, 1, 10.0)];
        let zero = vec![Matrix::zeros(1, 1)];
        for _ in 0..10 {
            opt.step(&mut params, &zero);
        }
        assert!(params[0].get(0, 0) < 10.0 * 0.9f32.powi(9));
    }

    #[test]
    fn clip_rescales_only_above_threshold() {
        // Norm of [3, 4] is 5: clipping at 10 is a no-op, at 1 it rescales.
        let mut grads = vec![Matrix::from_rows(&[&[3.0, 4.0]])];
        let pre = clip_grad_norm(&mut grads, 10.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert_eq!(grads[0].as_slice(), &[3.0, 4.0]);
        let pre = clip_grad_norm(&mut grads, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((global_grad_norm(&grads) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clip_spans_multiple_matrices() {
        let mut grads = vec![Matrix::filled(1, 1, 3.0), Matrix::filled(1, 1, 4.0)];
        clip_grad_norm(&mut grads, 1.0);
        assert!((global_grad_norm(&grads) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clip_leaves_non_finite_gradients_alone() {
        let mut grads = vec![Matrix::filled(1, 2, f32::NAN)];
        let pre = clip_grad_norm(&mut grads, 1.0);
        assert!(pre.is_nan());
        assert!(grads_non_finite(&grads));
    }

    #[test]
    fn finite_gradients_pass_the_scan() {
        let grads = vec![Matrix::filled(2, 2, 0.5)];
        assert!(!grads_non_finite(&grads));
    }

    #[test]
    fn adam_restored_state_continues_identically() {
        // Two optimisers: one runs straight through, the other is snapshotted
        // after step 2 and restored into a fresh instance. Both must produce
        // bit-identical parameters afterwards.
        let grad_at = |step: u32| vec![Matrix::filled(1, 2, 0.5 + step as f32 * 0.1)];
        let mut full = Adam::new(0.05);
        let mut p_full = vec![Matrix::filled(1, 2, 1.0)];
        for s in 0..2 {
            full.step(&mut p_full, &grad_at(s));
        }
        let (t, m, v) = full.state();
        let mut resumed = Adam::new(0.05);
        resumed.restore_state(t, m.to_vec(), v.to_vec());
        let mut p_resumed = p_full.clone();
        for s in 2..6 {
            full.step(&mut p_full, &grad_at(s));
            resumed.step(&mut p_resumed, &grad_at(s));
        }
        for (a, b) in p_full[0].as_slice().iter().zip(p_resumed[0].as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn adam_state_persists_across_steps() {
        let mut opt = Adam::new(0.01);
        let mut params = vec![Matrix::filled(1, 1, 1.0)];
        let g = vec![Matrix::filled(1, 1, 1.0)];
        opt.step(&mut params, &g);
        let first = 1.0 - params[0].get(0, 0);
        opt.step(&mut params, &g);
        // Adam's bias-corrected first step equals lr; state must carry over.
        assert!(first > 0.0);
        assert!(opt.t == 2);
    }
}
