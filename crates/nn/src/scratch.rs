//! Per-run scratch arena for transient training matrices.
//!
//! The encoder/head workspaces ([`crate::gcn::GcnWorkspace`],
//! [`crate::sage::SageWorkspace`], [`crate::mlp::MlpWorkspace`]) own the
//! buffers with a fixed role per epoch. Everything else a training step
//! needs — a zeroed `∂L/∂H` accumulator, a row-selection of the current
//! batch, a staging buffer for a scatter — has no stable owner, so it comes
//! out of this pool: `take` a matrix (reusing a previously returned buffer's
//! capacity when one is available), shape it with
//! [`Matrix::reset_zeroed`]/[`Matrix::copy_from`]/a `*_into` kernel, and
//! `put` it back when the epoch is done.
//!
//! The pool is LIFO: steps that take/put in a consistent nesting order get
//! the same buffer back in the same role every epoch, so steady-state epochs
//! hit capacity every time and the [`e2gcl_linalg::alloc_stats`] counter
//! stays flat.

use e2gcl_linalg::Matrix;

/// A LIFO pool of reusable [`Matrix`] buffers, created once per training run
/// by the epoch driver (`e2gcl::engine`) and threaded through every
/// `EpochStep::epoch` call.
#[derive(Debug, Default)]
pub struct TrainScratch {
    pool: Vec<Matrix>,
}

impl TrainScratch {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a buffer from the pool (or an empty matrix if none is pooled).
    /// The contents and shape are arbitrary — callers must fully define the
    /// result via [`Matrix::reset_zeroed`], [`Matrix::copy_from`] or a
    /// `*_into` kernel before reading it.
    pub fn take(&mut self) -> Matrix {
        self.pool.pop().unwrap_or_default()
    }

    /// Takes a buffer and shapes it to `rows x cols`, zero-filled.
    pub fn take_zeroed(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut m = self.take();
        m.reset_zeroed(rows, cols);
        m
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, m: Matrix) {
        self.pool.push(m);
    }

    /// Number of buffers currently pooled (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_shapes_and_zeroes() {
        let mut s = TrainScratch::new();
        let mut m = s.take_zeroed(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        m.set(1, 2, 5.0);
        s.put(m);
        // The returned buffer is reused and re-zeroed.
        let m2 = s.take_zeroed(3, 4);
        assert_eq!(m2.get(1, 2), 0.0);
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn lifo_reuse_order() {
        let mut s = TrainScratch::new();
        let a = s.take_zeroed(2, 2);
        let b = s.take_zeroed(8, 8);
        s.put(a); // pool: [a]
        s.put(b); // pool: [a, b]
        let first = s.take(); // b comes back first
        assert_eq!(first.shape(), (8, 8));
        assert_eq!(s.pooled(), 1);
    }
}
