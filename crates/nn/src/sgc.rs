//! SGC encoder (Wu et al. 2019): `H = A_n^L X W`.
//!
//! The "Simplifying Graph Convolutional Networks" model — exactly the
//! relaxation the paper's Theorem 1 analyses. A second encoder family lets
//! us demonstrate the §IV-C *Remarks*: the view generator is
//! encoder-agnostic, so swapping the GCN for SGC changes nothing upstream.

use e2gcl_graph::SparseMatrix;
use e2gcl_linalg::{init, Matrix, SeedRng};

/// The SGC encoder `f_θ(G) = A_n^L X W` (one linear map after `L`
/// parameter-free propagation steps).
#[derive(Clone, Debug)]
pub struct SgcEncoder {
    /// Propagation depth `L`.
    pub layers: usize,
    /// The single weight matrix (`d_x x d_out`).
    w: Matrix,
}

/// Cache for [`SgcEncoder::backward`].
#[derive(Debug)]
pub struct SgcCache {
    /// `A_n^L X` — the propagated features.
    propagated: Matrix,
}

impl SgcEncoder {
    /// New SGC with depth `layers` mapping `d_in -> d_out`.
    pub fn new(d_in: usize, d_out: usize, layers: usize, rng: &mut SeedRng) -> Self {
        Self {
            layers,
            w: init::xavier_uniform(d_in, d_out, rng),
        }
    }

    /// Rebuilds an encoder from a trained weight matrix and propagation
    /// depth (the deserialisation path of `e2gcl-serve` artifacts).
    pub fn from_parts(w: Matrix, layers: usize) -> Self {
        Self { layers, w }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// Parameter access for optimisers.
    pub fn params_mut(&mut self) -> &mut [Matrix] {
        std::slice::from_mut(&mut self.w)
    }

    /// Immutable parameters.
    pub fn params(&self) -> &[Matrix] {
        std::slice::from_ref(&self.w)
    }

    /// Forward pass with cache.
    pub fn forward(&self, adj: &SparseMatrix, x: &Matrix) -> (Matrix, SgcCache) {
        let propagated = adj.spmm_power(x, self.layers);
        let h = propagated.matmul(&self.w);
        (h, SgcCache { propagated })
    }

    /// Inference-only forward.
    pub fn embed(&self, adj: &SparseMatrix, x: &Matrix) -> Matrix {
        adj.spmm_power(x, self.layers).matmul(&self.w)
    }

    /// Backward pass: `dW = (A_n^L X)^T dH`.
    pub fn backward(&self, cache: &SgcCache, d_out: &Matrix) -> Vec<Matrix> {
        vec![cache.propagated.transpose_matmul(d_out)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_graph::{norm, CsrGraph};

    fn setup() -> (SparseMatrix, Matrix) {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let adj = norm::normalized_adjacency(&g);
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[0.5, -0.5]]);
        (adj, x)
    }

    #[test]
    fn forward_shape_and_linearity() {
        let (adj, x) = setup();
        let enc = SgcEncoder::new(2, 3, 2, &mut SeedRng::new(0));
        let h = enc.embed(&adj, &x);
        assert_eq!(h.shape(), (4, 3));
        // Fully linear model: scaling the input scales the output.
        let mut x2 = x.clone();
        x2.scale(2.0);
        let h2 = enc.embed(&adj, &x2);
        for (a, b) in h.as_slice().iter().zip(h2.as_slice()) {
            assert!((2.0 * a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn grad_check() {
        let (adj, x) = setup();
        let mut enc = SgcEncoder::new(2, 2, 2, &mut SeedRng::new(1));
        let (h, cache) = enc.forward(&adj, &x);
        let grads = enc.backward(&cache, &h); // L = 0.5||H||^2
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..2 {
                let orig = enc.params()[0].get(r, c);
                enc.params_mut()[0].set(r, c, orig + eps);
                let lp = 0.5
                    * enc
                        .embed(&adj, &x)
                        .as_slice()
                        .iter()
                        .map(|v| v * v)
                        .sum::<f32>();
                enc.params_mut()[0].set(r, c, orig - eps);
                let lm = 0.5
                    * enc
                        .embed(&adj, &x)
                        .as_slice()
                        .iter()
                        .map(|v| v * v)
                        .sum::<f32>();
                enc.params_mut()[0].set(r, c, orig);
                let fd = (lp - lm) / (2.0 * eps);
                let an = grads[0].get(r, c);
                assert!(
                    (fd - an).abs() < 1e-2 * (1.0 + fd.abs()),
                    "({r},{c}): {fd} vs {an}"
                );
            }
        }
    }

    #[test]
    fn zero_layers_is_plain_linear() {
        let (adj, x) = setup();
        let enc = SgcEncoder::new(2, 2, 0, &mut SeedRng::new(2));
        let h = enc.embed(&adj, &x);
        assert_eq!(h, x.matmul(&enc.params()[0]));
    }
}
