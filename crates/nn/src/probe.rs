//! Evaluation decoders (`q_φ` in Alg. 1, line 6).
//!
//! * [`LinearProbe`] — the `l2`-regularised multinomial logistic regression
//!   the paper trains on frozen embeddings for node / graph classification;
//! * [`LinkDecoder`] — logistic scorer over the Hadamard product
//!   `h_v ⊙ h_u` for link prediction.

use crate::loss;
use crate::mlp::Linear;
use e2gcl_linalg::{ops, Matrix, SeedRng};

/// Configuration for probe training.
#[derive(Clone, Debug)]
pub struct ProbeConfig {
    /// Full-batch gradient steps.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 regularisation strength.
    pub weight_decay: f32,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        Self {
            epochs: 300,
            lr: 0.5,
            weight_decay: 1e-4,
        }
    }
}

/// An `l2`-regularised linear classifier trained on frozen embeddings.
#[derive(Clone, Debug)]
pub struct LinearProbe {
    layer: Linear,
}

impl LinearProbe {
    /// Trains a probe on `(embeddings[train], labels[train])`.
    pub fn fit(
        embeddings: &Matrix,
        labels: &[usize],
        train: &[usize],
        num_classes: usize,
        config: &ProbeConfig,
        rng: &mut SeedRng,
    ) -> LinearProbe {
        assert_eq!(embeddings.rows(), labels.len());
        let x = standardized(embeddings);
        let x_train = x.select_rows(train);
        let y_train: Vec<usize> = train.iter().map(|&v| labels[v]).collect();
        let mut layer = Linear::new(x.cols(), num_classes, rng);
        for _ in 0..config.epochs {
            let (logits, cache) = layer.forward(&x_train);
            let (_, dlogits) = loss::softmax_cross_entropy(&logits, &y_train);
            let grads = layer.backward(&cache, &dlogits);
            layer.step(&grads, config.lr, config.weight_decay);
        }
        LinearProbe { layer }
    }

    /// Predicted class per row of `embeddings`.
    pub fn predict(&self, embeddings: &Matrix) -> Vec<usize> {
        let logits = self.layer.apply(&standardized(embeddings));
        (0..logits.rows())
            .map(|r| ops::argmax(logits.row(r)).unwrap_or(0))
            .collect()
    }

    /// Predicted class per row, standardising with *reference* statistics
    /// from [`standard_stats`] instead of the query matrix's own column
    /// stats. [`Self::predict`] is fine for full-matrix evaluation, but a
    /// serving query of one or a few rows has degenerate column statistics
    /// (a single row standardises to all-zeros); passing the store's stats
    /// reproduces the training-time feature scaling exactly.
    pub fn predict_with_stats(
        &self,
        embeddings: &Matrix,
        means: &[f32],
        stds: &[f32],
    ) -> Vec<usize> {
        let mut x = embeddings.clone();
        for r in 0..x.rows() {
            let row = x.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(means).zip(stds) {
                *v = (*v - m) / s;
            }
        }
        let logits = self.layer.apply(&x);
        (0..logits.rows())
            .map(|r| ops::argmax(logits.row(r)).unwrap_or(0))
            .collect()
    }

    /// Accuracy over the index subset `eval`.
    pub fn accuracy(&self, embeddings: &Matrix, labels: &[usize], eval: &[usize]) -> f32 {
        if eval.is_empty() {
            return 0.0;
        }
        let preds = self.predict(embeddings);
        let correct = eval.iter().filter(|&&v| preds[v] == labels[v]).count();
        correct as f32 / eval.len() as f32
    }
}

/// Per-column `(means, stds)` of `h` as used by the probe's
/// standardisation (population variance, std floored at `1e-6`). Capture
/// these once from the embedding store so serving-time queries can be
/// standardised identically via [`LinearProbe::predict_with_stats`].
pub fn standard_stats(h: &Matrix) -> (Vec<f32>, Vec<f32>) {
    let means = h.col_means();
    let mut vars = vec![0.0f32; h.cols()];
    for r in 0..h.rows() {
        for (v, (&m, x)) in vars.iter_mut().zip(means.iter().zip(h.row(r))) {
            let d = x - m;
            *v += d * d;
        }
    }
    let n = h.rows().max(1) as f32;
    let stds: Vec<f32> = vars.iter().map(|v| (v / n).sqrt().max(1e-6)).collect();
    (means, stds)
}

/// Column-standardises embeddings (zero mean, unit scale) — makes the probe
/// robust to the wildly different embedding scales the models produce.
fn standardized(h: &Matrix) -> Matrix {
    let (means, stds) = standard_stats(h);
    let mut out = h.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        for ((x, &m), &s) in row.iter_mut().zip(&means).zip(&stds) {
            *x = (*x - m) / s;
        }
    }
    out
}

/// Logistic link scorer: `p(u,v) = σ(w · (h_u ⊙ h_v) + b)`.
#[derive(Clone, Debug)]
pub struct LinkDecoder {
    layer: Linear,
}

impl LinkDecoder {
    /// Trains on positive pairs + sampled negative pairs.
    pub fn fit(
        embeddings: &Matrix,
        pos: &[(usize, usize)],
        neg: &[(usize, usize)],
        config: &ProbeConfig,
        rng: &mut SeedRng,
    ) -> LinkDecoder {
        let x = pair_features(embeddings, pos, neg);
        let mut targets = vec![1.0f32; pos.len()];
        targets.extend(std::iter::repeat_n(0.0, neg.len()));
        let mut layer = Linear::new(embeddings.cols(), 1, rng);
        for _ in 0..config.epochs {
            let (logits, cache) = layer.forward(&x);
            let (_, dl) = loss::bce_with_logits(logits.as_slice(), &targets);
            let dlogits = Matrix::from_vec(logits.rows(), 1, dl);
            let grads = layer.backward(&cache, &dlogits);
            layer.step(&grads, config.lr, config.weight_decay);
        }
        LinkDecoder { layer }
    }

    /// Link logits for the given pairs.
    pub fn score(&self, embeddings: &Matrix, pairs: &[(usize, usize)]) -> Vec<f32> {
        let x = pair_features(embeddings, pairs, &[]);
        self.layer.apply(&x).into_vec()
    }

    /// ROC-AUC of positive vs negative pairs.
    pub fn auc(&self, embeddings: &Matrix, pos: &[(usize, usize)], neg: &[(usize, usize)]) -> f32 {
        let ps = self.score(embeddings, pos);
        let ns = self.score(embeddings, neg);
        roc_auc(&ps, &ns)
    }

    /// Classification accuracy at threshold 0 (balanced pos/neg).
    pub fn accuracy(
        &self,
        embeddings: &Matrix,
        pos: &[(usize, usize)],
        neg: &[(usize, usize)],
    ) -> f32 {
        let ps = self.score(embeddings, pos);
        let ns = self.score(embeddings, neg);
        let correct =
            ps.iter().filter(|&&s| s > 0.0).count() + ns.iter().filter(|&&s| s <= 0.0).count();
        let total = ps.len() + ns.len();
        if total == 0 {
            0.0
        } else {
            correct as f32 / total as f32
        }
    }
}

/// Hadamard-product pair features, positives first.
fn pair_features(h: &Matrix, pos: &[(usize, usize)], neg: &[(usize, usize)]) -> Matrix {
    let d = h.cols();
    let mut out = Matrix::zeros(pos.len() + neg.len(), d);
    for (i, &(u, v)) in pos.iter().chain(neg).enumerate() {
        let row = out.row_mut(i);
        for ((o, &a), &b) in row.iter_mut().zip(h.row(u)).zip(h.row(v)) {
            *o = a * b;
        }
    }
    out
}

/// Mann–Whitney ROC-AUC: probability a positive scores above a negative.
pub fn roc_auc(pos_scores: &[f32], neg_scores: &[f32]) -> f32 {
    if pos_scores.is_empty() || neg_scores.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0f64;
    for &p in pos_scores {
        for &n in neg_scores {
            if p > n {
                wins += 1.0;
            } else if (p - n).abs() < 1e-12 {
                wins += 0.5;
            }
        }
    }
    (wins / (pos_scores.len() as f64 * neg_scores.len() as f64)) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs are linearly separable.
    #[test]
    fn probe_separates_blobs() {
        let mut rng = SeedRng::new(0);
        let n = 100;
        let mut h = Matrix::zeros(n, 4);
        let mut labels = vec![0usize; n];
        for (v, label) in labels.iter_mut().enumerate() {
            let c = v % 2;
            *label = c;
            let center = if c == 0 { 2.0 } else { -2.0 };
            for x in h.row_mut(v) {
                *x = center + 0.3 * rng.normal();
            }
        }
        let train: Vec<usize> = (0..50).collect();
        let test: Vec<usize> = (50..100).collect();
        let probe = LinearProbe::fit(&h, &labels, &train, 2, &ProbeConfig::default(), &mut rng);
        let acc = probe.accuracy(&h, &labels, &test);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probe_chance_level_on_random_labels() {
        let mut rng = SeedRng::new(1);
        let n = 200;
        let mut h = Matrix::zeros(n, 4);
        for x in h.as_mut_slice() {
            *x = rng.normal();
        }
        let labels: Vec<usize> = (0..n).map(|_| rng.below(4)).collect();
        let train: Vec<usize> = (0..100).collect();
        let test: Vec<usize> = (100..200).collect();
        let probe = LinearProbe::fit(&h, &labels, &train, 4, &ProbeConfig::default(), &mut rng);
        let acc = probe.accuracy(&h, &labels, &test);
        assert!(acc < 0.5, "random labels should not be learnable: {acc}");
    }

    /// Serving path: one-row queries standardised with the store's stats
    /// must agree with the full-matrix `predict` — per-query stats would be
    /// degenerate (a single row standardises to all-zeros).
    #[test]
    fn predict_with_stats_matches_full_matrix_predict() {
        let mut rng = SeedRng::new(3);
        let n = 60;
        let mut h = Matrix::zeros(n, 4);
        let mut labels = vec![0usize; n];
        for (v, label) in labels.iter_mut().enumerate() {
            let c = v % 3;
            *label = c;
            for (i, x) in h.row_mut(v).iter_mut().enumerate() {
                *x = if i == c { 3.0 } else { 0.0 };
                *x += 0.2 * rng.normal();
            }
        }
        let train: Vec<usize> = (0..n).collect();
        let probe = LinearProbe::fit(&h, &labels, &train, 3, &ProbeConfig::default(), &mut rng);
        let full = probe.predict(&h);
        let (means, stds) = standard_stats(&h);
        for (v, &expected) in full.iter().enumerate() {
            let one = Matrix::from_vec(1, 4, h.row(v).to_vec());
            assert_eq!(
                probe.predict_with_stats(&one, &means, &stds),
                vec![expected]
            );
        }
    }

    #[test]
    fn roc_auc_extremes() {
        assert_eq!(roc_auc(&[2.0, 3.0], &[0.0, 1.0]), 1.0);
        assert_eq!(roc_auc(&[0.0], &[1.0]), 0.0);
        assert_eq!(roc_auc(&[1.0], &[1.0]), 0.5);
        assert_eq!(roc_auc(&[], &[1.0]), 0.5);
    }

    #[test]
    fn link_decoder_learns_blocky_embeddings() {
        // Nodes in the same block share embeddings; edges exist in-block.
        let mut rng = SeedRng::new(2);
        let n = 40;
        let mut h = Matrix::zeros(n, 8);
        for v in 0..n {
            let block = v / 20;
            for (i, x) in h.row_mut(v).iter_mut().enumerate() {
                *x = if (i / 4) == block { 1.0 } else { 0.0 };
                *x += 0.1 * rng.normal();
            }
        }
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for i in 0..20 {
            pos.push((i, (i + 1) % 20)); // in block 0
            pos.push((20 + i, 20 + (i + 1) % 20)); // in block 1
            neg.push((i, 20 + i)); // cross-block
            neg.push(((i + 5) % 20, 20 + (i + 9) % 20));
        }
        let dec = LinkDecoder::fit(&h, &pos, &neg, &ProbeConfig::default(), &mut rng);
        let auc = dec.auc(&h, &pos, &neg);
        assert!(auc > 0.9, "auc {auc}");
        assert!(dec.accuracy(&h, &pos, &neg) > 0.8);
    }
}
