//! Losses with analytic gradients.
//!
//! * [`margin_contrastive`] — the paper's Eq. (5) Euclidean contrastive loss
//!   (with the Hadsell-style margin of its citation \[75\]; pass
//!   `margin = f32::INFINITY` for the literal unbounded form);
//! * [`info_nce`] — the symmetric NT-Xent objective of GRACE/GCA, with both
//!   inter-view and intra-view negatives;
//! * [`bce_with_logits`], [`softmax_cross_entropy`] — decoder losses;
//! * [`cosine_bootstrap`] — BGRL's negative-free cosine objective.

use e2gcl_linalg::{activations, ops, Matrix};
use rayon::prelude::*;
use std::fmt;

/// Output of the Eq. (5) contrastive loss.
#[derive(Debug)]
pub struct MarginLossOutput {
    /// Mean loss over anchor nodes.
    pub loss: f32,
    /// `∂L/∂ĥ` (same shape as `h_hat`).
    pub d_hat: Matrix,
    /// `∂L/∂h̃` (same shape as `h_tilde`).
    pub d_tilde: Matrix,
    /// `∂L/∂neg` (same shape as `neg`).
    pub d_neg: Matrix,
}

/// Eq. (5): for each anchor `v`,
/// `||ĥ_v − h̃_v||² + (1 / 2|Neg_v|) · Σ_{h' ∈ {ĥ_v, h̃_v}} Σ_{u ∈ Neg_v} hinge(m − ||h'_v − n_u||²)`
/// averaged over anchors.
///
/// With finite `margin m` the second term is `max(0, m − d²)` (minimising it
/// pushes negatives out to the margin). With `margin = ∞` it degenerates to
/// `−d²`, the paper's literal Eq. (5), which is unbounded below — usable for
/// a few steps in tests but not for full training.
///
/// `negatives[v]` lists row indices of `neg` serving as `Neg_v`.
pub fn margin_contrastive(
    h_hat: &Matrix,
    h_tilde: &Matrix,
    neg: &Matrix,
    negatives: &[Vec<usize>],
    margin: f32,
) -> MarginLossOutput {
    let mut s = MarginScratch::default();
    let loss = margin_contrastive_with(h_hat, h_tilde, neg, negatives, margin, &mut s);
    MarginLossOutput {
        loss,
        d_hat: s.d_hat,
        d_tilde: s.d_tilde,
        d_neg: s.d_neg,
    }
}

/// Reusable gradient buffers for [`margin_contrastive_with`].
#[derive(Debug, Default)]
pub struct MarginScratch {
    d_hat: Matrix,
    d_tilde: Matrix,
    d_neg: Matrix,
}

impl MarginScratch {
    /// `∂L/∂ĥ` from the last [`margin_contrastive_with`].
    pub fn d_hat(&self) -> &Matrix {
        &self.d_hat
    }

    /// `∂L/∂h̃` from the last [`margin_contrastive_with`].
    pub fn d_tilde(&self) -> &Matrix {
        &self.d_tilde
    }

    /// `∂L/∂neg` from the last [`margin_contrastive_with`].
    pub fn d_neg(&self) -> &Matrix {
        &self.d_neg
    }
}

/// [`margin_contrastive`] into reusable gradient buffers: bit-identical
/// loss and gradients, zero matrix allocations once the scratch is warm.
pub fn margin_contrastive_with(
    h_hat: &Matrix,
    h_tilde: &Matrix,
    neg: &Matrix,
    negatives: &[Vec<usize>],
    margin: f32,
    s: &mut MarginScratch,
) -> f32 {
    let n = h_hat.rows();
    assert_eq!(h_tilde.rows(), n);
    assert_eq!(negatives.len(), n);
    assert_eq!(h_hat.cols(), h_tilde.cols());
    assert_eq!(h_hat.cols(), neg.cols());
    let inv_n = 1.0 / n.max(1) as f32;
    let mut loss = 0.0f64;
    s.d_hat.reset_zeroed(h_hat.rows(), h_hat.cols());
    s.d_tilde.reset_zeroed(h_tilde.rows(), h_tilde.cols());
    s.d_neg.reset_zeroed(neg.rows(), neg.cols());
    let d_hat = &mut s.d_hat;
    let d_tilde = &mut s.d_tilde;
    let d_neg = &mut s.d_neg;
    for (v, negs) in negatives.iter().enumerate() {
        let hv = h_hat.row(v);
        let tv = h_tilde.row(v);
        // Positive pull term.
        loss += f64::from(ops::sq_dist(hv, tv)) * f64::from(inv_n);
        let d = d_hat.row_mut(v);
        for ((g, &a), &b) in d.iter_mut().zip(hv).zip(tv) {
            *g += 2.0 * (a - b) * inv_n;
        }
        let d = d_tilde.row_mut(v);
        for ((g, &a), &b) in d.iter_mut().zip(hv).zip(tv) {
            *g -= 2.0 * (a - b) * inv_n;
        }
        // Negative push term.
        if negs.is_empty() {
            continue;
        }
        let coeff = inv_n / (2.0 * negs.len() as f32);
        for (anchor_is_hat, anchor) in [(true, hv), (false, tv)] {
            for &u in negs {
                let nu = neg.row(u);
                let d2 = ops::sq_dist(anchor, nu);
                let (term, active) = if margin.is_finite() {
                    ((margin - d2).max(0.0), d2 < margin)
                } else {
                    (-d2, true)
                };
                loss += f64::from(term) * f64::from(coeff);
                if !active {
                    continue;
                }
                // d(−d²)/danchor = −2(anchor − nu); same for the hinge branch.
                let anchor_grad = if anchor_is_hat {
                    d_hat.row_mut(v)
                } else {
                    d_tilde.row_mut(v)
                };
                for ((g, &a), &b) in anchor_grad.iter_mut().zip(anchor).zip(nu) {
                    *g -= 2.0 * coeff * (a - b);
                }
                let ng = d_neg.row_mut(u);
                for ((g, &a), &b) in ng.iter_mut().zip(anchor).zip(nu) {
                    *g += 2.0 * coeff * (a - b);
                }
            }
        }
    }
    loss as f32
}

/// Output of [`info_nce`].
#[derive(Debug)]
pub struct InfoNceOutput {
    /// Mean loss over `2n` anchors.
    pub loss: f32,
    /// `∂L/∂z1`.
    pub d_z1: Matrix,
    /// `∂L/∂z2`.
    pub d_z2: Matrix,
}

/// Symmetric NT-Xent (GRACE Eq. (1)): cosine similarities at temperature
/// `tau`, inter-view positives on the diagonal, negatives from both views.
pub fn info_nce(z1: &Matrix, z2: &Matrix, tau: f32) -> InfoNceOutput {
    let mut s = InfoNceScratch::default();
    let loss = info_nce_with(z1, z2, tau, &mut s);
    InfoNceOutput {
        loss,
        d_z1: s.d_z1,
        d_z2: s.d_z2,
    }
}

/// A scratch was reused at a different batch shape without an explicit
/// [`InfoNceScratch::reset`]. Reading stale gradient buffers after a
/// shape change used to be a silent wrong-shape panic path downstream;
/// [`info_nce_checked`] surfaces it as this typed error instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScratchShapeError {
    /// `(rows, cols)` the scratch was bound to by its last use.
    pub bound: (usize, usize),
    /// `(rows, cols)` the rejected call asked for.
    pub requested: (usize, usize),
}

impl fmt::Display for ScratchShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scratch bound to {}x{} reused at {}x{} without reset()",
            self.bound.0, self.bound.1, self.requested.0, self.requested.1
        )
    }
}

impl std::error::Error for ScratchShapeError {}

/// Reusable buffers for [`info_nce_with`]: normalised views, the four
/// `n x n` similarity/gradient-coefficient blocks, per-anchor loss terms,
/// and both gradient chains.
#[derive(Debug, Default)]
pub struct InfoNceScratch {
    u1: Matrix,
    u2: Matrix,
    n1: Vec<f32>,
    n2: Vec<f32>,
    s12: Matrix,
    s11: Matrix,
    s22: Matrix,
    s21: Matrix,
    loss1: Vec<f32>,
    loss2: Vec<f32>,
    du1: Matrix,
    du2: Matrix,
    gtmp: Matrix,
    d_z1: Matrix,
    d_z2: Matrix,
    bound: Option<(usize, usize)>,
}

impl InfoNceScratch {
    /// `∂L/∂z1` from the last [`info_nce_with`].
    pub fn d_z1(&self) -> &Matrix {
        &self.d_z1
    }

    /// `∂L/∂z2` from the last [`info_nce_with`].
    pub fn d_z2(&self) -> &Matrix {
        &self.d_z2
    }

    /// The `(rows, cols)` this scratch was last used at, or `None` for a
    /// fresh / reset scratch.
    pub fn bound_shape(&self) -> Option<(usize, usize)> {
        self.bound
    }

    /// Clears the shape binding so the next [`info_nce_checked`] call may
    /// use a new batch shape. Buffer capacity is kept — reset is free.
    pub fn reset(&mut self) {
        self.bound = None;
    }

    /// Typed guard for fixed-shape loops: `Err` when the scratch is bound
    /// to a different shape than `(rows, cols)` and has not been
    /// [`reset`](Self::reset).
    pub fn ensure_shape(&self, rows: usize, cols: usize) -> Result<(), ScratchShapeError> {
        match self.bound {
            Some(b) if b != (rows, cols) => Err(ScratchShapeError {
                bound: b,
                requested: (rows, cols),
            }),
            _ => Ok(()),
        }
    }
}

/// Shape-checked [`info_nce_with`]: refuses to silently rebind a scratch
/// that was last used at a different batch shape. Call sites whose batch
/// size legitimately varies (e.g. a shorter final batch) either call
/// [`InfoNceScratch::reset`] first or use the unchecked entry point, which
/// rebinds by design.
pub fn info_nce_checked(
    z1: &Matrix,
    z2: &Matrix,
    tau: f32,
    s: &mut InfoNceScratch,
) -> Result<f32, ScratchShapeError> {
    s.ensure_shape(z1.rows(), z1.cols())?;
    Ok(info_nce_with(z1, z2, tau, s))
}

/// One NT-Xent direction, parallel over anchor rows: anchors at view `a`
/// contrast against all of view `b` (`s_ab`) plus intra-view (`s_aa`,
/// excluding self).
///
/// Consumes the `1/tau`-scaled similarity blocks in place, replacing them
/// with gradient coefficients: `s_ab[i][j] <- scale·inv_tau·(p_ab − δ_ij)`
/// and `s_aa[i][j] <- scale·inv_tau·p_aa` (diagonal zero), where `p` are
/// the softmax probabilities over anchor `i`'s `2n−1` terms. The embedding
/// gradients then reduce to plain GEMMs over these blocks (see
/// [`info_nce_with`]), so every cross-row reduction runs inside the
/// deterministic blocked kernels instead of serial `axpy` scatter.
/// `row_loss[i]` receives anchor `i`'s scaled loss term; rows are
/// independent, so the parallel pass is trivially deterministic.
fn nt_xent_rows(
    s_ab: &mut Matrix,
    s_aa: &mut Matrix,
    scale: f32,
    inv_tau: f32,
    row_loss: &mut [f32],
) {
    let n = s_ab.rows();
    debug_assert_eq!(s_ab.shape(), (n, n));
    debug_assert_eq!(s_aa.shape(), (n, n));
    debug_assert_eq!(row_loss.len(), n);
    let g_unit = scale * inv_tau;
    s_ab.as_mut_slice()
        .par_chunks_mut(n)
        .zip(s_aa.as_mut_slice().par_chunks_mut(n))
        .zip(row_loss.par_iter_mut())
        .enumerate()
        .for_each(|(i, ((ab_row, aa_row), l))| {
            let pos = ab_row[i];
            // Log-sum-exp over 2n−1 terms, stabilised by the row max.
            let mut mx = f32::NEG_INFINITY;
            for &v in ab_row.iter() {
                mx = mx.max(v);
            }
            for (j, &v) in aa_row.iter().enumerate() {
                if j != i {
                    mx = mx.max(v);
                }
            }
            let mut denom = 0.0f32;
            for v in ab_row.iter_mut() {
                *v = (*v - mx).exp();
                denom += *v;
            }
            for (j, v) in aa_row.iter_mut().enumerate() {
                if j == i {
                    *v = 0.0;
                } else {
                    *v = (*v - mx).exp();
                    denom += *v;
                }
            }
            *l = (mx + denom.ln() - pos) * scale;
            // exp -> gradient coefficient.
            let gd = g_unit / denom;
            for (j, v) in ab_row.iter_mut().enumerate() {
                *v = *v * gd - if j == i { g_unit } else { 0.0 };
            }
            for v in aa_row.iter_mut() {
                *v *= gd;
            }
        });
}

/// [`info_nce`] into reusable buffers: bit-identical loss and gradients
/// (read via [`InfoNceScratch::d_z1`]/[`InfoNceScratch::d_z2`]), zero
/// matrix allocations once the scratch is warm.
///
/// The backward pass is fully GEMM-based. With `G12`/`G21`/`G11`/`G22` the
/// gradient-coefficient blocks produced by [`nt_xent_rows`] (so
/// `Gab[i][j] = ∂L/∂(u_a·u_b)[i][j]`), the chain rule gives
/// `du1 = (G12 + G21^T)·u2 + (G11 + G11^T)·u1` and
/// `du2 = (G12 + G21^T)^T·u1 + (G22 + G22^T)·u2`, all computed by the
/// blocked [`Matrix::matmul_into`]/[`Matrix::transpose_matmul_into`]
/// kernels. The `s11`/`s22` Gram blocks come from [`Matrix::syrk_into`]
/// (half the dot products of a full `matmul_transpose`, mirrored).
pub fn info_nce_with(z1: &Matrix, z2: &Matrix, tau: f32, s: &mut InfoNceScratch) -> f32 {
    let n = z1.rows();
    assert_eq!(z2.rows(), n);
    assert_eq!(z1.cols(), z2.cols());
    assert!(n >= 2, "InfoNCE needs at least 2 anchors");
    s.bound = Some((n, z1.cols()));
    // Normalise rows, remembering norms for the Jacobian.
    normalize_rows_into(z1, &mut s.u1, &mut s.n1);
    normalize_rows_into(z2, &mut s.u2, &mut s.n2);
    let inv_tau = 1.0 / tau;
    s.u1.matmul_transpose_into(&s.u2, &mut s.s12); // s12[i][j] = u1_i · u2_j
    s.u1.syrk_into(&mut s.s11);
    s.u2.syrk_into(&mut s.s22);
    s.s12.scale(inv_tau);
    s.s11.scale(inv_tau);
    s.s22.scale(inv_tau);
    // Snapshot s21 = s12^T before the in-place row pass consumes s12.
    s.s12.transpose_into(&mut s.s21);

    let scale = 1.0 / (2 * n) as f32;
    s.loss1.clear();
    s.loss1.resize(n, 0.0);
    s.loss2.clear();
    s.loss2.resize(n, 0.0);
    nt_xent_rows(&mut s.s12, &mut s.s11, scale, inv_tau, &mut s.loss1);
    nt_xent_rows(&mut s.s21, &mut s.s22, scale, inv_tau, &mut s.loss2);
    // Per-anchor terms are summed serially in a fixed order (side 1 rows
    // ascending, then side 2), independent of the thread count.
    let mut loss = 0.0f64;
    for &l in &s.loss1 {
        loss += f64::from(l);
    }
    for &l in &s.loss2 {
        loss += f64::from(l);
    }

    // Gradient GEMMs (see the function docs for the algebra).
    s.s12.add_transpose_assign(&s.s21); // s12 <- H = G12 + G21^T
    s.s11.symmetrize_additive(); // s11 <- G11 + G11^T
    s.s22.symmetrize_additive(); // s22 <- G22 + G22^T
    s.s12.matmul_into(&s.u2, &mut s.du1); // du1 = H·u2 ...
    s.s11.matmul_into(&s.u1, &mut s.gtmp);
    s.du1.add_assign(&s.gtmp); // ... + (G11+G11^T)·u1
    s.s12.transpose_matmul_into(&s.u1, &mut s.du2); // du2 = H^T·u1 ...
    s.s22.matmul_into(&s.u2, &mut s.gtmp);
    s.du2.add_assign(&s.gtmp); // ... + (G22+G22^T)·u2

    normalize_backward_into(&s.u1, &s.n1, &s.du1, &mut s.d_z1);
    normalize_backward_into(&s.u2, &s.n2, &s.du2, &mut s.d_z2);
    loss as f32
}

/// Row-normalises, returning `(U, norms)` with zero rows left as zero.
pub fn normalize_rows(z: &Matrix) -> (Matrix, Vec<f32>) {
    let mut u = Matrix::default();
    let mut norms = Vec::new();
    normalize_rows_into(z, &mut u, &mut norms);
    (u, norms)
}

/// [`normalize_rows`] into reusable buffers. Parallel over rows (each row
/// is independent, so the result is thread-count invariant).
pub fn normalize_rows_into(z: &Matrix, u: &mut Matrix, norms: &mut Vec<f32>) {
    u.copy_from(z);
    norms.clear();
    norms.resize(z.rows(), 1e-12);
    let cols = z.cols();
    if cols == 0 {
        return;
    }
    u.as_mut_slice()
        .par_chunks_mut(cols)
        .zip(norms.par_iter_mut())
        .for_each(|(row, nrm)| {
            let n = ops::norm(row).max(1e-12);
            *nrm = n;
            for v in row {
                *v /= n;
            }
        });
}

/// Jacobian of row normalisation: `dz = (du − (du·u)u) / ||z||`.
pub fn normalize_backward(u: &Matrix, norms: &[f32], du: &Matrix) -> Matrix {
    let mut dz = Matrix::default();
    normalize_backward_into(u, norms, du, &mut dz);
    dz
}

/// [`normalize_backward`] into a reusable buffer. Parallel over rows (each
/// row is independent, so the result is thread-count invariant).
pub fn normalize_backward_into(u: &Matrix, norms: &[f32], du: &Matrix, dz: &mut Matrix) {
    dz.reset_zeroed(u.rows(), u.cols());
    assert_eq!(norms.len(), u.rows());
    let cols = u.cols();
    if cols == 0 {
        return;
    }
    dz.as_mut_slice()
        .par_chunks_mut(cols)
        .zip(norms.par_iter())
        .enumerate()
        .for_each(|(r, (out, &norm_r))| {
            let ur = u.row(r);
            let dur = du.row(r);
            let proj = ops::dot(dur, ur);
            for ((o, &d), &uv) in out.iter_mut().zip(dur).zip(ur) {
                *o = (d - proj * uv) / norm_r;
            }
        });
}

/// Binary cross-entropy with logits; `targets` in `{0,1}`. Returns
/// `(mean loss, ∂L/∂logits)`.
pub fn bce_with_logits(logits: &[f32], targets: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(logits.len(), targets.len());
    let n = logits.len().max(1) as f32;
    let mut loss = 0.0f64;
    let mut grad = Vec::with_capacity(logits.len());
    for (&x, &t) in logits.iter().zip(targets) {
        // loss = softplus(x) − t·x (stable for both signs).
        loss += f64::from(activations::softplus(x) - t * x) / f64::from(n);
        grad.push((activations::sigmoid(x) - t) / n);
    }
    (loss as f32, grad)
}

/// Softmax cross-entropy over rows; `labels[r]` is the true class of row
/// `r`. Returns `(mean loss, ∂L/∂logits)`.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), labels.len());
    let n = logits.rows().max(1) as f32;
    let mut probs = logits.clone();
    activations::softmax_rows_inplace(&mut probs);
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < logits.cols(), "label {y} out of range");
        loss -= f64::from(probs.get(r, y).max(1e-12).ln()) / f64::from(n);
        grad.set(r, y, grad.get(r, y) - 1.0);
    }
    grad.scale(1.0 / n);
    (loss as f32, grad)
}

/// BGRL's bootstrap objective: `mean_i (2 − 2 cos(online_i, target_i))`.
/// Gradients flow only into `online` (the target network is EMA-updated).
pub fn cosine_bootstrap(online: &Matrix, target: &Matrix) -> (f32, Matrix) {
    let mut grad = Matrix::default();
    let loss = cosine_bootstrap_with(online, target, &mut grad);
    (loss, grad)
}

/// [`cosine_bootstrap`] into a reusable gradient buffer.
pub fn cosine_bootstrap_with(online: &Matrix, target: &Matrix, grad: &mut Matrix) -> f32 {
    let n = online.rows();
    assert_eq!(target.rows(), n);
    assert_eq!(online.cols(), target.cols());
    let inv_n = 1.0 / n.max(1) as f32;
    let mut loss = 0.0f64;
    grad.reset_zeroed(online.rows(), online.cols());
    for r in 0..n {
        let o = online.row(r);
        let t = target.row(r);
        let no = ops::norm(o).max(1e-12);
        let nt = ops::norm(t).max(1e-12);
        let cos = ops::dot(o, t) / (no * nt);
        loss += f64::from((2.0 - 2.0 * cos) * inv_n);
        // d(−2cos)/do = −2 (t/(no·nt) − cos·o/no²).
        let g = grad.row_mut(r);
        for ((gv, &ov), &tv) in g.iter_mut().zip(o).zip(t) {
            *gv = -2.0 * inv_n * (tv / (no * nt) - cos * ov / (no * no));
        }
    }
    loss as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_linalg::SeedRng;

    fn rand_matrix(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = SeedRng::new(seed);
        let mut m = Matrix::zeros(r, c);
        for v in m.as_mut_slice() {
            *v = rng.normal();
        }
        m
    }

    /// Generic central finite-difference check against an analytic gradient.
    fn fd_check(
        x: &Matrix,
        analytic: &Matrix,
        mut f: impl FnMut(&Matrix) -> f32,
        tol: f32,
        what: &str,
    ) {
        let eps = 1e-2f32;
        let mut xp = x.clone();
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let orig = xp.get(r, c);
                xp.set(r, c, orig + eps);
                let lp = f(&xp);
                xp.set(r, c, orig - eps);
                let lm = f(&xp);
                xp.set(r, c, orig);
                let fd = (lp - lm) / (2.0 * eps);
                let an = analytic.get(r, c);
                assert!(
                    (fd - an).abs() < tol * (1.0 + fd.abs().max(an.abs())),
                    "{what}({r},{c}): fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn margin_loss_zero_for_identical_views_and_far_negatives() {
        let h = rand_matrix(3, 4, 0);
        let mut neg = rand_matrix(2, 4, 1);
        neg.scale(100.0); // negatives far beyond the margin
        let negatives = vec![vec![0, 1]; 3];
        let out = margin_contrastive(&h, &h, &neg, &negatives, 1.0);
        assert!(out.loss.abs() < 1e-6, "loss {}", out.loss);
        assert!(out.d_hat.frobenius_norm() < 1e-6);
    }

    #[test]
    fn margin_loss_grad_check() {
        let h_hat = rand_matrix(3, 4, 2);
        let h_tilde = rand_matrix(3, 4, 3);
        let neg = rand_matrix(4, 4, 4);
        let negatives = vec![vec![0, 2], vec![1], vec![0, 1, 3]];
        let margin = 5.0;
        let out = margin_contrastive(&h_hat, &h_tilde, &neg, &negatives, margin);
        fd_check(
            &h_hat,
            &out.d_hat,
            |x| margin_contrastive(x, &h_tilde, &neg, &negatives, margin).loss,
            5e-2,
            "d_hat",
        );
        fd_check(
            &h_tilde,
            &out.d_tilde,
            |x| margin_contrastive(&h_hat, x, &neg, &negatives, margin).loss,
            5e-2,
            "d_tilde",
        );
        fd_check(
            &neg,
            &out.d_neg,
            |x| margin_contrastive(&h_hat, &h_tilde, x, &negatives, margin).loss,
            5e-2,
            "d_neg",
        );
    }

    #[test]
    fn margin_infinite_matches_paper_form() {
        let h_hat = rand_matrix(2, 3, 5);
        let h_tilde = rand_matrix(2, 3, 6);
        let neg = rand_matrix(2, 3, 7);
        let negatives = vec![vec![0], vec![1]];
        let out = margin_contrastive(&h_hat, &h_tilde, &neg, &negatives, f32::INFINITY);
        // Manual Eq. (5).
        let mut expect = 0.0f32;
        for (v, negs) in negatives.iter().enumerate() {
            expect += ops::sq_dist(h_hat.row(v), h_tilde.row(v));
            let u = negs[0];
            expect -= (ops::sq_dist(h_hat.row(v), neg.row(u))
                + ops::sq_dist(h_tilde.row(v), neg.row(u)))
                / 2.0;
        }
        expect /= 2.0;
        assert!((out.loss - expect).abs() < 1e-4, "{} vs {expect}", out.loss);
    }

    #[test]
    fn info_nce_grad_check() {
        let z1 = rand_matrix(4, 3, 8);
        let z2 = rand_matrix(4, 3, 9);
        let out = info_nce(&z1, &z2, 0.5);
        fd_check(&z1, &out.d_z1, |x| info_nce(x, &z2, 0.5).loss, 5e-2, "d_z1");
        fd_check(&z2, &out.d_z2, |x| info_nce(&z1, x, 0.5).loss, 5e-2, "d_z2");
    }

    #[test]
    fn info_nce_prefers_aligned_views() {
        let z = rand_matrix(6, 4, 10);
        let aligned = info_nce(&z, &z, 0.5).loss;
        let shuffled = {
            let mut rows: Vec<usize> = (0..6).collect();
            rows.rotate_left(1);
            info_nce(&z, &z.select_rows(&rows), 0.5).loss
        };
        assert!(aligned < shuffled, "{aligned} !< {shuffled}");
    }

    /// The scratch-path losses must be bit-identical to the allocating
    /// entry points, cold and warm.
    #[test]
    fn scratch_paths_match_allocating_paths_bitwise() {
        let z1 = rand_matrix(5, 4, 20);
        let z2 = rand_matrix(5, 4, 21);
        let nce = info_nce(&z1, &z2, 0.7);
        let mut s = InfoNceScratch::default();
        for _ in 0..2 {
            let loss = info_nce_with(&z1, &z2, 0.7, &mut s);
            assert_eq!(loss, nce.loss);
            assert_eq!(s.d_z1(), &nce.d_z1);
            assert_eq!(s.d_z2(), &nce.d_z2);
        }

        let h_hat = rand_matrix(3, 4, 22);
        let h_tilde = rand_matrix(3, 4, 23);
        let neg = rand_matrix(4, 4, 24);
        let negatives = vec![vec![0, 2], vec![1], vec![0, 1, 3]];
        let m = margin_contrastive(&h_hat, &h_tilde, &neg, &negatives, 2.0);
        let mut ms = MarginScratch::default();
        for _ in 0..2 {
            let loss = margin_contrastive_with(&h_hat, &h_tilde, &neg, &negatives, 2.0, &mut ms);
            assert_eq!(loss, m.loss);
            assert_eq!(ms.d_hat(), &m.d_hat);
            assert_eq!(ms.d_tilde(), &m.d_tilde);
            assert_eq!(ms.d_neg(), &m.d_neg);
        }

        let o = rand_matrix(3, 4, 25);
        let t = rand_matrix(3, 4, 26);
        let (cl, cg) = cosine_bootstrap(&o, &t);
        let mut grad = Matrix::default();
        for _ in 0..2 {
            let loss = cosine_bootstrap_with(&o, &t, &mut grad);
            assert_eq!(loss, cl);
            assert_eq!(grad, cg);
        }
    }

    #[test]
    fn scratch_shape_reuse_is_a_typed_error_until_reset() {
        let mut s = InfoNceScratch::default();
        assert_eq!(s.bound_shape(), None);
        let z1 = rand_matrix(5, 4, 30);
        let z2 = rand_matrix(5, 4, 31);
        let l = info_nce_checked(&z1, &z2, 0.5, &mut s).expect("fresh scratch accepts any shape");
        assert!(l.is_finite());
        assert_eq!(s.bound_shape(), Some((5, 4)));
        // Same shape: fine.
        info_nce_checked(&z1, &z2, 0.5, &mut s).expect("same shape accepted");
        // Different shape: typed refusal instead of a downstream wrong-shape
        // read of d_z1/d_z2.
        let w1 = rand_matrix(3, 4, 32);
        let w2 = rand_matrix(3, 4, 33);
        let err = info_nce_checked(&w1, &w2, 0.5, &mut s).expect_err("shape change rejected");
        assert_eq!(
            err,
            ScratchShapeError {
                bound: (5, 4),
                requested: (3, 4)
            }
        );
        assert!(err.to_string().contains("without reset()"));
        // An explicit reset re-opens the scratch, and the result matches a
        // cold scratch bitwise.
        s.reset();
        let l_warm = info_nce_checked(&w1, &w2, 0.5, &mut s).expect("reset re-opens the scratch");
        let cold = info_nce(&w1, &w2, 0.5);
        assert_eq!(l_warm, cold.loss);
        assert_eq!(s.d_z1(), &cold.d_z1);
    }

    #[test]
    fn bce_known_values_and_grad() {
        let (loss, grad) = bce_with_logits(&[0.0, 0.0], &[1.0, 0.0]);
        assert!((loss - 2.0f32.ln()).abs() < 1e-6);
        assert!((grad[0] + 0.25).abs() < 1e-6); // (σ(0)−1)/2
        assert!((grad[1] - 0.25).abs() < 1e-6);
        // Extreme logits stay finite.
        let (l2, g2) = bce_with_logits(&[100.0, -100.0], &[1.0, 0.0]);
        assert!(l2.is_finite() && l2 < 1e-3);
        assert!(g2.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn cross_entropy_grad_check() {
        let logits = rand_matrix(3, 4, 11);
        let labels = vec![0, 3, 2];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        fd_check(
            &logits,
            &grad,
            |x| softmax_cross_entropy(x, &labels).0,
            5e-2,
            "dlogits",
        );
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let mut logits = Matrix::zeros(2, 3);
        logits.set(0, 1, 30.0);
        logits.set(1, 0, 30.0);
        let (loss, _) = softmax_cross_entropy(&logits, &[1, 0]);
        assert!(loss < 1e-5);
    }

    #[test]
    fn cosine_bootstrap_zero_when_aligned() {
        let o = rand_matrix(3, 4, 12);
        let mut t = o.clone();
        t.scale(3.0); // cosine invariant to scale
        let (loss, grad) = cosine_bootstrap(&o, &t);
        assert!(loss.abs() < 1e-5);
        assert!(grad.frobenius_norm() < 1e-4);
    }

    #[test]
    fn cosine_bootstrap_grad_check() {
        let o = rand_matrix(3, 4, 13);
        let t = rand_matrix(3, 4, 14);
        let (_, grad) = cosine_bootstrap(&o, &t);
        fd_check(&o, &grad, |x| cosine_bootstrap(x, &t).0, 5e-2, "donline");
    }
}
