//! Property-based tests of the coreset objective and selectors.

use e2gcl_linalg::{Matrix, SeedRng};
use e2gcl_selector::coreset::{exact_kmedoid_objective, CoresetObjective};
use e2gcl_selector::greedy::{GreedyConfig, GreedySelector};
use e2gcl_selector::kmeans::kmeans;
use proptest::prelude::*;

const N: usize = 24;
const D: usize = 3;

fn points() -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f32..5.0, N * D).prop_map(|data| Matrix::from_vec(N, D, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// KMeans labels are in range, partition the nodes, and d_max bounds
    /// every member's distance — for arbitrary point clouds.
    #[test]
    fn kmeans_invariants(x in points(), k in 1usize..6, seed in any::<u64>()) {
        let c = kmeans(&x, k, 12, &mut SeedRng::new(seed));
        prop_assert_eq!(c.labels.len(), N);
        let total: usize = c.members.iter().map(|m| m.len()).sum();
        prop_assert_eq!(total, N);
        for (v, &lbl) in c.labels.iter().enumerate() {
            prop_assert!(lbl < c.num_clusters());
            let d = e2gcl_linalg::ops::dist(x.row(v), c.centers.row(lbl));
            prop_assert!(d <= c.d_max[lbl] + 1e-4);
        }
    }

    /// The Eq. (14) incremental gain always equals the actual objective
    /// decrease, and the objective is monotone non-increasing.
    #[test]
    fn gain_equals_delta(x in points(), picks in prop::collection::vec(0usize..N, 1..8), seed in any::<u64>()) {
        let clustering = kmeans(&x, 4, 12, &mut SeedRng::new(seed));
        let mut obj = CoresetObjective::new(&x, &clustering);
        let mut prev = obj.objective();
        for &p in &picks {
            let g = obj.gain(p);
            prop_assert!(g >= -1e-6, "negative gain {g}");
            obj.add(p);
            let cur = obj.objective();
            prop_assert!(
                (prev - cur - g).abs() < 1e-3 * (1.0 + g.abs()),
                "gain {g} vs delta {}",
                prev - cur
            );
            prop_assert!(cur <= prev + 1e-6);
            prev = cur;
        }
    }

    /// Submodularity: a candidate's gain never increases as the selection
    /// grows.
    #[test]
    fn gains_are_submodular(x in points(), adds in prop::collection::vec(0usize..N, 1..6), probe in 0usize..N) {
        let clustering = kmeans(&x, 4, 12, &mut SeedRng::new(0));
        let mut obj = CoresetObjective::new(&x, &clustering);
        let mut prev_gain = obj.gain(probe);
        for &a in &adds {
            obj.add(a);
            let g = obj.gain(probe);
            prop_assert!(g <= prev_gain + 1e-4, "gain rose from {prev_gain} to {g}");
            prev_gain = g;
        }
    }

    /// The relaxed objective upper-bounds the exact Eq. (12) objective
    /// (Eq. (13) in the paper).
    #[test]
    fn relaxation_is_upper_bound(x in points(), picks in prop::collection::vec(0usize..N, 1..6)) {
        let clustering = kmeans(&x, 4, 12, &mut SeedRng::new(1));
        let mut obj = CoresetObjective::new(&x, &clustering);
        for &p in &picks {
            obj.add(p);
        }
        let exact = exact_kmedoid_objective(&x, obj.selected());
        prop_assert!(obj.objective() >= exact - 1e-3);
    }

    /// The greedy selector returns valid selections for any budget and its
    /// coverage is at least as good as the worst single node.
    #[test]
    fn greedy_valid_for_any_budget(x in points(), budget in 0usize..N, seed in any::<u64>()) {
        let sel = GreedySelector::new(GreedyConfig {
            num_clusters: 4,
            sample_size: 8,
            ..Default::default()
        });
        let s = sel.select_from_aggregate(&x, budget, &mut SeedRng::new(seed));
        prop_assert!(s.validate(N, budget).is_ok(), "{:?}", s.validate(N, budget));
        prop_assert_eq!(s.nodes.len(), budget.min(N));
    }
}
