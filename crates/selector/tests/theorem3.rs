//! Empirical validation of Theorem 3: the (sampling-based) greedy achieves
//! a `1 − 1/e − ε` approximation of the optimal Eq. (14) coverage gain.
//!
//! The objective is a minimisation; the guarantee lives on its coverage
//! form `f(S) = RS(∅) − RS(S)`, which is monotone submodular (the proptests
//! in `proptests.rs` check submodularity directly). Here we brute-force the
//! optimal `f` on small instances and check the ratio — with exhaustive
//! candidate evaluation (`ε = 0`) and with the paper's sampling.

use e2gcl_linalg::{Matrix, SeedRng};
use e2gcl_selector::coreset::CoresetObjective;
use e2gcl_selector::kmeans::kmeans;

const N: usize = 14;
const K: usize = 3;

fn random_points(seed: u64) -> Matrix {
    let mut rng = SeedRng::new(seed);
    let mut x = Matrix::zeros(N, 2);
    for v in x.as_mut_slice() {
        *v = 4.0 * rng.normal();
    }
    x
}

/// Coverage gain of a fixed selection.
fn coverage(x: &Matrix, clustering: &e2gcl_selector::kmeans::Clustering, sel: &[usize]) -> f64 {
    let mut obj = CoresetObjective::new(x, clustering);
    let empty = obj.objective();
    for &v in sel {
        obj.add(v);
    }
    empty - obj.objective()
}

/// Brute-force optimal coverage over all `C(N, K)` subsets.
fn optimal_coverage(x: &Matrix, clustering: &e2gcl_selector::kmeans::Clustering) -> f64 {
    let mut best = 0.0f64;
    for a in 0..N {
        for b in (a + 1)..N {
            for c in (b + 1)..N {
                best = best.max(coverage(x, clustering, &[a, b, c]));
            }
        }
    }
    best
}

/// Exhaustive-candidate greedy coverage (ε = 0).
fn greedy_coverage(x: &Matrix, clustering: &e2gcl_selector::kmeans::Clustering) -> f64 {
    let mut obj = CoresetObjective::new(x, clustering);
    let empty = obj.objective();
    for _ in 0..K {
        let best = (0..N)
            .filter(|v| !obj.selected().contains(v))
            .max_by(|&a, &b| obj.gain(a).partial_cmp(&obj.gain(b)).unwrap())
            .unwrap();
        obj.add(best);
    }
    empty - obj.objective()
}

#[test]
fn exhaustive_greedy_meets_one_minus_inv_e() {
    for seed in 0..8u64 {
        let x = random_points(seed);
        let clustering = kmeans(&x, 4, 20, &mut SeedRng::new(seed ^ 99));
        let opt = optimal_coverage(&x, &clustering);
        let greedy = greedy_coverage(&x, &clustering);
        let floor = (1.0 - 1.0 / std::f64::consts::E) * opt;
        assert!(
            greedy >= floor - 1e-6,
            "seed {seed}: greedy {greedy} below (1-1/e)·opt {floor}"
        );
    }
}

#[test]
fn sampled_greedy_stays_near_the_guarantee() {
    // With n_s < n, Theorem 3 trades ε of the ratio for speed; check that
    // even an aggressive n_s = 5 keeps the *average* ratio comfortably
    // above 1 − 1/e − ε for a generous ε = 0.25.
    let mut total_ratio = 0.0f64;
    let trials = 10u64;
    for seed in 0..trials {
        let x = random_points(1000 + seed);
        let clustering = kmeans(&x, 4, 20, &mut SeedRng::new(seed));
        let opt = optimal_coverage(&x, &clustering);
        let sel =
            e2gcl_selector::greedy::GreedySelector::new(e2gcl_selector::greedy::GreedyConfig {
                num_clusters: 4,
                sample_size: 5,
                ..Default::default()
            })
            .select_from_aggregate(&x, K, &mut SeedRng::new(seed ^ 7));
        let got = coverage(&x, &clustering, &sel.nodes);
        total_ratio += got / opt.max(1e-12);
    }
    let avg = total_ratio / trials as f64;
    let floor = 1.0 - 1.0 / std::f64::consts::E - 0.25;
    assert!(avg >= floor, "average ratio {avg} below {floor}");
}
