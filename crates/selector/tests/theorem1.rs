//! Empirical validation of Theorem 1.
//!
//! Under the relaxed (linear) GCN `H = A_n^L X θ` and the loss
//! `l(θ, ĥ_v, h̃_v) = ||ĥ_v − h̃_v||²`, the paper proves
//!
//! ```text
//! ||∇_θ l_v − ∇_θ l_u|| ≤ c·||r_v − r_u|| + 4εc,   c = 8ε·||θ||
//! ```
//!
//! whenever each view's raw aggregate stays within ε of the original
//! (`||r_v − r̂_v|| ≤ ε`). The gradient has the closed form
//! `∇_θ l_v = 2(r̂_v − r̃_v)ᵀ(r̂_v − r̃_v)θ` (the paper works with the
//! un-doubled convention; the inequality is scale-consistent either way).
//! These tests draw random aggregates and ε-perturbations and check the
//! bound numerically — the foundation the whole §III coreset argument
//! rests on.

use e2gcl_linalg::{ops, Matrix, SeedRng};
use proptest::prelude::*;

const D: usize = 6;
const K: usize = 3;

/// ∇_θ ||r̂ θ − r̃ θ||² = (r̂ − r̃)ᵀ(r̂ − r̃) θ (paper's convention).
fn grad(r_hat: &[f32], r_tilde: &[f32], theta: &Matrix) -> Matrix {
    let diff: Vec<f32> = r_hat.iter().zip(r_tilde).map(|(a, b)| a - b).collect();
    // Outer product (d x d) times θ (d x k) without materialising d x d:
    // G = diff ⊗ (diffᵀ θ).
    let mut proj = vec![0.0f32; K];
    for (row, &dv) in (0..D).zip(&diff) {
        for (p, &t) in proj.iter_mut().zip(theta.row(row)) {
            *p += dv * t;
        }
    }
    let mut g = Matrix::zeros(D, K);
    for (row, &dv) in (0..D).zip(&diff) {
        for (cell, &p) in g.row_mut(row).iter_mut().zip(&proj) {
            *cell = dv * p;
        }
    }
    g
}

/// Draws a vector within L2 distance ε of `base`.
fn perturb_within(base: &[f32], eps: f32, rng: &mut SeedRng) -> Vec<f32> {
    let noise: Vec<f32> = (0..base.len()).map(|_| rng.normal()).collect();
    let norm = ops::norm(&noise).max(1e-9);
    let scale = rng.uniform() * eps / norm;
    noise.iter().zip(base).map(|(n, b)| b + n * scale).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The Theorem-1 inequality holds for arbitrary aggregates, parameters
    /// and ε-bounded views.
    #[test]
    fn gradient_difference_bound_holds(seed in any::<u64>(), eps in 0.01f32..1.0) {
        let mut rng = SeedRng::new(seed);
        let r_v: Vec<f32> = (0..D).map(|_| 3.0 * rng.normal()).collect();
        let r_u: Vec<f32> = (0..D).map(|_| 3.0 * rng.normal()).collect();
        let mut theta = Matrix::zeros(D, K);
        for t in theta.as_mut_slice() {
            *t = rng.normal();
        }
        let rv_hat = perturb_within(&r_v, eps, &mut rng);
        let rv_tilde = perturb_within(&r_v, eps, &mut rng);
        let ru_hat = perturb_within(&r_u, eps, &mut rng);
        let ru_tilde = perturb_within(&r_u, eps, &mut rng);
        let gv = grad(&rv_hat, &rv_tilde, &theta);
        let gu = grad(&ru_hat, &ru_tilde, &theta);
        let mut diff = gv.clone();
        diff.sub_assign(&gu);
        let lhs = diff.frobenius_norm();
        let c = 8.0 * eps * theta.frobenius_norm();
        let rhs = c * ops::dist(&r_v, &r_u) + 4.0 * eps * c;
        prop_assert!(
            lhs <= rhs * (1.0 + 1e-4) + 1e-6,
            "Theorem 1 violated: {lhs} > {rhs} (eps {eps})"
        );
    }

    /// Corollary used by Eq. (12): nodes with identical aggregates have
    /// gradient difference at most 4εc — the budget-independent floor.
    #[test]
    fn identical_aggregates_floor(seed in any::<u64>(), eps in 0.01f32..0.5) {
        let mut rng = SeedRng::new(seed);
        let r: Vec<f32> = (0..D).map(|_| rng.normal()).collect();
        let mut theta = Matrix::zeros(D, K);
        for t in theta.as_mut_slice() {
            *t = rng.normal();
        }
        let gv = grad(
            &perturb_within(&r, eps, &mut rng),
            &perturb_within(&r, eps, &mut rng),
            &theta,
        );
        let gu = grad(
            &perturb_within(&r, eps, &mut rng),
            &perturb_within(&r, eps, &mut rng),
            &theta,
        );
        let mut diff = gv.clone();
        diff.sub_assign(&gu);
        let c = 8.0 * eps * theta.frobenius_norm();
        prop_assert!(diff.frobenius_norm() <= 4.0 * eps * c * (1.0 + 1e-4) + 1e-6);
    }
}

/// Deterministic spot check: zero perturbation means zero gradients — the
/// loss is identically zero at ε = 0.
#[test]
fn zero_epsilon_zero_gradient() {
    let mut rng = SeedRng::new(0);
    let r: Vec<f32> = (0..D).map(|_| rng.normal()).collect();
    let mut theta = Matrix::zeros(D, K);
    for t in theta.as_mut_slice() {
        *t = rng.normal();
    }
    let g = grad(&r, &r, &theta);
    assert!(g.frobenius_norm() < 1e-12);
}
