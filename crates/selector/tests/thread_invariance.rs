//! Thread-count invariance of the greedy selector.
//!
//! The sub-quadratic loss strategies re-run `select_from_aggregate` every
//! epoch on current embeddings, so the selection itself must be bitwise
//! reproducible across `RAYON_NUM_THREADS`. The gain argmax tie-breaks on
//! the lowest node id and the rayon stand-in reduces sequentially in item
//! order; this test pins both by re-exec'ing itself under different pool
//! sizes (same pattern as the linalg/nn `thread_invariance` tests — the
//! pool size is fixed per process).

use e2gcl_linalg::hash::Fnv1a64;
use e2gcl_linalg::{Matrix, SeedRng};
use e2gcl_selector::greedy::{GreedyConfig, GreedySelector};
use std::process::Command;

const CHILD_ENV: &str = "E2GCL_SELECTOR_THREAD_INVARIANCE_CHILD";

/// Large enough that `step_work` crosses the selector's parallel-gains
/// threshold (4M): n_s ≈ max(n/k·3, 32) candidates × (avg cluster × dim).
fn compute_fingerprint() -> u64 {
    let n = 4096;
    let dim = 32;
    let mut rng = SeedRng::new(77);
    let repr = Matrix::from_vec(n, dim, (0..n * dim).map(|_| rng.normal()).collect());
    let selector = GreedySelector::new(GreedyConfig {
        num_clusters: 8,
        sample_size: 2048,
        kmeans_iters: 3,
        ..Default::default()
    });
    let sel = selector.select_from_aggregate(&repr, 48, &mut SeedRng::new(5));
    let mut h = Fnv1a64::new();
    for &v in &sel.nodes {
        h.write_u64(v as u64);
    }
    for &w in &sel.weights {
        h.write_f32(w);
    }
    h.finish()
}

#[test]
fn greedy_selection_bitwise_invariant_across_thread_counts() {
    if std::env::var(CHILD_ENV).is_ok() {
        println!("FP:{:016x}", compute_fingerprint());
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let mut fps = Vec::new();
    for threads in ["1", "4"] {
        let out = Command::new(&exe)
            .arg("greedy_selection_bitwise_invariant_across_thread_counts")
            .arg("--exact")
            .arg("--nocapture")
            .env(CHILD_ENV, "1")
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("spawn child test process");
        assert!(
            out.status.success(),
            "child with {threads} threads failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        // With --nocapture the marker can share a line with libtest output.
        let at = stdout
            .find("FP:")
            .unwrap_or_else(|| panic!("no FP marker in child output: {stdout}"));
        fps.push(stdout[at + 3..at + 19].to_string());
    }
    assert_eq!(
        fps[0], fps[1],
        "greedy selection differs between RAYON_NUM_THREADS=1 and 4"
    );
    let here = format!("{:016x}", compute_fingerprint());
    assert_eq!(fps[0], here, "parent fingerprint differs from children");
}
