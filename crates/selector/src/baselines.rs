//! Baseline selection strategies of Table VII.
//!
//! * [`RandomSelector`] — uniform without replacement;
//! * [`DegreeSelector`] — sample ∝ `log(D_v + 1)`;
//! * [`KMeansSelector`] — cluster into 10 groups, take an even share of
//!   random nodes from each;
//! * [`KCenterGreedy`] — farthest-first traversal over raw aggregates
//!   (Sener & Savarese's core-set for active learning, label-free variant);
//! * [`GrainSelector`] — diversified-influence maximisation à la Grain:
//!   greedily pick the node covering the most yet-uncovered nodes within a
//!   radius in aggregate space (ties broken by degree).

use crate::{assign_weights, NodeSelector, Selection};
use e2gcl_graph::{norm, CsrGraph};
use e2gcl_linalg::{ops, Matrix, SeedRng};
use rayon::prelude::*;

/// GCN depth used by aggregate-based baselines (matches the paper's L=2).
const LAYERS: usize = 2;

/// Uniform random selection.
#[derive(Clone, Debug, Default)]
pub struct RandomSelector;

impl NodeSelector for RandomSelector {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn select(&self, g: &CsrGraph, x: &Matrix, budget: usize, rng: &mut SeedRng) -> Selection {
        let n = g.num_nodes();
        let nodes = rng.sample_without_replacement(n, budget.min(n));
        let repr = norm::raw_aggregate(g, x, LAYERS);
        let weights = assign_weights(&repr, &nodes);
        Selection { nodes, weights }
    }
}

/// Degree-proportional sampling with probability `log(D_v+1)/Σ log(D_u+1)`.
#[derive(Clone, Debug, Default)]
pub struct DegreeSelector;

impl NodeSelector for DegreeSelector {
    fn name(&self) -> &'static str {
        "Degree"
    }

    fn select(&self, g: &CsrGraph, x: &Matrix, budget: usize, rng: &mut SeedRng) -> Selection {
        let n = g.num_nodes();
        let budget = budget.min(n);
        let mut weights_vec: Vec<f32> = (0..n)
            .map(|v| ((g.degree(v) + 1) as f32).ln().max(1e-6))
            .collect();
        let mut nodes = Vec::with_capacity(budget);
        let mut taken = vec![false; n];
        while nodes.len() < budget {
            let v = rng.weighted_index(&weights_vec);
            if !taken[v] {
                taken[v] = true;
                weights_vec[v] = 0.0;
                nodes.push(v);
            }
        }
        nodes.sort_unstable();
        let repr = norm::raw_aggregate(g, x, LAYERS);
        let weights = assign_weights(&repr, &nodes);
        Selection { nodes, weights }
    }
}

/// KMeans into a fixed number of groups, then an even random share per group.
#[derive(Clone, Debug)]
pub struct KMeansSelector {
    /// Number of groups (the paper's baseline uses 10).
    pub groups: usize,
}

impl Default for KMeansSelector {
    fn default() -> Self {
        Self { groups: 10 }
    }
}

impl NodeSelector for KMeansSelector {
    fn name(&self) -> &'static str {
        "KMeans"
    }

    fn select(&self, g: &CsrGraph, x: &Matrix, budget: usize, rng: &mut SeedRng) -> Selection {
        let n = g.num_nodes();
        let budget = budget.min(n);
        let repr = norm::raw_aggregate(g, x, LAYERS);
        let clustering =
            crate::kmeans::kmeans(&repr, self.groups.min(n), 20, &mut rng.fork("kmeans"));
        let k = clustering.num_clusters();
        let mut nodes = Vec::with_capacity(budget);
        // Round-robin an even share out of each cluster.
        let mut shuffled: Vec<Vec<usize>> = clustering
            .members
            .iter()
            .map(|ms| {
                let mut m = ms.clone();
                rng.shuffle(&mut m);
                m
            })
            .collect();
        let mut round = 0usize;
        while nodes.len() < budget {
            let mut advanced = false;
            for members in shuffled.iter_mut().take(k) {
                if nodes.len() >= budget {
                    break;
                }
                if round < members.len() {
                    nodes.push(members[round]);
                    advanced = true;
                }
            }
            if !advanced {
                break;
            }
            round += 1;
        }
        nodes.sort_unstable();
        let weights = assign_weights(&repr, &nodes);
        Selection { nodes, weights }
    }
}

/// K-Center-Greedy (farthest-first traversal) over raw aggregates.
#[derive(Clone, Debug, Default)]
pub struct KCenterGreedy;

impl NodeSelector for KCenterGreedy {
    fn name(&self) -> &'static str {
        "KCG"
    }

    fn select(&self, g: &CsrGraph, x: &Matrix, budget: usize, rng: &mut SeedRng) -> Selection {
        let n = g.num_nodes();
        let budget = budget.min(n);
        let repr = norm::raw_aggregate(g, x, LAYERS);
        if budget == 0 {
            return Selection {
                nodes: Vec::new(),
                weights: Vec::new(),
            };
        }
        let first = rng.below(n);
        let mut nodes = vec![first];
        let mut min_d2: Vec<f32> = (0..n)
            .into_par_iter()
            .map(|v| ops::sq_dist(repr.row(v), repr.row(first)))
            .collect();
        while nodes.len() < budget {
            // Farthest point from the current centre set.
            let (far, _) = min_d2
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("k-centres centre set is non-empty");
            nodes.push(far);
            min_d2.par_iter_mut().enumerate().for_each(|(v, d)| {
                let nd = ops::sq_dist(repr.row(v), repr.row(far));
                if nd < *d {
                    *d = nd;
                }
            });
        }
        nodes.sort_unstable();
        let weights = assign_weights(&repr, &nodes);
        Selection { nodes, weights }
    }
}

/// Grain-style diversified influence maximisation (label-free variant): a
/// node "influences" the nodes within `radius_quantile` of the pairwise
/// aggregate-distance distribution; greedily maximise new coverage.
#[derive(Clone, Debug)]
pub struct GrainSelector {
    /// Quantile of sampled pairwise distances used as the influence radius.
    pub radius_quantile: f32,
}

impl Default for GrainSelector {
    fn default() -> Self {
        Self {
            radius_quantile: 0.1,
        }
    }
}

impl NodeSelector for GrainSelector {
    fn name(&self) -> &'static str {
        "Grain"
    }

    fn select(&self, g: &CsrGraph, x: &Matrix, budget: usize, rng: &mut SeedRng) -> Selection {
        let n = g.num_nodes();
        let budget = budget.min(n);
        let repr = norm::raw_aggregate(g, x, LAYERS);
        if budget == 0 {
            return Selection {
                nodes: Vec::new(),
                weights: Vec::new(),
            };
        }
        // Estimate the influence radius from sampled pairs.
        let samples = 2000.min(n * (n - 1) / 2).max(1);
        let mut dists: Vec<f32> = (0..samples)
            .map(|_| {
                let a = rng.below(n);
                let mut b = rng.below(n);
                if a == b {
                    b = (b + 1) % n;
                }
                ops::dist(repr.row(a), repr.row(b))
            })
            .collect();
        dists.sort_unstable_by(|a, b| a.total_cmp(b));
        let q = ((samples as f32 * self.radius_quantile) as usize).min(samples - 1);
        let radius = dists[q].max(1e-6);
        // Greedy max-coverage; candidate pool capped for big graphs.
        let pool: Vec<usize> = if n > 4000 {
            rng.sample_without_replacement(n, 4000)
        } else {
            (0..n).collect()
        };
        let mut covered = vec![false; n];
        let mut nodes: Vec<usize> = Vec::with_capacity(budget);
        let mut in_set = vec![false; n];
        for _ in 0..budget {
            let best = pool
                .par_iter()
                .filter(|&&v| !in_set[v])
                .map(|&v| {
                    let mut cover = 0usize;
                    for (w, &cov) in covered.iter().enumerate() {
                        if !cov && ops::dist(repr.row(v), repr.row(w)) <= radius {
                            cover += 1;
                        }
                    }
                    // Tie-break by degree (Grain favours influential nodes).
                    (v, cover, g.degree(v))
                })
                .reduce(
                    || (usize::MAX, 0, 0),
                    |a, b| {
                        if b.0 == usize::MAX {
                            a
                        } else if a.0 == usize::MAX
                            || b.1 > a.1
                            || (b.1 == a.1 && (b.2 > a.2 || (b.2 == a.2 && b.0 < a.0)))
                        {
                            b
                        } else {
                            a
                        }
                    },
                );
            if best.0 == usize::MAX {
                break;
            }
            in_set[best.0] = true;
            nodes.push(best.0);
            for (w, cov) in covered.iter_mut().enumerate() {
                if !*cov && ops::dist(repr.row(best.0), repr.row(w)) <= radius {
                    *cov = true;
                }
            }
        }
        nodes.sort_unstable();
        let weights = assign_weights(&repr, &nodes);
        Selection { nodes, weights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_graph::generators;

    fn graph() -> (CsrGraph, Matrix) {
        let mut rng = SeedRng::new(0);
        let labels: Vec<usize> = (0..100).map(|v| v / 50).collect();
        let g = generators::dc_sbm(&labels, 2, 5.0, 0.9, &vec![1.0; 100], &mut rng);
        let mut x = Matrix::zeros(100, 3);
        for (v, &label) in labels.iter().enumerate() {
            x.set(v, label, 1.0);
        }
        (g, x)
    }

    fn all_selectors() -> Vec<Box<dyn NodeSelector>> {
        vec![
            Box::new(RandomSelector),
            Box::new(DegreeSelector),
            Box::new(KMeansSelector::default()),
            Box::new(KCenterGreedy),
            Box::new(GrainSelector::default()),
        ]
    }

    #[test]
    fn every_baseline_respects_budget() {
        let (g, x) = graph();
        for sel in all_selectors() {
            let mut rng = SeedRng::new(1);
            let s = sel.select(&g, &x, 15, &mut rng);
            s.validate(100, 15)
                .unwrap_or_else(|e| panic!("{}: {e}", sel.name()));
            assert_eq!(s.nodes.len(), 15, "{}", sel.name());
        }
    }

    #[test]
    fn every_baseline_handles_full_budget() {
        let (g, x) = graph();
        for sel in all_selectors() {
            let mut rng = SeedRng::new(2);
            let s = sel.select(&g, &x, 100, &mut rng);
            assert_eq!(s.nodes.len(), 100, "{}", sel.name());
        }
    }

    #[test]
    fn degree_selector_prefers_hubs() {
        let mut rng = SeedRng::new(3);
        // Star-heavy graph: node 0 has huge degree.
        let mut edges = Vec::new();
        for v in 1..60 {
            edges.push((0, v));
        }
        edges.push((60, 61));
        let g = CsrGraph::from_edges(62, &edges);
        let x = Matrix::filled(62, 2, 1.0);
        let mut hub_hits = 0;
        for trial in 0..20 {
            let mut r = rng.fork(&format!("t{trial}"));
            let s = DegreeSelector.select(&g, &x, 5, &mut r);
            if s.nodes.contains(&0) {
                hub_hits += 1;
            }
        }
        // Uniform sampling would include the hub ~8% of the time (≈1.6/20);
        // log-degree weighting lifts that to ~37% (≈7.4/20).
        assert!(hub_hits >= 4, "hub picked only {hub_hits}/20 times");
    }

    #[test]
    fn kcg_spreads_across_blobs() {
        let (g, x) = graph();
        let s = KCenterGreedy.select(&g, &x, 6, &mut SeedRng::new(4));
        let zero_blob = s.nodes.iter().filter(|&&v| v < 50).count();
        assert!(
            (1..=5).contains(&zero_blob),
            "coverage skewed: {zero_blob}/6"
        );
    }

    #[test]
    fn kmeans_selector_draws_from_every_group() {
        let (g, x) = graph();
        let s = KMeansSelector { groups: 2 }.select(&g, &x, 10, &mut SeedRng::new(5));
        let zero_blob = s.nodes.iter().filter(|&&v| v < 50).count();
        assert!((2..=8).contains(&zero_blob));
    }
}
