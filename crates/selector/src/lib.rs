//! The E²GCL representative-node selector (paper §III) and its baselines.
//!
//! The paper shows (Theorem 1) that under a relaxed GCN the contrastive
//! gradient difference between two nodes is bounded by the distance between
//! their *raw aggregates* `R = A_n^L X`, then formulates coreset selection
//! as the cluster-relaxed k-medoid objective of Eq. (14) (Definition 1),
//! proves it NP-hard (Theorem 2) and solves it with the sampling-based
//! greedy Algorithm 2 (approximation ratio `1 − 1/e − ε`, Theorem 3).
//!
//! Modules:
//! * [`kmeans`] — KMeans++/Lloyd over the raw aggregates;
//! * [`coreset`] — the Eq. (14) representativity objective with `O(1)`
//!   marginal-gain evaluation;
//! * [`greedy`] — Algorithm 2;
//! * [`baselines`] — Random / Degree / KMeans / KCG / Grain selectors of
//!   Table VII.

pub mod baselines;
pub mod coreset;
pub mod greedy;
pub mod kmeans;

use e2gcl_graph::CsrGraph;
use e2gcl_linalg::{Matrix, SeedRng};

/// A selected coreset: node indices plus the λ weights of Eq. (8)
/// (how many nodes each selected node represents; `Σλ = |V|`).
#[derive(Clone, Debug)]
pub struct Selection {
    /// Selected node indices (the coreset `V_s`).
    pub nodes: Vec<usize>,
    /// λ weight per selected node, parallel to `nodes`.
    pub weights: Vec<f32>,
}

impl Selection {
    /// Sanity check: budget respected and weights cover all nodes.
    pub fn validate(&self, num_nodes: usize, budget: usize) -> Result<(), String> {
        if self.nodes.len() > budget {
            return Err(format!("{} nodes exceed budget {budget}", self.nodes.len()));
        }
        if self.nodes.len() != self.weights.len() {
            return Err("weights not parallel to nodes".into());
        }
        let set: std::collections::HashSet<_> = self.nodes.iter().collect();
        if set.len() != self.nodes.len() {
            return Err("duplicate nodes".into());
        }
        if self.nodes.iter().any(|&v| v >= num_nodes) {
            return Err("node out of range".into());
        }
        let total: f32 = self.weights.iter().sum();
        if !self.nodes.is_empty() && (total - num_nodes as f32).abs() > 1.0 {
            return Err(format!("weights sum {total} != |V| {num_nodes}"));
        }
        Ok(())
    }
}

/// A node-selection strategy (Table VII rows).
pub trait NodeSelector {
    /// Human-readable name for result tables.
    fn name(&self) -> &'static str;

    /// Selects at most `budget` nodes of `graph` (with features `x`).
    fn select(&self, graph: &CsrGraph, x: &Matrix, budget: usize, rng: &mut SeedRng) -> Selection;
}

/// Assigns every node to its nearest selected node in `repr`-space and
/// returns the λ weights (Alg. 2, line 10).
pub fn assign_weights(repr: &Matrix, nodes: &[usize]) -> Vec<f32> {
    use e2gcl_linalg::ops;
    let mut weights = vec![0.0f32; nodes.len()];
    if nodes.is_empty() {
        return weights;
    }
    // argmin_u ||r_v - r_u||^2 = argmin_u (||r_u||^2 - 2 r_v · r_u); the
    // cross term is one dense matmul, which is far faster than per-pair
    // scalar distance loops.
    let selected = repr.select_rows(nodes);
    let sq_norms: Vec<f32> = nodes
        .iter()
        .map(|&u| ops::dot(repr.row(u), repr.row(u)))
        .collect();
    let cross = repr.matmul_transpose(&selected);
    for v in 0..repr.rows() {
        let row = cross.row(v);
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (i, (&c, &sq)) in row.iter().zip(&sq_norms).enumerate() {
            let d = sq - 2.0 * c;
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        weights[best] += 1.0;
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_weights_covers_all_nodes() {
        let repr = Matrix::from_rows(&[&[0.0], &[0.1], &[5.0], &[5.1], &[5.2]]);
        let w = assign_weights(&repr, &[0, 2]);
        assert_eq!(w, vec![2.0, 3.0]);
    }

    #[test]
    fn selection_validate_catches_errors() {
        let s = Selection {
            nodes: vec![0, 0],
            weights: vec![1.0, 1.0],
        };
        assert!(s.validate(5, 3).is_err()); // duplicates
        let s = Selection {
            nodes: vec![0, 1, 2],
            weights: vec![1.0, 1.0, 1.0],
        };
        assert!(s.validate(5, 2).is_err()); // over budget
        let s = Selection {
            nodes: vec![0, 1],
            weights: vec![2.0, 3.0],
        };
        assert!(s.validate(5, 2).is_ok());
        let s = Selection {
            nodes: vec![0, 1],
            weights: vec![1.0, 1.0],
        };
        assert!(s.validate(5, 2).is_err()); // weights don't sum to |V|
    }
}
