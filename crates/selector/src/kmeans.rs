//! KMeans++ / Lloyd clustering over raw aggregates.

use e2gcl_linalg::{ops, Matrix, SeedRng};
use rayon::prelude::*;

/// Result of a KMeans run.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Cluster label per node.
    pub labels: Vec<usize>,
    /// Cluster centres (`k x d`).
    pub centers: Matrix,
    /// Per-cluster maximum member-to-centre distance (`d_i^max` of Eq. 13).
    pub d_max: Vec<f32>,
    /// Per-cluster member lists.
    pub members: Vec<Vec<usize>>,
}

impl Clustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centers.rows()
    }

    /// Total within-cluster squared distance (the Lloyd objective).
    pub fn cost(&self, x: &Matrix) -> f64 {
        self.labels
            .iter()
            .enumerate()
            .map(|(v, &c)| f64::from(ops::sq_dist(x.row(v), self.centers.row(c))))
            .sum()
    }
}

/// KMeans++ seeding followed by Lloyd iterations.
///
/// `k` is clamped to the number of rows. Empty clusters are re-seeded from
/// the farthest point, so all `k` clusters stay inhabited.
pub fn kmeans(x: &Matrix, k: usize, iters: usize, rng: &mut SeedRng) -> Clustering {
    let n = x.rows();
    assert!(n > 0, "kmeans on empty input");
    let k = k.clamp(1, n);
    let mut centers = plus_plus_init(x, k, rng);
    let mut labels = vec![0usize; n];
    for _ in 0..iters {
        // Assignment step as one dense matmul:
        // argmin_c ||x_v - c||^2 = argmin_c (||c||^2 - 2 x_v · c).
        let cross = x.matmul_transpose(&centers);
        let c_sq: Vec<f32> = (0..k)
            .map(|c| ops::dot(centers.row(c), centers.row(c)))
            .collect();
        let new_labels: Vec<usize> = (0..n)
            .into_par_iter()
            .map(|v| {
                let row = cross.row(v);
                let mut best = (0usize, f32::INFINITY);
                for (c, (&cr, &sq)) in row.iter().zip(&c_sq).enumerate() {
                    let d = sq - 2.0 * cr;
                    if d < best.1 {
                        best = (c, d);
                    }
                }
                best.0
            })
            .collect();
        let changed = new_labels != labels;
        labels = new_labels;
        // Update step.
        let mut sums = Matrix::zeros(k, x.cols());
        let mut counts = vec![0usize; k];
        for (v, &c) in labels.iter().enumerate() {
            ops::axpy_slice(sums.row_mut(c), 1.0, x.row(v));
            counts[c] += 1;
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Re-seed an empty cluster from the globally farthest point.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = nearest_center(x.row(a), &centers).1;
                        let db = nearest_center(x.row(b), &centers).1;
                        da.total_cmp(&db)
                    })
                    .expect("kmeans input has at least one point");
                centers.set_row(c, x.row(far));
            } else {
                let inv = 1.0 / count as f32;
                let mut row = sums.row(c).to_vec();
                for v in &mut row {
                    *v *= inv;
                }
                centers.set_row(c, &row);
            }
        }
        if !changed {
            break;
        }
    }
    finalize(x, labels, centers)
}

fn finalize(x: &Matrix, labels: Vec<usize>, centers: Matrix) -> Clustering {
    let k = centers.rows();
    let mut d_max = vec![0.0f32; k];
    let mut members = vec![Vec::new(); k];
    for (v, &c) in labels.iter().enumerate() {
        let d = ops::dist(x.row(v), centers.row(c));
        if d > d_max[c] {
            d_max[c] = d;
        }
        members[c].push(v);
    }
    Clustering {
        labels,
        centers,
        d_max,
        members,
    }
}

/// `(index, squared distance)` of the nearest centre.
fn nearest_center(row: &[f32], centers: &Matrix) -> (usize, f32) {
    let mut best = (0usize, f32::INFINITY);
    for c in 0..centers.rows() {
        let d = ops::sq_dist(row, centers.row(c));
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// KMeans++ seeding: first centre uniform, later centres ∝ D².
fn plus_plus_init(x: &Matrix, k: usize, rng: &mut SeedRng) -> Matrix {
    let n = x.rows();
    let mut centers = Matrix::zeros(k, x.cols());
    let first = rng.below(n);
    centers.set_row(0, x.row(first));
    let mut d2: Vec<f32> = (0..n)
        .map(|v| ops::sq_dist(x.row(v), centers.row(0)))
        .collect();
    for c in 1..k {
        let pick = rng.weighted_index(&d2);
        centers.set_row(c, x.row(pick));
        for (v, dv) in d2.iter_mut().enumerate() {
            let d = ops::sq_dist(x.row(v), centers.row(c));
            if d < *dv {
                *dv = d;
            }
        }
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SeedRng::new(seed);
        let centers = [[0.0f32, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut x = Matrix::zeros(per * 3, 2);
        let mut truth = Vec::new();
        for (b, center) in centers.iter().enumerate() {
            for i in 0..per {
                let v = b * per + i;
                x.set(v, 0, center[0] + 0.5 * rng.normal());
                x.set(v, 1, center[1] + 0.5 * rng.normal());
                truth.push(b);
            }
        }
        (x, truth)
    }

    #[test]
    fn kmeans_recovers_blobs() {
        let (x, truth) = blobs(30, 0);
        let mut rng = SeedRng::new(1);
        let c = kmeans(&x, 3, 50, &mut rng);
        // Every true blob should map to exactly one cluster label.
        for b in 0..3 {
            let lbls: std::collections::HashSet<_> = (0..90)
                .filter(|&v| truth[v] == b)
                .map(|v| c.labels[v])
                .collect();
            assert_eq!(lbls.len(), 1, "blob {b} split across clusters");
        }
    }

    #[test]
    fn cost_decreases_with_more_clusters() {
        let (x, _) = blobs(20, 2);
        let c1 = kmeans(&x, 1, 30, &mut SeedRng::new(3));
        let c3 = kmeans(&x, 3, 30, &mut SeedRng::new(3));
        assert!(c3.cost(&x) < c1.cost(&x) * 0.2);
    }

    #[test]
    fn k_clamped_to_n() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let c = kmeans(&x, 10, 5, &mut SeedRng::new(4));
        assert_eq!(c.num_clusters(), 2);
    }

    #[test]
    fn d_max_bounds_members() {
        let (x, _) = blobs(25, 5);
        let c = kmeans(&x, 3, 30, &mut SeedRng::new(6));
        for (v, &lbl) in c.labels.iter().enumerate() {
            let d = ops::dist(x.row(v), c.centers.row(lbl));
            assert!(d <= c.d_max[lbl] + 1e-5);
        }
    }

    #[test]
    fn members_partition_nodes() {
        let (x, _) = blobs(10, 7);
        let c = kmeans(&x, 3, 20, &mut SeedRng::new(8));
        let total: usize = c.members.iter().map(|m| m.len()).sum();
        assert_eq!(total, 30);
        for (ci, ms) in c.members.iter().enumerate() {
            for &v in ms {
                assert_eq!(c.labels[v], ci);
            }
        }
    }
}
