//! Algorithm 2: sampling-based greedy coreset selection.

use crate::coreset::CoresetObjective;
use crate::kmeans::{kmeans, Clustering};
use crate::{assign_weights, NodeSelector, Selection};
use e2gcl_graph::{norm, CsrGraph};
use e2gcl_linalg::{Matrix, SeedRng};
use rayon::prelude::*;

/// Configuration of the E²GCL node selector (Alg. 2).
#[derive(Clone, Debug)]
pub struct GreedyConfig {
    /// GCN depth `L` used for the raw aggregate `R = A_n^L X`.
    pub layers: usize,
    /// Number of KMeans clusters `n_c`. `0` means auto: `clamp(n/32, 60,
    /// 400)`, which keeps per-cluster greedy work flat as graphs grow.
    pub num_clusters: usize,
    /// Candidate sample size `n_s` per greedy step. `0` means auto:
    /// `max(32, (n/k)·ln(1/ε))` with ε = 0.05 — the Theorem-3 prescription
    /// (the paper tunes a fixed `n_s` in `[100, 1000]` instead; pass one
    /// explicitly to reproduce that).
    pub sample_size: usize,
    /// Lloyd iterations for the clustering step.
    pub kmeans_iters: usize,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        Self {
            layers: 2,
            num_clusters: 0,
            sample_size: 0,
            kmeans_iters: 15,
        }
    }
}

/// The E²GCL representative node selector.
#[derive(Clone, Debug, Default)]
pub struct GreedySelector {
    /// Algorithm parameters.
    pub config: GreedyConfig,
}

impl GreedySelector {
    /// Selector with explicit configuration.
    pub fn new(config: GreedyConfig) -> Self {
        Self { config }
    }

    /// Runs Alg. 2 on a precomputed raw aggregate (lets callers reuse `R`).
    pub fn select_from_aggregate(
        &self,
        repr: &Matrix,
        budget: usize,
        rng: &mut SeedRng,
    ) -> Selection {
        let n = repr.rows();
        let budget = budget.min(n);
        if budget == 0 {
            return Selection {
                nodes: Vec::new(),
                weights: Vec::new(),
            };
        }
        let n_c = if self.config.num_clusters == 0 {
            (n / 32).clamp(60, 400)
        } else {
            self.config.num_clusters
        };
        let clustering: Clustering = kmeans(
            repr,
            n_c.min(n),
            self.config.kmeans_iters,
            &mut rng.fork("kmeans"),
        );
        let mut objective = CoresetObjective::new(repr, &clustering);
        let mut selected_mask = vec![false; n];
        let mut sample_rng = rng.fork("sampling");
        let base_n_s = if self.config.sample_size == 0 {
            // Theorem 3: n_s = (n/k)·ln(1/ε) candidates suffice for the
            // 1 − 1/e − ε ratio; ε = 0.05.
            (((n as f64 / budget as f64) * 3.0).ceil() as usize).max(32)
        } else {
            self.config.sample_size
        };
        // Parallel gain evaluation only pays when the per-step work
        // amortises rayon's fork/join cost (~1ms).
        let avg_cluster = n / n_c.min(n).max(1);
        let step_work = base_n_s * (avg_cluster * repr.cols() + n_c);
        let parallel_gains = step_work >= 4_000_000;
        while objective.selected().len() < budget {
            let remaining: Vec<usize> = (0..n).filter(|&v| !selected_mask[v]).collect();
            if remaining.is_empty() {
                break;
            }
            let n_s = base_n_s.min(remaining.len());
            let candidate_idx = sample_rng.sample_without_replacement(remaining.len(), n_s);
            let candidates: Vec<usize> = candidate_idx.into_iter().map(|i| remaining[i]).collect();
            // Marginal-gain evaluation (Alg. 2, lines 5-7). Parallelism only
            // pays once the per-step work amortises rayon's fork/join cost;
            // on small graphs the serial loop is several times faster.
            //
            // Deterministic tie-break: on equal gain the LOWEST node id wins.
            // `pick_best` is associative and order-insensitive for distinct
            // ids, and the rayon stand-in reduces sequentially in item order,
            // so the argmax — and with it the whole selection — is
            // bit-identical across `RAYON_NUM_THREADS` (regression test:
            // `thread_invariance.rs`). Sub-quadratic loss strategies rely on
            // this when re-selecting negatives every epoch.
            let pick_best = |a: (usize, f64), b: (usize, f64)| {
                if b.1 > a.1 || (b.1 == a.1 && b.0 < a.0) {
                    b
                } else {
                    a
                }
            };
            let best = if parallel_gains {
                candidates
                    .par_iter()
                    .map(|&v| (v, objective.gain(v)))
                    .reduce(|| (usize::MAX, f64::NEG_INFINITY), pick_best)
            } else {
                candidates
                    .iter()
                    .map(|&v| (v, objective.gain(v)))
                    .fold((usize::MAX, f64::NEG_INFINITY), pick_best)
            };
            let v_star = best.0;
            debug_assert!(v_star != usize::MAX);
            objective.add(v_star);
            selected_mask[v_star] = true;
        }
        let nodes = objective.selected().to_vec();
        let weights = assign_weights(repr, &nodes);
        Selection { nodes, weights }
    }
}

impl NodeSelector for GreedySelector {
    fn name(&self) -> &'static str {
        "E2GCL-Greedy"
    }

    fn select(&self, graph: &CsrGraph, x: &Matrix, budget: usize, rng: &mut SeedRng) -> Selection {
        let repr = norm::raw_aggregate(graph, x, self.config.layers);
        self.select_from_aggregate(&repr, budget, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_graph::generators;

    /// A graph with two dense communities and distinctive features.
    fn clustered_graph(seed: u64) -> (CsrGraph, Matrix, Vec<usize>) {
        let mut rng = SeedRng::new(seed);
        let n = 120;
        let labels: Vec<usize> = (0..n).map(|v| v / 60).collect();
        let theta = vec![1.0f32; n];
        let g = generators::dc_sbm(&labels, 2, 6.0, 0.95, &theta, &mut rng);
        let mut x = Matrix::zeros(n, 4);
        for (v, &label) in labels.iter().enumerate() {
            x.set(v, label, 1.0);
            x.set(v, 2 + label, rng.uniform());
        }
        (g, x, labels)
    }

    #[test]
    fn respects_budget_and_weights() {
        let (g, x, _) = clustered_graph(0);
        let sel = GreedySelector::default();
        let mut rng = SeedRng::new(1);
        let s = sel.select(&g, &x, 12, &mut rng);
        s.validate(g.num_nodes(), 12).unwrap();
        assert_eq!(s.nodes.len(), 12);
    }

    #[test]
    fn covers_both_communities() {
        let (g, x, labels) = clustered_graph(2);
        let sel = GreedySelector::new(GreedyConfig {
            num_clusters: 8,
            sample_size: 60,
            ..GreedyConfig::default()
        });
        let mut rng = SeedRng::new(3);
        let s = sel.select(&g, &x, 10, &mut rng);
        let picked: std::collections::HashSet<usize> = s.nodes.iter().map(|&v| labels[v]).collect();
        assert_eq!(picked.len(), 2, "both communities must be represented");
    }

    #[test]
    fn beats_random_on_exact_objective() {
        let (g, x, _) = clustered_graph(4);
        let repr = norm::raw_aggregate(&g, &x, 2);
        let sel = GreedySelector::new(GreedyConfig {
            num_clusters: 8,
            sample_size: 120,
            ..GreedyConfig::default()
        });
        let s = sel.select_from_aggregate(&repr, 8, &mut SeedRng::new(5));
        let greedy_cost = crate::coreset::exact_kmedoid_objective(&repr, &s.nodes);
        // Average several random selections.
        let mut rng = SeedRng::new(6);
        let mut random_cost = 0.0;
        let trials = 5;
        for _ in 0..trials {
            let r = rng.sample_without_replacement(g.num_nodes(), 8);
            random_cost += crate::coreset::exact_kmedoid_objective(&repr, &r);
        }
        random_cost /= trials as f64;
        assert!(
            greedy_cost < random_cost,
            "greedy {greedy_cost} should beat random {random_cost}"
        );
    }

    #[test]
    fn budget_larger_than_graph_selects_everything() {
        let (g, x, _) = clustered_graph(7);
        let sel = GreedySelector::default();
        let s = sel.select(&g, &x, 10_000, &mut SeedRng::new(8));
        assert_eq!(s.nodes.len(), g.num_nodes());
    }

    #[test]
    fn zero_budget_empty_selection() {
        let (g, x, _) = clustered_graph(9);
        let s = GreedySelector::default().select(&g, &x, 0, &mut SeedRng::new(10));
        assert!(s.nodes.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, x, _) = clustered_graph(11);
        let sel = GreedySelector::default();
        let a = sel.select(&g, &x, 10, &mut SeedRng::new(12));
        let b = sel.select(&g, &x, 10, &mut SeedRng::new(12));
        assert_eq!(a.nodes, b.nodes);
    }
}
