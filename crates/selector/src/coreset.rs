//! The Eq. (14) cluster-relaxed representativity objective.
//!
//! For a selected set `V_s`, each node `w` in cluster `C_i` is "covered" at
//! distance
//!
//! ```text
//! d(w, V_s) = min( min_{u ∈ V_s ∩ C_i} ||R[w] − R[u]||,
//!                  min_{u ∈ V_s \ C_i} ||c_i − R[u]|| + d_i^max )
//! ```
//!
//! and the objective (to minimise) is `Σ_w d(w, V_s)`. The key structural
//! fact this module exploits: the *cross-cluster* branch depends on `w` only
//! through its cluster, so the marginal gain of a candidate `u` decomposes
//! into an exact per-member term over `u`'s own cluster plus one threshold
//! query per other cluster — which sorted per-cluster coverage tables answer
//! in `O(log |C_j|)` each.

use crate::kmeans::Clustering;
use e2gcl_linalg::{ops, Matrix};

/// Incremental evaluator of the Eq. (14) objective.
#[derive(Clone, Debug)]
pub struct CoresetObjective<'a> {
    repr: &'a Matrix,
    clustering: &'a Clustering,
    /// Coverage distance of an unrepresented node (finite stand-in for ∞ so
    /// marginal gains stay well-defined before the first selection).
    big: f32,
    /// Current coverage distance per node.
    best: Vec<f32>,
    /// Per-cluster sorted copies of `best` + suffix sums, for threshold sums.
    tables: Vec<CoverageTable>,
    /// Precomputed `||c_j − R[u]||` for every node `u` and cluster `j`
    /// (row-major `n x n_c`) — the relaxed branch of Eq. (14) reads this
    /// once per (candidate, cluster) instead of recomputing a `d`-dim
    /// distance on every greedy step.
    center_dist: Vec<f32>,
    selected: Vec<usize>,
}

#[derive(Clone, Debug)]
struct CoverageTable {
    /// Member coverage distances, ascending.
    sorted: Vec<f32>,
    /// `suffix[i] = Σ sorted[i..]`.
    suffix: Vec<f64>,
}

impl CoverageTable {
    fn build(values: impl Iterator<Item = f32>) -> CoverageTable {
        let mut sorted: Vec<f32> = values.collect();
        sorted.sort_unstable_by(|a, b| a.total_cmp(b));
        let mut suffix = vec![0.0f64; sorted.len() + 1];
        for i in (0..sorted.len()).rev() {
            suffix[i] = suffix[i + 1] + f64::from(sorted[i]);
        }
        CoverageTable { sorted, suffix }
    }

    /// `Σ_w max(0, best_w − t)` over this cluster's members.
    fn gain_at(&self, t: f32) -> f64 {
        // First index with sorted[i] > t.
        let idx = self.sorted.partition_point(|&v| v <= t);
        let count = (self.sorted.len() - idx) as f64;
        self.suffix[idx] - f64::from(t) * count
    }
}

impl<'a> CoresetObjective<'a> {
    /// Builds the evaluator over raw aggregates `repr` and a clustering.
    pub fn new(repr: &'a Matrix, clustering: &'a Clustering) -> Self {
        let k = clustering.num_clusters();
        // Upper bound on any Eq. (14) distance: max centre separation plus
        // twice the largest radius.
        let mut max_center_sep = 0.0f32;
        for i in 0..k {
            for j in (i + 1)..k {
                let d = ops::dist(clustering.centers.row(i), clustering.centers.row(j));
                max_center_sep = max_center_sep.max(d);
            }
        }
        let max_radius = clustering.d_max.iter().cloned().fold(0.0f32, f32::max);
        let big = max_center_sep + 2.0 * max_radius + 1.0;
        let best = vec![big; repr.rows()];
        let tables = Self::build_tables(clustering, &best);
        let n = repr.rows();
        let mut center_dist = vec![0.0f32; n * k];
        {
            use rayon::prelude::*;
            center_dist
                .par_chunks_mut(k)
                .enumerate()
                .for_each(|(u, row)| {
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot = ops::dist(clustering.centers.row(j), repr.row(u));
                    }
                });
        }
        Self {
            repr,
            clustering,
            big,
            best,
            tables,
            center_dist,
            selected: Vec::new(),
        }
    }

    /// Precomputed `||c_j − R[u]||`.
    #[inline]
    fn dist_to_center(&self, u: usize, j: usize) -> f32 {
        self.center_dist[u * self.clustering.num_clusters() + j]
    }

    fn build_tables(clustering: &Clustering, best: &[f32]) -> Vec<CoverageTable> {
        use rayon::prelude::*;
        if clustering.labels.len() >= 4096 {
            clustering
                .members
                .par_iter()
                .map(|ms| CoverageTable::build(ms.iter().map(|&w| best[w])))
                .collect()
        } else {
            clustering
                .members
                .iter()
                .map(|ms| CoverageTable::build(ms.iter().map(|&w| best[w])))
                .collect()
        }
    }

    /// Currently selected nodes.
    pub fn selected(&self) -> &[usize] {
        &self.selected
    }

    /// Current objective value `RS(V_s) = Σ_w best_w`.
    pub fn objective(&self) -> f64 {
        self.best.iter().map(|&b| f64::from(b)).sum()
    }

    /// The "unrepresented" stand-in distance used before any selection.
    pub fn big(&self) -> f32 {
        self.big
    }

    /// Eq. (14) coverage distance a candidate `u` offers to node `w`:
    /// exact within `u`'s cluster, centre-relaxed across clusters.
    pub fn candidate_distance(&self, u: usize, w: usize) -> f32 {
        let cu = self.clustering.labels[u];
        let cw = self.clustering.labels[w];
        if cu == cw {
            ops::dist(self.repr.row(w), self.repr.row(u))
        } else {
            self.dist_to_center(u, cw) + self.clustering.d_max[cw]
        }
    }

    /// Marginal gain `ΔRS(u | V_s) = RS(V_s) − RS(V_s ∪ {u}) ≥ 0`.
    pub fn gain(&self, u: usize) -> f64 {
        let cu = self.clustering.labels[u];
        let mut gain = 0.0f64;
        // Exact branch over u's own cluster.
        for &w in &self.clustering.members[cu] {
            let d = ops::dist(self.repr.row(w), self.repr.row(u));
            if d < self.best[w] {
                gain += f64::from(self.best[w] - d);
            }
        }
        // Relaxed branch for every other cluster.
        for j in 0..self.clustering.num_clusters() {
            if j == cu {
                continue;
            }
            let t = self.dist_to_center(u, j) + self.clustering.d_max[j];
            gain += self.tables[j].gain_at(t);
        }
        gain
    }

    /// Adds `u` to the selection, updating coverage distances.
    pub fn add(&mut self, u: usize) {
        self.selected.push(u);
        let cu = self.clustering.labels[u];
        for &w in &self.clustering.members[cu] {
            let d = ops::dist(self.repr.row(w), self.repr.row(u));
            if d < self.best[w] {
                self.best[w] = d;
            }
        }
        for j in 0..self.clustering.num_clusters() {
            if j == cu {
                continue;
            }
            let t = self.dist_to_center(u, j) + self.clustering.d_max[j];
            for &w in &self.clustering.members[j] {
                if t < self.best[w] {
                    self.best[w] = t;
                }
            }
        }
        self.tables = Self::build_tables(self.clustering, &self.best);
    }
}

/// The exact (unrelaxed) Eq. (12) k-medoid objective — brute force, used by
/// the relaxation-quality ablation and tests.
pub fn exact_kmedoid_objective(repr: &Matrix, selected: &[usize]) -> f64 {
    if selected.is_empty() {
        return f64::INFINITY;
    }
    (0..repr.rows())
        .map(|v| {
            selected
                .iter()
                .map(|&u| f64::from(ops::dist(repr.row(v), repr.row(u))))
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::kmeans;
    use e2gcl_linalg::SeedRng;

    fn two_blobs() -> Matrix {
        let mut rng = SeedRng::new(0);
        let mut x = Matrix::zeros(40, 2);
        for v in 0..40 {
            let c = if v < 20 { 0.0 } else { 8.0 };
            x.set(v, 0, c + 0.3 * rng.normal());
            x.set(v, 1, c + 0.3 * rng.normal());
        }
        x
    }

    #[test]
    fn gain_matches_add_delta() {
        let x = two_blobs();
        let clustering = kmeans(&x, 2, 30, &mut SeedRng::new(1));
        let mut obj = CoresetObjective::new(&x, &clustering);
        for &u in &[3usize, 25, 10] {
            let before = obj.objective();
            let g = obj.gain(u);
            obj.add(u);
            let after = obj.objective();
            assert!(
                (before - after - g).abs() < 1e-3 * (1.0 + g.abs()),
                "gain {g} vs delta {}",
                before - after
            );
        }
    }

    #[test]
    fn gains_are_nonnegative_and_monotone_decreasing() {
        let x = two_blobs();
        let clustering = kmeans(&x, 2, 30, &mut SeedRng::new(2));
        let mut obj = CoresetObjective::new(&x, &clustering);
        let g_before = obj.gain(7);
        obj.add(5);
        let g_after = obj.gain(7);
        assert!(g_before >= 0.0 && g_after >= 0.0);
        // Submodularity: adding an element can only shrink later gains.
        assert!(g_after <= g_before + 1e-6);
    }

    #[test]
    fn covering_both_blobs_beats_one_blob() {
        let x = two_blobs();
        let clustering = kmeans(&x, 2, 30, &mut SeedRng::new(3));
        let mut both = CoresetObjective::new(&x, &clustering);
        both.add(0);
        both.add(30);
        let mut one = CoresetObjective::new(&x, &clustering);
        one.add(0);
        one.add(1);
        assert!(both.objective() < one.objective());
    }

    #[test]
    fn objective_upper_bounds_exact_kmedoid() {
        // Eq. (13): the relaxed objective is an upper bound of Eq. (12).
        let x = two_blobs();
        let clustering = kmeans(&x, 2, 30, &mut SeedRng::new(4));
        let mut obj = CoresetObjective::new(&x, &clustering);
        obj.add(2);
        obj.add(31);
        let exact = exact_kmedoid_objective(&x, obj.selected());
        assert!(obj.objective() >= exact - 1e-3);
    }

    #[test]
    fn coverage_table_threshold_sums() {
        let t = CoverageTable::build([1.0, 3.0, 5.0].into_iter());
        assert!((t.gain_at(0.0) - 9.0).abs() < 1e-6);
        assert!((t.gain_at(2.0) - (1.0 + 3.0)).abs() < 1e-6); // (3-2)+(5-2)
        assert!((t.gain_at(10.0) - 0.0).abs() < 1e-6);
    }

    #[test]
    fn candidate_distance_exact_in_cluster_relaxed_across() {
        let x = two_blobs();
        let clustering = kmeans(&x, 2, 30, &mut SeedRng::new(5));
        let obj = CoresetObjective::new(&x, &clustering);
        // Same-cluster pair: exact Euclidean distance on R.
        let (u, w) = (0usize, 1usize);
        assert_eq!(clustering.labels[u], clustering.labels[w]);
        assert!((obj.candidate_distance(u, w) - ops::dist(x.row(w), x.row(u))).abs() < 1e-6);
        // Cross-cluster pair: centre distance + d_max, an upper bound.
        let v_other = (0..40)
            .find(|&v| clustering.labels[v] != clustering.labels[u])
            .unwrap();
        let relaxed = obj.candidate_distance(u, v_other);
        assert!(relaxed >= ops::dist(x.row(v_other), x.row(u)) - 1e-4);
    }

    #[test]
    fn exact_objective_empty_is_infinite() {
        let x = two_blobs();
        assert!(exact_kmedoid_objective(&x, &[]).is_infinite());
    }
}
