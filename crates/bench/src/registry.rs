//! Model zoo keyed by the names the paper's tables use.

use e2gcl::models::adgcl::AdgclModel;
use e2gcl::models::bgrl::{AfgrlModel, BgrlModel};
use e2gcl::models::dgi::DgiModel;
use e2gcl::models::gae::{GaeModel, VgaeModel};
use e2gcl::models::grace::GraceModel;
use e2gcl::models::mvgrl::MvgrlModel;
use e2gcl::models::walks::WalkModel;
use e2gcl::prelude::*;

/// Instantiates a contrastive model by its table name.
///
/// Unknown names return [`TrainError::UnknownModel`] listing the registered
/// ones; see [`table4_contrastive_names`].
pub fn model(name: &str) -> Result<Box<dyn ContrastiveModel>, TrainError> {
    Ok(match name {
        "E2GCL" => Box::new(E2gclModel::default()),
        "GRACE" => Box::new(GraceModel::grace()),
        "GCA" => Box::new(GraceModel::gca()),
        "MVGRL" => Box::new(MvgrlModel::default()),
        "BGRL" => Box::new(BgrlModel::default()),
        "AFGRL" => Box::new(AfgrlModel::default()),
        "DGI" => Box::new(DgiModel),
        "GAE" => Box::new(GaeModel),
        "VGAE" => Box::new(VgaeModel::default()),
        "ADGCL" => Box::new(AdgclModel::default()),
        "DW" => Box::new(WalkModel::deepwalk()),
        "N2V" => Box::new(WalkModel::node2vec()),
        other => {
            return Err(TrainError::UnknownModel {
                name: other.to_string(),
                valid: table4_contrastive_names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            })
        }
    })
}

/// True if this model is a random-walk method (gets the reduced-epoch
/// config; see `Profile::walk_config`).
pub fn is_walk_model(name: &str) -> bool {
    matches!(name, "DW" | "N2V")
}

/// The self-supervised rows of Table IV, top to bottom.
pub fn table4_contrastive_names() -> Vec<&'static str> {
    vec![
        "DW", "N2V", "GAE", "VGAE", "DGI", "BGRL", "AFGRL", "MVGRL", "GRACE", "GCA", "E2GCL",
    ]
}

/// The strongest baselines used in Fig. 3 / Table V / Table IX comparisons.
pub fn strong_baseline_names() -> Vec<&'static str> {
    vec!["AFGRL", "BGRL", "MVGRL", "GRACE", "GCA"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_constructs() {
        for n in table4_contrastive_names() {
            let m = model(n).unwrap();
            // Registry name must match the table name the paper prints
            // (walk models use the paper's abbreviations).
            match n {
                "DW" => assert_eq!(m.name(), "DeepWalk"),
                "N2V" => assert_eq!(m.name(), "Node2Vec"),
                other => assert_eq!(m.name(), other),
            }
        }
        for n in strong_baseline_names() {
            let _ = model(n).unwrap();
        }
    }

    #[test]
    fn unknown_model_errors_and_lists_valid_names() {
        let Err(err) = model("GPT") else {
            panic!("expected an unknown-model error");
        };
        assert!(matches!(err, TrainError::UnknownModel { .. }));
        assert!(err.to_string().contains("E2GCL"), "{err}");
    }
}
