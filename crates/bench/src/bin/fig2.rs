//! Fig. 2: adding the missing augmentation operations ({FP}, {EA}) to
//! ADGCL / MVGRL / GRACE / GCA improves each of them on Cora and Computers
//! ("the blue line is above the red line").
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin fig2 --release -- --profile quick
//! ```

use e2gcl::models::adgcl::{AdgclConfig, AdgclModel};
use e2gcl::models::grace::{GraceConfig, GraceModel};
use e2gcl::models::mvgrl::{MvgrlConfig, MvgrlModel};
use e2gcl::pipeline::run_node_classification;
use e2gcl::prelude::*;
use e2gcl_bench::report::{outcome_of, CellOutcome, SweepSummary};
use e2gcl_bench::{report, Profile};
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    pair: String,
    dataset: String,
    original: f32,
    upgraded: f32,
}

fn upgraded_pairs() -> Vec<(Box<dyn ContrastiveModel>, Box<dyn ContrastiveModel>)> {
    vec![
        (
            Box::new(AdgclModel::default()),
            Box::new(AdgclModel::new(AdgclConfig {
                extra_feature_perturb: Some(0.1),
                extra_edge_add: Some(0.05),
                ..Default::default()
            })),
        ),
        (
            Box::new(MvgrlModel::default()),
            Box::new(MvgrlModel::new(MvgrlConfig {
                extra_feature_perturb: Some(0.1),
                ..Default::default()
            })),
        ),
        (
            Box::new(GraceModel::grace()),
            Box::new(GraceModel::new(GraceConfig {
                extra_feature_perturb: Some(0.1),
                extra_edge_add: Some(0.05),
                ..Default::default()
            })),
        ),
        (
            Box::new(GraceModel::gca()),
            Box::new(GraceModel::new(GraceConfig {
                adaptive: true,
                extra_feature_perturb: Some(0.1),
                extra_edge_add: Some(0.05),
                ..Default::default()
            })),
        ),
    ]
}

fn main() {
    let profile = Profile::from_args();
    println!(
        "Fig. 2 reproduction — upgraded operation sets (profile: {})",
        profile.name
    );
    let datasets = [
        profile.dataset("cora-sim", 300),
        profile.dataset("computers-sim", 301),
    ];
    let cfg = profile.train_config();
    let mut json = Vec::new();
    println!(
        "\n{:<22} {:<16} {:>12} {:>12} {:>8}",
        "pair", "dataset", "original %", "upgraded %", "Δ"
    );
    let mut improved = 0usize;
    let mut total = 0usize;
    let mut summary = SweepSummary::new();
    for (orig, up) in upgraded_pairs() {
        for d in &datasets {
            let mut cell = |model: &dyn ContrastiveModel| {
                let label = format!("{}/{}", model.name(), d.name);
                match run_node_classification(model, d, &cfg, profile.runs, 0) {
                    Ok(run) if !run.accuracies.is_empty() => {
                        summary.record(&label, outcome_of(&run));
                        Some(run)
                    }
                    Ok(run) => {
                        summary.record(&label, outcome_of(&run));
                        None
                    }
                    Err(err) => {
                        summary.record(&label, CellOutcome::Failed(err.to_string()));
                        None
                    }
                }
            };
            let (Some(o), Some(u)) = (cell(orig.as_ref()), cell(up.as_ref())) else {
                println!(
                    "{:<22} {:<16} {:>12}",
                    format!("{} -> {}", orig.name(), up.name()),
                    d.name,
                    "FAILED"
                );
                continue;
            };
            let delta = 100.0 * (u.mean - o.mean);
            println!(
                "{:<22} {:<16} {:>12.2} {:>12.2} {:>+8.2}",
                format!("{} -> {}", orig.name(), up.name()),
                d.name,
                100.0 * o.mean,
                100.0 * u.mean,
                delta
            );
            total += 1;
            if u.mean > o.mean {
                improved += 1;
            }
            json.push(Entry {
                pair: format!("{}->{}", orig.name(), up.name()),
                dataset: d.name.clone(),
                original: 100.0 * o.mean,
                upgraded: 100.0 * u.mean,
            });
        }
    }
    println!(
        "\n[shape] upgraded variant improved its original in {improved}/{total} cells \
         (paper: 8/8 across both datasets)"
    );
    summary.print();
    report::write_json("fig2", &json);
}
