//! Accuracy ablation for the sub-quadratic contrastive losses
//! (DESIGN.md §15): E²GCL with `full` vs `smallneg` (k ∈ {64, 256, 1024})
//! vs `localized` (2-hop) over the five small Table III datasets.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin loss_ablation --release -- --profile quick
//! ```
//!
//! The `full` row is the Table IV E²GCL protocol unchanged; the other rows
//! swap only `TrainConfig.loss`. `EXPERIMENTS.md` records the quick-profile
//! numbers with their seeds and tolerances.

use e2gcl::pipeline::run_node_classification;
use e2gcl::prelude::*;
use e2gcl_bench::{reference, report, Profile};

/// `(row label, loss strategy)` — the ablation axis.
fn variants() -> Vec<(String, LossStrategy)> {
    vec![
        ("full".to_string(), LossStrategy::Full),
        (
            "smallneg k=64".to_string(),
            LossStrategy::SmallNeg { negatives: 64 },
        ),
        (
            "smallneg k=256".to_string(),
            LossStrategy::SmallNeg { negatives: 256 },
        ),
        (
            "smallneg k=1024".to_string(),
            LossStrategy::SmallNeg { negatives: 1024 },
        ),
        (
            "localized L=2".to_string(),
            LossStrategy::Localized { hops: 2 },
        ),
    ]
}

fn main() {
    let profile = Profile::from_args();
    println!(
        "Loss-strategy accuracy ablation — E2GCL, Table III datasets (profile: {})",
        profile.name
    );
    let datasets: Vec<NodeDataset> = reference::SMALL_DATASETS
        .iter()
        .map(|n| profile.dataset(n, 100))
        .collect();
    let model = E2gclModel::default();
    let mut rows = Vec::new();
    let mut json: Vec<(String, String, f32, f32)> = Vec::new();
    let mut summary = report::SweepSummary::new();
    for (name, loss) in variants() {
        let cfg = TrainConfig {
            loss: loss.clone(),
            ..profile.train_config()
        };
        let mut cells = Vec::new();
        for data in &datasets {
            let label = format!("{name}/{}", data.name);
            match run_node_classification(&model, data, &cfg, profile.runs, 0) {
                Ok(run) if !run.accuracies.is_empty() => {
                    summary.record(label, report::outcome_of(&run));
                    cells.push(report::Cell::measured(100.0 * run.mean));
                    json.push((
                        name.clone(),
                        data.name.clone(),
                        100.0 * run.mean,
                        100.0 * run.std,
                    ));
                }
                Ok(run) => {
                    summary.record(label, report::outcome_of(&run));
                    cells.push(report::Cell::failed());
                }
                Err(err) => {
                    summary.record(label, report::CellOutcome::Failed(err.to_string()));
                    cells.push(report::Cell::failed());
                }
            }
            eprintln!("  done: {name} on {}", data.name);
        }
        rows.push((name, cells));
    }
    report::print_table(
        "Loss ablation: E2GCL accuracy % (mean over runs)",
        &reference::SMALL_DATASETS,
        &rows,
    );
    summary.print();
    report::write_json("loss_ablation", &json);
}
