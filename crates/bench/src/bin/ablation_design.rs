//! Design-choice ablations beyond the paper's own (DESIGN.md §6):
//!
//! 1. sampling-based greedy (Alg. 2) vs exhaustive greedy (`n_s = n`) —
//!    objective quality vs selection cost;
//! 2. cluster-relaxed objective (Eq. 13/14) vs the exact k-medoid objective
//!    (Eq. 12) greedily optimised on a small graph;
//! 3. Eq. (5) margin loss vs InfoNCE inside the same E²GCL stack;
//! 4. edge-score recipe: centrality-only vs similarity-only vs combined.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin ablation_design --release -- --profile quick
//! ```

use e2gcl::pipeline::run_node_classification;
use e2gcl::prelude::*;
use e2gcl_bench::{report, Profile};
use e2gcl_graph::norm;
use e2gcl_linalg::ops;
use e2gcl_selector::coreset::exact_kmedoid_objective;
use e2gcl_selector::greedy::{GreedyConfig, GreedySelector};
use e2gcl_selector::NodeSelector;
use e2gcl_views::scores::EdgeRecipe;
use std::time::Instant;

fn main() {
    let profile = Profile::from_args();
    println!("Design-choice ablations (profile: {})", profile.name);
    let data = profile.dataset("cora-sim", 800);
    let cfg = profile.train_config();

    // ---- 1. sampling vs exhaustive greedy --------------------------------
    println!("\n--- Alg. 2 sampling trick: n_s vs objective & time ---");
    let repr = norm::raw_aggregate(&data.graph, &data.features, 2);
    let budget = data.num_nodes() / 10;
    println!("{:>12} {:>16} {:>12}", "n_s", "Eq.(12) cost", "select s");
    for n_s in [8usize, 32, 128, data.num_nodes()] {
        let sel = GreedySelector::new(GreedyConfig {
            sample_size: n_s,
            ..Default::default()
        });
        let t0 = Instant::now();
        let s = sel.select(&data.graph, &data.features, budget, &mut SeedRng::new(0));
        let secs = t0.elapsed().as_secs_f64();
        let cost = exact_kmedoid_objective(&repr, &s.nodes);
        println!("{n_s:>12} {cost:>16.2} {secs:>12.3}");
    }

    // ---- 2. relaxed vs exact greedy objective ----------------------------
    println!("\n--- Eq. (13) relaxation vs exact Eq. (12) greedy (small graph) ---");
    let small = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.08, 801);
    let srepr = norm::raw_aggregate(&small.graph, &small.features, 2);
    let sbudget = small.num_nodes() / 10;
    // Exact greedy: each step picks the node minimising the true objective.
    let t0 = Instant::now();
    let mut exact_sel: Vec<usize> = Vec::new();
    for _ in 0..sbudget {
        let mut best = (usize::MAX, f64::INFINITY);
        for v in 0..small.num_nodes() {
            if exact_sel.contains(&v) {
                continue;
            }
            let mut trial = exact_sel.clone();
            trial.push(v);
            let c = exact_kmedoid_objective(&srepr, &trial);
            if c < best.1 {
                best = (v, c);
            }
        }
        exact_sel.push(best.0);
    }
    let exact_secs = t0.elapsed().as_secs_f64();
    let exact_cost = exact_kmedoid_objective(&srepr, &exact_sel);
    let t0 = Instant::now();
    let relaxed = GreedySelector::default().select(
        &small.graph,
        &small.features,
        sbudget,
        &mut SeedRng::new(1),
    );
    let relaxed_secs = t0.elapsed().as_secs_f64();
    let relaxed_cost = exact_kmedoid_objective(&srepr, &relaxed.nodes);
    println!(
        "exact greedy:   cost {exact_cost:.2} in {exact_secs:.3}s\n\
         relaxed greedy: cost {relaxed_cost:.2} in {relaxed_secs:.3}s \
         (+{:.1}% cost, {:.0}x faster)",
        100.0 * (relaxed_cost / exact_cost - 1.0),
        exact_secs / relaxed_secs.max(1e-9)
    );

    // ---- 3. margin loss vs InfoNCE ---------------------------------------
    println!("\n--- Eq. (5) margin loss vs InfoNCE inside E2GCL ---");
    let mut summary = e2gcl_bench::report::SweepSummary::new();
    for (label, loss) in [
        ("Eq.(5) margin", LossKind::Margin),
        ("InfoNCE", LossKind::InfoNce),
    ] {
        let model = E2gclModel::new(E2gclConfig {
            loss,
            ..Default::default()
        });
        match run_node_classification(&model, &data, &cfg, profile.runs, 0) {
            Ok(run) if !run.accuracies.is_empty() => {
                summary.record(label, e2gcl_bench::report::outcome_of(&run));
                println!(
                    "{label:<16} {:.2} ± {:.2} %",
                    100.0 * run.mean,
                    100.0 * run.std
                );
            }
            Ok(run) => {
                summary.record(label, e2gcl_bench::report::outcome_of(&run));
                println!("{label:<16} FAILED");
            }
            Err(err) => {
                summary.record(
                    label,
                    e2gcl_bench::report::CellOutcome::Failed(err.to_string()),
                );
                println!("{label:<16} FAILED: {err}");
            }
        }
    }

    // ---- 4. edge-score recipe ---------------------------------------------
    println!("\n--- edge-score recipe (w^e ingredients) ---");
    let mut results = Vec::new();
    for (label, recipe) in [
        ("centrality-only", EdgeRecipe::CentralityOnly),
        ("similarity-only", EdgeRecipe::SimilarityOnly),
        ("combined (paper)", EdgeRecipe::Combined),
    ] {
        let model = E2gclModel::new(E2gclConfig {
            view: e2gcl_views::ViewConfig {
                edge_recipe: recipe,
                ..Default::default()
            },
            ..Default::default()
        });
        match run_node_classification(&model, &data, &cfg, profile.runs, 0) {
            Ok(run) if !run.accuracies.is_empty() => {
                summary.record(label, e2gcl_bench::report::outcome_of(&run));
                println!(
                    "{label:<18} {:.2} ± {:.2} %",
                    100.0 * run.mean,
                    100.0 * run.std
                );
                results.push((label.to_string(), run.mean));
            }
            Ok(run) => {
                summary.record(label, e2gcl_bench::report::outcome_of(&run));
                println!("{label:<18} FAILED");
            }
            Err(err) => {
                summary.record(
                    label,
                    e2gcl_bench::report::CellOutcome::Failed(err.to_string()),
                );
                println!("{label:<18} FAILED: {err}");
            }
        }
    }
    summary.print();
    report::write_json("ablation_design", &results);

    // Context: average intra-class feature distance drives the similarity
    // term's usefulness.
    let labels = &data.labels;
    let mut intra = 0.0f64;
    let mut inter = 0.0f64;
    let (mut ci, mut cj) = (0usize, 0usize);
    for (u, v) in data.graph.edges() {
        let d = f64::from(ops::dist(data.features.row(u), data.features.row(v)));
        if labels[u] == labels[v] {
            intra += d;
            ci += 1;
        } else {
            inter += d;
            cj += 1;
        }
    }
    println!(
        "\n(context: mean edge feature distance intra-class {:.3} vs inter-class {:.3})",
        intra / ci.max(1) as f64,
        inter / cj.max(1) as f64
    );
}
