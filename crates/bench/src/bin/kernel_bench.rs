//! Dense-kernel throughput benchmark: GFLOP/s and wall time for the three
//! GEMM kernels (`matmul`, `transpose_matmul`, `matmul_transpose`), SpMM,
//! end-to-end `info_nce_with`, and one GRACE epoch.
//!
//! Every kernel is measured three times per shape (DESIGN.md §16):
//!
//! * `scalar` — a serial single-accumulator reference replicating the
//!   pre-PR-4 kernels bit-for-bit in structure,
//! * `blocked` — the library's blocked micro-kernels forced onto the
//!   scalar dispatch path (`Selection::SCALAR`), i.e. the pre-dispatch
//!   code path, and
//! * `simd` — the library under the *active* dispatch selection (AVX2+FMA
//!   with autotuned tiles where the host supports it; identical to
//!   `blocked` on scalar-only hosts).
//!
//! Full mode first runs the autotuner ([`e2gcl_linalg::tune::ensure`]),
//! persisting `kernel_tune.json` at the repo root, then measures under the
//! tuned selection; `E2GCL_KERNEL_CONFIG` overrides this (no tuning).
//! Detected CPU features, the dispatch path, selection source, and active
//! tile configuration are printed up front (captured into
//! `bench-logs/kernel_bench.log`) and recorded in `BENCH_kernels.json` —
//! top-level under `hardware`, and per entry as `dispatch`.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin kernel_bench --release              # full sweep
//! cargo run -p e2gcl-bench --bin kernel_bench --release -- --quick   # CI smoke
//! ```
//!
//! Full mode writes `BENCH_kernels.json` at the repo root (machine-readable
//! perf trajectory, tracked in git). Quick mode runs only the smallest
//! shape, writes to `target/bench-results/`, and **fails** (non-zero exit)
//! if the blocked kernels measure slower than `0.8x` the scalar reference,
//! if the committed `BENCH_kernels.json` is missing, unparsable, or records
//! a blocked/scalar ratio below `0.8x`, or if this run's GFLOP/s drops more
//! than 20% below a committed entry with matching (kernel, shape, dispatch
//! path). Committed `simd` baselines recorded on a path this host cannot
//! run are skipped with an explicit message, never failed.

use e2gcl::models::grace::GraceModel;
use e2gcl::prelude::*;
use e2gcl_bench::flags::FlagSet;
use e2gcl_bench::report;
use e2gcl_graph::{CsrGraph, SparseMatrix};
use e2gcl_linalg::dispatch::{self, TileConfig};
use e2gcl_linalg::{ops, tune, Matrix, Selection};
use e2gcl_nn::loss::{self, InfoNceScratch};
use e2gcl_nn::{ContrastiveLoss, LocalizedInfoNce, Neighborhoods, SmallNegInfoNce};
use serde::Serialize;
use std::time::Instant;

/// Minimum acceptable blocked/scalar throughput ratio in quick (CI) mode.
const MIN_RATIO: f32 = 0.8;

/// Quick-mode regression gate: this run's GFLOP/s must be at least this
/// fraction of the committed value for matching (kernel, shape, dispatch)
/// entries — i.e. fail on a >20% throughput drop.
const MAX_DROP_RATIO: f64 = 0.8;

/// Quick-mode gate: small-negative-set fwd+bwd at [`GATE_N`] must cost at
/// most this fraction of the full quadratic kernel at the same n (the full
/// time is projected — see [`LossScalingEntry::projected`]).
const SMALLNEG_GATE_FRACTION: f64 = 0.25;
/// Committed-sweep gate: smallneg fwd+bwd at n=65536 must be at most this
/// multiple of its n=8192 time (O(n·k) predicts ~8×; the quadratic kernel
/// would be ~64×).
const SMALLNEG_SCALING_MAX: f64 = 10.0;
/// The n the quick-mode sub-quadratic gates run at.
const GATE_N: usize = 65536;

// ---------------------------------------------------------------------------
// Scalar reference kernels: the pre-PR single-accumulator serial loops.
// ---------------------------------------------------------------------------

/// Pre-PR `matmul` inner loop (ikj order, one accumulator per element).
fn ref_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for r in 0..m {
        let a_row = a.row(r);
        for (kk, &av) in a_row.iter().enumerate().take(k) {
            let b_row = b.row(kk);
            for (o, &bv) in out.row_mut(r).iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Pre-PR `transpose_matmul`: ascending-row accumulation per output row.
fn ref_transpose_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for c in 0..m {
        for r in 0..k {
            let av = a.get(r, c);
            let b_row = b.row(r);
            for (o, &bv) in out.row_mut(c).iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Pre-PR `matmul_transpose`: serial scalar dot product per element.
fn ref_matmul_transpose(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, n) = (a.rows(), b.rows());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        for j in 0..n {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Pre-PR SpMM: serial per-row axpy over the stored entries.
fn ref_spmm(s: &SparseMatrix, x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(s.rows(), x.cols());
    for r in 0..s.rows() {
        for (c, v) in s.row_entries(r) {
            let x_row = x.row(c);
            for (o, &xv) in out.row_mut(r).iter_mut().zip(x_row) {
                *o += v * xv;
            }
        }
    }
    out
}

/// Pre-PR symmetric NT-Xent (`info_nce`): serial normalisation, serial
/// scalar-dot similarity blocks, and the serial per-anchor triple loop with
/// axpy gradient accumulation.
fn ref_info_nce(z1: &Matrix, z2: &Matrix, tau: f32) -> (f32, Matrix, Matrix) {
    fn normalize(z: &Matrix) -> (Matrix, Vec<f32>) {
        let mut u = z.clone();
        let mut norms = Vec::with_capacity(z.rows());
        for r in 0..z.rows() {
            let nrm = ops::norm(z.row(r)).max(1e-12);
            norms.push(nrm);
            for v in u.row_mut(r) {
                *v /= nrm;
            }
        }
        (u, norms)
    }
    #[allow(clippy::too_many_arguments)]
    fn side(
        s_ab: &Matrix,
        s_aa: &Matrix,
        ua: &Matrix,
        ub: &Matrix,
        dua: &mut Matrix,
        dub: &mut Matrix,
        scale: f32,
        inv_tau: f32,
        loss: &mut f64,
    ) {
        let n = s_ab.rows();
        for i in 0..n {
            let mut mx = f32::NEG_INFINITY;
            for j in 0..n {
                mx = mx.max(s_ab.get(i, j));
                if j != i {
                    mx = mx.max(s_aa.get(i, j));
                }
            }
            let mut denom = 0.0f32;
            for j in 0..n {
                denom += (s_ab.get(i, j) - mx).exp();
                if j != i {
                    denom += (s_aa.get(i, j) - mx).exp();
                }
            }
            *loss += f64::from((mx + denom.ln() - s_ab.get(i, i)) * scale);
            for j in 0..n {
                let p = (s_ab.get(i, j) - mx).exp() / denom;
                let g = scale * (p - if i == j { 1.0 } else { 0.0 }) * inv_tau;
                ops::axpy_slice(dua.row_mut(i), g, ub.row(j));
                ops::axpy_slice(dub.row_mut(j), g, ua.row(i));
                if j != i {
                    let p = (s_aa.get(i, j) - mx).exp() / denom;
                    let g = scale * p * inv_tau;
                    ops::axpy_slice(dua.row_mut(i), g, ua.row(j));
                    ops::axpy_slice(dua.row_mut(j), g, ua.row(i));
                }
            }
        }
    }
    fn normalize_backward(u: &Matrix, norms: &[f32], du: &Matrix) -> Matrix {
        let mut dz = Matrix::zeros(u.rows(), u.cols());
        for (r, &norm_r) in norms.iter().enumerate() {
            let ur = u.row(r);
            let dur = du.row(r);
            let proj = ops::dot(dur, ur);
            for ((o, &d), &uv) in dz.row_mut(r).iter_mut().zip(dur).zip(ur) {
                *o = (d - proj * uv) / norm_r;
            }
        }
        dz
    }

    let n = z1.rows();
    let (u1, n1) = normalize(z1);
    let (u2, n2) = normalize(z2);
    let inv_tau = 1.0 / tau;
    let mut s12 = ref_matmul_transpose(&u1, &u2);
    let mut s11 = ref_matmul_transpose(&u1, &u1);
    let mut s22 = ref_matmul_transpose(&u2, &u2);
    s12.scale(inv_tau);
    s11.scale(inv_tau);
    s22.scale(inv_tau);
    let mut loss = 0.0f64;
    let mut du1 = Matrix::zeros(n, u1.cols());
    let mut du2 = Matrix::zeros(n, u2.cols());
    let scale = 1.0 / (2 * n) as f32;
    side(
        &s12, &s11, &u1, &u2, &mut du1, &mut du2, scale, inv_tau, &mut loss,
    );
    let s21 = s12.transpose();
    side(
        &s21, &s22, &u2, &u1, &mut du2, &mut du1, scale, inv_tau, &mut loss,
    );
    let d_z1 = normalize_backward(&u1, &n1, &du1);
    let d_z2 = normalize_backward(&u2, &n2, &du2);
    (loss as f32, d_z1, d_z2)
}

// ---------------------------------------------------------------------------
// Measurement harness
// ---------------------------------------------------------------------------

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SeedRng::new(seed);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.normal();
    }
    m
}

/// Best-of-`reps` wall time in milliseconds; `sink` defeats dead-code
/// elimination by folding one output element into a checksum.
fn time_best<F: FnMut() -> f32>(reps: usize, mut f: F) -> (f64, f32) {
    let mut best = f64::INFINITY;
    let mut sink = 0.0f32;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        sink += f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (best, sink)
}

/// Detected hardware + the selection every `simd` measurement ran under.
/// Serialised at the top of `BENCH_kernels.json` so committed numbers are
/// attributable to a concrete CPU feature set and tile configuration.
#[derive(Serialize)]
struct HardwareInfo {
    cpu_features: Vec<String>,
    /// Dispatch path of the `simd` tier (`scalar` | `avx2`).
    dispatch_path: String,
    /// Where the selection came from: autotuned this run, a loaded
    /// `kernel_tune.json`, an `E2GCL_KERNEL_CONFIG` override, or defaults.
    selection_source: String,
    tall_tiles: TileConfig,
    square_tiles: TileConfig,
    spmm_tiles: TileConfig,
}

#[derive(Serialize)]
struct GemmEntry {
    kernel: String,
    /// Output rows.
    m: usize,
    /// Output cols.
    n: usize,
    /// Reduction length.
    k: usize,
    reps: usize,
    /// Dispatch path of the `simd` columns (`scalar` | `avx2`).
    dispatch: String,
    scalar_ms: f64,
    blocked_ms: f64,
    simd_ms: f64,
    scalar_gflops: f64,
    blocked_gflops: f64,
    simd_gflops: f64,
    /// blocked/scalar throughput ratio.
    speedup: f64,
    /// simd/scalar throughput ratio.
    simd_speedup: f64,
}

#[derive(Serialize)]
struct SpmmEntry {
    n: usize,
    d: usize,
    nnz: usize,
    reps: usize,
    dispatch: String,
    scalar_ms: f64,
    blocked_ms: f64,
    simd_ms: f64,
    scalar_gflops: f64,
    blocked_gflops: f64,
    simd_gflops: f64,
    speedup: f64,
    simd_speedup: f64,
}

#[derive(Serialize)]
struct InfoNceEntry {
    n: usize,
    d: usize,
    reps: usize,
    dispatch: String,
    scalar_ms: f64,
    blocked_ms: f64,
    simd_ms: f64,
    speedup: f64,
    simd_speedup: f64,
}

#[derive(Clone, Serialize)]
struct LossScalingEntry {
    /// `full` | `smallneg` | `localized`.
    strategy: String,
    n: usize,
    d: usize,
    /// Negative-set size per anchor: k for smallneg, the mean neighbourhood
    /// size for localized, n (every other row) for full.
    k: usize,
    reps: usize,
    /// Dispatch path the strategy ran under.
    dispatch: String,
    /// Fused forward+backward wall time (loss + both gradients).
    fwd_bwd_ms: f64,
    /// True when the time was projected by n² scaling from the largest
    /// measured full shape instead of measured — full InfoNCE at n=65536
    /// would need four n×n f32 similarity blocks (~69 GB).
    projected: bool,
}

#[derive(Serialize)]
struct GraceEntry {
    dataset: String,
    nodes: usize,
    epochs: usize,
    dispatch: String,
    total_ms: f64,
    ms_per_epoch: f64,
}

#[derive(Serialize)]
struct KernelBenchDump {
    name: String,
    mode: String,
    hardware: HardwareInfo,
    gemm: Vec<GemmEntry>,
    spmm: Vec<SpmmEntry>,
    info_nce: Vec<InfoNceEntry>,
    loss_scaling: Vec<LossScalingEntry>,
    grace_epoch: Option<GraceEntry>,
}

/// Times `f` once per tier: under the forced-scalar selection (`blocked`)
/// and under `active` (`simd`). When `active` *is* the scalar path the two
/// tiers are the same code, so the blocked numbers are reused.
fn two_tier<F: FnMut() -> f32>(active: Selection, reps: usize, mut f: F) -> (f64, f64) {
    let (blocked_ms, _) = dispatch::with_selection(Selection::SCALAR, || time_best(reps, &mut f));
    let simd_ms = if active.path == dispatch::DispatchPath::Scalar {
        blocked_ms
    } else {
        dispatch::with_selection(active, || time_best(reps, &mut f)).0
    };
    (blocked_ms, simd_ms)
}

fn gemm_case(
    kernel: &str,
    n: usize,
    d: usize,
    reps: usize,
    ref_reps: usize,
    active: Selection,
) -> GemmEntry {
    let (a, b, m_out, n_out, k) = match kernel {
        // X(n x d) * W(d x d): the layer-forward shape.
        "matmul" => (rand_matrix(n, d, 1), rand_matrix(d, d, 2), n, d, d),
        // X^T(d x n) * G(n x d): the weight-gradient shape.
        "transpose_matmul" => (rand_matrix(n, d, 3), rand_matrix(n, d, 4), d, d, n),
        // Z(n x d) * Z'(n x d)^T: the InfoNCE similarity shape.
        "matmul_transpose" => (rand_matrix(n, d, 5), rand_matrix(n, d, 6), n, n, d),
        other => {
            eprintln!("unknown gemm kernel {other}");
            std::process::exit(2);
        }
    };
    let flops = 2.0 * m_out as f64 * n_out as f64 * k as f64;
    let (blocked_ms, simd_ms) = two_tier(active, reps, || match kernel {
        "matmul" => a.matmul(&b).get(0, 0),
        "transpose_matmul" => a.transpose_matmul(&b).get(0, 0),
        _ => a.matmul_transpose(&b).get(0, 0),
    });
    let (scalar_ms, _) = time_best(ref_reps, || match kernel {
        "matmul" => ref_matmul(&a, &b).get(0, 0),
        "transpose_matmul" => ref_transpose_matmul(&a, &b).get(0, 0),
        _ => ref_matmul_transpose(&a, &b).get(0, 0),
    });
    GemmEntry {
        kernel: kernel.to_string(),
        m: m_out,
        n: n_out,
        k,
        reps,
        dispatch: active.path.as_str().to_string(),
        scalar_ms,
        blocked_ms,
        simd_ms,
        scalar_gflops: flops / (scalar_ms * 1e6),
        blocked_gflops: flops / (blocked_ms * 1e6),
        simd_gflops: flops / (simd_ms * 1e6),
        speedup: scalar_ms / blocked_ms,
        simd_speedup: scalar_ms / simd_ms,
    }
}

/// Synthetic ring-of-cliques adjacency with ~`degree` entries per row.
fn synthetic_sparse(n: usize, degree: usize) -> SparseMatrix {
    let mut triplets = Vec::with_capacity(n * degree);
    for r in 0..n {
        for s in 0..degree {
            let c = (r + 1 + s * s) % n;
            triplets.push((r, c, 1.0 / degree as f32));
        }
    }
    SparseMatrix::from_triplets(n, n, &triplets)
}

fn spmm_case(n: usize, d: usize, reps: usize, active: Selection) -> SpmmEntry {
    let s = synthetic_sparse(n, 16);
    let x = rand_matrix(n, d, 7);
    let flops = 2.0 * s.nnz() as f64 * d as f64;
    let (blocked_ms, simd_ms) = two_tier(active, reps, || s.spmm(&x).get(0, 0));
    let (scalar_ms, _) = time_best(reps, || ref_spmm(&s, &x).get(0, 0));
    SpmmEntry {
        n,
        d,
        nnz: s.nnz(),
        reps,
        dispatch: active.path.as_str().to_string(),
        scalar_ms,
        blocked_ms,
        simd_ms,
        scalar_gflops: flops / (scalar_ms * 1e6),
        blocked_gflops: flops / (blocked_ms * 1e6),
        simd_gflops: flops / (simd_ms * 1e6),
        speedup: scalar_ms / blocked_ms,
        simd_speedup: scalar_ms / simd_ms,
    }
}

fn info_nce_case(
    n: usize,
    d: usize,
    reps: usize,
    ref_reps: usize,
    active: Selection,
) -> InfoNceEntry {
    let z1 = rand_matrix(n, d, 8);
    let z2 = rand_matrix(n, d, 9);
    let mut scratch = InfoNceScratch::default();
    // Warm the scratch so both library tiers measure the steady-state path.
    let _ = loss::info_nce_with(&z1, &z2, 0.5, &mut scratch);
    let (blocked_ms, simd_ms) = two_tier(active, reps, || {
        loss::info_nce_with(&z1, &z2, 0.5, &mut scratch)
    });
    let (scalar_ms, _) = time_best(ref_reps, || ref_info_nce(&z1, &z2, 0.5).0);
    InfoNceEntry {
        n,
        d,
        reps,
        dispatch: active.path.as_str().to_string(),
        scalar_ms,
        blocked_ms,
        simd_ms,
        speedup: scalar_ms / blocked_ms,
        simd_speedup: scalar_ms / simd_ms,
    }
}

// ---------------------------------------------------------------------------
// Contrastive-loss n-scaling sweep (DESIGN.md §15)
// ---------------------------------------------------------------------------

fn full_loss_case(n: usize, d: usize, reps: usize, active: Selection) -> LossScalingEntry {
    let z1 = rand_matrix(n, d, 12);
    let z2 = rand_matrix(n, d, 13);
    let mut s = InfoNceScratch::default();
    let fwd_bwd_ms = dispatch::with_selection(active, || {
        let _ = loss::info_nce_with(&z1, &z2, 0.5, &mut s);
        time_best(reps, || loss::info_nce_with(&z1, &z2, 0.5, &mut s)).0
    });
    LossScalingEntry {
        strategy: "full".to_string(),
        n,
        d,
        k: n,
        reps,
        dispatch: active.path.as_str().to_string(),
        fwd_bwd_ms,
        projected: false,
    }
}

/// Extrapolates the quadratic kernel to `n` from a measured smaller shape:
/// similarity work and memory are both Θ(n²·d), so wall time scales ~n²
/// at fixed d.
fn full_loss_projection(base: &LossScalingEntry, n: usize) -> LossScalingEntry {
    let ratio = (n as f64 / base.n as f64).powi(2);
    LossScalingEntry {
        strategy: "full".to_string(),
        n,
        d: base.d,
        k: n,
        reps: 0,
        dispatch: base.dispatch.clone(),
        fwd_bwd_ms: base.fwd_bwd_ms * ratio,
        projected: true,
    }
}

fn smallneg_loss_case(
    n: usize,
    d: usize,
    k: usize,
    reps: usize,
    active: Selection,
) -> LossScalingEntry {
    let z1 = rand_matrix(n, d, 12);
    let z2 = rand_matrix(n, d, 13);
    let k = k.min(n).max(1);
    // Evenly spread negative rows: strictly ascending for any k <= n.
    let negatives: Vec<usize> = (0..k).map(|i| i * n / k).collect();
    let mut strat = SmallNegInfoNce::new(0.5);
    strat.set_negatives(&negatives);
    let fwd_bwd_ms = dispatch::with_selection(active, || {
        let _ = strat.compute(&z1, &z2);
        time_best(reps, || strat.compute(&z1, &z2)).0
    });
    LossScalingEntry {
        strategy: "smallneg".to_string(),
        n,
        d,
        k,
        reps,
        dispatch: active.path.as_str().to_string(),
        fwd_bwd_ms,
        projected: false,
    }
}

fn localized_loss_case(
    n: usize,
    d: usize,
    degree: usize,
    reps: usize,
    active: Selection,
) -> LossScalingEntry {
    // Ring lattice: v connected to v±1..±(degree/2), so every 1-hop
    // neighbourhood has exactly `degree` negatives.
    let half = (degree / 2).max(1);
    let mut edges = Vec::with_capacity(n * half);
    for v in 0..n {
        for s in 1..=half {
            edges.push((v, (v + s) % n));
        }
    }
    let g = CsrGraph::from_edges(n, &edges);
    let nb = Neighborhoods::from_graph(&g, 1);
    let k = nb.nnz() / n.max(1);
    let z1 = rand_matrix(n, d, 12);
    let z2 = rand_matrix(n, d, 13);
    let mut strat = LocalizedInfoNce::new(0.5, nb);
    let fwd_bwd_ms = dispatch::with_selection(active, || {
        let _ = strat.compute(&z1, &z2);
        time_best(reps, || strat.compute(&z1, &z2)).0
    });
    LossScalingEntry {
        strategy: "localized".to_string(),
        n,
        d,
        k,
        reps,
        dispatch: active.path.as_str().to_string(),
        fwd_bwd_ms,
        projected: false,
    }
}

fn print_loss_scaling(entries: &[LossScalingEntry]) {
    println!(
        "{:<10} {:>8} {:>5} {:>6} {:>8} {:>13}",
        "strategy", "n", "d", "k", "disp", "fwd+bwd(ms)"
    );
    for e in entries {
        println!(
            "{:<10} {:>8} {:>5} {:>6} {:>8} {:>13.2}{}",
            e.strategy,
            e.n,
            e.d,
            e.k,
            e.dispatch,
            e.fwd_bwd_ms,
            if e.projected { "  (projected n²)" } else { "" }
        );
    }
}

fn grace_epoch_case(active: Selection) -> Option<GraceEntry> {
    let ds = match spec("cora-sim") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("grace epoch bench: {e}");
            return None;
        }
    };
    let data = NodeDataset::generate(&ds, 1.0, 11);
    let epochs = 3usize;
    let cfg = TrainConfig {
        epochs,
        ..TrainConfig::default()
    };
    let model = GraceModel::grace();
    let t = Instant::now();
    let out = dispatch::with_selection(active, || {
        model.pretrain(&data.graph, &data.features, &cfg, &mut SeedRng::new(11))
    });
    let total_ms = t.elapsed().as_secs_f64() * 1e3;
    match out {
        Ok(_) => Some(GraceEntry {
            dataset: data.name.clone(),
            nodes: data.num_nodes(),
            epochs,
            dispatch: active.path.as_str().to_string(),
            total_ms,
            ms_per_epoch: total_ms / epochs as f64,
        }),
        Err(e) => {
            eprintln!("grace epoch bench failed: {e}");
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Quick-mode CI checks
// ---------------------------------------------------------------------------

/// The subset of `BENCH_kernels.json` the CI gates inspect (extra fields in
/// the file are ignored by deserialisation). Optional fields keep the gate
/// tolerant of baselines committed before the dispatch PR.
#[derive(serde::Deserialize)]
struct BaselineHardware {
    #[serde(default)]
    cpu_features: Vec<String>,
    #[serde(default)]
    dispatch_path: String,
}

#[derive(serde::Deserialize)]
struct BaselineGemm {
    kernel: String,
    m: usize,
    n: usize,
    k: usize,
    speedup: f64,
    #[serde(default)]
    dispatch: Option<String>,
    #[serde(default)]
    blocked_gflops: Option<f64>,
    #[serde(default)]
    simd_gflops: Option<f64>,
}

#[derive(serde::Deserialize)]
struct BaselineSpmm {
    n: usize,
    d: usize,
    #[serde(default)]
    dispatch: Option<String>,
    #[serde(default)]
    blocked_gflops: Option<f64>,
    #[serde(default)]
    simd_gflops: Option<f64>,
}

#[derive(serde::Deserialize)]
struct BaselineLoss {
    strategy: String,
    n: usize,
    fwd_bwd_ms: f64,
}

#[derive(serde::Deserialize)]
struct BaselineDump {
    #[serde(default)]
    hardware: Option<BaselineHardware>,
    gemm: Vec<BaselineGemm>,
    #[serde(default)]
    spmm: Vec<BaselineSpmm>,
    #[serde(default)]
    loss_scaling: Vec<BaselineLoss>,
}

/// Validates the committed `BENCH_kernels.json`: it must parse, every
/// recorded gemm speedup must be at least [`MIN_RATIO`], and the recorded
/// loss n-scaling sweep must show the small-negative-set kernel scaling
/// sub-quadratically (n=8192 → n=65536 within [`SMALLNEG_SCALING_MAX`]×).
/// Returns the parsed baseline for the throughput-regression gate.
fn check_committed_baseline(path: &str) -> Result<BaselineDump, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let dump: BaselineDump =
        serde_json::from_str(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    if dump.gemm.is_empty() {
        return Err(format!("{path}: empty gemm array"));
    }
    for entry in &dump.gemm {
        if entry.speedup < f64::from(MIN_RATIO) {
            return Err(format!(
                "{path}: recorded {} speedup {:.2} is below {MIN_RATIO}",
                entry.kernel, entry.speedup
            ));
        }
    }
    let smallneg_at = |n: usize| {
        dump.loss_scaling
            .iter()
            .find(|e| e.strategy == "smallneg" && e.n == n)
            .map(|e| e.fwd_bwd_ms)
            .ok_or_else(|| format!("{path}: no smallneg loss_scaling entry at n={n}"))
    };
    let (small, base) = (smallneg_at(GATE_N)?, smallneg_at(8192)?);
    if small > base * SMALLNEG_SCALING_MAX {
        return Err(format!(
            "{path}: smallneg fwd+bwd grew {:.1}x from n=8192 to n={GATE_N} \
             (limit {SMALLNEG_SCALING_MAX}x — sub-quadratic scaling regressed)",
            small / base
        ));
    }
    Ok(dump)
}

/// The throughput-regression gate (DESIGN.md §16): this run's GFLOP/s must
/// stay within [`MAX_DROP_RATIO`] of every committed entry that matches on
/// kernel, shape, and dispatch path. Committed `simd` numbers recorded on a
/// dispatch path this host does not run are reported in `skips`, not
/// failed: the baseline stays meaningful on weaker CI hosts.
fn check_perf_vs_committed(
    run: &KernelBenchDump,
    base: &BaselineDump,
) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut skips = Vec::new();
    if let Some(hw) = &base.hardware {
        let host = dispatch::detected_features();
        let missing: Vec<&str> = hw
            .cpu_features
            .iter()
            .map(String::as_str)
            .filter(|f| !host.contains(f))
            .collect();
        if !missing.is_empty() {
            skips.push(format!(
                "committed baseline was recorded with cpu features [{}] this host lacks \
                 [{}]; `{}`-path comparisons are skipped",
                hw.cpu_features.join(" "),
                missing.join(" "),
                hw.dispatch_path
            ));
        }
    }
    let mut gate = |label: String, dispatch_match: bool, committed: Option<f64>, measured: f64| {
        let Some(committed) = committed else { return };
        if !dispatch_match {
            skips.push(format!(
                "{label}: committed on a dispatch path this host does not run — skipped"
            ));
            return;
        }
        if measured < committed * MAX_DROP_RATIO {
            failures.push(format!(
                "{label}: {measured:.2} GF/s is a >20% drop from committed {committed:.2} GF/s"
            ));
        }
    };
    for b in &base.gemm {
        let Some(e) = run
            .gemm
            .iter()
            .find(|e| e.kernel == b.kernel && e.m == b.m && e.n == b.n && e.k == b.k)
        else {
            continue;
        };
        let shape = format!("{} m={} n={} k={}", b.kernel, b.m, b.n, b.k);
        gate(
            format!("{shape} [blocked]"),
            true,
            b.blocked_gflops,
            e.blocked_gflops,
        );
        let committed_disp = b.dispatch.as_deref().unwrap_or("scalar");
        gate(
            format!("{shape} [simd:{committed_disp}]"),
            committed_disp == e.dispatch,
            b.simd_gflops,
            e.simd_gflops,
        );
    }
    for b in &base.spmm {
        let Some(e) = run.spmm.iter().find(|e| e.n == b.n && e.d == b.d) else {
            continue;
        };
        let shape = format!("spmm n={} d={}", b.n, b.d);
        gate(
            format!("{shape} [blocked]"),
            true,
            b.blocked_gflops,
            e.blocked_gflops,
        );
        let committed_disp = b.dispatch.as_deref().unwrap_or("scalar");
        gate(
            format!("{shape} [simd:{committed_disp}]"),
            committed_disp == e.dispatch,
            b.simd_gflops,
            e.simd_gflops,
        );
    }
    (failures, skips)
}

fn print_gemm_table(entries: &[GemmEntry]) {
    println!(
        "{:<18} {:>6} {:>6} {:>6} {:>11} {:>11} {:>9} {:>8} {:>8} {:>9} {:>7}",
        "kernel",
        "m",
        "n",
        "k",
        "scalar(ms)",
        "blocked(ms)",
        "simd(ms)",
        "sc GF/s",
        "bl GF/s",
        "simd GF/s",
        "disp"
    );
    for e in entries {
        println!(
            "{:<18} {:>6} {:>6} {:>6} {:>11.2} {:>11.2} {:>9.2} {:>8.2} {:>8.2} {:>9.2} {:>7}",
            e.kernel,
            e.m,
            e.n,
            e.k,
            e.scalar_ms,
            e.blocked_ms,
            e.simd_ms,
            e.scalar_gflops,
            e.blocked_gflops,
            e.simd_gflops,
            e.dispatch
        );
    }
}

fn main() {
    let flags = match FlagSet::new()
        .switch("quick")
        .valued("loss")
        .valued("negatives")
        .parse_env()
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("kernel_bench: {e}");
            std::process::exit(2);
        }
    };
    let quick = flags.is_set("quick");
    // Which strategies the loss n-scaling sweep measures, and the smallneg
    // negative budget (mirrors the CLI's `--loss` / `--negatives`).
    let loss_filter = match flags.get_parse("loss", "all".to_string()) {
        Ok(v) if ["all", "full", "smallneg", "localized"].contains(&v.as_str()) => v,
        Ok(v) => {
            eprintln!("kernel_bench: --loss '{v}' (accepted: all, full, smallneg, localized)");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("kernel_bench: {e}");
            std::process::exit(2);
        }
    };
    let neg_k = match flags.get_parse("negatives", 256usize) {
        Ok(k) if k > 0 => k,
        Ok(_) => {
            eprintln!("kernel_bench: --negatives must be > 0");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("kernel_bench: {e}");
            std::process::exit(2);
        }
    };
    let runs = |s: &str| loss_filter == "all" || loss_filter == s;
    let mode = if quick { "quick" } else { "full" };
    println!("kernel_bench — mode: {mode}");

    // Resolve the selection the `simd` tier runs under. An explicit
    // E2GCL_KERNEL_CONFIG always wins (and suppresses tuning); otherwise
    // full mode autotunes (persisting kernel_tune.json at the repo root)
    // and quick mode uses the library's normal resolution, which loads the
    // committed kernel_tune.json when present.
    if let Some(err) = dispatch::startup_error() {
        eprintln!("kernel_bench: {err}\n{}", dispatch::CONFIG_USAGE);
        std::process::exit(2);
    }
    for ev in dispatch::startup_events() {
        println!("[dispatch] {ev}");
    }
    let (active, source) = if std::env::var(dispatch::CONFIG_ENV).is_ok() || quick {
        (dispatch::active_selection(), dispatch::active_source())
    } else {
        let outcome = tune::ensure(dispatch::TUNE_FILE_DEFAULT);
        for ev in &outcome.events {
            println!("[tune] {ev}");
        }
        let src = if outcome.tuned_now {
            format!("autotuned this run -> {}", dispatch::TUNE_FILE_DEFAULT)
        } else {
            format!("loaded {}", dispatch::TUNE_FILE_DEFAULT)
        };
        (outcome.tune.selection(), src)
    };
    let hardware = HardwareInfo {
        cpu_features: dispatch::detected_features()
            .into_iter()
            .map(str::to_string)
            .collect(),
        dispatch_path: active.path.as_str().to_string(),
        selection_source: source,
        tall_tiles: active.tall,
        square_tiles: active.square,
        spmm_tiles: active.spmm,
    };
    println!(
        "cpu features: [{}]\ndispatch: {} (source: {})\ntiles: tall={:?} square={:?} spmm={:?}",
        hardware.cpu_features.join(" "),
        hardware.dispatch_path,
        hardware.selection_source,
        hardware.tall_tiles,
        hardware.square_tiles,
        hardware.spmm_tiles
    );

    let shapes: Vec<(usize, usize)> = if quick {
        vec![(512, 64)]
    } else {
        vec![
            (512, 64),
            (512, 256),
            (2048, 64),
            (2048, 256),
            (8192, 64),
            (8192, 256),
        ]
    };
    let spmm_shapes: Vec<(usize, usize)> = if quick {
        vec![(512, 64)]
    } else {
        vec![(512, 64), (2048, 64), (2048, 256), (8192, 256)]
    };
    let nce_shapes: Vec<(usize, usize)> = if quick {
        vec![(512, 64)]
    } else {
        vec![(512, 64), (512, 256), (2048, 64), (2048, 256)]
    };

    let mut gemm = Vec::new();
    for kernel in ["matmul", "transpose_matmul", "matmul_transpose"] {
        for &(n, d) in &shapes {
            let reps = if quick {
                3
            } else if n >= 8192 {
                2
            } else {
                4
            };
            let ref_reps = if n >= 8192 { 1 } else { reps.min(2) };
            gemm.push(gemm_case(kernel, n, d, reps, ref_reps, active));
        }
    }
    println!("\n=== dense GEMM kernels ===");
    print_gemm_table(&gemm);

    let spmm: Vec<SpmmEntry> = spmm_shapes
        .iter()
        .map(|&(n, d)| spmm_case(n, d, if quick { 3 } else { 4 }, active))
        .collect();
    println!("\n=== SpMM (avg degree 16) ===");
    for e in &spmm {
        println!(
            "n={:<6} d={:<4} nnz={:<8} scalar {:>8.2} ms / blocked {:>8.2} ms / simd {:>8.2} ms  \
             ({:.2} -> {:.2} -> {:.2} GF/s, {})",
            e.n,
            e.d,
            e.nnz,
            e.scalar_ms,
            e.blocked_ms,
            e.simd_ms,
            e.scalar_gflops,
            e.blocked_gflops,
            e.simd_gflops,
            e.dispatch
        );
    }

    let info_nce: Vec<InfoNceEntry> = nce_shapes
        .iter()
        .map(|&(n, d)| {
            let reps = if quick || n >= 2048 { 2 } else { 3 };
            info_nce_case(n, d, reps, if n >= 2048 { 1 } else { 2 }, active)
        })
        .collect();
    println!("\n=== info_nce_with end to end ===");
    for e in &info_nce {
        println!(
            "n={:<6} d={:<4} scalar {:>9.2} ms / blocked {:>9.2} ms / simd {:>9.2} ms  \
             ({:.2}x -> {:.2}x, {})",
            e.n, e.d, e.scalar_ms, e.blocked_ms, e.simd_ms, e.speedup, e.simd_speedup, e.dispatch
        );
    }

    // Contrastive-loss n-scaling: full is measured only while its four n×n
    // similarity blocks fit comfortably in RAM, then projected by n²; the
    // sub-quadratic kernels are measured end to end, including at n=65536.
    let mut loss_scaling: Vec<LossScalingEntry> = Vec::new();
    let loss_d = 64;
    if quick {
        if runs("full") {
            let base = full_loss_case(8192, loss_d, 1, active);
            loss_scaling.push(full_loss_projection(&base, GATE_N));
            loss_scaling.push(base);
        }
        if runs("smallneg") {
            loss_scaling.push(smallneg_loss_case(GATE_N, loss_d, neg_k, 2, active));
        }
        if runs("localized") {
            loss_scaling.push(localized_loss_case(GATE_N, loss_d, 16, 2, active));
        }
    } else {
        let mut full_base: Option<LossScalingEntry> = None;
        for n in [2048usize, 8192, 16384, 65536] {
            if runs("full") {
                if n <= 16384 {
                    let e = full_loss_case(n, loss_d, if n >= 8192 { 1 } else { 2 }, active);
                    full_base = Some(e.clone());
                    loss_scaling.push(e);
                } else if let Some(base) = &full_base {
                    loss_scaling.push(full_loss_projection(base, n));
                }
            }
            if runs("smallneg") {
                loss_scaling.push(smallneg_loss_case(n, loss_d, neg_k, 2, active));
            }
            if runs("localized") {
                loss_scaling.push(localized_loss_case(n, loss_d, 16, 2, active));
            }
        }
    }
    if !loss_scaling.is_empty() {
        println!("\n=== contrastive loss n-scaling (fused fwd+bwd) ===");
        print_loss_scaling(&loss_scaling);
    }

    let grace_epoch = if quick {
        None
    } else {
        grace_epoch_case(active)
    };
    if let Some(g) = &grace_epoch {
        println!(
            "\n=== GRACE epoch ({} @ {} nodes, {} path) ===\n{} epochs in {:.1} ms -> {:.1} ms/epoch",
            g.dataset, g.nodes, g.dispatch, g.epochs, g.total_ms, g.ms_per_epoch
        );
    }

    let dump = KernelBenchDump {
        name: "kernel_bench".to_string(),
        mode: mode.to_string(),
        hardware,
        gemm,
        spmm,
        info_nce,
        loss_scaling,
        grace_epoch,
    };
    report::write_json(
        if quick {
            "kernel_bench_quick"
        } else {
            "kernel_bench"
        },
        &dump,
    );

    if quick {
        // CI gate 1: the blocked kernels measured in this run must not be
        // slower than MIN_RATIO x the scalar reference measured in this run.
        let mut failed = false;
        for e in &dump.gemm {
            if e.speedup < f64::from(MIN_RATIO) {
                eprintln!(
                    "FAIL: {} at m={} n={} k={} measured {:.2}x (< {MIN_RATIO}x scalar baseline)",
                    e.kernel, e.m, e.n, e.k, e.speedup
                );
                failed = true;
            }
        }
        // CI gate 2: smallneg at n=65536 must cost at most
        // SMALLNEG_GATE_FRACTION of the full quadratic kernel at the same n
        // (projected from the measured n=8192 run in this same process).
        let ms_of = |strategy: &str, projected: bool| {
            dump.loss_scaling
                .iter()
                .find(|e| e.strategy == strategy && e.n == GATE_N && e.projected == projected)
                .map(|e| e.fwd_bwd_ms)
        };
        if let (Some(small), Some(full)) = (ms_of("smallneg", false), ms_of("full", true)) {
            if small > full * SMALLNEG_GATE_FRACTION {
                eprintln!(
                    "FAIL: smallneg fwd+bwd at n={GATE_N} took {small:.1} ms, more than \
                     {SMALLNEG_GATE_FRACTION}x the projected full kernel ({full:.1} ms)"
                );
                failed = true;
            }
        } else if loss_filter == "all" {
            eprintln!("FAIL: quick loss-scaling sweep missing its gate entries");
            failed = true;
        }
        // CI gates 3+4: the committed trajectory file must parse and be
        // self-consistent, and this run's throughput must not regress >20%
        // against committed entries matching (kernel, shape, dispatch).
        match check_committed_baseline("BENCH_kernels.json") {
            Ok(baseline) => {
                let (perf_failures, perf_skips) = check_perf_vs_committed(&dump, &baseline);
                for s in &perf_skips {
                    println!("SKIP: {s}");
                }
                for f in &perf_failures {
                    eprintln!("FAIL: {f}");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("FAIL: {e}");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "quick-mode checks passed (blocked >= {MIN_RATIO}x scalar; smallneg <= \
             {SMALLNEG_GATE_FRACTION}x full at n={GATE_N}; BENCH_kernels.json ok; \
             no >20% GFLOP/s regression vs committed)"
        );
    } else {
        match serde_json::to_string_pretty(&dump) {
            Ok(json) => match std::fs::write("BENCH_kernels.json", json) {
                Ok(()) => println!("[results written to BENCH_kernels.json]"),
                Err(e) => eprintln!("writing BENCH_kernels.json: {e}"),
            },
            Err(e) => eprintln!("serialising BENCH_kernels.json: {e}"),
        }
    }
}
