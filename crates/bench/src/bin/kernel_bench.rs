//! Dense-kernel throughput benchmark: GFLOP/s and wall time for the three
//! GEMM kernels (`matmul`, `transpose_matmul`, `matmul_transpose`), SpMM,
//! end-to-end `info_nce_with`, and one GRACE epoch.
//!
//! Every kernel is measured twice per shape: once through the library's
//! blocked micro-kernels (`e2gcl-linalg` / `e2gcl-nn`) and once through a
//! serial single-accumulator scalar reference that replicates the pre-PR
//! kernels bit-for-bit in structure. The speedup column is therefore a
//! same-machine, same-run comparison against the old code path.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin kernel_bench --release              # full sweep
//! cargo run -p e2gcl-bench --bin kernel_bench --release -- --quick   # CI smoke
//! ```
//!
//! Full mode writes `BENCH_kernels.json` at the repo root (machine-readable
//! perf trajectory, tracked in git). Quick mode runs only the smallest
//! shape, writes to `target/bench-results/`, and **fails** (non-zero exit)
//! if the blocked kernels measure slower than `0.8x` the scalar reference
//! or if the committed `BENCH_kernels.json` is missing, unparsable, or
//! records a blocked/scalar ratio below `0.8x`.

use e2gcl::models::grace::GraceModel;
use e2gcl::prelude::*;
use e2gcl_bench::flags::FlagSet;
use e2gcl_bench::report;
use e2gcl_graph::SparseMatrix;
use e2gcl_linalg::{ops, Matrix};
use e2gcl_nn::loss::{self, InfoNceScratch};
use serde::Serialize;
use std::time::Instant;

/// Minimum acceptable blocked/scalar throughput ratio in quick (CI) mode.
const MIN_RATIO: f32 = 0.8;

// ---------------------------------------------------------------------------
// Scalar reference kernels: the pre-PR single-accumulator serial loops.
// ---------------------------------------------------------------------------

/// Pre-PR `matmul` inner loop (ikj order, one accumulator per element).
fn ref_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for r in 0..m {
        let a_row = a.row(r);
        for (kk, &av) in a_row.iter().enumerate().take(k) {
            let b_row = b.row(kk);
            for (o, &bv) in out.row_mut(r).iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Pre-PR `transpose_matmul`: ascending-row accumulation per output row.
fn ref_transpose_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for c in 0..m {
        for r in 0..k {
            let av = a.get(r, c);
            let b_row = b.row(r);
            for (o, &bv) in out.row_mut(c).iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Pre-PR `matmul_transpose`: serial scalar dot product per element.
fn ref_matmul_transpose(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, n) = (a.rows(), b.rows());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        for j in 0..n {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Pre-PR SpMM: serial per-row axpy over the stored entries.
fn ref_spmm(s: &SparseMatrix, x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(s.rows(), x.cols());
    for r in 0..s.rows() {
        for (c, v) in s.row_entries(r) {
            let x_row = x.row(c);
            for (o, &xv) in out.row_mut(r).iter_mut().zip(x_row) {
                *o += v * xv;
            }
        }
    }
    out
}

/// Pre-PR symmetric NT-Xent (`info_nce`): serial normalisation, serial
/// scalar-dot similarity blocks, and the serial per-anchor triple loop with
/// axpy gradient accumulation.
fn ref_info_nce(z1: &Matrix, z2: &Matrix, tau: f32) -> (f32, Matrix, Matrix) {
    fn normalize(z: &Matrix) -> (Matrix, Vec<f32>) {
        let mut u = z.clone();
        let mut norms = Vec::with_capacity(z.rows());
        for r in 0..z.rows() {
            let nrm = ops::norm(z.row(r)).max(1e-12);
            norms.push(nrm);
            for v in u.row_mut(r) {
                *v /= nrm;
            }
        }
        (u, norms)
    }
    #[allow(clippy::too_many_arguments)]
    fn side(
        s_ab: &Matrix,
        s_aa: &Matrix,
        ua: &Matrix,
        ub: &Matrix,
        dua: &mut Matrix,
        dub: &mut Matrix,
        scale: f32,
        inv_tau: f32,
        loss: &mut f64,
    ) {
        let n = s_ab.rows();
        for i in 0..n {
            let mut mx = f32::NEG_INFINITY;
            for j in 0..n {
                mx = mx.max(s_ab.get(i, j));
                if j != i {
                    mx = mx.max(s_aa.get(i, j));
                }
            }
            let mut denom = 0.0f32;
            for j in 0..n {
                denom += (s_ab.get(i, j) - mx).exp();
                if j != i {
                    denom += (s_aa.get(i, j) - mx).exp();
                }
            }
            *loss += f64::from((mx + denom.ln() - s_ab.get(i, i)) * scale);
            for j in 0..n {
                let p = (s_ab.get(i, j) - mx).exp() / denom;
                let g = scale * (p - if i == j { 1.0 } else { 0.0 }) * inv_tau;
                ops::axpy_slice(dua.row_mut(i), g, ub.row(j));
                ops::axpy_slice(dub.row_mut(j), g, ua.row(i));
                if j != i {
                    let p = (s_aa.get(i, j) - mx).exp() / denom;
                    let g = scale * p * inv_tau;
                    ops::axpy_slice(dua.row_mut(i), g, ua.row(j));
                    ops::axpy_slice(dua.row_mut(j), g, ua.row(i));
                }
            }
        }
    }
    fn normalize_backward(u: &Matrix, norms: &[f32], du: &Matrix) -> Matrix {
        let mut dz = Matrix::zeros(u.rows(), u.cols());
        for (r, &norm_r) in norms.iter().enumerate() {
            let ur = u.row(r);
            let dur = du.row(r);
            let proj = ops::dot(dur, ur);
            for ((o, &d), &uv) in dz.row_mut(r).iter_mut().zip(dur).zip(ur) {
                *o = (d - proj * uv) / norm_r;
            }
        }
        dz
    }

    let n = z1.rows();
    let (u1, n1) = normalize(z1);
    let (u2, n2) = normalize(z2);
    let inv_tau = 1.0 / tau;
    let mut s12 = ref_matmul_transpose(&u1, &u2);
    let mut s11 = ref_matmul_transpose(&u1, &u1);
    let mut s22 = ref_matmul_transpose(&u2, &u2);
    s12.scale(inv_tau);
    s11.scale(inv_tau);
    s22.scale(inv_tau);
    let mut loss = 0.0f64;
    let mut du1 = Matrix::zeros(n, u1.cols());
    let mut du2 = Matrix::zeros(n, u2.cols());
    let scale = 1.0 / (2 * n) as f32;
    side(
        &s12, &s11, &u1, &u2, &mut du1, &mut du2, scale, inv_tau, &mut loss,
    );
    let s21 = s12.transpose();
    side(
        &s21, &s22, &u2, &u1, &mut du2, &mut du1, scale, inv_tau, &mut loss,
    );
    let d_z1 = normalize_backward(&u1, &n1, &du1);
    let d_z2 = normalize_backward(&u2, &n2, &du2);
    (loss as f32, d_z1, d_z2)
}

// ---------------------------------------------------------------------------
// Measurement harness
// ---------------------------------------------------------------------------

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SeedRng::new(seed);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.normal();
    }
    m
}

/// Best-of-`reps` wall time in milliseconds; `sink` defeats dead-code
/// elimination by folding one output element into a checksum.
fn time_best<F: FnMut() -> f32>(reps: usize, mut f: F) -> (f64, f32) {
    let mut best = f64::INFINITY;
    let mut sink = 0.0f32;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        sink += f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (best, sink)
}

#[derive(Serialize)]
struct GemmEntry {
    kernel: String,
    /// Output rows.
    m: usize,
    /// Output cols.
    n: usize,
    /// Reduction length.
    k: usize,
    reps: usize,
    scalar_ms: f64,
    blocked_ms: f64,
    scalar_gflops: f64,
    blocked_gflops: f64,
    /// blocked/scalar throughput ratio.
    speedup: f64,
}

#[derive(Serialize)]
struct SpmmEntry {
    n: usize,
    d: usize,
    nnz: usize,
    reps: usize,
    scalar_ms: f64,
    blocked_ms: f64,
    scalar_gflops: f64,
    blocked_gflops: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct InfoNceEntry {
    n: usize,
    d: usize,
    reps: usize,
    scalar_ms: f64,
    blocked_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct GraceEntry {
    dataset: String,
    nodes: usize,
    epochs: usize,
    total_ms: f64,
    ms_per_epoch: f64,
}

#[derive(Serialize)]
struct KernelBenchDump {
    name: String,
    mode: String,
    gemm: Vec<GemmEntry>,
    spmm: Vec<SpmmEntry>,
    info_nce: Vec<InfoNceEntry>,
    grace_epoch: Option<GraceEntry>,
}

fn gemm_case(kernel: &str, n: usize, d: usize, reps: usize, ref_reps: usize) -> GemmEntry {
    let (a, b, m_out, n_out, k) = match kernel {
        // X(n x d) * W(d x d): the layer-forward shape.
        "matmul" => (rand_matrix(n, d, 1), rand_matrix(d, d, 2), n, d, d),
        // X^T(d x n) * G(n x d): the weight-gradient shape.
        "transpose_matmul" => (rand_matrix(n, d, 3), rand_matrix(n, d, 4), d, d, n),
        // Z(n x d) * Z'(n x d)^T: the InfoNCE similarity shape.
        "matmul_transpose" => (rand_matrix(n, d, 5), rand_matrix(n, d, 6), n, n, d),
        other => {
            eprintln!("unknown gemm kernel {other}");
            std::process::exit(2);
        }
    };
    let flops = 2.0 * m_out as f64 * n_out as f64 * k as f64;
    let (blocked_ms, _) = time_best(reps, || match kernel {
        "matmul" => a.matmul(&b).get(0, 0),
        "transpose_matmul" => a.transpose_matmul(&b).get(0, 0),
        _ => a.matmul_transpose(&b).get(0, 0),
    });
    let (scalar_ms, _) = time_best(ref_reps, || match kernel {
        "matmul" => ref_matmul(&a, &b).get(0, 0),
        "transpose_matmul" => ref_transpose_matmul(&a, &b).get(0, 0),
        _ => ref_matmul_transpose(&a, &b).get(0, 0),
    });
    GemmEntry {
        kernel: kernel.to_string(),
        m: m_out,
        n: n_out,
        k,
        reps,
        scalar_ms,
        blocked_ms,
        scalar_gflops: flops / (scalar_ms * 1e6),
        blocked_gflops: flops / (blocked_ms * 1e6),
        speedup: scalar_ms / blocked_ms,
    }
}

/// Synthetic ring-of-cliques adjacency with ~`degree` entries per row.
fn synthetic_sparse(n: usize, degree: usize) -> SparseMatrix {
    let mut triplets = Vec::with_capacity(n * degree);
    for r in 0..n {
        for s in 0..degree {
            let c = (r + 1 + s * s) % n;
            triplets.push((r, c, 1.0 / degree as f32));
        }
    }
    SparseMatrix::from_triplets(n, n, &triplets)
}

fn spmm_case(n: usize, d: usize, reps: usize) -> SpmmEntry {
    let s = synthetic_sparse(n, 16);
    let x = rand_matrix(n, d, 7);
    let flops = 2.0 * s.nnz() as f64 * d as f64;
    let (blocked_ms, _) = time_best(reps, || s.spmm(&x).get(0, 0));
    let (scalar_ms, _) = time_best(reps, || ref_spmm(&s, &x).get(0, 0));
    SpmmEntry {
        n,
        d,
        nnz: s.nnz(),
        reps,
        scalar_ms,
        blocked_ms,
        scalar_gflops: flops / (scalar_ms * 1e6),
        blocked_gflops: flops / (blocked_ms * 1e6),
        speedup: scalar_ms / blocked_ms,
    }
}

fn info_nce_case(n: usize, d: usize, reps: usize, ref_reps: usize) -> InfoNceEntry {
    let z1 = rand_matrix(n, d, 8);
    let z2 = rand_matrix(n, d, 9);
    let mut scratch = InfoNceScratch::default();
    // Warm the scratch so the blocked measurement is the steady-state path.
    let _ = loss::info_nce_with(&z1, &z2, 0.5, &mut scratch);
    let (blocked_ms, _) = time_best(reps, || loss::info_nce_with(&z1, &z2, 0.5, &mut scratch));
    let (scalar_ms, _) = time_best(ref_reps, || ref_info_nce(&z1, &z2, 0.5).0);
    InfoNceEntry {
        n,
        d,
        reps,
        scalar_ms,
        blocked_ms,
        speedup: scalar_ms / blocked_ms,
    }
}

fn grace_epoch_case() -> Option<GraceEntry> {
    let ds = match spec("cora-sim") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("grace epoch bench: {e}");
            return None;
        }
    };
    let data = NodeDataset::generate(&ds, 1.0, 11);
    let epochs = 3usize;
    let cfg = TrainConfig {
        epochs,
        ..TrainConfig::default()
    };
    let model = GraceModel::grace();
    let t = Instant::now();
    let out = model.pretrain(&data.graph, &data.features, &cfg, &mut SeedRng::new(11));
    let total_ms = t.elapsed().as_secs_f64() * 1e3;
    match out {
        Ok(_) => Some(GraceEntry {
            dataset: data.name.clone(),
            nodes: data.num_nodes(),
            epochs,
            total_ms,
            ms_per_epoch: total_ms / epochs as f64,
        }),
        Err(e) => {
            eprintln!("grace epoch bench failed: {e}");
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Quick-mode CI checks
// ---------------------------------------------------------------------------

/// The subset of `BENCH_kernels.json` the CI gate inspects (extra fields in
/// the file are ignored by deserialisation).
#[derive(serde::Deserialize)]
struct BaselineGemm {
    kernel: String,
    speedup: f64,
}

#[derive(serde::Deserialize)]
struct BaselineDump {
    gemm: Vec<BaselineGemm>,
}

/// Validates the committed `BENCH_kernels.json`: it must parse and every
/// recorded gemm speedup must be at least [`MIN_RATIO`].
fn check_committed_baseline(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let dump: BaselineDump =
        serde_json::from_str(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    if dump.gemm.is_empty() {
        return Err(format!("{path}: empty gemm array"));
    }
    for entry in &dump.gemm {
        if entry.speedup < f64::from(MIN_RATIO) {
            return Err(format!(
                "{path}: recorded {} speedup {:.2} is below {MIN_RATIO}",
                entry.kernel, entry.speedup
            ));
        }
    }
    Ok(())
}

fn print_gemm_table(entries: &[GemmEntry]) {
    println!(
        "{:<18} {:>6} {:>6} {:>6} {:>11} {:>11} {:>10} {:>10} {:>8}",
        "kernel", "m", "n", "k", "scalar(ms)", "blocked(ms)", "sc GF/s", "bl GF/s", "speedup"
    );
    for e in entries {
        println!(
            "{:<18} {:>6} {:>6} {:>6} {:>11.2} {:>11.2} {:>10.2} {:>10.2} {:>7.2}x",
            e.kernel,
            e.m,
            e.n,
            e.k,
            e.scalar_ms,
            e.blocked_ms,
            e.scalar_gflops,
            e.blocked_gflops,
            e.speedup
        );
    }
}

fn main() {
    let flags = match FlagSet::new().switch("quick").parse_env() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("kernel_bench: {e}");
            std::process::exit(2);
        }
    };
    let quick = flags.is_set("quick");
    let mode = if quick { "quick" } else { "full" };
    println!("kernel_bench — mode: {mode}");

    let shapes: Vec<(usize, usize)> = if quick {
        vec![(512, 64)]
    } else {
        vec![
            (512, 64),
            (512, 256),
            (2048, 64),
            (2048, 256),
            (8192, 64),
            (8192, 256),
        ]
    };
    let spmm_shapes: Vec<(usize, usize)> = if quick {
        vec![(512, 64)]
    } else {
        vec![(512, 64), (2048, 64), (2048, 256), (8192, 256)]
    };
    let nce_shapes: Vec<(usize, usize)> = if quick {
        vec![(512, 64)]
    } else {
        vec![(512, 64), (512, 256), (2048, 64), (2048, 256)]
    };

    let mut gemm = Vec::new();
    for kernel in ["matmul", "transpose_matmul", "matmul_transpose"] {
        for &(n, d) in &shapes {
            let reps = if quick {
                3
            } else if n >= 8192 {
                2
            } else {
                4
            };
            let ref_reps = if n >= 8192 { 1 } else { reps.min(2) };
            gemm.push(gemm_case(kernel, n, d, reps, ref_reps));
        }
    }
    println!("\n=== dense GEMM kernels ===");
    print_gemm_table(&gemm);

    let spmm: Vec<SpmmEntry> = spmm_shapes
        .iter()
        .map(|&(n, d)| spmm_case(n, d, if quick { 3 } else { 4 }))
        .collect();
    println!("\n=== SpMM (avg degree 16) ===");
    for e in &spmm {
        println!(
            "n={:<6} d={:<4} nnz={:<8} scalar {:>8.2} ms / blocked {:>8.2} ms  ({:.2} -> {:.2} GF/s, {:.2}x)",
            e.n, e.d, e.nnz, e.scalar_ms, e.blocked_ms, e.scalar_gflops, e.blocked_gflops, e.speedup
        );
    }

    let info_nce: Vec<InfoNceEntry> = nce_shapes
        .iter()
        .map(|&(n, d)| {
            let reps = if quick || n >= 2048 { 2 } else { 3 };
            info_nce_case(n, d, reps, if n >= 2048 { 1 } else { 2 })
        })
        .collect();
    println!("\n=== info_nce_with end to end ===");
    for e in &info_nce {
        println!(
            "n={:<6} d={:<4} scalar {:>9.2} ms / blocked {:>9.2} ms  ({:.2}x)",
            e.n, e.d, e.scalar_ms, e.blocked_ms, e.speedup
        );
    }

    let grace_epoch = if quick { None } else { grace_epoch_case() };
    if let Some(g) = &grace_epoch {
        println!(
            "\n=== GRACE epoch ({} @ {} nodes) ===\n{} epochs in {:.1} ms -> {:.1} ms/epoch",
            g.dataset, g.nodes, g.epochs, g.total_ms, g.ms_per_epoch
        );
    }

    let dump = KernelBenchDump {
        name: "kernel_bench".to_string(),
        mode: mode.to_string(),
        gemm,
        spmm,
        info_nce,
        grace_epoch,
    };
    report::write_json(
        if quick {
            "kernel_bench_quick"
        } else {
            "kernel_bench"
        },
        &dump,
    );

    if quick {
        // CI gate 1: the blocked kernels measured in this run must not be
        // slower than MIN_RATIO x the scalar reference measured in this run.
        let mut failed = false;
        for e in &dump.gemm {
            if e.speedup < f64::from(MIN_RATIO) {
                eprintln!(
                    "FAIL: {} at m={} n={} k={} measured {:.2}x (< {MIN_RATIO}x scalar baseline)",
                    e.kernel, e.m, e.n, e.k, e.speedup
                );
                failed = true;
            }
        }
        // CI gate 2: the committed trajectory file must parse and be
        // self-consistent.
        if let Err(e) = check_committed_baseline("BENCH_kernels.json") {
            eprintln!("FAIL: {e}");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "quick-mode checks passed (blocked >= {MIN_RATIO}x scalar; BENCH_kernels.json ok)"
        );
    } else {
        match serde_json::to_string_pretty(&dump) {
            Ok(json) => match std::fs::write("BENCH_kernels.json", json) {
                Ok(()) => println!("[results written to BENCH_kernels.json]"),
                Err(e) => eprintln!("writing BENCH_kernels.json: {e}"),
            },
            Err(e) => eprintln!("serialising BENCH_kernels.json: {e}"),
        }
    }
}
