//! Table III: dataset statistics — the paper's numbers next to our analogs'
//! measured statistics (at the chosen profile's scale).
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin table3 --release -- --profile quick
//! ```

use e2gcl::prelude::*;
use e2gcl_bench::Profile;
use e2gcl_datasets::registry::all_node_specs;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    paper_nodes: usize,
    paper_edges: usize,
    paper_avg_degree: f64,
    paper_features: usize,
    paper_classes: usize,
    sim_nodes: usize,
    sim_edges: usize,
    sim_avg_degree: f64,
    sim_features: usize,
    sim_classes: usize,
    sim_homophily: f64,
}

fn main() {
    let profile = Profile::from_args();
    println!(
        "Table III reproduction — dataset statistics (profile: {})",
        profile.name
    );
    println!(
        "{:<14} {:>10} {:>12} {:>8} {:>9} {:>7}  |  {:>9} {:>11} {:>8} {:>9} {:>7} {:>6}",
        "dataset",
        "nodes",
        "edges",
        "degree",
        "features",
        "classes",
        "sim nodes",
        "sim edges",
        "degree",
        "features",
        "classes",
        "homo",
    );
    let mut rows = Vec::new();
    for spec in all_node_specs() {
        let scale = if spec.name.contains("arxiv") || spec.name.contains("products") {
            profile.large_scale
        } else {
            profile.scale
        };
        let d = NodeDataset::generate(&spec, scale, 0);
        let row = Row {
            name: spec.name.to_string(),
            paper_nodes: spec.paper_nodes,
            paper_edges: spec.paper_edges,
            paper_avg_degree: spec.paper_avg_degree,
            paper_features: spec.paper_features,
            paper_classes: spec.paper_classes,
            sim_nodes: d.num_nodes(),
            sim_edges: d.graph.num_edges(),
            sim_avg_degree: d.graph.avg_degree(),
            sim_features: d.feature_dim(),
            sim_classes: d.num_classes,
            sim_homophily: d.edge_homophily(),
        };
        println!(
            "{:<14} {:>10} {:>12} {:>8.2} {:>9} {:>7}  |  {:>9} {:>11} {:>8.2} {:>9} {:>7} {:>6.2}",
            row.name,
            row.paper_nodes,
            row.paper_edges,
            row.paper_avg_degree,
            row.paper_features,
            row.paper_classes,
            row.sim_nodes,
            row.sim_edges,
            row.sim_avg_degree,
            row.sim_features,
            row.sim_classes,
            row.sim_homophily,
        );
        rows.push(row);
    }
    e2gcl_bench::report::write_json("table3", &rows);
}
