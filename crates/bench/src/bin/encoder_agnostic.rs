//! The §IV-C *Remarks* claim, as an experiment: the view generator computes
//! edge and feature scores from raw graph data only, so it is
//! encoder-agnostic — swapping the GCN for SGC (the Theorem-1 relaxation)
//! changes nothing upstream and both profit from importance-aware views.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin encoder_agnostic --release -- --profile quick
//! ```

use e2gcl::pipeline::run_node_classification;
use e2gcl::prelude::*;
use e2gcl_bench::report::{outcome_of, CellOutcome, SweepSummary};
use e2gcl_bench::{report, Profile};

fn main() {
    let profile = Profile::from_args();
    println!("Encoder-agnosticism experiment (profile: {})", profile.name);
    let cfg = profile.train_config();
    let mut json = Vec::new();
    let mut summary = SweepSummary::new();
    println!(
        "\n{:<14} {:<8} {:>22} {:>22}",
        "dataset", "encoder", "importance views %", "uniform views %"
    );
    for dname in ["cora-sim", "computers-sim"] {
        let data = profile.dataset(dname, 1000);
        for (ename, encoder) in [
            ("GCN", EncoderKind::Gcn),
            ("SGC", EncoderKind::Sgc),
            ("SAGE", EncoderKind::Sage),
        ] {
            let aware = E2gclModel::new(E2gclConfig {
                encoder,
                ..Default::default()
            });
            let uniform = E2gclModel::new(E2gclConfig {
                encoder,
                strategy: ViewStrategy::Uniform,
                ..Default::default()
            });
            let mut cell = |tag: &str, model: &E2gclModel| {
                let label = format!("{ename}-{tag}/{dname}");
                match run_node_classification(model, &data, &cfg, profile.runs, 0) {
                    Ok(run) if !run.accuracies.is_empty() => {
                        summary.record(&label, outcome_of(&run));
                        Some(run)
                    }
                    Ok(run) => {
                        summary.record(&label, outcome_of(&run));
                        None
                    }
                    Err(err) => {
                        summary.record(&label, CellOutcome::Failed(err.to_string()));
                        None
                    }
                }
            };
            let (Some(a), Some(u)) = (cell("aware", &aware), cell("uniform", &uniform)) else {
                println!("{dname:<14} {ename:<8} {:>22}", "FAILED");
                continue;
            };
            println!(
                "{dname:<14} {ename:<8} {:>15.2} ± {:.2} {:>15.2} ± {:.2}",
                100.0 * a.mean,
                100.0 * a.std,
                100.0 * u.mean,
                100.0 * u.std
            );
            json.push((dname, ename, 100.0 * a.mean, 100.0 * u.mean));
        }
    }
    // The §IV-C Remarks claim is that the generator (which never inspects
    // the encoder) is usable by any GNN: every encoder must train to
    // non-degenerate accuracy from the same precomputed views.
    let usable = json.iter().filter(|(_, _, aware, _)| *aware > 50.0).count();
    println!(
        "\n[shape] {usable}/{} encoder x dataset cells train to >50% accuracy from \
         the same precomputed views (the generator never looked at the encoder)",
        json.len()
    );
    let aware_wins_dense = json
        .iter()
        .filter(|(d, _, aware, uniform)| *d == "computers-sim" && aware >= uniform)
        .count();
    println!(
        "[shape] on the dense analog, importance-aware views match or beat uniform \
         in {aware_wins_dense}/3 encoder rows"
    );
    summary.print();
    report::write_json("encoder_agnostic", &json);
}
