//! Fig. 4(c): sampled-candidate sweep — normalised accuracy, selection time
//! and total time as n_s varies. The paper's shape: selection time grows
//! with n_s, accuracy rises then stabilises, total time barely moves.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin fig4c --release -- --profile quick
//! ```

use e2gcl::pipeline::run_node_classification;
use e2gcl::prelude::*;
use e2gcl_bench::report::{outcome_of, CellOutcome, SweepSummary};
use e2gcl_bench::{report, Profile};
use e2gcl_selector::greedy::GreedyConfig;

fn main() {
    let profile = Profile::from_args();
    println!(
        "Fig. 4(c) reproduction — sample-count sweep (profile: {})",
        profile.name
    );
    let sample_sizes: Vec<usize> = if profile.name == "paper" {
        (1..=10).map(|i| 100 * i).collect()
    } else {
        vec![25, 100, 300, 600, 1000]
    };
    let cfg = profile.train_config();
    let datasets = [
        profile.dataset("computers-sim", 503),
        profile.large_dataset("arxiv-sim", 504),
    ];
    for data in &datasets {
        println!("\n--- {} ({} nodes) ---", data.name, data.num_nodes());
        let mut raw: Vec<(usize, f32, f64, f64)> = Vec::new();
        let mut summary = SweepSummary::new();
        for &ns in &sample_sizes {
            let model = E2gclModel::new(E2gclConfig {
                selector: SelectorKind::Greedy(GreedyConfig {
                    num_clusters: 120,
                    sample_size: ns,
                    ..Default::default()
                }),
                ..Default::default()
            });
            let label = format!("n_s={ns}/{}", data.name);
            match run_node_classification(&model, data, &cfg, 1, 0) {
                Ok(run) if !run.accuracies.is_empty() => {
                    summary.record(&label, outcome_of(&run));
                    raw.push((ns, run.mean, run.selection_secs, run.total_secs));
                }
                Ok(run) => summary.record(&label, outcome_of(&run)),
                Err(err) => summary.record(&label, CellOutcome::Failed(err.to_string())),
            }
            eprintln!("  done: n_s = {ns}");
        }
        if raw.is_empty() {
            summary.print();
            println!("every cell on {} failed; no curve to print", data.name);
            continue;
        }
        let base = raw[0];
        let points: Vec<(f64, Vec<f32>)> = raw
            .iter()
            .map(|&(ns, acc, st, tt)| {
                (
                    ns as f64,
                    vec![
                        acc / base.1,
                        (st / base.2.max(1e-9)) as f32,
                        (tt / base.3.max(1e-9)) as f32,
                    ],
                )
            })
            .collect();
        report::print_series(
            &format!("Fig. 4(c) on {}: normalised vs n_s", data.name),
            "n_s",
            &["accuracy", "selection", "total"],
            &points,
        );
        summary.print();
        report::write_json(&format!("fig4c-{}", data.name), &points);
    }
}
