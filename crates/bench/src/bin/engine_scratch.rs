//! Engine-scratch benchmark: measures the two promises of the
//! `EpochDriver` + workspace refactor.
//!
//! 1. **Zero steady-state allocations** — once a `GcnWorkspace` is warm,
//!    another `forward_with`/`backward_with` round allocates no `Matrix`
//!    buffers (the allocating `forward`/`backward` pair is the baseline).
//! 2. **Reduced wall-time** — the workspace hot path beats the allocating
//!    path, and a full `pretrain` run reports its steady-state per-epoch
//!    allocation count.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin engine_scratch --release
//! ```

use e2gcl::prelude::*;
use e2gcl_graph::norm;
use e2gcl_linalg::alloc_stats::matrix_allocs;
use e2gcl_nn::{GcnEncoder, GcnWorkspace};
use std::time::Instant;

const ROUNDS: usize = 50;

fn main() {
    let data = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.5, 11);
    let n = data.num_nodes();
    let adj = norm::normalized_adjacency(&data.graph);
    let x = &data.features;
    let cfg = TrainConfig::default();
    let mut rng = SeedRng::new(3);
    let encoder = GcnEncoder::new(&cfg.encoder_dims(x.cols()), &mut rng);
    let d_out = Matrix::zeros(n, cfg.embed_dim);
    println!(
        "GCN forward+backward hot path — {n} nodes, dims {:?}, {ROUNDS} rounds",
        cfg.encoder_dims(x.cols())
    );

    // Allocating baseline: fresh activations, cache, and gradients per round.
    let before = matrix_allocs();
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        let (_h, cache) = encoder.forward(&adj, x);
        let grads = encoder.backward(&adj, &cache, &d_out);
        std::hint::black_box(&grads);
    }
    let alloc_time = t0.elapsed();
    let alloc_allocs = matrix_allocs() - before;

    // Workspace path: one warm-up round, then measure the steady state.
    let mut ws = GcnWorkspace::new();
    encoder.forward_with(&adj, x, &mut ws);
    encoder.backward_with(&adj, &mut ws, &d_out);
    let before = matrix_allocs();
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        encoder.forward_with(&adj, x, &mut ws);
        encoder.backward_with(&adj, &mut ws, &d_out);
        std::hint::black_box(ws.grads());
    }
    let ws_time = t0.elapsed();
    let ws_allocs = matrix_allocs() - before;

    println!(
        "  allocating forward/backward: {:>8.2?}  ({:.1} Matrix allocs/round)",
        alloc_time,
        alloc_allocs as f64 / ROUNDS as f64
    );
    println!(
        "  workspace   forward/backward: {:>8.2?}  ({:.1} Matrix allocs/round)",
        ws_time,
        ws_allocs as f64 / ROUNDS as f64
    );
    println!(
        "  speedup {:.2}x, allocations removed per round: {}",
        alloc_time.as_secs_f64() / ws_time.as_secs_f64(),
        (alloc_allocs - ws_allocs) / ROUNDS as u64
    );

    // Steady-state per-epoch allocations of a full engine-driven pretrain:
    // run E and 2E epochs; the delta isolates the per-epoch cost from setup.
    let short = TrainConfig {
        epochs: 10,
        ..TrainConfig::default()
    };
    let long = TrainConfig {
        epochs: 20,
        ..TrainConfig::default()
    };
    for (name, model) in [("GRACE", true), ("E2GCL", false)] {
        let allocs_for = |cfg: &TrainConfig| {
            let before = matrix_allocs();
            let t0 = Instant::now();
            if model {
                e2gcl::models::grace::GraceModel::grace()
                    .pretrain(&data.graph, x, cfg, &mut SeedRng::new(5))
                    .expect("pretrain");
            } else {
                E2gclModel::default()
                    .pretrain(&data.graph, x, cfg, &mut SeedRng::new(5))
                    .expect("pretrain");
            }
            (matrix_allocs() - before, t0.elapsed())
        };
        let (a_short, _) = allocs_for(&short);
        let (a_long, t_long) = allocs_for(&long);
        let per_epoch = (a_long - a_short) as f64 / (long.epochs - short.epochs) as f64;
        println!(
            "{name}: {per_epoch:.1} Matrix allocs/epoch steady-state \
             ({} total over {} epochs, {:.2?})",
            a_long, long.epochs, t_long
        );
    }
}
