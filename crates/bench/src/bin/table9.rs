//! Table IX: link prediction (Photo / Computers / CS analogs) and graph
//! classification (NCI1 / PTC_MR / PROTEINS analogs) for the strongest
//! contrastive models and E²GCL.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin table9 --release -- --profile quick
//! ```

use e2gcl::pipeline::run_graph_classification;
use e2gcl::{eval, prelude::*};
use e2gcl_bench::report::{
    graph_outcome_of, print_table, write_json, Cell, CellOutcome, SweepSummary,
};
use e2gcl_bench::{reference, registry, Profile};
use e2gcl_datasets::graph_dataset::{graph_spec, GraphDataset};
use e2gcl_datasets::split::EdgeSplit;
use e2gcl_linalg::stats;

const LP_DATASETS: [&str; 3] = ["photo-sim", "computers-sim", "cs-sim"];
const GC_DATASETS: [&str; 3] = ["nci1-sim", "ptcmr-sim", "proteins-sim"];

fn main() {
    let profile = Profile::from_args();
    println!(
        "Table IX reproduction — link prediction + graph classification (profile: {})",
        profile.name
    );
    let cfg = profile.train_config();

    // Link-prediction splits, shared across models for comparability.
    let lp_data: Vec<(NodeDataset, EdgeSplit)> = LP_DATASETS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let d = profile.dataset(name, 600 + i as u64);
            let split = EdgeSplit::random(&d.graph, &mut SeedRng::new(42 + i as u64));
            (d, split)
        })
        .collect();
    let gc_data: Vec<GraphDataset> = GC_DATASETS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let spec = graph_spec(name).expect("table names are registered");
            GraphDataset::generate(&spec, profile.scale.min(0.5), 700 + i as u64)
        })
        .collect();

    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut summary = SweepSummary::new();
    for (model_name, paper_lp, paper_gc) in reference::table9() {
        let model = registry::model(model_name).expect("table names are registered");
        let mut cells = Vec::new();
        // --- link prediction ---
        for (i, (d, split)) in lp_data.iter().enumerate() {
            let mut accs = Vec::new();
            let mut last_err = None;
            for r in 0..profile.runs {
                let mut rng = SeedRng::new(r as u64);
                match model.pretrain(&split.train_graph, &d.features, &cfg, &mut rng) {
                    Ok(out) => accs.push(eval::link_prediction_accuracy(
                        &out.embeddings,
                        split,
                        r as u64,
                    )),
                    Err(err) => last_err = Some(err),
                }
            }
            let label = format!("{model_name}/lp/{}", d.name);
            let failed = profile.runs - accs.len();
            match last_err {
                None => summary.record(&label, CellOutcome::Ok),
                Some(err) if accs.is_empty() => {
                    summary.record(&label, CellOutcome::Failed(err.to_string()))
                }
                Some(_) => summary.record(
                    &label,
                    CellOutcome::Diverged {
                        failed_runs: failed,
                    },
                ),
            }
            if accs.is_empty() {
                cells.push(Cell::failed());
            } else {
                let (mean, std) = stats::mean_std(&accs);
                cells.push(Cell::vs(100.0 * mean, 100.0 * std, paper_lp[i]));
                json.push((
                    model_name,
                    format!("lp/{}", d.name),
                    100.0 * mean,
                    paper_lp[i],
                ));
            }
            eprintln!("  done: {model_name} link prediction on {}", d.name);
        }
        // --- graph classification ---
        for (i, data) in gc_data.iter().enumerate() {
            let label = format!("{model_name}/gc/{}", data.name);
            match run_graph_classification(model.as_ref(), data, &cfg, profile.runs, 0) {
                Ok(run) if !run.accuracies.is_empty() => {
                    summary.record(&label, graph_outcome_of(&run));
                    cells.push(Cell::vs(100.0 * run.mean, 100.0 * run.std, paper_gc[i]));
                    json.push((
                        model_name,
                        format!("gc/{}", data.name),
                        100.0 * run.mean,
                        paper_gc[i],
                    ));
                }
                Ok(run) => {
                    summary.record(&label, graph_outcome_of(&run));
                    cells.push(Cell::failed());
                }
                Err(err) => {
                    summary.record(&label, CellOutcome::Failed(err.to_string()));
                    cells.push(Cell::failed());
                }
            }
            eprintln!("  done: {model_name} graph classification on {}", data.name);
        }
        rows.push((model_name.to_string(), cells));
    }
    print_table(
        "Table IX: link prediction | graph classification, accuracy % — measured (paper)",
        &[
            "lp:photo",
            "lp:computers",
            "lp:cs",
            "gc:nci1",
            "gc:ptcmr",
            "gc:proteins",
        ],
        &rows,
    );
    summary.print();
    write_json("table9", &json);
}
