//! Table VI: framework ablation — node set {All, Selected} × view strategy
//! {Uniform, Importance}.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin table6 --release -- --profile quick
//! ```

use e2gcl::prelude::*;
use e2gcl_bench::{e2gcl_ablation_table, reference, Profile};

fn main() {
    let profile = Profile::from_args();
    println!(
        "Table VI reproduction — framework ablation (profile: {})",
        profile.name
    );
    let variants = vec![
        (
            "E2GCL_{A,U}".to_string(),
            E2gclModel::new(E2gclConfig {
                selector: SelectorKind::All,
                strategy: ViewStrategy::Uniform,
                ..Default::default()
            }),
        ),
        (
            "E2GCL_{S,U}".to_string(),
            E2gclModel::new(E2gclConfig {
                strategy: ViewStrategy::Uniform,
                ..Default::default()
            }),
        ),
        (
            "E2GCL_{A,I}".to_string(),
            E2gclModel::new(E2gclConfig {
                selector: SelectorKind::All,
                ..Default::default()
            }),
        ),
        ("E2GCL_{S,I}".to_string(), E2gclModel::default()),
    ];
    e2gcl_ablation_table(
        &profile,
        "Table VI: framework ablation, accuracy % — measured (paper)",
        &variants,
        &reference::table6(),
        "table6",
    );
}
