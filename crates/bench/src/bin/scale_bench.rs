//! Mini-batch scaling benchmark: epoch wall time and peak RSS versus node
//! count for the neighbour-sampled training path (DESIGN.md §13).
//!
//! Trains E²GCL (all-anchor selection) and GRACE on `products-sim-1m` at
//! ascending scales with the same mini-batch settings the CLI exposes
//! (`--minibatch --batch-nodes --fanout`), recording per-epoch wall time
//! and process memory after each case.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin scale_bench --release              # full sweep
//! cargo run -p e2gcl-bench --bin scale_bench --release -- --quick   # CI smoke
//! ```
//!
//! Full mode writes `BENCH_scale.json` at the repo root (tracked in git).
//! Quick mode runs only the smallest scale, writes to
//! `target/bench-results/`, and fails (non-zero exit) if any quick case
//! errors or if the committed `BENCH_scale.json` is missing, unparsable, or
//! empty.
//!
//! Memory caveat: `peak_rss_mb` is the process high-water mark
//! (`VmHWM` from `/proc/self/status`), which only ratchets upward — cases
//! run smallest-first precisely so each case's recorded peak reflects the
//! largest graph touched *so far*. Only the last case of a model pair at
//! each scale gives the honest peak for that scale.

use e2gcl::models::grace::GraceModel;
use e2gcl::prelude::*;
use e2gcl_bench::flags::FlagSet;
use e2gcl_bench::report;
use serde::Serialize;
use std::time::Instant;

/// Mini-batch geometry used for every case (mirrors the CLI defaults for a
/// million-node run: `--minibatch true --batch-nodes 2048 --fanout 3`).
const BATCH_NODES: usize = 2048;
const FANOUT: usize = 3;

#[derive(Serialize)]
struct ScaleCase {
    model: String,
    dataset: String,
    /// `minibatch` or `fullbatch` — whether the case trains through the
    /// neighbour-sampled path or one whole-graph epoch step.
    training: String,
    /// Contrastive loss strategy name (`full`, `smallneg`, `localized`).
    loss: String,
    scale: f64,
    nodes: usize,
    edges: usize,
    /// Dataset generation wall time (shared by the models at this scale;
    /// recorded on the first model's row, 0.0 on the rest).
    gen_s: f64,
    epochs: usize,
    /// Selection preprocessing (Alg. 2) wall time.
    selection_s: f64,
    /// Total pre-training wall time, selection and final full-graph
    /// inference included.
    total_s: f64,
    /// `(total_s - selection_s) / epochs` — the steady-state cost of one
    /// mini-batch epoch (plus the amortised final inference pass).
    epoch_s: f64,
    final_loss: f32,
    /// Process RSS (MB) after this case.
    rss_mb: Option<f64>,
    /// Process peak RSS (MB) so far — a high-water mark, see module docs.
    peak_rss_mb: Option<f64>,
}

#[derive(Serialize)]
struct ScaleDump {
    name: String,
    mode: String,
    batch_nodes: usize,
    fanout: usize,
    cases: Vec<ScaleCase>,
}

/// `(VmRSS, VmHWM)` in MB from `/proc/self/status` (`None` off-Linux).
fn memory_mb() -> (Option<f64>, Option<f64>) {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return (None, None);
    };
    let grab = |key: &str| {
        text.lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse::<f64>().ok())
            .map(|kb| kb / 1024.0)
    };
    (grab("VmRSS:"), grab("VmHWM:"))
}

fn all_anchor_e2gcl() -> E2gclModel {
    // Every Alg. 2 selector ends in `assign_weights`, an |V| x budget
    // nearest-representative pass that is super-linear at a million nodes —
    // and the mini-batch step visits anchors uniformly, ignoring importance
    // weights. `All` keeps preprocessing O(1) so the sweep measures pure
    // mini-batch training throughput.
    E2gclModel::new(E2gclConfig {
        selector: SelectorKind::All,
        ..E2gclConfig::default()
    })
}

fn run_case(
    model: &dyn ContrastiveModel,
    data: &NodeDataset,
    scale: f64,
    gen_s: f64,
    cfg: &TrainConfig,
) -> Result<ScaleCase, String> {
    let training = if cfg.minibatch.is_some() {
        "minibatch"
    } else {
        "fullbatch"
    };
    let t = Instant::now();
    let out = model
        .pretrain(&data.graph, &data.features, cfg, &mut SeedRng::new(0))
        .map_err(|e| format!("{} ({training}) at scale {scale}: {e}", model.name()))?;
    let total_s = t.elapsed().as_secs_f64();
    let selection_s = out.selection_time.as_secs_f64();
    let (rss_mb, peak_rss_mb) = memory_mb();
    Ok(ScaleCase {
        model: model.name(),
        dataset: data.name.clone(),
        training: training.to_string(),
        loss: cfg.loss.name().to_string(),
        scale,
        nodes: data.num_nodes(),
        edges: data.graph.num_edges(),
        gen_s,
        epochs: cfg.epochs,
        selection_s,
        total_s,
        epoch_s: (total_s - selection_s) / cfg.epochs.max(1) as f64,
        final_loss: out.loss_curve.last().copied().unwrap_or(f32::NAN),
        rss_mb,
        peak_rss_mb,
    })
}

fn minibatch_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        minibatch: Some(MinibatchConfig {
            batch_nodes: BATCH_NODES,
            fanout: Some(FANOUT),
        }),
        ..TrainConfig::default()
    }
}

/// The headline this PR adds: a **full-batch** E²GCL epoch at the
/// million-node tier, feasible in RAM only because the small-negative-set
/// loss replaces the O(n²) similarity with O(n·k).
fn fullbatch_smallneg_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        minibatch: None,
        loss: LossStrategy::SmallNeg { negatives: 256 },
        ..TrainConfig::default()
    }
}

/// The subset of the committed `BENCH_scale.json` the CI gate inspects.
#[derive(serde::Deserialize)]
struct BaselineDump {
    cases: Vec<BaselineCase>,
}

#[derive(serde::Deserialize)]
struct BaselineCase {
    model: String,
    nodes: usize,
    #[serde(default)]
    training: String,
    #[serde(default)]
    loss: String,
}

fn check_committed_baseline(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let dump: BaselineDump =
        serde_json::from_str(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    if dump.cases.is_empty() {
        return Err(format!("{path}: empty cases array"));
    }
    // The headline claims: both supported models were benchmarked at the
    // million-node tier through the mini-batch path, and E²GCL completed a
    // full-batch million-node epoch with the small-negative-set loss.
    for model in ["E2GCL", "GRACE"] {
        if !dump
            .cases
            .iter()
            .any(|c| c.model == model && c.nodes >= 900_000)
        {
            return Err(format!("{path}: no {model} case at >= 900k nodes"));
        }
    }
    if !dump.cases.iter().any(|c| {
        c.model == "E2GCL"
            && c.nodes >= 900_000
            && c.training == "fullbatch"
            && c.loss == "smallneg"
    }) {
        return Err(format!(
            "{path}: no full-batch smallneg E2GCL case at >= 900k nodes"
        ));
    }
    Ok(())
}

fn print_case(c: &ScaleCase) {
    println!(
        "{:<8} [{}/{}] scale {:<5} {:>9} nodes {:>10} edges  gen {:>7.1}s  sel {:>6.1}s  \
         {:>6.1}s/epoch  loss {:>8.4}  rss {:>8} MB (peak {:>8} MB)",
        c.model,
        c.training,
        c.loss,
        c.scale,
        c.nodes,
        c.edges,
        c.gen_s,
        c.selection_s,
        c.epoch_s,
        c.final_loss,
        c.rss_mb.map_or_else(|| "?".into(), |m| format!("{m:.0}")),
        c.peak_rss_mb
            .map_or_else(|| "?".into(), |m| format!("{m:.0}")),
    );
}

fn main() {
    let flags = match FlagSet::new().switch("quick").parse_env() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("scale_bench: {e}");
            std::process::exit(2);
        }
    };
    let quick = flags.is_set("quick");
    let mode = if quick { "quick" } else { "full" };
    println!("scale_bench — mode: {mode} (batch_nodes {BATCH_NODES}, fanout {FANOUT})");

    // (scale of products-sim-1m, epochs); ascending so the RSS high-water
    // mark stays interpretable (module docs).
    let sweep: Vec<(f64, usize)> = if quick {
        vec![(0.01, 1)]
    } else {
        vec![(0.01, 2), (0.1, 2), (1.0, 1)]
    };

    let data_spec = match spec("products-sim-1m") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scale_bench: {e}");
            std::process::exit(2);
        }
    };

    let mut cases: Vec<ScaleCase> = Vec::new();
    let mut failed = false;
    for &(scale, epochs) in &sweep {
        let t = Instant::now();
        let data = NodeDataset::generate(&data_spec, scale, 0);
        let mut gen_s = t.elapsed().as_secs_f64();
        println!(
            "-- {} @ scale {scale}: {} nodes / {} edges generated in {gen_s:.1}s",
            data.name,
            data.num_nodes(),
            data.graph.num_edges()
        );
        let e2gcl = all_anchor_e2gcl();
        let grace = GraceModel::grace();
        let models: [&dyn ContrastiveModel; 2] = [&e2gcl, &grace];
        for model in models {
            match run_case(model, &data, scale, gen_s, &minibatch_cfg(epochs)) {
                Ok(c) => {
                    print_case(&c);
                    cases.push(c);
                }
                Err(e) => {
                    eprintln!("FAIL: {e}");
                    failed = true;
                }
            }
            gen_s = 0.0; // attribute generation cost once per scale
        }
        // Full-batch E²GCL with the small-negative-set loss: the whole
        // point of the sub-quadratic kernels is that this case now fits in
        // RAM at the million-node tier. One epoch — enough to prove the
        // memory/wall-time claim without doubling the sweep.
        let fullbatch_here = if quick { true } else { scale >= 1.0 };
        if fullbatch_here {
            match run_case(&e2gcl, &data, scale, 0.0, &fullbatch_smallneg_cfg(1)) {
                Ok(c) => {
                    print_case(&c);
                    cases.push(c);
                }
                Err(e) => {
                    eprintln!("FAIL: {e}");
                    failed = true;
                }
            }
        }
    }

    let dump = ScaleDump {
        name: "scale_bench".to_string(),
        mode: mode.to_string(),
        batch_nodes: BATCH_NODES,
        fanout: FANOUT,
        cases,
    };
    report::write_json(
        if quick {
            "scale_bench_quick"
        } else {
            "scale_bench"
        },
        &dump,
    );

    if quick {
        if let Err(e) = check_committed_baseline("BENCH_scale.json") {
            eprintln!("FAIL: {e}");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("quick-mode checks passed (mini-batch cases ran; BENCH_scale.json ok)");
    } else {
        if failed {
            std::process::exit(1);
        }
        match serde_json::to_string_pretty(&dump) {
            Ok(json) => match std::fs::write("BENCH_scale.json", json) {
                Ok(()) => println!("[results written to BENCH_scale.json]"),
                Err(e) => eprintln!("writing BENCH_scale.json: {e}"),
            },
            Err(e) => eprintln!("serialising BENCH_scale.json: {e}"),
        }
    }
}
