//! Table VII: node-selector ablation — Random / Degree / KMeans / KCG /
//! Grain / Ours (Alg. 2), all inside the same E²GCL training stack.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin table7 --release -- --profile quick
//! ```

use e2gcl::prelude::*;
use e2gcl_bench::{e2gcl_ablation_table, reference, Profile};

fn main() {
    let profile = Profile::from_args();
    println!(
        "Table VII reproduction — selector ablation (profile: {})",
        profile.name
    );
    // The paper runs this at r = 0.4; at quick scale that budget is so
    // generous every selector saturates (the Fig. 4a plateau), so the
    // reproduction tightens the budget to r = 0.1 where selection quality
    // actually matters.
    let ratio = 0.1;
    let with = |selector: SelectorKind| {
        E2gclModel::new(E2gclConfig {
            selector,
            node_ratio: ratio,
            ..Default::default()
        })
    };
    let variants = vec![
        ("Random".to_string(), with(SelectorKind::Random)),
        ("Degree".to_string(), with(SelectorKind::Degree)),
        ("KMeans".to_string(), with(SelectorKind::KMeans)),
        ("KCG".to_string(), with(SelectorKind::Kcg)),
        ("Grain".to_string(), with(SelectorKind::Grain)),
        (
            "Ours".to_string(),
            E2gclModel::new(E2gclConfig {
                node_ratio: ratio,
                ..Default::default()
            }),
        ),
    ];
    e2gcl_ablation_table(
        &profile,
        "Table VII: selector ablation, accuracy % — measured (paper)",
        &variants,
        &reference::table7(),
        "table7",
    );
}
