//! Serving-latency benchmark for the `e2gcl-serve` batch server.
//!
//! Pre-trains a model, packages it as an [`Artifact`] (exercising the
//! save → load round trip on the way), then drives deterministic top-k /
//! inductive query batches through a [`BatchServer`] and reports per-batch-
//! size latency percentiles (p50/p95/p99) and throughput. Results land in
//! `BENCH_serve.json` (machine-readable) and `target/bench-results/`.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin serve_latency --release
//! ```

use e2gcl::prelude::*;
use e2gcl_bench::report;
use e2gcl_serve::{run_latency_bench, Artifact, ArtifactMeta, BatchServer, BenchOptions};
use serde::Serialize;

const DATASET: &str = "cora-sim";
const SCALE: f64 = 0.25;
const SEED: u64 = 7;
const EPOCHS: usize = 20;

#[derive(Serialize)]
struct ServeBenchDump {
    name: String,
    model: String,
    dataset: String,
    num_nodes: usize,
    embedding_dim: usize,
    batches: Vec<e2gcl_serve::BatchBenchReport>,
}

fn main() {
    let data = NodeDataset::generate(&spec(DATASET).expect("dataset spec"), SCALE, SEED);
    let cfg = TrainConfig {
        epochs: EPOCHS,
        ..TrainConfig::default()
    };
    let model = E2gclModel::default();
    println!(
        "serve_latency — {} on {} ({} nodes, {} edges), {} epochs",
        model.name(),
        data.name,
        data.num_nodes(),
        data.graph.num_edges(),
        cfg.epochs
    );
    let out = model
        .pretrain(&data.graph, &data.features, &cfg, &mut SeedRng::new(SEED))
        .expect("pretrain");
    let artifact = Artifact {
        meta: ArtifactMeta {
            model: model.name(),
            dataset: data.name.clone(),
            scale: SCALE,
            seed: SEED,
        },
        config: cfg,
        encoder: out.encoder.expect("E2GCL exposes a frozen encoder"),
        embeddings: out.embeddings,
    };

    // Round-trip through the on-disk format so the bench measures exactly
    // what a deployed server would load.
    let path = std::path::Path::new("target/serve_latency_artifact.bin");
    artifact.save(path).expect("save artifact");
    let artifact = Artifact::load(path).expect("load artifact");

    let mut server = BatchServer::from_artifact(&artifact, data.graph, data.features)
        .expect("server from artifact");
    let opts = BenchOptions::default(); // batch sizes {1, 32, 256}
    let mut rng = SeedRng::new(SEED ^ 0x5e7e);
    let reports = run_latency_bench(&mut server, &opts, &mut rng);

    println!(
        "{:>6} {:>7} {:>11} {:>11} {:>11} {:>11} {:>12}",
        "batch", "rounds", "p50(us)", "p95(us)", "p99(us)", "mean(us)", "qps"
    );
    for r in &reports {
        println!(
            "{:>6} {:>7} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>12.0}",
            r.batch_size,
            r.rounds,
            r.latency.p50_us,
            r.latency.p95_us,
            r.latency.p99_us,
            r.latency.mean_us,
            r.throughput_qps
        );
    }
    if let Some(stats) = server.inductive().map(|e| e.cache_stats()) {
        println!(
            "inductive cache: {} hits, {} misses over the run",
            stats.0, stats.1
        );
    }

    let dump = ServeBenchDump {
        name: "serve_latency".to_string(),
        model: artifact.meta.model.clone(),
        dataset: artifact.meta.dataset.clone(),
        num_nodes: artifact.embeddings.rows(),
        embedding_dim: artifact.embeddings.cols(),
        batches: reports,
    };
    report::write_json("serve_latency", &dump);
    match serde_json::to_string_pretty(&dump) {
        Ok(json) => match std::fs::write("BENCH_serve.json", json) {
            Ok(()) => println!("[results written to BENCH_serve.json]"),
            Err(e) => eprintln!("writing BENCH_serve.json: {e}"),
        },
        Err(e) => eprintln!("serialising BENCH_serve.json: {e}"),
    }
}
