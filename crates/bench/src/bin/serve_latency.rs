//! Serving benchmark for the `e2gcl-serve` stack: batch latency, overload
//! behaviour, ANN retrieval, and closed-loop load generation.
//!
//! Two tiers share one report:
//!
//! * **Trained tier** — pre-trains E²GCL, packages it as an [`Artifact`]
//!   (exercising the save → load round trip), then measures per-batch-size
//!   latency percentiles (`batches`) and shedding/degradation under
//!   saturation (`overload`, the PR 6 schema).
//! * **Retrieval tier** — a synthetic clustered store at the million-row
//!   scale real deployments serve, over which an [`IvfIndex`] is built and
//!   measured against brute force (`ann`: build cost, recall@k, latency),
//!   then driven through the micro-batching scheduler by the closed-loop
//!   load generator up a QPS ladder (`loadgen`: max sustained throughput).
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin serve_latency --release              # full
//! cargo run -p e2gcl-bench --bin serve_latency --release -- --quick  # smoke
//! ```
//!
//! Full mode writes `BENCH_serve.json` at the repo root (tracked in git).
//! Quick mode shrinks both tiers, writes only to `target/bench-results/`,
//! and fails if the committed `BENCH_serve.json` is missing, unparsable, or
//! records a retrieval tier below the contract (1M rows, recall@k ≥ 0.95,
//! IVF p99 < 10 ms, ≥ 10k QPS sustained).

use e2gcl::prelude::*;
use e2gcl_bench::flags::{FlagSet, Flags};
use e2gcl_bench::report;
use e2gcl_linalg::Matrix;
use e2gcl_serve::{
    find_max_sustainable, run_latency_bench, run_overload_bench, Artifact, ArtifactMeta,
    BatchServer, BenchOptions, EmbeddingStore, IvfConfig, IvfIndex, LatencyHistogram,
    LatencySummary, LoadGenOptions, OverloadOptions, RuntimeConfig, SchedulerConfig,
    ServeFaultPlan, SustainedReport,
};
use serde::Serialize;
use std::time::Instant;

const DATASET: &str = "cora-sim";
const SCALE: f64 = 0.25;
const SEED: u64 = 7;

/// The retrieval-tier acceptance contract recorded in `BENCH_serve.json`
/// and enforced against the committed file in quick mode.
const CONTRACT_ROWS: usize = 1_000_000;
const CONTRACT_RECALL: f64 = 0.95;
const CONTRACT_P99_US: f64 = 10_000.0;
const CONTRACT_QPS: f64 = 10_000.0;

/// Sizing of one benchmark run (full vs `--quick`).
struct Sizing {
    epochs: usize,
    rounds: usize,
    overload_rounds: usize,
    rows: usize,
    dim: usize,
    clusters: usize,
    index: IvfConfig,
    ann_queries: usize,
    ladder: Vec<f64>,
    requests: usize,
}

impl Sizing {
    fn full() -> Sizing {
        Sizing {
            epochs: 20,
            rounds: 50,
            overload_rounds: 30,
            rows: CONTRACT_ROWS,
            dim: 32,
            clusters: 2_000,
            index: IvfConfig {
                nlist: 2_048,
                // nprobe 2 measures recall 1.0 on the clustered tier and
                // roughly halves the per-query list-scan traffic, which is
                // what the >= 10k QPS rung needs on one core.
                nprobe: 2,
                train_sample: 32_768,
                kmeans_iters: 4,
                seed: 9,
            },
            ann_queries: 50,
            ladder: vec![2_500.0, 5_000.0, 10_000.0, 15_000.0, 20_000.0],
            // Long rungs so one host-scheduling hiccup (tens of ms) cannot
            // by itself push 1% of the sample over the p99 budget.
            requests: 20_000,
        }
    }

    fn quick() -> Sizing {
        Sizing {
            epochs: 5,
            rounds: 5,
            overload_rounds: 5,
            rows: 20_000,
            dim: 32,
            clusters: 128,
            index: IvfConfig {
                nlist: 128,
                nprobe: 4,
                train_sample: 8_192,
                kmeans_iters: 4,
                seed: 9,
            },
            ann_queries: 20,
            ladder: vec![2_000.0, 8_000.0],
            requests: 2_000,
        }
    }

    /// Applies the tuning flags on top of the mode defaults.
    fn with_flags(mut self, flags: &Flags) -> Result<Sizing, e2gcl_bench::flags::FlagError> {
        self.rows = flags.get_parse("rows", self.rows)?;
        self.dim = flags.get_parse("dim", self.dim)?;
        self.clusters = flags.get_parse("clusters", self.clusters)?;
        self.index.nlist = flags.get_parse("nlist", self.index.nlist)?;
        self.index.nprobe = flags.get_parse("nprobe", self.index.nprobe)?;
        self.index.train_sample = flags.get_parse("train-sample", self.index.train_sample)?;
        self.index.kmeans_iters = flags.get_parse("kmeans-iters", self.index.kmeans_iters)?;
        self.ann_queries = flags.get_parse("ann-queries", self.ann_queries)?;
        self.requests = flags.get_parse("requests", self.requests)?;
        Ok(self)
    }
}

/// ANN section: IVF build cost and quality versus exact brute force.
#[derive(Serialize)]
struct AnnSection {
    store_rows: usize,
    embedding_dim: usize,
    index: IvfConfig,
    build_secs: f64,
    index_bytes: usize,
    queries: usize,
    k: usize,
    recall_at_k: f64,
    brute: LatencySummary,
    ivf: LatencySummary,
    p50_speedup: f64,
}

/// Load-generator section: the QPS ladder through the micro-batcher.
#[derive(Serialize)]
struct LoadgenSection {
    store_rows: usize,
    embedding_dim: usize,
    index: IvfConfig,
    scheduler: SchedulerConfig,
    sustained: SustainedReport,
}

#[derive(Serialize)]
struct ServeBenchDump {
    name: String,
    mode: String,
    model: String,
    dataset: String,
    num_nodes: usize,
    store_rows: usize,
    embedding_dim: usize,
    batches: Vec<e2gcl_serve::BatchBenchReport>,
    overload: e2gcl_serve::OverloadReport,
    ann: AnnSection,
    loadgen: LoadgenSection,
}

/// Clustered synthetic embeddings: community centers plus gaussian noise,
/// the shape GNN embedding tables actually have (and the regime IVF
/// retrieval is built for).
fn clustered_store(rows: usize, dim: usize, clusters: usize, seed: u64) -> EmbeddingStore {
    let mut rng = SeedRng::new(seed);
    let mut centers = Matrix::zeros(clusters, dim);
    for v in centers.as_mut_slice() {
        *v = rng.normal();
    }
    let mut m = Matrix::zeros(rows, dim);
    for r in 0..rows {
        let c = rng.below(clusters);
        for (d, x) in m.row_mut(r).iter_mut().enumerate() {
            *x = centers.get(c, d) + 0.15 * rng.normal();
        }
    }
    EmbeddingStore::new(m)
}

/// Brute-force vs IVF over the same deterministic stored-row queries:
/// per-path latency percentiles plus measured recall@k.
fn ann_section(store: &EmbeddingStore, index: &IvfIndex, sizing: &Sizing) -> AnnSection {
    let k = 10;
    let n = store.len();
    let q = sizing.ann_queries.min(n).max(1);
    let query_nodes: Vec<usize> = (0..q).map(|i| i * n / q).collect();
    let mut brute_hist = LatencyHistogram::new();
    let mut ivf_hist = LatencyHistogram::new();
    let mut overlap = 0usize;
    let mut total = 0usize;
    for &node in &query_nodes {
        let query = store.embedding(node).expect("stored query node").to_vec();
        let t = Instant::now();
        let exact = store.top_k(&query, k).expect("brute-force top-k");
        brute_hist.record(t.elapsed());
        let t = Instant::now();
        let approx = index.search(store, &query, k).expect("ivf top-k");
        ivf_hist.record(t.elapsed());
        total += exact.len();
        overlap += approx
            .iter()
            .filter(|(id, _)| exact.iter().any(|(e, _)| e == id))
            .count();
    }
    let brute = brute_hist.summary();
    let ivf = ivf_hist.summary();
    AnnSection {
        store_rows: store.len(),
        embedding_dim: store.dim(),
        index: index.config(),
        build_secs: 0.0, // stamped by the caller
        index_bytes: index.to_bytes().len(),
        queries: query_nodes.len(),
        k,
        recall_at_k: overlap as f64 / total.max(1) as f64,
        p50_speedup: brute.p50_us / ivf.p50_us.max(1e-9),
        brute,
        ivf,
    }
}

/// The subset of the committed `BENCH_serve.json` the quick gate inspects.
#[derive(serde::Deserialize)]
struct Baseline {
    overload: BaselineOverload,
    ann: BaselineAnn,
    loadgen: BaselineLoadgen,
}

/// Deserializing these fields is the schema check: a `BENCH_serve.json`
/// whose overload section lost them fails to parse.
#[derive(serde::Deserialize)]
struct BaselineOverload {
    offered: usize,
    admitted: usize,
    shed_overload: usize,
}

#[derive(serde::Deserialize)]
struct BaselineAnn {
    store_rows: usize,
    recall_at_k: f64,
    ivf: BaselineLatency,
}

#[derive(serde::Deserialize)]
struct BaselineLatency {
    p99_us: f64,
}

#[derive(serde::Deserialize)]
struct BaselineLoadgen {
    sustained: BaselineSustained,
}

#[derive(serde::Deserialize)]
struct BaselineSustained {
    max_sustained_qps: f64,
}

fn check_committed_baseline(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let b: Baseline =
        serde_json::from_str(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    if b.overload.offered < b.overload.admitted.saturating_sub(b.overload.shed_overload) {
        return Err(format!(
            "{path}: overload section counters are inconsistent"
        ));
    }
    if b.ann.store_rows < CONTRACT_ROWS {
        return Err(format!(
            "{path}: ann tier has {} rows, contract is >= {CONTRACT_ROWS}",
            b.ann.store_rows
        ));
    }
    if b.ann.recall_at_k < CONTRACT_RECALL {
        return Err(format!(
            "{path}: recorded recall {} below {CONTRACT_RECALL}",
            b.ann.recall_at_k
        ));
    }
    if b.ann.ivf.p99_us >= CONTRACT_P99_US {
        return Err(format!(
            "{path}: recorded ivf p99 {} us breaks the {CONTRACT_P99_US} us budget",
            b.ann.ivf.p99_us
        ));
    }
    if b.loadgen.sustained.max_sustained_qps < CONTRACT_QPS {
        return Err(format!(
            "{path}: recorded max sustained {} qps below {CONTRACT_QPS}",
            b.loadgen.sustained.max_sustained_qps
        ));
    }
    Ok(())
}

fn main() {
    let flags = match FlagSet::new()
        .switch("quick")
        .valued("rows")
        .valued("dim")
        .valued("clusters")
        .valued("nlist")
        .valued("nprobe")
        .valued("train-sample")
        .valued("kmeans-iters")
        .valued("ann-queries")
        .valued("requests")
        .parse_env()
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("serve_latency: {e}");
            std::process::exit(2);
        }
    };
    let quick = flags.is_set("quick");
    let mode = if quick { "quick" } else { "full" };
    let sizing = match if quick {
        Sizing::quick()
    } else {
        Sizing::full()
    }
    .with_flags(&flags)
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_latency: {e}");
            std::process::exit(2);
        }
    };

    // ---- trained tier: batches + overload (PR 6 sections) ----
    let data = NodeDataset::generate(&spec(DATASET).expect("dataset spec"), SCALE, SEED);
    let cfg = TrainConfig {
        epochs: sizing.epochs,
        ..TrainConfig::default()
    };
    let model = E2gclModel::default();
    println!(
        "serve_latency — mode: {mode}; {} on {} ({} nodes, {} edges), {} epochs",
        model.name(),
        data.name,
        data.num_nodes(),
        data.graph.num_edges(),
        cfg.epochs
    );
    let out = model
        .pretrain(&data.graph, &data.features, &cfg, &mut SeedRng::new(SEED))
        .expect("pretrain");
    let artifact = Artifact {
        meta: ArtifactMeta {
            model: model.name(),
            dataset: data.name.clone(),
            scale: SCALE,
            seed: SEED,
        },
        config: cfg,
        encoder: out.encoder.expect("E2GCL exposes a frozen encoder"),
        embeddings: out.embeddings,
    };

    // Round-trip through the on-disk format so the bench measures exactly
    // what a deployed server would load.
    let path = std::path::Path::new("target/serve_latency_artifact.bin");
    artifact.save(path).expect("save artifact");
    let artifact = Artifact::load(path).expect("load artifact");

    let mut server =
        BatchServer::from_artifact(&artifact, data.graph.clone(), data.features.clone())
            .expect("server from artifact");
    let opts = BenchOptions {
        rounds: sizing.rounds,
        ..BenchOptions::default() // batch sizes {1, 32, 256}
    };
    let mut rng = SeedRng::new(SEED ^ 0x5e7e);
    let reports = run_latency_bench(&mut server, &opts, &mut rng);

    println!(
        "{:>6} {:>7} {:>11} {:>11} {:>11} {:>11} {:>12}",
        "batch", "rounds", "p50(us)", "p95(us)", "p99(us)", "mean(us)", "qps"
    );
    for r in &reports {
        println!(
            "{:>6} {:>7} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>12.0}",
            r.batch_size,
            r.rounds,
            r.latency.p50_us,
            r.latency.p95_us,
            r.latency.p99_us,
            r.latency.mean_us,
            r.throughput_qps
        );
    }

    // Overload: bounded queue, deadlines, and a seed-scoped fault plan,
    // saturated past capacity (the PR 6 `overload` schema, kept intact).
    let runtime = RuntimeConfig {
        queue_capacity: 32,
        high_water: 32,
        ..RuntimeConfig::default()
    };
    let plan = ServeFaultPlan {
        only_seed: Some(artifact.meta.seed),
        inductive_fail_every: 7,
        inductive_fail_attempts: 0,
        ..ServeFaultPlan::default()
    };
    let mut overload_server = BatchServer::from_artifact(&artifact, data.graph, data.features)
        .expect("overload server from artifact")
        .with_runtime(runtime)
        .with_fault_plan(plan);
    let overload_opts = OverloadOptions {
        rounds: sizing.overload_rounds,
        ..OverloadOptions::default()
    };
    let mut overload_rng = SeedRng::new(SEED ^ 0x0e4e);
    let overload = run_overload_bench(&mut overload_server, &overload_opts, &mut overload_rng);
    println!(
        "overload: offered {} admitted {} shed(overload) {} shed(deadline) {} degraded {}",
        overload.offered,
        overload.admitted,
        overload.shed_overload,
        overload.shed_deadline,
        overload.degraded
    );

    // ---- retrieval tier: ann + loadgen over a clustered large store ----
    println!(
        "retrieval tier: generating {} x {} clustered store ({} communities)...",
        sizing.rows, sizing.dim, sizing.clusters
    );
    let t = Instant::now();
    let store = clustered_store(sizing.rows, sizing.dim, sizing.clusters, SEED);
    println!("  generated in {:.1}s", t.elapsed().as_secs_f64());
    let t = Instant::now();
    let index = IvfIndex::build(&store, sizing.index).expect("ivf build");
    let build_secs = t.elapsed().as_secs_f64();
    println!(
        "  ivf built in {build_secs:.1}s: {} lists, nprobe {}",
        index.nlist(),
        index.nprobe()
    );
    let mut ann = ann_section(&store, &index, &sizing);
    ann.build_secs = build_secs;
    println!(
        "  ann: recall@{} {:.4} over {} queries; p50 brute {:.0} us vs ivf {:.0} us \
         ({:.1}x), ivf p99 {:.0} us",
        ann.k,
        ann.recall_at_k,
        ann.queries,
        ann.brute.p50_us,
        ann.ivf.p50_us,
        ann.p50_speedup,
        ann.ivf.p99_us
    );

    // A generous coalescing window: a batch's probes reuse the cache-hot
    // centroid matrix, so per-request service cost *drops* as rungs get
    // denser — and 1 ms of added wait is noise against the 10 ms budget.
    let scheduler = SchedulerConfig {
        max_batch: 64,
        max_wait_us: 1_000,
    };
    let mut retrieval_server = BatchServer::new(store)
        .with_index(index)
        .expect("index matches the store it was built from");
    let base = LoadGenOptions {
        requests: sizing.requests,
        seed: SEED ^ 0x10ad,
        ..LoadGenOptions::default()
    };
    println!(
        "  loadgen ladder {:?} ({} requests per rung)...",
        sizing.ladder, sizing.requests
    );
    let sustained = find_max_sustainable(
        &mut retrieval_server,
        scheduler,
        &base,
        &sizing.ladder,
        CONTRACT_P99_US,
        0.9,
        2,
    );
    for s in &sustained.steps {
        println!(
            "    target {:>8.0} qps: achieved {:>8.0} qps, p99 {:>8.1} us, \
             mean batch {:>5.1}, {}",
            s.target_qps,
            s.achieved_qps,
            s.latency.p99_us,
            s.mean_batch,
            if s.sustained(CONTRACT_P99_US, 0.9) {
                "sustained"
            } else {
                "NOT sustained"
            }
        );
    }
    println!(
        "  max sustained: {:.0} qps (p99 budget {:.0} us)",
        sustained.max_sustained_qps, CONTRACT_P99_US
    );
    let loadgen = LoadgenSection {
        store_rows: sizing.rows,
        embedding_dim: sizing.dim,
        index: sizing.index,
        scheduler,
        sustained,
    };

    let dump = ServeBenchDump {
        name: "serve_latency".to_string(),
        mode: mode.to_string(),
        model: artifact.meta.model.clone(),
        dataset: artifact.meta.dataset.clone(),
        num_nodes: artifact.embeddings.rows(),
        store_rows: artifact.embeddings.rows(),
        embedding_dim: artifact.embeddings.cols(),
        batches: reports,
        overload,
        ann,
        loadgen,
    };
    report::write_json(
        if quick {
            "serve_latency_quick"
        } else {
            "serve_latency"
        },
        &dump,
    );

    if quick {
        if let Err(e) = check_committed_baseline("BENCH_serve.json") {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
        println!("quick-mode checks passed (both tiers ran; BENCH_serve.json ok)");
    } else {
        match serde_json::to_string_pretty(&dump) {
            Ok(json) => match std::fs::write("BENCH_serve.json", json) {
                Ok(()) => println!("[results written to BENCH_serve.json]"),
                Err(e) => eprintln!("writing BENCH_serve.json: {e}"),
            },
            Err(e) => eprintln!("serialising BENCH_serve.json: {e}"),
        }
    }
}
