//! Fig. 3: accuracy-vs-training-time curves on Cora and Citeseer for E²GCL
//! and the strongest baselines. Total time includes selection and view
//! generation; the E²GCL curve should rise faster and plateau higher.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin fig3 --release -- --profile quick
//! ```

use e2gcl::pipeline::accuracy_time_curve;
use e2gcl::prelude::*;
use e2gcl_bench::report::{CellOutcome, SweepSummary};
use e2gcl_bench::{registry, report, Profile};
use serde::Serialize;

#[derive(Serialize)]
struct Curve {
    model: String,
    dataset: String,
    points: Vec<(f64, f32)>,
}

fn main() {
    let profile = Profile::from_args();
    println!(
        "Fig. 3 reproduction — accuracy-time curves (profile: {})",
        profile.name
    );
    let models = {
        let mut m = registry::strong_baseline_names();
        m.push("E2GCL");
        m
    };
    let mut json = Vec::new();
    let mut summary = SweepSummary::new();
    for dname in ["cora-sim", "citeseer-sim"] {
        let data = profile.dataset(dname, 400);
        println!("\n--- {dname} ({} nodes) ---", data.num_nodes());
        let cfg = TrainConfig {
            checkpoint_every: Some((profile.epochs / 8).max(1)),
            ..profile.train_config()
        };
        for model_name in &models {
            let model = registry::model(model_name).expect("figure names are registered");
            let label = format!("{model_name}/{dname}");
            let curve = match accuracy_time_curve(model.as_ref(), &data, &cfg, 1) {
                Ok(curve) => {
                    summary.record(&label, CellOutcome::Ok);
                    curve
                }
                Err(err) => {
                    summary.record(&label, CellOutcome::Failed(err.to_string()));
                    println!("{model_name:<8} FAILED: {err}");
                    continue;
                }
            };
            print!("{model_name:<8}");
            for (t, a) in &curve {
                print!(" ({t:.2}s,{:.1}%)", 100.0 * a);
            }
            println!();
            json.push(Curve {
                model: model_name.to_string(),
                dataset: dname.to_string(),
                points: curve,
            });
        }
        // Shape: at its own final time, E2GCL should be at or above every
        // baseline's accuracy at a comparable or later time.
        let e2gcl_final = json
            .iter()
            .filter(|c| c.dataset == dname && c.model == "E2GCL")
            .filter_map(|c| c.points.last())
            .map(|&(t, a)| (t, a))
            .next();
        if let Some((t_e, a_e)) = e2gcl_final {
            let best_baseline = json
                .iter()
                .filter(|c| c.dataset == dname && c.model != "E2GCL")
                .filter_map(|c| c.points.last())
                .map(|&(_, a)| a)
                .fold(f32::NEG_INFINITY, f32::max);
            println!(
                "[shape] {dname}: E2GCL final {:.2}% at {t_e:.2}s vs best baseline final {:.2}%",
                100.0 * a_e,
                100.0 * best_baseline
            );
        }
    }
    summary.print();
    report::write_json("fig3", &json);
}
