//! Fig. 4(b): cluster-number sweep — normalised accuracy, selection time and
//! total time as n_c varies, on Computers and Arxiv. The paper's shape:
//! selection time rises with n_c while accuracy and total time barely move.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin fig4b --release -- --profile quick
//! ```

use e2gcl::pipeline::run_node_classification;
use e2gcl::prelude::*;
use e2gcl_bench::report::{outcome_of, CellOutcome, SweepSummary};
use e2gcl_bench::{report, Profile};
use e2gcl_selector::greedy::GreedyConfig;

fn main() {
    let profile = Profile::from_args();
    println!(
        "Fig. 4(b) reproduction — cluster-number sweep (profile: {})",
        profile.name
    );
    let cluster_counts = [30usize, 60, 90, 120, 180];
    let cfg = profile.train_config();
    let datasets = [
        profile.dataset("computers-sim", 501),
        profile.large_dataset("arxiv-sim", 502),
    ];
    for data in &datasets {
        println!("\n--- {} ({} nodes) ---", data.name, data.num_nodes());
        let mut raw: Vec<(usize, f32, f64, f64)> = Vec::new();
        let mut summary = SweepSummary::new();
        for &nc in &cluster_counts {
            let model = E2gclModel::new(E2gclConfig {
                selector: SelectorKind::Greedy(GreedyConfig {
                    num_clusters: nc,
                    sample_size: 300,
                    ..Default::default()
                }),
                ..Default::default()
            });
            let label = format!("n_c={nc}/{}", data.name);
            match run_node_classification(&model, data, &cfg, 1, 0) {
                Ok(run) if !run.accuracies.is_empty() => {
                    summary.record(&label, outcome_of(&run));
                    raw.push((nc, run.mean, run.selection_secs, run.total_secs));
                }
                Ok(run) => summary.record(&label, outcome_of(&run)),
                Err(err) => summary.record(&label, CellOutcome::Failed(err.to_string())),
            }
            eprintln!("  done: n_c = {nc}");
        }
        // Normalise by the first variant, as the paper does.
        if raw.is_empty() {
            summary.print();
            println!("every cell on {} failed; no curve to print", data.name);
            continue;
        }
        let base = raw[0];
        let points: Vec<(f64, Vec<f32>)> = raw
            .iter()
            .map(|&(nc, acc, st, tt)| {
                (
                    nc as f64,
                    vec![
                        acc / base.1,
                        (st / base.2.max(1e-9)) as f32,
                        (tt / base.3.max(1e-9)) as f32,
                    ],
                )
            })
            .collect();
        report::print_series(
            &format!("Fig. 4(b) on {}: normalised vs n_c", data.name),
            "n_c",
            &["accuracy", "selection", "total"],
            &points,
        );
        summary.print();
        report::write_json(&format!("fig4b-{}", data.name), &points);
    }
}
