//! Fig. 4(e): perturbation-scale sweep η̂, η̃ on Cora. The paper's shape: an
//! inverted U — mild perturbation of unimportant features helps, heavy
//! perturbation destroys important features.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin fig4e --release -- --profile quick
//! ```

use e2gcl::pipeline::run_node_classification;
use e2gcl::prelude::*;
use e2gcl_bench::{report, Profile};

fn main() {
    let profile = Profile::from_args();
    println!("Fig. 4(e) reproduction — η sweep on cora-sim (profile: {})", profile.name);
    let etas = [0.0f32, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4];
    let data = profile.dataset("cora-sim", 506);
    let cfg = profile.train_config();
    let mut points = Vec::new();
    for &eta in &etas {
        let model = E2gclModel::new(E2gclConfig {
            eta_hat: eta,
            eta_tilde: eta,
            ..Default::default()
        });
        let run = run_node_classification(&model, &data, &cfg, profile.runs.min(2), 0);
        points.push((eta as f64, vec![100.0 * run.mean]));
        eprintln!("  done: η = {eta}");
    }
    report::print_series("Fig. 4(e): accuracy % vs η", "eta", &["cora-sim"], &points);
    let peak = points
        .iter()
        .max_by(|a, b| a.1[0].partial_cmp(&b.1[0]).unwrap())
        .unwrap();
    println!(
        "[shape] peak at η = {} ({:.2}%); endpoints: η=0 {:.2}%, η=1.4 {:.2}%",
        peak.0,
        peak.1[0],
        points[0].1[0],
        points.last().unwrap().1[0]
    );
    report::write_json("fig4e", &points);
}
