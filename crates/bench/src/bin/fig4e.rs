//! Fig. 4(e): perturbation-scale sweep η̂, η̃ on Cora. The paper's shape: an
//! inverted U — mild perturbation of unimportant features helps, heavy
//! perturbation destroys important features.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin fig4e --release -- --profile quick
//! ```

use e2gcl::pipeline::run_node_classification;
use e2gcl::prelude::*;
use e2gcl_bench::report::{outcome_of, CellOutcome, SweepSummary};
use e2gcl_bench::{report, Profile};

fn main() {
    let profile = Profile::from_args();
    println!(
        "Fig. 4(e) reproduction — η sweep on cora-sim (profile: {})",
        profile.name
    );
    let etas = [0.0f32, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4];
    let data = profile.dataset("cora-sim", 506);
    let cfg = profile.train_config();
    let mut points = Vec::new();
    let mut summary = SweepSummary::new();
    for &eta in &etas {
        let model = E2gclModel::new(E2gclConfig {
            eta_hat: eta,
            eta_tilde: eta,
            ..Default::default()
        });
        let label = format!("eta={eta}/cora-sim");
        match run_node_classification(&model, &data, &cfg, profile.runs.min(2), 0) {
            Ok(run) if !run.accuracies.is_empty() => {
                summary.record(&label, outcome_of(&run));
                points.push((eta as f64, vec![100.0 * run.mean]));
            }
            Ok(run) => summary.record(&label, outcome_of(&run)),
            Err(err) => summary.record(&label, CellOutcome::Failed(err.to_string())),
        }
        eprintln!("  done: η = {eta}");
    }
    report::print_series("Fig. 4(e): accuracy % vs η", "eta", &["cora-sim"], &points);
    let Some(peak) = points.iter().max_by(|a, b| a.1[0].total_cmp(&b.1[0])) else {
        summary.print();
        println!("every cell failed; no curve to print");
        return;
    };
    println!(
        "[shape] peak at η = {} ({:.2}%); endpoints: η=0 {:.2}%, η=1.4 {:.2}%",
        peak.0,
        peak.1[0],
        points[0].1[0],
        points.last().unwrap().1[0]
    );
    summary.print();
    report::write_json("fig4e", &points);
}
