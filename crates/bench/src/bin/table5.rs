//! Table V: accuracy + selection time (ST) + total training time (TT) on
//! the two large graphs (arxiv-sim, products-sim).
//!
//! The headline *shapes* this regenerates: (1) E²GCL's ST is a small
//! fraction of TT; (2) E²GCL's TT undercuts every all-nodes baseline while
//! matching or beating their accuracy.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin table5 --release -- --profile quick
//! ```

use e2gcl::pipeline::run_node_classification;
use e2gcl_bench::report::{outcome_of, CellOutcome, SweepSummary};
use e2gcl_bench::{reference, registry, report, Profile};
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    model: String,
    dataset: String,
    accuracy: f32,
    selection_secs: f64,
    total_secs: f64,
    paper_accuracy: Option<f32>,
    paper_total_secs: Option<f32>,
}

fn main() {
    let profile = Profile::from_args();
    println!(
        "Table V reproduction — large graphs (profile: {}, large scale {})",
        profile.name, profile.large_scale
    );
    let datasets = [
        profile.large_dataset("arxiv-sim", 200),
        profile.large_dataset("products-sim", 201),
    ];
    for d in &datasets {
        println!(
            "  {}: {} nodes, {} edges",
            d.name,
            d.num_nodes(),
            d.graph.num_edges()
        );
    }
    let mut json = Vec::new();
    let mut summary = SweepSummary::new();
    println!(
        "\n{:<8} {:<14} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "model", "dataset", "acc %", "ST s", "TT s", "paper acc", "paper TT"
    );
    for (model_name, paper_arxiv, paper_products) in reference::table5() {
        for (d, paper) in datasets.iter().zip([&paper_arxiv, &paper_products]) {
            // Mirror the paper's "~" for MVGRL on Products: diffusion over a
            // dense 50k-node graph is exactly the blow-up the paper hit.
            if paper.is_none() && profile.name == "paper" {
                println!("{model_name:<8} {:<14} {:>10}", d.name, "~ (skipped)");
                continue;
            }
            let model = registry::model(model_name).expect("table names are registered");
            let label = format!("{model_name}/{}", d.name);
            let run = match run_node_classification(
                model.as_ref(),
                d,
                &profile.train_config(),
                profile.runs.min(2),
                0,
            ) {
                Ok(run) if !run.accuracies.is_empty() => {
                    summary.record(&label, outcome_of(&run));
                    run
                }
                Ok(run) => {
                    summary.record(&label, outcome_of(&run));
                    println!("{model_name:<8} {:<14} {:>10}", d.name, "FAILED");
                    continue;
                }
                Err(err) => {
                    summary.record(&label, CellOutcome::Failed(err.to_string()));
                    println!("{model_name:<8} {:<14} {:>10}", d.name, "FAILED");
                    continue;
                }
            };
            let (pa, pt) = match paper {
                Some((acc, _, tt)) => (Some(*acc), Some(*tt)),
                None => (None, None),
            };
            println!(
                "{model_name:<8} {:<14} {:>10.2} {:>10.2} {:>10.2} {:>12} {:>12}",
                d.name,
                100.0 * run.mean,
                run.selection_secs,
                run.total_secs,
                pa.map_or("~".into(), |v| format!("{v:.2}")),
                pt.map_or("~".into(), |v| format!("{v:.1}")),
            );
            json.push(Entry {
                model: model_name.to_string(),
                dataset: d.name.clone(),
                accuracy: 100.0 * run.mean,
                selection_secs: run.selection_secs,
                total_secs: run.total_secs,
                paper_accuracy: pa,
                paper_total_secs: pt,
            });
        }
    }
    // The two Table V shape checks, stated explicitly.
    let e2gcl: Vec<&Entry> = json.iter().filter(|e| e.model == "E2GCL").collect();
    for e in &e2gcl {
        let frac = e.selection_secs / e.total_secs.max(1e-9);
        println!(
            "\n[shape] E2GCL on {}: selection is {:.1}% of total training time",
            e.dataset,
            100.0 * frac
        );
    }
    for d in ["arxiv-sim", "products-sim"] {
        let ours = json.iter().find(|e| e.model == "E2GCL" && e.dataset == d);
        let slowest_baseline = json
            .iter()
            .filter(|e| e.model != "E2GCL" && e.dataset == d)
            .map(|e| e.total_secs)
            .fold(f64::NEG_INFINITY, f64::max);
        if let Some(o) = ours {
            println!(
                "[shape] E2GCL on {d}: TT {:.2}s vs slowest all-nodes baseline {:.2}s",
                o.total_secs, slowest_baseline
            );
        }
    }
    summary.print();
    report::write_json("table5", &json);
}
