//! Fig. 4(a): node-budget sweep — accuracy as the budget ratio r shrinks
//! from 1 to 2^-10 on the five small datasets. The paper's shape: a plateau
//! near the all-nodes accuracy followed by a drop, with the dense co-product
//! graphs (Photo, Computers) dropping hardest.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin fig4a --release -- --profile quick
//! ```

use e2gcl::pipeline::run_node_classification;
use e2gcl::prelude::*;
use e2gcl_bench::report::{outcome_of, CellOutcome, SweepSummary};
use e2gcl_bench::{reference, report, Profile};

fn main() {
    let profile = Profile::from_args();
    println!(
        "Fig. 4(a) reproduction — node budget sweep (profile: {})",
        profile.name
    );
    let ratios: Vec<f64> = if profile.name == "paper" {
        (0..=10).map(|i| 1.0 / f64::powi(2.0, i)).collect()
    } else {
        vec![1.0, 0.25, 1.0 / 16.0, 1.0 / 64.0, 1.0 / 256.0, 1.0 / 1024.0]
    };
    let cfg = profile.train_config();
    let mut points: Vec<(f64, Vec<f32>)> = Vec::new();
    let mut summary = SweepSummary::new();
    let datasets: Vec<NodeDataset> = reference::SMALL_DATASETS
        .iter()
        .map(|n| profile.dataset(n, 500))
        .collect();
    for &r in &ratios {
        let mut row = Vec::new();
        for data in &datasets {
            let model = E2gclModel::new(E2gclConfig {
                node_ratio: r,
                ..Default::default()
            });
            let label = format!("r={r}/{}", data.name);
            match run_node_classification(&model, data, &cfg, profile.runs.min(2), 0) {
                Ok(run) if !run.accuracies.is_empty() => {
                    summary.record(&label, outcome_of(&run));
                    row.push(100.0 * run.mean);
                }
                Ok(run) => {
                    summary.record(&label, outcome_of(&run));
                    row.push(f32::NAN);
                }
                Err(err) => {
                    summary.record(&label, CellOutcome::Failed(err.to_string()));
                    row.push(f32::NAN);
                }
            }
        }
        eprintln!("  done: r = {r}");
        points.push((r, row));
    }
    report::print_series(
        "Fig. 4(a): accuracy % vs node ratio r",
        "r",
        &reference::SMALL_DATASETS,
        &points,
    );
    // Shape check: accuracy at the largest ratio beats the smallest.
    for (di, name) in reference::SMALL_DATASETS.iter().enumerate() {
        let first = points.first().unwrap().1[di];
        let last = points.last().unwrap().1[di];
        println!(
            "[shape] {name}: r=1 gives {first:.2}%, r={:.4} gives {last:.2}%",
            ratios.last().unwrap()
        );
    }
    summary.print();
    report::write_json("fig4a", &points);
}
