//! Table VIII: view-generator ablation — uniform vs edge-aware vs
//! feature-aware vs both (the paper's \F\S, \S, \F, full rows).
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin table8 --release -- --profile quick
//! ```

use e2gcl::prelude::*;
use e2gcl_bench::{e2gcl_ablation_table, reference, Profile};

fn main() {
    let profile = Profile::from_args();
    println!(
        "Table VIII reproduction — view-generator ablation (profile: {})",
        profile.name
    );
    let with = |strategy: ViewStrategy| {
        E2gclModel::new(E2gclConfig {
            strategy,
            ..Default::default()
        })
    };
    let variants = vec![
        ("E2GCL\\F\\S".to_string(), with(ViewStrategy::Uniform)),
        ("E2GCL\\S".to_string(), with(ViewStrategy::UniformEdges)),
        ("E2GCL\\F".to_string(), with(ViewStrategy::UniformFeatures)),
        ("E2GCL".to_string(), with(ViewStrategy::Importance)),
    ];
    e2gcl_ablation_table(
        &profile,
        "Table VIII: view-generator ablation, accuracy % — measured (paper)",
        &variants,
        &reference::table8(),
        "table8",
    );
}
