//! Appendix-B4-style visualisation of the selected coreset: project the raw
//! aggregates `R = A_n^L X` to 2-D with PCA and render an ASCII density map
//! of all nodes with the selected nodes overlaid — the textual equivalent of
//! the technique report's t-SNE scatter (selected nodes should cover every
//! region of the cloud, not just the dense core).
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin visualize_selection --release
//! ```

use e2gcl::prelude::*;
use e2gcl_bench::Profile;
use e2gcl_graph::norm;
use e2gcl_linalg::pca;
use e2gcl_selector::baselines::RandomSelector;
use e2gcl_selector::greedy::GreedySelector;
use e2gcl_selector::NodeSelector;

const W: usize = 64;
const H: usize = 24;

fn render(title: &str, proj: &Matrix, selected: &[usize]) {
    let xs: Vec<f32> = (0..proj.rows()).map(|v| proj.get(v, 0)).collect();
    let ys: Vec<f32> = (0..proj.rows()).map(|v| proj.get(v, 1)).collect();
    let (x_lo, x_hi) = (
        xs.iter().cloned().fold(f32::INFINITY, f32::min),
        xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
    );
    let (y_lo, y_hi) = (
        ys.iter().cloned().fold(f32::INFINITY, f32::min),
        ys.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
    );
    let cell = |x: f32, y: f32| -> (usize, usize) {
        let cx = (((x - x_lo) / (x_hi - x_lo).max(1e-9)) * (W as f32 - 1.0)) as usize;
        let cy = (((y - y_lo) / (y_hi - y_lo).max(1e-9)) * (H as f32 - 1.0)) as usize;
        (cx.min(W - 1), cy.min(H - 1))
    };
    let mut grid = vec![[0usize; 2]; W * H]; // [population, selected]
    for v in 0..proj.rows() {
        let (cx, cy) = cell(xs[v], ys[v]);
        grid[cy * W + cx][0] += 1;
    }
    for &v in selected {
        let (cx, cy) = cell(xs[v], ys[v]);
        grid[cy * W + cx][1] += 1;
    }
    println!("\n{title}  ('.'/':'/'+' node density, '#' contains selected)");
    for row in 0..H {
        let mut line = String::with_capacity(W);
        for col in 0..W {
            let [pop, sel] = grid[row * W + col];
            line.push(match (pop, sel) {
                (_, s) if s > 0 => '#',
                (0, _) => ' ',
                (1..=2, _) => '.',
                (3..=6, _) => ':',
                _ => '+',
            });
        }
        println!("  {line}");
    }
    // Coverage metric: fraction of populated cells containing a selection.
    let populated = grid.iter().filter(|c| c[0] > 0).count();
    let covered = grid.iter().filter(|c| c[0] > 0 && c[1] > 0).count();
    println!(
        "  coverage: {covered}/{populated} populated cells contain a selected node ({:.1}%)",
        100.0 * covered as f64 / populated.max(1) as f64
    );
}

fn main() {
    let profile = Profile::from_args();
    let data = profile.dataset("cora-sim", 900);
    println!(
        "selection visualisation on {} ({} nodes), budget r = 0.1",
        data.name,
        data.num_nodes()
    );
    let repr = norm::raw_aggregate(&data.graph, &data.features, 2);
    let mut rng = SeedRng::new(0);
    let proj = pca::pca_project(&repr, 2, 50, &mut rng);
    let budget = data.num_nodes() / 10;
    let ours =
        GreedySelector::default().select(&data.graph, &data.features, budget, &mut SeedRng::new(1));
    let random = RandomSelector.select(&data.graph, &data.features, budget, &mut SeedRng::new(1));
    render("Alg. 2 greedy coreset", &proj, &ours.nodes);
    render("Random selection (same budget)", &proj, &random.nodes);
}
