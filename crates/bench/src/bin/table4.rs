//! Table IV: node-classification accuracy of every model on the five small
//! datasets, measured vs the paper's reported values.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin table4 --release -- --profile quick
//! ```

use e2gcl::pipeline::run_node_classification;
use e2gcl::{eval, prelude::*};
use e2gcl_bench::report::{outcome_of, print_table, write_json, Cell, CellOutcome, SweepSummary};
use e2gcl_bench::{reference, registry, Profile};
use e2gcl_linalg::stats;
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    model: String,
    dataset: String,
    mean: f32,
    std: f32,
    paper: f32,
}

fn main() {
    let profile = Profile::from_args();
    println!(
        "Table IV reproduction — node classification (profile: {}, scale {}, {} epochs, {} runs)",
        profile.name, profile.scale, profile.epochs, profile.runs
    );
    let datasets: Vec<NodeDataset> = reference::SMALL_DATASETS
        .iter()
        .map(|n| profile.dataset(n, 100))
        .collect();
    let paper_rows = reference::table4();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut summary = SweepSummary::new();

    for (model_name, paper_vals) in &paper_rows {
        let mut cells = Vec::new();
        for (di, data) in datasets.iter().enumerate() {
            let label = format!("{model_name}/{}", data.name);
            let outcome = match *model_name {
                "MLP" => {
                    let accs: Vec<f32> = (0..profile.runs)
                        .map(|r| {
                            eval::supervised_mlp_accuracy(
                                &data.features,
                                &data.labels,
                                data.num_classes,
                                &profile.train_config(),
                                r as u64,
                            )
                        })
                        .collect();
                    Ok(stats::mean_std(&accs))
                }
                "GCN" => {
                    let accs: Vec<f32> = (0..profile.runs)
                        .map(|r| {
                            eval::supervised_gcn_accuracy(
                                &data.graph,
                                &data.features,
                                &data.labels,
                                data.num_classes,
                                &profile.train_config(),
                                r as u64,
                            )
                        })
                        .collect();
                    Ok(stats::mean_std(&accs))
                }
                name => {
                    let model = registry::model(name).expect("table names are registered");
                    let cfg = if registry::is_walk_model(name) {
                        profile.walk_config()
                    } else {
                        profile.train_config()
                    };
                    match run_node_classification(model.as_ref(), data, &cfg, profile.runs, 0) {
                        Ok(run) if !run.accuracies.is_empty() => {
                            summary.record(&label, outcome_of(&run));
                            Ok((run.mean, run.std))
                        }
                        Ok(run) => {
                            summary.record(&label, outcome_of(&run));
                            Err(())
                        }
                        Err(err) => {
                            summary.record(&label, CellOutcome::Failed(err.to_string()));
                            Err(())
                        }
                    }
                }
            };
            match outcome {
                Ok((mean, std)) => {
                    cells.push(Cell::vs(100.0 * mean, 100.0 * std, paper_vals[di]));
                    json.push(Entry {
                        model: model_name.to_string(),
                        dataset: data.name.clone(),
                        mean: 100.0 * mean,
                        std: 100.0 * std,
                        paper: paper_vals[di],
                    });
                }
                Err(()) => cells.push(Cell::failed()),
            }
            eprintln!("  done: {model_name} on {}", data.name);
        }
        rows.push((model_name.to_string(), cells));
    }
    print_table(
        "Table IV: accuracy % — measured (paper)",
        &reference::SMALL_DATASETS,
        &rows,
    );
    summary.print();
    write_json("table4", &json);
}
