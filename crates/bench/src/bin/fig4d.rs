//! Fig. 4(d): neighbour-ratio sweep τ̂, τ̃ on Cora. The paper's shape: an
//! inverted U — too few sampled neighbours lose locality, too many add
//! noise.
//!
//! ```sh
//! cargo run -p e2gcl-bench --bin fig4d --release -- --profile quick
//! ```

use e2gcl::pipeline::run_node_classification;
use e2gcl::prelude::*;
use e2gcl_bench::report::{outcome_of, CellOutcome, SweepSummary};
use e2gcl_bench::{report, Profile};

fn main() {
    let profile = Profile::from_args();
    println!(
        "Fig. 4(d) reproduction — τ sweep on cora-sim (profile: {})",
        profile.name
    );
    let taus = [0.0f32, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4];
    let data = profile.dataset("cora-sim", 505);
    let cfg = profile.train_config();
    let mut points = Vec::new();
    let mut summary = SweepSummary::new();
    for &tau in &taus {
        let model = E2gclModel::new(E2gclConfig {
            tau_hat: tau,
            tau_tilde: tau,
            ..Default::default()
        });
        let label = format!("tau={tau}/cora-sim");
        match run_node_classification(&model, &data, &cfg, profile.runs.min(2), 0) {
            Ok(run) if !run.accuracies.is_empty() => {
                summary.record(&label, outcome_of(&run));
                points.push((tau as f64, vec![100.0 * run.mean]));
            }
            Ok(run) => summary.record(&label, outcome_of(&run)),
            Err(err) => summary.record(&label, CellOutcome::Failed(err.to_string())),
        }
        eprintln!("  done: τ = {tau}");
    }
    report::print_series("Fig. 4(d): accuracy % vs τ", "tau", &["cora-sim"], &points);
    let Some(peak) = points.iter().max_by(|a, b| a.1[0].total_cmp(&b.1[0])) else {
        summary.print();
        println!("every cell failed; no curve to print");
        return;
    };
    println!(
        "[shape] peak at τ = {} ({:.2}%); endpoints: τ=0 {:.2}%, τ=1.4 {:.2}%",
        peak.0,
        peak.1[0],
        points[0].1[0],
        points.last().unwrap().1[0]
    );
    summary.print();
    report::write_json("fig4d", &points);
}
