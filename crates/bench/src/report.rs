//! Output helpers: aligned comparison tables + JSON result files, plus the
//! per-cell outcome bookkeeping that keeps a sweep alive when individual
//! runs diverge.

use e2gcl::pipeline::{GraphClassificationRun, NodeClassificationRun};
use serde::Serialize;
use std::io::Write;

/// One measured cell next to its paper reference.
#[derive(Clone, Debug, Serialize)]
pub struct Cell {
    /// Our measured mean (%) or value.
    pub measured: f32,
    /// Our measured std, if applicable.
    pub std: Option<f32>,
    /// The paper's reported value, if applicable.
    pub paper: Option<f32>,
    /// True when every run of the cell failed; renders as `FAILED`.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub failed: bool,
}

impl Cell {
    /// A measured-only cell.
    pub fn measured(measured: f32) -> Cell {
        Cell {
            measured,
            std: None,
            paper: None,
            failed: false,
        }
    }

    /// Measured ± std against a paper value.
    pub fn vs(measured: f32, std: f32, paper: f32) -> Cell {
        Cell {
            measured,
            std: Some(std),
            paper: Some(paper),
            failed: false,
        }
    }

    /// A cell whose every run failed.
    pub fn failed() -> Cell {
        Cell {
            measured: f32::NAN,
            std: None,
            paper: None,
            failed: true,
        }
    }

    fn render(&self) -> String {
        if self.failed {
            return "FAILED".to_string();
        }
        let mut s = match self.std {
            Some(std) => format!("{:5.2}±{:4.2}", self.measured, std),
            None => format!("{:8.2}", self.measured),
        };
        if let Some(p) = self.paper {
            s.push_str(&format!(" ({p:5.2})"));
        }
        s
    }
}

/// Outcome of one sweep cell (one model on one dataset).
#[derive(Clone, Debug, Serialize)]
pub enum CellOutcome {
    /// Every run finished.
    Ok,
    /// Some runs diverged (and were recorded, not retried into success);
    /// the cell's aggregate covers the surviving runs.
    Diverged {
        /// How many runs failed.
        failed_runs: usize,
    },
    /// No run survived, or the cell never produced a result.
    Failed(String),
}

/// Classifies a node-classification sweep cell.
pub fn outcome_of(run: &NodeClassificationRun) -> CellOutcome {
    outcome_from_counts(run.accuracies.len(), &run.failed_runs)
}

/// Classifies a graph-classification sweep cell.
pub fn graph_outcome_of(run: &GraphClassificationRun) -> CellOutcome {
    outcome_from_counts(run.accuracies.len(), &run.failed_runs)
}

fn outcome_from_counts(ok_runs: usize, failed: &[(u64, e2gcl::TrainError)]) -> CellOutcome {
    if failed.is_empty() {
        CellOutcome::Ok
    } else if ok_runs == 0 {
        let (seed, err) = &failed[0];
        CellOutcome::Failed(format!("all runs failed; first (seed {seed}): {err}"))
    } else {
        CellOutcome::Diverged {
            failed_runs: failed.len(),
        }
    }
}

/// Collects per-cell outcomes across a sweep so the binaries can finish the
/// whole grid and report problems at the end instead of aborting.
#[derive(Clone, Debug, Default, Serialize)]
pub struct SweepSummary {
    cells: Vec<(String, CellOutcome)>,
}

impl SweepSummary {
    /// An empty summary.
    pub fn new() -> SweepSummary {
        SweepSummary::default()
    }

    /// Records the outcome of one cell, e.g. `record("GRACE/cora-sim", ...)`.
    pub fn record(&mut self, label: impl Into<String>, outcome: CellOutcome) {
        self.cells.push((label.into(), outcome));
    }

    /// True if any cell diverged or failed.
    pub fn has_problems(&self) -> bool {
        self.cells
            .iter()
            .any(|(_, o)| !matches!(o, CellOutcome::Ok))
    }

    /// Prints the failure summary (or a clean bill of health).
    pub fn print(&self) {
        let problems: Vec<_> = self
            .cells
            .iter()
            .filter(|(_, o)| !matches!(o, CellOutcome::Ok))
            .collect();
        if problems.is_empty() {
            println!(
                "[all {} cells completed without numeric failures]",
                self.cells.len()
            );
            return;
        }
        println!(
            "
=== failure summary ({} of {} cells affected) ===",
            problems.len(),
            self.cells.len()
        );
        for (label, outcome) in problems {
            match outcome {
                CellOutcome::Diverged { failed_runs } => {
                    println!("  {label}: {failed_runs} run(s) diverged; aggregate uses the rest")
                }
                CellOutcome::Failed(reason) => println!("  {label}: FAILED — {reason}"),
                CellOutcome::Ok => unreachable!(),
            }
        }
    }
}

/// Prints an aligned table: one row per model, one column per dataset.
/// Paper values appear in parentheses.
pub fn print_table(title: &str, columns: &[&str], rows: &[(String, Vec<Cell>)]) {
    println!("\n=== {title} ===");
    print!("{:<14}", "");
    for c in columns {
        print!("{c:>20}");
    }
    println!();
    for (name, cells) in rows {
        print!("{name:<14}");
        for cell in cells {
            print!("{:>20}", cell.render());
        }
        println!();
    }
    println!("(parenthesised values are the paper's; see EXPERIMENTS.md)");
}

/// Prints an `(x, series...)` block — the textual form of a figure.
pub fn print_series(title: &str, x_label: &str, series_names: &[&str], points: &[(f64, Vec<f32>)]) {
    println!("\n=== {title} ===");
    print!("{x_label:>12}");
    for s in series_names {
        print!("{s:>14}");
    }
    println!();
    for (x, ys) in points {
        print!("{x:>12.4}");
        for y in ys {
            print!("{y:>14.4}");
        }
        println!();
    }
}

/// Writes any serialisable result to `target/bench-results/<name>.json` so
/// downstream tooling can re-plot without re-running.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("target/bench-results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(
            serde_json::to_string_pretty(value)
                .unwrap_or_default()
                .as_bytes(),
        );
        println!("[results written to {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_rendering() {
        assert_eq!(Cell::measured(81.5).render(), "   81.50");
        let c = Cell::vs(81.53, 0.42, 84.06);
        assert!(c.render().contains("81.53"));
        assert!(c.render().contains("84.06"));
        assert_eq!(Cell::failed().render(), "FAILED");
    }

    #[test]
    fn sweep_summary_classifies_cells() {
        let mut s = SweepSummary::new();
        s.record("a", CellOutcome::Ok);
        assert!(!s.has_problems());
        s.record("b", CellOutcome::Diverged { failed_runs: 1 });
        s.record("c", CellOutcome::Failed("boom".into()));
        assert!(s.has_problems());
        s.print();
    }

    #[test]
    fn outcomes_follow_run_counts() {
        use e2gcl::TrainError;
        let failed = vec![(3u64, TrainError::NonFiniteLoss { epoch: 1 })];
        assert!(matches!(outcome_from_counts(2, &[]), CellOutcome::Ok));
        assert!(matches!(
            outcome_from_counts(1, &failed),
            CellOutcome::Diverged { failed_runs: 1 }
        ));
        match outcome_from_counts(0, &failed) {
            CellOutcome::Failed(reason) => assert!(reason.contains("seed 3"), "{reason}"),
            other => panic!("wrong outcome {other:?}"),
        }
    }

    #[test]
    fn write_json_roundtrip() {
        #[derive(Serialize)]
        struct T {
            a: u32,
        }
        write_json("unit-test", &T { a: 3 });
        let s = std::fs::read_to_string("target/bench-results/unit-test.json");
        if let Ok(s) = s {
            assert!(s.contains("\"a\": 3"));
        }
    }
}
