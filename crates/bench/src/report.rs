//! Output helpers: aligned comparison tables + JSON result files.

use serde::Serialize;
use std::io::Write;

/// One measured cell next to its paper reference.
#[derive(Clone, Debug, Serialize)]
pub struct Cell {
    /// Our measured mean (%) or value.
    pub measured: f32,
    /// Our measured std, if applicable.
    pub std: Option<f32>,
    /// The paper's reported value, if applicable.
    pub paper: Option<f32>,
}

impl Cell {
    /// A measured-only cell.
    pub fn measured(measured: f32) -> Cell {
        Cell { measured, std: None, paper: None }
    }

    /// Measured ± std against a paper value.
    pub fn vs(measured: f32, std: f32, paper: f32) -> Cell {
        Cell { measured, std: Some(std), paper: Some(paper) }
    }

    fn render(&self) -> String {
        let mut s = match self.std {
            Some(std) => format!("{:5.2}±{:4.2}", self.measured, std),
            None => format!("{:8.2}", self.measured),
        };
        if let Some(p) = self.paper {
            s.push_str(&format!(" ({p:5.2})"));
        }
        s
    }
}

/// Prints an aligned table: one row per model, one column per dataset.
/// Paper values appear in parentheses.
pub fn print_table(title: &str, columns: &[&str], rows: &[(String, Vec<Cell>)]) {
    println!("\n=== {title} ===");
    print!("{:<14}", "");
    for c in columns {
        print!("{c:>20}");
    }
    println!();
    for (name, cells) in rows {
        print!("{name:<14}");
        for cell in cells {
            print!("{:>20}", cell.render());
        }
        println!();
    }
    println!("(parenthesised values are the paper's; see EXPERIMENTS.md)");
}

/// Prints an `(x, series...)` block — the textual form of a figure.
pub fn print_series(title: &str, x_label: &str, series_names: &[&str], points: &[(f64, Vec<f32>)]) {
    println!("\n=== {title} ===");
    print!("{x_label:>12}");
    for s in series_names {
        print!("{s:>14}");
    }
    println!();
    for (x, ys) in points {
        print!("{x:>12.4}");
        for y in ys {
            print!("{y:>14.4}");
        }
        println!();
    }
}

/// Writes any serialisable result to `target/bench-results/<name>.json` so
/// downstream tooling can re-plot without re-running.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("target/bench-results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(
            serde_json::to_string_pretty(value).unwrap_or_default().as_bytes(),
        );
        println!("[results written to {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_rendering() {
        assert_eq!(Cell::measured(81.5).render(), "   81.50");
        let c = Cell::vs(81.53, 0.42, 84.06);
        assert!(c.render().contains("81.53"));
        assert!(c.render().contains("84.06"));
    }

    #[test]
    fn write_json_roundtrip() {
        #[derive(Serialize)]
        struct T {
            a: u32,
        }
        write_json("unit-test", &T { a: 3 });
        let s = std::fs::read_to_string("target/bench-results/unit-test.json");
        if let Ok(s) = s {
            assert!(s.contains("\"a\": 3"));
        }
    }
}
