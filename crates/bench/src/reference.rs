//! The values the paper reports, transcribed from its tables.
//!
//! These are printed next to our measurements so every bench's output is a
//! direct paper-vs-reproduction comparison. Absolute values are *not*
//! expected to match (our datasets are synthetic analogs and our substrate
//! is a CPU Rust stack — see `DESIGN.md` §1); orderings and trends are.

/// Dataset column order of Tables IV and VI–VIII.
pub const SMALL_DATASETS: [&str; 5] = [
    "cora-sim",
    "citeseer-sim",
    "photo-sim",
    "computers-sim",
    "cs-sim",
];

/// Table IV node-classification accuracies (%), rows in paper order.
pub fn table4() -> Vec<(&'static str, [f32; 5])> {
    vec![
        ("MLP", [57.15, 57.98, 80.57, 76.04, 90.10]),
        ("GCN", [82.46, 70.93, 92.15, 86.15, 92.59]),
        ("DW", [72.93, 52.67, 88.10, 83.31, 81.94]),
        ("N2V", [71.61, 54.06, 87.85, 83.36, 83.25]),
        ("GAE", [78.35, 67.36, 90.61, 81.62, 89.77]),
        ("VGAE", [80.33, 70.89, 91.42, 84.26, 91.90]),
        ("DGI", [81.24, 70.46, 90.49, 82.31, 92.03]),
        ("BGRL", [79.52, 70.06, 91.35, 86.10, 90.07]),
        ("AFGRL", [81.94, 70.38, 92.23, 87.46, 93.04]),
        ("MVGRL", [82.36, 71.23, 90.98, 87.24, 92.36]),
        ("GRACE", [82.31, 70.65, 91.38, 86.74, 92.41]),
        ("GCA", [83.33, 71.47, 92.24, 87.36, 92.50]),
        ("E2GCL", [84.06, 71.86, 93.02, 88.92, 93.15]),
    ]
}

/// Table V: `(model, arxiv acc, arxiv ST, arxiv TT, products acc, ST, TT)`.
/// `None` marks the paper's "~" (did not converge within 3 days).
#[allow(clippy::type_complexity)]
pub fn table5() -> Vec<(
    &'static str,
    Option<(f32, Option<f32>, f32)>,
    Option<(f32, Option<f32>, f32)>,
)> {
    vec![
        (
            "AFGRL",
            Some((43.14, None, 7338.5)),
            Some((26.51, None, 147_923.2)),
        ),
        ("MVGRL", Some((43.95, None, 8246.2)), None),
        (
            "GRACE",
            Some((43.37, None, 7781.3)),
            Some((26.28, None, 208_261.9)),
        ),
        (
            "GCA",
            Some((44.76, None, 6292.9)),
            Some((26.91, None, 193_825.7)),
        ),
        (
            "E2GCL",
            Some((45.26, Some(70.5), 3106.8)),
            Some((27.21, Some(4219.2), 82_195.7)),
        ),
    ]
}

/// Table VI framework ablation accuracies (%).
pub fn table6() -> Vec<(&'static str, [f32; 5])> {
    vec![
        ("E2GCL_{A,U}", [82.89, 70.27, 88.15, 81.82, 92.02]),
        ("E2GCL_{S,U}", [83.26, 70.62, 87.71, 82.08, 92.27]),
        ("E2GCL_{A,I}", [83.91, 72.14, 93.11, 88.74, 93.02]),
        ("E2GCL_{S,I}", [84.06, 71.86, 93.02, 88.92, 93.15]),
    ]
}

/// Table VII selector-ablation accuracies (%).
pub fn table7() -> Vec<(&'static str, [f32; 5])> {
    vec![
        ("Random", [81.22, 67.71, 91.36, 87.05, 91.21]),
        ("Degree", [82.30, 68.61, 91.71, 87.39, 91.82]),
        ("KMeans", [82.49, 70.52, 92.30, 88.10, 92.10]),
        ("KCG", [82.61, 70.27, 92.46, 87.81, 92.32]),
        ("Grain", [83.21, 70.94, 92.65, 88.26, 92.64]),
        ("Ours", [84.06, 71.86, 93.02, 88.92, 93.15]),
    ]
}

/// Table VIII view-generator-ablation accuracies (%).
pub fn table8() -> Vec<(&'static str, [f32; 5])> {
    vec![
        ("E2GCL\\F\\S", [82.67, 70.40, 86.02, 81.52, 91.98]),
        ("E2GCL\\S", [82.81, 70.94, 88.79, 86.09, 92.61]),
        ("E2GCL\\F", [83.21, 71.30, 92.51, 88.41, 92.82]),
        ("E2GCL", [84.06, 71.86, 93.02, 88.92, 93.15]),
    ]
}

/// Table IX: link prediction (Photo/Computer/CS) and graph classification
/// (NCI1/PTC_MR/Proteins) accuracies (%).
pub fn table9() -> Vec<(&'static str, [f32; 3], [f32; 3])> {
    vec![
        ("AFGRL", [71.87, 72.95, 66.95], [74.79, 69.84, 76.77]),
        ("BGRL", [71.74, 72.30, 65.92], [74.12, 68.21, 76.12]),
        ("MVGRL", [71.49, 72.92, 66.61], [74.71, 69.21, 76.57]),
        ("GRACE", [71.71, 72.64, 66.45], [74.57, 68.88, 76.89]),
        ("GCA", [72.30, 73.21, 67.32], [75.13, 70.12, 76.96]),
        ("E2GCL", [72.41, 73.57, 67.66], [75.57, 70.55, 77.12]),
    ]
}

/// Fig. 2's claim, as data: each upgraded model strictly improves on its
/// original on both Cora and Computers (the paper plots curves; the
/// invariant is "blue line above red line").
pub fn fig2_pairs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("ADGCL", "ADGCL+FP+EA"),
        ("MVGRL", "MVGRL+FP"),
        ("GRACE", "GRACE+FP+EA"),
        ("GCA", "GCA+FP+EA"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_13_rows_and_e2gcl_wins_everywhere() {
        let t = table4();
        assert_eq!(t.len(), 13);
        let (last_name, e2gcl) = *t.last().unwrap();
        assert_eq!(last_name, "E2GCL");
        for (name, row) in &t[..12] {
            for c in 0..5 {
                assert!(e2gcl[c] > row[c], "E2GCL should beat {name} on col {c}");
            }
        }
    }

    #[test]
    fn ablation_tables_have_full_rows() {
        assert_eq!(table6().len(), 4);
        assert_eq!(table7().len(), 6);
        assert_eq!(table8().len(), 4);
        assert_eq!(table9().len(), 6);
        assert_eq!(table5().len(), 5);
    }

    #[test]
    fn table5_marks_mvgrl_products_divergence() {
        let t = table5();
        let mvgrl = t.iter().find(|r| r.0 == "MVGRL").unwrap();
        assert!(mvgrl.2.is_none());
    }
}
