//! Shared harness for the table/figure reproduction binaries.
//!
//! Every `src/bin/tableN.rs` / `src/bin/figN.rs` binary uses this crate for:
//! * [`Profile`] — `--profile quick|paper` run sizing (dataset scale,
//!   epochs, repetition counts);
//! * [`registry`] — the model zoo keyed by the names the paper's tables use;
//! * [`mod@reference`] — the paper-reported values, printed side by side
//!   with our measurements (`EXPERIMENTS.md` records the comparison);
//! * [`report`] — aligned-table printing and JSON result emission.

pub mod flags;
pub mod reference;
pub mod registry;
pub mod report;

use e2gcl::prelude::*;

/// Sizing of a reproduction run.
#[derive(Clone, Debug)]
pub struct Profile {
    /// `"quick"` or `"paper"`.
    pub name: String,
    /// Scale applied to the five small datasets.
    pub scale: f64,
    /// Scale applied to arxiv-sim / products-sim (Table V).
    pub large_scale: f64,
    /// Pre-training epochs.
    pub epochs: usize,
    /// Repetitions (pre-train + split) per cell.
    pub runs: usize,
}

impl Profile {
    /// The fast smoke profile (used for the recorded bench outputs).
    pub fn quick() -> Profile {
        Profile {
            name: "quick".into(),
            scale: 0.25,
            large_scale: 0.15,
            epochs: 15,
            runs: 2,
        }
    }

    /// The full protocol (paper-sized graphs, 10 repetitions).
    pub fn paper() -> Profile {
        Profile {
            name: "paper".into(),
            scale: 1.0,
            large_scale: 1.0,
            epochs: 60,
            runs: 10,
        }
    }

    /// Parses `--profile quick|paper` (default quick) from process args.
    pub fn from_args() -> Profile {
        let args: Vec<String> = std::env::args().collect();
        let mut profile = Profile::quick();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--profile" if i + 1 < args.len() => {
                    profile = match args[i + 1].as_str() {
                        "paper" => Profile::paper(),
                        "quick" => Profile::quick(),
                        other => {
                            eprintln!("unknown profile '{other}', using quick");
                            Profile::quick()
                        }
                    };
                    i += 2;
                }
                "--scale" if i + 1 < args.len() => {
                    profile.scale = args[i + 1].parse().expect("--scale takes a float");
                    i += 2;
                }
                "--runs" if i + 1 < args.len() => {
                    profile.runs = args[i + 1].parse().expect("--runs takes an int");
                    i += 2;
                }
                "--epochs" if i + 1 < args.len() => {
                    profile.epochs = args[i + 1].parse().expect("--epochs takes an int");
                    i += 2;
                }
                "--bench" => i += 1, // passed by `cargo bench` harness invocations
                other => {
                    eprintln!("ignoring unknown argument '{other}'");
                    i += 1;
                }
            }
        }
        profile
    }

    /// The shared training configuration for this profile.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            ..TrainConfig::default()
        }
    }

    /// Walk models (DeepWalk / Node2Vec) do far more work per "epoch"; the
    /// convention is a handful of passes.
    pub fn walk_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: (self.epochs / 8).max(2),
            ..TrainConfig::default()
        }
    }

    /// Generates one of the five small datasets at this profile's scale.
    pub fn dataset(&self, name: &str, seed: u64) -> NodeDataset {
        let s = spec(name).expect("bench binaries use registered dataset names");
        NodeDataset::generate(&s, self.scale, seed)
    }

    /// Generates one of the two large datasets (Table V) at this profile's
    /// large-graph scale.
    pub fn large_dataset(&self, name: &str, seed: u64) -> NodeDataset {
        let s = spec(name).expect("bench binaries use registered dataset names");
        NodeDataset::generate(&s, self.large_scale, seed)
    }
}

/// Shared driver for the E²GCL ablation tables (VI, VII, VIII): runs each
/// variant over the five small datasets and prints measured-vs-paper cells.
pub fn e2gcl_ablation_table(
    profile: &Profile,
    title: &str,
    variants: &[(String, E2gclModel)],
    paper: &[(&str, [f32; 5])],
    json_name: &str,
) {
    use e2gcl::pipeline::run_node_classification;
    assert_eq!(variants.len(), paper.len(), "variant/paper row mismatch");
    let datasets: Vec<NodeDataset> = reference::SMALL_DATASETS
        .iter()
        .map(|n| profile.dataset(n, 100))
        .collect();
    let cfg = profile.train_config();
    let mut rows = Vec::new();
    let mut json: Vec<(String, String, f32, f32, f32)> = Vec::new();
    let mut summary = report::SweepSummary::new();
    for ((name, model), (_, paper_vals)) in variants.iter().zip(paper) {
        let mut cells = Vec::new();
        for (di, data) in datasets.iter().enumerate() {
            let label = format!("{name}/{}", data.name);
            match run_node_classification(model, data, &cfg, profile.runs, 0) {
                Ok(run) if !run.accuracies.is_empty() => {
                    summary.record(label, report::outcome_of(&run));
                    cells.push(report::Cell::vs(
                        100.0 * run.mean,
                        100.0 * run.std,
                        paper_vals[di],
                    ));
                    json.push((
                        name.clone(),
                        data.name.clone(),
                        100.0 * run.mean,
                        100.0 * run.std,
                        paper_vals[di],
                    ));
                }
                Ok(run) => {
                    summary.record(label, report::outcome_of(&run));
                    cells.push(report::Cell::failed());
                }
                Err(err) => {
                    summary.record(label, report::CellOutcome::Failed(err.to_string()));
                    cells.push(report::Cell::failed());
                }
            }
            eprintln!("  done: {name} on {}", data.name);
        }
        rows.push((name.clone(), cells));
    }
    report::print_table(title, &reference::SMALL_DATASETS, &rows);
    summary.print();
    report::write_json(json_name, &json);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ() {
        let q = Profile::quick();
        let p = Profile::paper();
        assert!(q.scale < p.scale);
        assert!(q.runs < p.runs);
        assert!(q.epochs < p.epochs);
    }

    #[test]
    fn walk_config_reduces_epochs() {
        let p = Profile::paper();
        assert!(p.walk_config().epochs < p.train_config().epochs);
        assert!(Profile::quick().walk_config().epochs >= 2);
    }

    #[test]
    fn dataset_scaling_applies() {
        let q = Profile::quick();
        let d = q.dataset("cora-sim", 0);
        assert!((d.num_nodes() as f64 - 2708.0 * q.scale).abs() < 2.0);
    }
}
