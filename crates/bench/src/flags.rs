//! Typed command-line flag parsing for the bench binaries.
//!
//! The bench bins used to scan `std::env::args()` with `.any(...)`, which
//! silently ignored typos (`--qick` ran the full sweep). [`FlagSet`]
//! declares the accepted flags up front and rejects anything else with a
//! typed [`FlagError`], so a misspelled flag fails fast instead of running
//! the wrong benchmark for an hour.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::str::FromStr;

/// Why an argument vector was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlagError {
    /// A `--flag` that no bin declared.
    Unknown {
        /// The offending flag (with dashes).
        flag: String,
        /// Every flag this binary accepts.
        allowed: Vec<String>,
    },
    /// A valued flag at the end of the argument list.
    MissingValue {
        /// The flag that wanted a value.
        flag: String,
    },
    /// A switch given an `=value`.
    UnexpectedValue {
        /// The switch that takes no value.
        flag: String,
    },
    /// An argument that is not a `--flag` at all.
    Positional {
        /// The stray argument.
        arg: String,
    },
    /// A value that failed to parse as the requested type.
    BadValue {
        /// The flag whose value was malformed.
        flag: String,
        /// The literal value given.
        value: String,
        /// The parse error.
        reason: String,
    },
}

impl fmt::Display for FlagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlagError::Unknown { flag, allowed } => {
                write!(f, "unknown flag '{flag}'; accepted: {}", allowed.join(", "))
            }
            FlagError::MissingValue { flag } => write!(f, "flag '{flag}' expects a value"),
            FlagError::UnexpectedValue { flag } => {
                write!(f, "switch '{flag}' does not take a value")
            }
            FlagError::Positional { arg } => {
                write!(
                    f,
                    "unexpected positional argument '{arg}' (flags are --name)"
                )
            }
            FlagError::BadValue {
                flag,
                value,
                reason,
            } => write!(f, "flag '{flag}': cannot parse '{value}': {reason}"),
        }
    }
}

impl std::error::Error for FlagError {}

/// The flags one binary accepts: presence-only switches and valued flags.
#[derive(Clone, Debug, Default)]
pub struct FlagSet {
    switches: Vec<&'static str>,
    valued: Vec<&'static str>,
}

impl FlagSet {
    /// An empty set. `--bench` (injected by cargo's bench harness) is
    /// always accepted and ignored.
    pub fn new() -> FlagSet {
        FlagSet::default().switch("bench")
    }

    /// Declares a presence-only switch, e.g. `--quick`.
    pub fn switch(mut self, name: &'static str) -> FlagSet {
        self.switches.push(name);
        self
    }

    /// Declares a flag that takes a value, as `--name value` or
    /// `--name=value`.
    pub fn valued(mut self, name: &'static str) -> FlagSet {
        self.valued.push(name);
        self
    }

    /// Parses an argument vector (without the program name).
    pub fn parse(&self, argv: &[String]) -> Result<Flags, FlagError> {
        let mut set = HashSet::new();
        let mut values = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(body) = arg.strip_prefix("--") else {
                return Err(FlagError::Positional { arg: arg.clone() });
            };
            let (name, inline) = match body.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (body, None),
            };
            if self.switches.contains(&name) {
                if inline.is_some() {
                    return Err(FlagError::UnexpectedValue { flag: arg.clone() });
                }
                set.insert(name.to_string());
            } else if self.valued.contains(&name) {
                let value = match inline {
                    Some(v) => v,
                    None => {
                        i += 1;
                        argv.get(i)
                            .cloned()
                            .ok_or_else(|| FlagError::MissingValue {
                                flag: format!("--{name}"),
                            })?
                    }
                };
                values.insert(name.to_string(), value);
            } else {
                let mut allowed: Vec<String> = self
                    .switches
                    .iter()
                    .chain(&self.valued)
                    .map(|n| format!("--{n}"))
                    .collect();
                allowed.sort();
                return Err(FlagError::Unknown {
                    flag: format!("--{name}"),
                    allowed,
                });
            }
            i += 1;
        }
        Ok(Flags { set, values })
    }

    /// Parses the process arguments (skipping the program name).
    pub fn parse_env(&self) -> Result<Flags, FlagError> {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        self.parse(&argv)
    }
}

/// The parsed result: which switches appeared and the valued flags' values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Flags {
    set: HashSet<String>,
    values: HashMap<String, String>,
}

impl Flags {
    /// True when the switch `name` appeared.
    pub fn is_set(&self, name: &str) -> bool {
        self.set.contains(name)
    }

    /// The raw value of `name`, or `default` if absent.
    pub fn get(&self, name: &str, default: &str) -> String {
        self.values
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Parses the value of `name` as `T`, or returns `default` if absent.
    pub fn get_parse<T>(&self, name: &str, default: T) -> Result<T, FlagError>
    where
        T: FromStr,
        T::Err: fmt::Display,
    {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e: T::Err| FlagError::BadValue {
                flag: format!("--{name}"),
                value: v.clone(),
                reason: e.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_switches_and_values_in_both_syntaxes() {
        let fs = FlagSet::new().switch("quick").valued("rows").valued("dim");
        let f = fs
            .parse(&argv(&["--quick", "--rows", "100", "--dim=32"]))
            .expect("valid argv");
        assert!(f.is_set("quick"));
        assert!(!f.is_set("verbose"));
        assert_eq!(f.get_parse("rows", 0usize).expect("parses"), 100);
        assert_eq!(f.get_parse("dim", 0usize).expect("parses"), 32);
        assert_eq!(f.get_parse("absent", 7u64).expect("default"), 7);
    }

    #[test]
    fn unknown_flag_is_a_typed_error_listing_the_accepted_set() {
        let fs = FlagSet::new().switch("quick");
        match fs.parse(&argv(&["--qick"])) {
            Err(FlagError::Unknown { flag, allowed }) => {
                assert_eq!(flag, "--qick");
                assert!(allowed.contains(&"--quick".to_string()), "{allowed:?}");
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    /// The loss-strategy flags `kernel_bench` grew with the sub-quadratic
    /// kernels (`--loss`, `--negatives`) are declared, so typos against
    /// them are typed `Unknown` errors that list the accepted set.
    #[test]
    fn loss_strategy_flags_are_declared_and_typos_rejected() {
        let fs = FlagSet::new()
            .switch("quick")
            .valued("loss")
            .valued("negatives");
        match fs.parse(&argv(&["--negatvies", "256"])) {
            Err(FlagError::Unknown { flag, allowed }) => {
                assert_eq!(flag, "--negatvies");
                assert!(allowed.contains(&"--loss".to_string()), "{allowed:?}");
                assert!(allowed.contains(&"--negatives".to_string()), "{allowed:?}");
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
        match fs.parse(&argv(&["--loss-strategy=smallneg"])) {
            Err(FlagError::Unknown { flag, .. }) => assert_eq!(flag, "--loss-strategy"),
            other => panic!("expected Unknown, got {other:?}"),
        }
        let f = fs
            .parse(&argv(&["--loss", "smallneg", "--negatives=256"]))
            .expect("valid argv");
        assert_eq!(
            f.get_parse("loss", "full".to_string()).expect("parses"),
            "smallneg"
        );
        assert_eq!(f.get_parse("negatives", 0usize).expect("parses"), 256);
    }

    #[test]
    fn missing_and_malformed_values_are_typed() {
        let fs = FlagSet::new().valued("rows");
        assert_eq!(
            fs.parse(&argv(&["--rows"])),
            Err(FlagError::MissingValue {
                flag: "--rows".into()
            })
        );
        let f = fs.parse(&argv(&["--rows", "lots"])).expect("parse ok");
        match f.get_parse("rows", 0usize) {
            Err(FlagError::BadValue { flag, value, .. }) => {
                assert_eq!((flag.as_str(), value.as_str()), ("--rows", "lots"));
            }
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn positional_arguments_and_valued_switches_are_rejected() {
        let fs = FlagSet::new().switch("quick");
        assert_eq!(
            fs.parse(&argv(&["stray"])),
            Err(FlagError::Positional {
                arg: "stray".into()
            })
        );
        assert_eq!(
            fs.parse(&argv(&["--quick=yes"])),
            Err(FlagError::UnexpectedValue {
                flag: "--quick=yes".into()
            })
        );
    }

    #[test]
    fn cargo_bench_harness_flag_is_tolerated() {
        let f = FlagSet::new()
            .parse(&argv(&["--bench"]))
            .expect("tolerated");
        assert!(f.is_set("bench"));
    }

    #[test]
    fn errors_render_readably() {
        let e = FlagError::Unknown {
            flag: "--qick".into(),
            allowed: vec!["--quick".into()],
        };
        assert!(e.to_string().contains("--quick"));
        let e = FlagError::BadValue {
            flag: "--rows".into(),
            value: "x".into(),
            reason: "invalid digit".into(),
        };
        assert!(e.to_string().contains("invalid digit"));
    }
}
