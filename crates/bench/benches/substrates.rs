//! Criterion microbenchmarks backing the paper's complexity claims:
//! §III-C (selection: aggregation, clustering, greedy gains) and §IV-C
//! (view generation: score precomputation, per-epoch sampling), plus the
//! GCN forward/backward kernels everything sits on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e2gcl::prelude::*;
use e2gcl_graph::{norm, ppr};
use e2gcl_nn::GcnEncoder;
use e2gcl_selector::coreset::CoresetObjective;
use e2gcl_selector::greedy::{GreedyConfig, GreedySelector};
use e2gcl_selector::kmeans::kmeans;
use e2gcl_selector::NodeSelector;
use e2gcl_views::{ViewConfig, ViewGenerator};
use std::hint::black_box;

fn data(scale: f64) -> NodeDataset {
    NodeDataset::generate(&spec("cora-sim").unwrap(), scale, 7)
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    for scale in [0.25f64, 0.5] {
        let d = data(scale);
        let adj = norm::normalized_adjacency(&d.graph);
        group.bench_with_input(
            BenchmarkId::new("a_n_times_x", d.num_nodes()),
            &d,
            |b, d| b.iter(|| black_box(adj.spmm(&d.features))),
        );
    }
    group.finish();
}

fn bench_raw_aggregate(c: &mut Criterion) {
    let d = data(0.5);
    c.bench_function("raw_aggregate_l2", |b| {
        b.iter(|| black_box(norm::raw_aggregate(&d.graph, &d.features, 2)))
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let d = data(0.5);
    let repr = norm::raw_aggregate(&d.graph, &d.features, 2);
    c.bench_function("kmeans_60_clusters", |b| {
        b.iter(|| black_box(kmeans(&repr, 60, 10, &mut SeedRng::new(0))))
    });
}

fn bench_greedy_selection(c: &mut Criterion) {
    let d = data(0.25);
    let sel = GreedySelector::new(GreedyConfig {
        num_clusters: 30,
        sample_size: 100,
        ..Default::default()
    });
    let budget = d.num_nodes() / 10;
    c.bench_function("alg2_greedy_select_10pct", |b| {
        b.iter(|| black_box(sel.select(&d.graph, &d.features, budget, &mut SeedRng::new(0))))
    });
}

fn bench_marginal_gain(c: &mut Criterion) {
    let d = data(0.5);
    let repr = norm::raw_aggregate(&d.graph, &d.features, 2);
    let clustering = kmeans(&repr, 60, 10, &mut SeedRng::new(0));
    let mut obj = CoresetObjective::new(&repr, &clustering);
    for v in 0..20 {
        obj.add(v * 7);
    }
    c.bench_function("alg2_single_marginal_gain", |b| {
        let mut v = 0usize;
        b.iter(|| {
            v = (v + 13) % repr.rows();
            black_box(obj.gain(v))
        })
    });
}

fn bench_view_generation(c: &mut Criterion) {
    let d = data(0.5);
    let mut rng = SeedRng::new(0);
    c.bench_function("alg3_precompute_scores", |b| {
        b.iter(|| {
            black_box(ViewGenerator::new(
                &d.graph,
                &d.features,
                ViewConfig::default(),
                &mut rng,
            ))
        })
    });
    let generator = ViewGenerator::new(&d.graph, &d.features, ViewConfig::default(), &mut rng);
    c.bench_function("alg3_sample_global_view", |b| {
        b.iter(|| black_box(generator.sample_global_view(1.0, 0.6, &mut rng)))
    });
    c.bench_function("alg3_sample_ego_view", |b| {
        let mut v = 0usize;
        b.iter(|| {
            v = (v + 1) % d.num_nodes();
            black_box(generator.sample_ego_view(v, 1.0, 0.6, &mut rng))
        })
    });
}

fn bench_ppr_diffusion(c: &mut Criterion) {
    let d = data(0.25);
    c.bench_function("ppr_diffusion_graph", |b| {
        b.iter(|| black_box(ppr::ppr_diffusion_graph(&d.graph, 0.2, 1e-3, 16)))
    });
}

fn bench_gcn(c: &mut Criterion) {
    let d = data(0.5);
    let adj = norm::normalized_adjacency(&d.graph);
    let enc = GcnEncoder::new(&[d.features.cols(), 64, 32], &mut SeedRng::new(0));
    c.bench_function("gcn_forward", |b| {
        b.iter(|| black_box(enc.forward(&adj, &d.features)))
    });
    let (h, cache) = enc.forward(&adj, &d.features);
    c.bench_function("gcn_backward", |b| {
        b.iter(|| black_box(enc.backward(&adj, &cache, &h)))
    });
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(10);
    targets = bench_spmm, bench_raw_aggregate, bench_kmeans, bench_greedy_selection,
              bench_marginal_gain, bench_view_generation, bench_ppr_diffusion, bench_gcn
}
criterion_main!(substrates);
