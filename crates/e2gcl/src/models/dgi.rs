//! Deep Graph Infomax (Veličković et al. 2019).
//!
//! Maximises mutual information between node embeddings and a graph-level
//! summary: positives are real nodes, negatives come from a feature-shuffled
//! corruption, and a bilinear discriminator tells them apart.

use crate::config::TrainConfig;
use crate::engine::{EpochCtx, EpochDriver, EpochOutcome, EpochStep};
use crate::models::{ContrastiveModel, PretrainResult};
use e2gcl_graph::{norm, CsrGraph, SparseMatrix};
use e2gcl_linalg::init;
use e2gcl_linalg::{activations, ops, Matrix, SeedRng, TrainError};
use e2gcl_nn::{loss, optim::Optimizer, Adam, GcnEncoder, GcnWorkspace};
use std::time::Instant;

/// Bilinear discriminator `D(h, s) = h^T W s` shared by DGI and MVGRL.
#[derive(Clone, Debug)]
pub struct BilinearDiscriminator {
    /// Bilinear form (`d x d`).
    pub w: Matrix,
}

/// Gradients produced by [`BilinearDiscriminator::backward`].
pub struct BilinearGrads {
    /// `∂L/∂W`.
    pub dw: Matrix,
    /// `∂L/∂H` for the scored rows.
    pub dh: Matrix,
    /// `∂L/∂s`.
    pub ds: Vec<f32>,
}

impl BilinearDiscriminator {
    /// Xavier-initialised discriminator of width `d`.
    pub fn new(d: usize, rng: &mut SeedRng) -> Self {
        Self {
            w: init::xavier_uniform(d, d, rng),
        }
    }

    /// Scores every row of `h` against summary `s`: `logit_v = h_v · (W s)`.
    pub fn score(&self, h: &Matrix, s: &[f32]) -> Vec<f32> {
        let ws = self.w_s(s);
        (0..h.rows()).map(|v| ops::dot(h.row(v), &ws)).collect()
    }

    fn w_s(&self, s: &[f32]) -> Vec<f32> {
        (0..self.w.rows())
            .map(|r| ops::dot(self.w.row(r), s))
            .collect()
    }

    /// Backward pass given `dlogits` (one per row of `h`).
    pub fn backward(&self, h: &Matrix, s: &[f32], dlogits: &[f32]) -> BilinearGrads {
        let d = self.w.rows();
        let ws = self.w_s(s);
        let mut dh = Matrix::zeros(h.rows(), d);
        let mut dw = Matrix::zeros(d, d);
        let mut ds = vec![0.0f32; d];
        // Accumulate g_v = Σ dlogit_v · h_v once, then dW = g s^T.
        let mut g = vec![0.0f32; d];
        for (v, &dl) in dlogits.iter().enumerate() {
            ops::axpy_slice(dh.row_mut(v), dl, &ws);
            ops::axpy_slice(&mut g, dl, h.row(v));
        }
        for (r, &gv) in g.iter().enumerate() {
            ops::axpy_slice(dw.row_mut(r), gv, s);
        }
        // ds = W^T g.
        for (r, &gr) in g.iter().enumerate() {
            ops::axpy_slice(&mut ds, gr, self.w.row(r));
        }
        BilinearGrads { dw, dh, ds }
    }
}

/// Sigmoid readout summary `s = σ(mean_v h_v)` with its backward helper.
pub fn summary(h: &Matrix) -> (Vec<f32>, Vec<f32>) {
    let mean = h.col_means();
    let s: Vec<f32> = mean.iter().map(|&m| activations::sigmoid(m)).collect();
    // σ'(m) = s(1−s), needed to push ds back into dH.
    let dsig: Vec<f32> = s.iter().map(|&v| v * (1.0 - v)).collect();
    (s, dsig)
}

/// Spreads `ds` through the sigmoid-mean readout into every row of `dh`.
pub fn summary_backward(dh: &mut Matrix, ds: &[f32], dsig: &[f32]) {
    let n = dh.rows().max(1) as f32;
    let per_row: Vec<f32> = ds.iter().zip(dsig).map(|(&d, &g)| d * g / n).collect();
    for v in 0..dh.rows() {
        ops::axpy_slice(dh.row_mut(v), 1.0, &per_row);
    }
}

/// Row-shuffled copy of `x` — DGI's corruption function.
pub fn shuffle_rows(x: &Matrix, rng: &mut SeedRng) -> Matrix {
    let mut perm: Vec<usize> = (0..x.rows()).collect();
    rng.shuffle(&mut perm);
    x.select_rows(&perm)
}

/// The DGI model.
#[derive(Clone, Debug, Default)]
pub struct DgiModel;

impl DgiModel {
    /// One discriminator pass: returns `(loss, dH_real, dH_corrupt, grads)`.
    #[allow(clippy::type_complexity)]
    fn discriminate(
        disc: &BilinearDiscriminator,
        h_real: &Matrix,
        h_corrupt: &Matrix,
    ) -> (f32, Matrix, Matrix, Matrix) {
        let (s, dsig) = summary(h_real);
        let pos_logits = disc.score(h_real, &s);
        let neg_logits = disc.score(h_corrupt, &s);
        let n = h_real.rows();
        let mut logits = pos_logits;
        logits.extend(neg_logits);
        let mut targets = vec![1.0f32; n];
        targets.extend(std::iter::repeat_n(0.0, n));
        let (l, dlogits) = loss::bce_with_logits(&logits, &targets);
        let gp = disc.backward(h_real, &s, &dlogits[..n]);
        let gn = disc.backward(h_corrupt, &s, &dlogits[n..]);
        let mut d_real = gp.dh;
        let d_corrupt = gn.dh;
        // Summary gradient flows into the real embeddings.
        let ds_total: Vec<f32> = gp.ds.iter().zip(&gn.ds).map(|(a, b)| a + b).collect();
        summary_backward(&mut d_real, &ds_total, &dsig);
        let mut dw = gp.dw;
        dw.add_assign(&gn.dw);
        (l, d_real, d_corrupt, dw)
    }
}

impl ContrastiveModel for DgiModel {
    fn name(&self) -> String {
        "DGI".to_string()
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        crate::models::ensure_full_graph_only(cfg, &self.name())?;
        crate::models::ensure_full_loss_only(cfg, &self.name())?;
        let start = Instant::now();
        let adj: SparseMatrix = norm::normalized_adjacency(g);
        let encoder = GcnEncoder::new(&cfg.encoder_dims(x.cols()), &mut rng.fork("init"));
        let disc = BilinearDiscriminator::new(cfg.embed_dim, &mut rng.fork("disc"));
        let opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let disc_opt = Adam::new(cfg.lr);
        let train_rng = rng.fork("train");
        let mut step = DgiStep {
            x,
            adj,
            encoder,
            disc,
            opt,
            disc_opt,
            train_rng,
            ws_real: GcnWorkspace::new(),
            ws_corrupt: GcnWorkspace::new(),
            dw: Matrix::default(),
        };
        let run = EpochDriver::new(cfg).run(&mut step, start)?;
        Ok(PretrainResult {
            embeddings: run.embeddings,
            encoder: None,
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints: run.checkpoints,
            loss_curve: run.loss_curve,
        })
    }
}

/// One DGI epoch: real vs feature-shuffled embeddings scored against the
/// sigmoid-mean summary by the bilinear discriminator.
struct DgiStep<'a> {
    x: &'a Matrix,
    adj: SparseMatrix,
    encoder: GcnEncoder,
    disc: BilinearDiscriminator,
    opt: Adam,
    disc_opt: Adam,
    train_rng: SeedRng,
    ws_real: GcnWorkspace,
    ws_corrupt: GcnWorkspace,
    /// Discriminator gradient of the current epoch (auxiliary: scanned via
    /// `aux_grads_bad`, stepped in `apply`, never clipped — as before).
    dw: Matrix,
}

impl EpochStep for DgiStep<'_> {
    fn epoch(&mut self, cx: &mut EpochCtx<'_>) -> EpochOutcome {
        let x_corrupt = shuffle_rows(self.x, &mut self.train_rng);
        self.encoder
            .forward_with(&self.adj, self.x, &mut self.ws_real);
        self.encoder
            .forward_with(&self.adj, &x_corrupt, &mut self.ws_corrupt);
        let (l, d_real, d_corrupt, dw) =
            DgiModel::discriminate(&self.disc, self.ws_real.output(), self.ws_corrupt.output());
        self.dw = dw;
        self.encoder
            .backward_with(&self.adj, &mut self.ws_real, &d_real);
        self.encoder
            .backward_with(&self.adj, &mut self.ws_corrupt, &d_corrupt);
        for (acc, g) in self
            .ws_real
            .grads_mut()
            .iter_mut()
            .zip(self.ws_corrupt.grads())
        {
            acc.axpy(1.0, g);
        }
        let embeddings_bad = cx
            .guard
            .embeddings_bad(&[self.ws_real.output(), self.ws_corrupt.output()]);
        EpochOutcome::Step {
            loss: l,
            embeddings_bad,
        }
    }

    fn grads_mut(&mut self) -> &mut [Matrix] {
        self.ws_real.grads_mut()
    }

    fn aux_grads_bad(&self) -> bool {
        self.dw.has_non_finite()
    }

    fn apply(&mut self, _epoch: usize, lr: f32, _loss: f32) {
        self.opt.lr = lr;
        self.opt
            .step(self.encoder.params_mut(), self.ws_real.grads());
        self.disc_opt.lr = lr;
        self.disc_opt.step(
            std::slice::from_mut(&mut self.disc.w),
            std::slice::from_ref(&self.dw),
        );
    }

    fn embed(&mut self) -> Matrix {
        self.encoder.embed(&self.adj, self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_datasets::{spec, NodeDataset};

    #[test]
    fn bilinear_grad_check() {
        let mut rng = SeedRng::new(0);
        let disc = BilinearDiscriminator::new(3, &mut rng);
        let mut h = Matrix::zeros(4, 3);
        for v in h.as_mut_slice() {
            *v = rng.normal();
        }
        let s = vec![0.3f32, -0.7, 0.5];
        // Loss = 0.5 Σ logit², so dlogits = logits.
        let logits = disc.score(&h, &s);
        let grads = disc.backward(&h, &s, &logits);
        let eps = 1e-3f32;
        let f = |disc: &BilinearDiscriminator, h: &Matrix, s: &[f32]| -> f32 {
            0.5 * disc.score(h, s).iter().map(|l| l * l).sum::<f32>()
        };
        // dW check.
        let mut d2 = disc.clone();
        for r in 0..3 {
            for c in 0..3 {
                let orig = d2.w.get(r, c);
                d2.w.set(r, c, orig + eps);
                let lp = f(&d2, &h, &s);
                d2.w.set(r, c, orig - eps);
                let lm = f(&d2, &h, &s);
                d2.w.set(r, c, orig);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grads.dw.get(r, c)).abs() < 2e-2 * (1.0 + fd.abs()),
                    "dW({r},{c})"
                );
            }
        }
        // dH check.
        let mut hm = h.clone();
        for r in 0..4 {
            for c in 0..3 {
                let orig = hm.get(r, c);
                hm.set(r, c, orig + eps);
                let lp = f(&disc, &hm, &s);
                hm.set(r, c, orig - eps);
                let lm = f(&disc, &hm, &s);
                hm.set(r, c, orig);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grads.dh.get(r, c)).abs() < 2e-2 * (1.0 + fd.abs()),
                    "dH({r},{c})"
                );
            }
        }
        // ds check.
        let mut sm = s.clone();
        for c in 0..3 {
            let orig = sm[c];
            sm[c] = orig + eps;
            let lp = f(&disc, &h, &sm);
            sm[c] = orig - eps;
            let lm = f(&disc, &h, &sm);
            sm[c] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads.ds[c]).abs() < 2e-2 * (1.0 + fd.abs()),
                "ds({c})"
            );
        }
    }

    #[test]
    fn shuffle_rows_is_permutation() {
        let mut rng = SeedRng::new(1);
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let s = shuffle_rows(&x, &mut rng);
        let mut vals: Vec<f32> = s.as_slice().to_vec();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vals, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dgi_trains_and_loss_falls() {
        let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 0);
        let cfg = TrainConfig {
            epochs: 15,
            ..Default::default()
        };
        let out = DgiModel
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(2))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        let first = out.loss_curve[0];
        let last = *out.loss_curve.last().unwrap();
        assert!(last < first, "{first} -> {last}");
    }
}
