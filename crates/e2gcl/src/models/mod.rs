//! Contrastive pre-training models.
//!
//! Every model implements [`ContrastiveModel`]: given an unlabelled graph it
//! produces node embeddings (plus timing and optional training-curve
//! checkpoints). Labels never enter pre-training; they are only used later
//! by the [`crate::eval`] decoders, exactly as in Alg. 1.

pub mod adgcl;
pub mod bgrl;
pub mod dgi;
pub mod e2gcl_model;
pub mod gae;
pub mod grace;
pub mod mvgrl;
pub mod walks;

use crate::config::{LossStrategy, TrainConfig};
use e2gcl_graph::CsrGraph;
use e2gcl_linalg::{Matrix, SeedRng, TrainError};
use e2gcl_nn::{FrozenEncoder, LocalizedInfoNce, Neighborhoods, SmallNegInfoNce};
use e2gcl_selector::greedy::GreedySelector;
use std::time::Duration;

/// Output of a pre-training run.
#[derive(Clone, Debug)]
pub struct PretrainResult {
    /// Final embeddings of every node, computed on the *original* graph.
    pub embeddings: Matrix,
    /// The trained encoder, frozen for inference — the unit `e2gcl-serve`
    /// persists and queries. `None` for models whose embedding is not a
    /// parametric forward pass over the graph (e.g. random-walk tables) or
    /// that have not been taught to export one yet.
    pub encoder: Option<FrozenEncoder>,
    /// Time spent selecting representative nodes (`ST` of Table V; zero for
    /// models that train on all nodes).
    pub selection_time: Duration,
    /// Total pre-training wall time (`TT` of Table V), selection included.
    pub total_time: Duration,
    /// `(elapsed seconds, embeddings)` checkpoints, recorded when
    /// `TrainConfig::checkpoint_every` is set (drives Fig. 3).
    pub checkpoints: Vec<(f64, Matrix)>,
    /// Mean contrastive loss per epoch (for convergence diagnostics).
    pub loss_curve: Vec<f32>,
}

/// A self-supervised graph representation learner.
pub trait ContrastiveModel {
    /// Model name as it appears in the paper's tables.
    fn name(&self) -> String;

    /// Pre-trains on `(g, x)` without labels and returns node embeddings.
    ///
    /// Numeric health is checked every epoch by a [`crate::NumericGuard`]
    /// configured through `cfg.guard`; an unrecoverable failure (per the
    /// configured policy) aborts the run with a [`TrainError`].
    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError>;
}

/// Typed rejection for models whose training loop has no mini-batch form:
/// called at the top of their `pretrain`, so a `cfg.minibatch` block on an
/// unsupported model fails loudly instead of being silently ignored.
pub(crate) fn ensure_full_graph_only(cfg: &TrainConfig, model: &str) -> Result<(), TrainError> {
    if cfg.minibatch.is_some() {
        return Err(TrainError::InvalidConfig(format!(
            "{model} does not support mini-batch training; unset cfg.minibatch \
             or use E2GCL / GRACE"
        )));
    }
    Ok(())
}

/// Typed rejection for models whose objective is not InfoNCE-shaped:
/// the sub-quadratic [`crate::config::LossStrategy`] kernels replace the
/// InfoNCE denominator, so a non-`Full` strategy on such a model fails
/// loudly instead of being silently ignored.
pub(crate) fn ensure_full_loss_only(cfg: &TrainConfig, model: &str) -> Result<(), TrainError> {
    if !cfg.loss.is_full() {
        return Err(TrainError::InvalidConfig(format!(
            "{model} supports only the full contrastive loss; unset cfg.loss \
             (sub-quadratic strategies apply to E2GCL and GRACE/GCA)"
        )));
    }
    Ok(())
}

/// Per-step state of the configured [`LossStrategy`], shared by the
/// GRACE/GCA and E²GCL epoch steps (DESIGN.md §15).
///
/// `Full` leaves the step's original InfoNCE path bitwise-untouched (the
/// golden fingerprints pin it); the sub-quadratic variants carry their own
/// fused forward+backward scratch so steady-state epochs stay
/// allocation-free inside the kernel.
pub(crate) enum InfoNceStrategy {
    /// The original fused O(n²) kernel, driven by the step's own scratch.
    Full,
    /// Small-negative-set InfoNCE; negatives re-selected deterministically
    /// each epoch (full-batch) or batch (mini-batch) via
    /// [`select_negatives`].
    SmallNeg {
        /// Negative budget `k` from the config.
        k: usize,
        /// The fused kernel + scratch (boxed: the scratch is large and
        /// `Full` carries none).
        strat: Box<SmallNegInfoNce>,
    },
    /// Neighbourhood-localized InfoNCE; the topology is fixed per graph
    /// (full-batch) or rebuilt per sampled subgraph (mini-batch).
    Localized {
        /// Neighbourhood radius from the config.
        hops: usize,
        /// The fused kernel + scratch (boxed, as above).
        strat: Box<LocalizedInfoNce>,
    },
}

impl InfoNceStrategy {
    /// Builds the step-side state for `loss` at temperature `tau`.
    /// Localized topology starts empty — full-batch steps set it once from
    /// the training graph, mini-batch steps per sampled view.
    pub(crate) fn from_config(loss: &LossStrategy, tau: f32) -> InfoNceStrategy {
        match *loss {
            LossStrategy::Full => InfoNceStrategy::Full,
            LossStrategy::SmallNeg { negatives } => InfoNceStrategy::SmallNeg {
                k: negatives,
                strat: Box::new(SmallNegInfoNce::new(tau)),
            },
            LossStrategy::Localized { hops } => InfoNceStrategy::Localized {
                hops,
                strat: Box::new(LocalizedInfoNce::new(tau, Neighborhoods::default())),
            },
        }
    }
}

/// Upper bound on the candidate pool [`select_negatives`] hands to the
/// greedy selector, as a multiple of the negative budget `k` (floored at
/// [`NEGATIVE_POOL_MIN`]). Selection runs every epoch, so it must stay
/// o(n) on million-node graphs; a pool of `8k` rows keeps the Alg. 2
/// clustering+greedy work flat while still giving the selector real
/// diversity to pick from.
const NEGATIVE_POOL_FACTOR: usize = 8;
const NEGATIVE_POOL_MIN: usize = 2048;

/// Deterministically selects `k` representative negative rows of `repr`
/// for the small-negative-set loss via the Alg. 2 greedy selector
/// ([`GreedySelector::select_from_aggregate`] on the current embeddings).
///
/// Returns global row indices, sorted ascending. When `repr` has more than
/// `max(8k, 2048)` rows, the selector runs on a candidate pool of that
/// size drawn without replacement from `rng` — O(pool) per epoch instead
/// of O(n) — and the picks are mapped back to global ids. All randomness
/// comes from `rng`, so the choice is a pure function of the RNG stream
/// and the embeddings (bit-identical across `RAYON_NUM_THREADS`; the
/// selector's gain argmax tie-breaks on lowest id).
pub(crate) fn select_negatives(repr: &Matrix, k: usize, rng: &mut SeedRng) -> Vec<usize> {
    let n = repr.rows();
    if k >= n {
        return (0..n).collect();
    }
    let pool_cap = (NEGATIVE_POOL_FACTOR * k).max(NEGATIVE_POOL_MIN);
    let selector = GreedySelector::default();
    let mut nodes = if n <= pool_cap {
        selector.select_from_aggregate(repr, k, rng).nodes
    } else {
        let mut pool = rng.sample_without_replacement(n, pool_cap);
        // Sorting makes the pooled sub-matrix (and therefore the greedy
        // run) a function of the sampled *set*, not of the draw order.
        pool.sort_unstable();
        let pooled = repr.select_rows(&pool);
        selector
            .select_from_aggregate(&pooled, k, rng)
            .nodes
            .into_iter()
            .map(|local| pool[local])
            .collect()
    };
    nodes.sort_unstable();
    nodes
}

/// Samples `count` negative indices in `[0, n)` distinct from `anchor`.
pub(crate) fn sample_negative_indices(
    n: usize,
    anchor: usize,
    count: usize,
    rng: &mut SeedRng,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(count);
    if n <= 1 {
        return out;
    }
    for _ in 0..count {
        let mut u = rng.below(n - 1);
        if u >= anchor {
            u += 1;
        }
        out.push(u);
    }
    out
}

/// Splits shuffled node indices into anchor batches of at most `batch_size`.
pub(crate) fn shuffled_batches(n: usize, batch_size: usize, rng: &mut SeedRng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    idx.chunks(batch_size.max(2)).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negatives_exclude_anchor() {
        let mut rng = SeedRng::new(0);
        for anchor in 0..5 {
            let negs = sample_negative_indices(5, anchor, 50, &mut rng);
            assert_eq!(negs.len(), 50);
            assert!(negs.iter().all(|&u| u != anchor && u < 5));
        }
    }

    #[test]
    fn negatives_degenerate_single_node() {
        let mut rng = SeedRng::new(1);
        assert!(sample_negative_indices(1, 0, 3, &mut rng).is_empty());
    }

    #[test]
    fn full_loss_guard_rejects_sub_quadratic_strategies() {
        let mut cfg = TrainConfig::default();
        assert!(ensure_full_loss_only(&cfg, "DGI").is_ok());
        cfg.loss = crate::config::LossStrategy::SmallNeg { negatives: 64 };
        let err = ensure_full_loss_only(&cfg, "DGI").unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn select_negatives_is_sorted_deterministic_and_bounded() {
        let mut rng = SeedRng::new(7);
        let mut repr = Matrix::zeros(300, 8);
        for v in repr.as_mut_slice() {
            *v = rng.normal();
        }
        let a = select_negatives(&repr, 24, &mut SeedRng::new(1));
        let b = select_negatives(&repr, 24, &mut SeedRng::new(1));
        assert_eq!(a, b);
        assert_eq!(a.len(), 24);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted unique: {a:?}");
        assert!(a.iter().all(|&v| v < 300));
        // k >= n short-circuits to the identity set without consuming RNG.
        let mut untouched = SeedRng::new(2);
        let all = select_negatives(&repr, 300, &mut untouched);
        assert_eq!(all, (0..300).collect::<Vec<_>>());
        assert_eq!(untouched.below(1 << 30), SeedRng::new(2).below(1 << 30));
    }

    #[test]
    fn batches_cover_everything_once() {
        let mut rng = SeedRng::new(2);
        let batches = shuffled_batches(103, 25, &mut rng);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }
}
