//! Contrastive pre-training models.
//!
//! Every model implements [`ContrastiveModel`]: given an unlabelled graph it
//! produces node embeddings (plus timing and optional training-curve
//! checkpoints). Labels never enter pre-training; they are only used later
//! by the [`crate::eval`] decoders, exactly as in Alg. 1.

pub mod adgcl;
pub mod bgrl;
pub mod dgi;
pub mod e2gcl_model;
pub mod gae;
pub mod grace;
pub mod mvgrl;
pub mod walks;

use crate::config::TrainConfig;
use e2gcl_graph::CsrGraph;
use e2gcl_linalg::{Matrix, SeedRng, TrainError};
use e2gcl_nn::FrozenEncoder;
use std::time::Duration;

/// Output of a pre-training run.
#[derive(Clone, Debug)]
pub struct PretrainResult {
    /// Final embeddings of every node, computed on the *original* graph.
    pub embeddings: Matrix,
    /// The trained encoder, frozen for inference — the unit `e2gcl-serve`
    /// persists and queries. `None` for models whose embedding is not a
    /// parametric forward pass over the graph (e.g. random-walk tables) or
    /// that have not been taught to export one yet.
    pub encoder: Option<FrozenEncoder>,
    /// Time spent selecting representative nodes (`ST` of Table V; zero for
    /// models that train on all nodes).
    pub selection_time: Duration,
    /// Total pre-training wall time (`TT` of Table V), selection included.
    pub total_time: Duration,
    /// `(elapsed seconds, embeddings)` checkpoints, recorded when
    /// `TrainConfig::checkpoint_every` is set (drives Fig. 3).
    pub checkpoints: Vec<(f64, Matrix)>,
    /// Mean contrastive loss per epoch (for convergence diagnostics).
    pub loss_curve: Vec<f32>,
}

/// A self-supervised graph representation learner.
pub trait ContrastiveModel {
    /// Model name as it appears in the paper's tables.
    fn name(&self) -> String;

    /// Pre-trains on `(g, x)` without labels and returns node embeddings.
    ///
    /// Numeric health is checked every epoch by a [`crate::NumericGuard`]
    /// configured through `cfg.guard`; an unrecoverable failure (per the
    /// configured policy) aborts the run with a [`TrainError`].
    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError>;
}

/// Typed rejection for models whose training loop has no mini-batch form:
/// called at the top of their `pretrain`, so a `cfg.minibatch` block on an
/// unsupported model fails loudly instead of being silently ignored.
pub(crate) fn ensure_full_graph_only(cfg: &TrainConfig, model: &str) -> Result<(), TrainError> {
    if cfg.minibatch.is_some() {
        return Err(TrainError::InvalidConfig(format!(
            "{model} does not support mini-batch training; unset cfg.minibatch \
             or use E2GCL / GRACE"
        )));
    }
    Ok(())
}

/// Samples `count` negative indices in `[0, n)` distinct from `anchor`.
pub(crate) fn sample_negative_indices(
    n: usize,
    anchor: usize,
    count: usize,
    rng: &mut SeedRng,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(count);
    if n <= 1 {
        return out;
    }
    for _ in 0..count {
        let mut u = rng.below(n - 1);
        if u >= anchor {
            u += 1;
        }
        out.push(u);
    }
    out
}

/// Splits shuffled node indices into anchor batches of at most `batch_size`.
pub(crate) fn shuffled_batches(n: usize, batch_size: usize, rng: &mut SeedRng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    idx.chunks(batch_size.max(2)).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negatives_exclude_anchor() {
        let mut rng = SeedRng::new(0);
        for anchor in 0..5 {
            let negs = sample_negative_indices(5, anchor, 50, &mut rng);
            assert_eq!(negs.len(), 50);
            assert!(negs.iter().all(|&u| u != anchor && u < 5));
        }
    }

    #[test]
    fn negatives_degenerate_single_node() {
        let mut rng = SeedRng::new(1);
        assert!(sample_negative_indices(1, 0, 3, &mut rng).is_empty());
    }

    #[test]
    fn batches_cover_everything_once() {
        let mut rng = SeedRng::new(2);
        let batches = shuffled_batches(103, 25, &mut rng);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }
}
