//! DeepWalk (Perozzi et al. 2014) and Node2Vec (Grover & Leskovec 2016).
//!
//! Random-walk + skip-gram-with-negative-sampling embeddings. Structure
//! only: these are the "traditional unsupervised" baselines the paper uses
//! to show the value of incorporating node features.

use crate::config::TrainConfig;
use crate::engine::{EpochCtx, EpochDriver, EpochOutcome, EpochStep};
use crate::models::{ContrastiveModel, PretrainResult};
use e2gcl_graph::CsrGraph;
use e2gcl_linalg::{activations, ops, Matrix, SeedRng, TrainError};
use std::time::Instant;

/// Walk and skip-gram hyperparameters.
#[derive(Clone, Debug)]
pub struct WalkConfig {
    /// Walks started per node per epoch.
    pub walks_per_node: usize,
    /// Walk length.
    pub walk_length: usize,
    /// Skip-gram window size.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Node2Vec return parameter `p` (1.0 = DeepWalk).
    pub p: f32,
    /// Node2Vec in-out parameter `q` (1.0 = DeepWalk).
    pub q: f32,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            walks_per_node: 4,
            walk_length: 20,
            window: 5,
            negatives: 2,
            lr: 0.025,
            p: 1.0,
            q: 1.0,
        }
    }
}

/// DeepWalk / Node2Vec model (selected by `p`, `q`).
#[derive(Clone, Debug)]
pub struct WalkModel {
    /// Walk configuration.
    pub config: WalkConfig,
    name: &'static str,
}

impl WalkModel {
    /// Uniform random walks.
    pub fn deepwalk() -> Self {
        Self {
            config: WalkConfig::default(),
            name: "DeepWalk",
        }
    }

    /// Biased second-order walks (default `p = 0.5`, `q = 2.0` favours
    /// BFS-like local exploration).
    pub fn node2vec() -> Self {
        Self {
            config: WalkConfig {
                p: 0.5,
                q: 2.0,
                ..WalkConfig::default()
            },
            name: "Node2Vec",
        }
    }

    /// Generates one walk from `start`.
    fn walk(&self, g: &CsrGraph, start: usize, rng: &mut SeedRng) -> Vec<usize> {
        let mut walk = Vec::with_capacity(self.config.walk_length);
        walk.push(start);
        let mut prev: Option<usize> = None;
        let mut cur = start;
        for _ in 1..self.config.walk_length {
            let ns = g.neighbors(cur);
            if ns.is_empty() {
                break;
            }
            let next = if (self.config.p - 1.0).abs() < 1e-6 && (self.config.q - 1.0).abs() < 1e-6 {
                ns[rng.below(ns.len())] as usize
            } else {
                // Node2Vec second-order bias.
                let weights: Vec<f32> = ns
                    .iter()
                    .map(|&t| {
                        let t = t as usize;
                        match prev {
                            Some(p_node) if t == p_node => 1.0 / self.config.p,
                            Some(p_node) if g.has_edge(p_node, t) => 1.0,
                            Some(_) => 1.0 / self.config.q,
                            None => 1.0,
                        }
                    })
                    .collect();
                ns[rng.weighted_index(&weights)] as usize
            };
            walk.push(next);
            prev = Some(cur);
            cur = next;
        }
        walk
    }
}

impl ContrastiveModel for WalkModel {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        _x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        crate::models::ensure_full_graph_only(cfg, &self.name())?;
        crate::models::ensure_full_loss_only(cfg, &self.name())?;
        let start = Instant::now();
        let n = g.num_nodes();
        let d = cfg.embed_dim;
        let mut rng = rng.fork("walks");
        let mut w_in = Matrix::zeros(n, d);
        for v in w_in.as_mut_slice() {
            *v = (rng.uniform() - 0.5) / d as f32;
        }
        let w_out = Matrix::zeros(n, d);
        // Degree-based negative-sampling table.
        let neg_weights: Vec<f32> = (0..n)
            .map(|v| (g.degree(v) as f32 + 1.0).powf(0.75))
            .collect();
        let order: Vec<usize> = (0..n).collect();
        let mut step = WalkStep {
            model: self,
            g,
            rng,
            w_in,
            w_out,
            neg_weights,
            order,
        };
        let run = EpochDriver::new(cfg).run(&mut step, start)?;
        Ok(PretrainResult {
            embeddings: run.embeddings,
            encoder: None,
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints: run.checkpoints,
            loss_curve: run.loss_curve,
        })
    }
}

/// One DeepWalk / Node2Vec epoch: walks from every node with in-place SGNS
/// updates. There are no deferred gradients — the update *is* the epoch —
/// so `grads_mut` is empty, `apply` is a no-op, and `discard_supported` is
/// `false` (a retry would replay the bad updates on top of themselves; the
/// guard's halved lr still applies to later epochs).
struct WalkStep<'a> {
    model: &'a WalkModel,
    g: &'a CsrGraph,
    rng: SeedRng,
    w_in: Matrix,
    w_out: Matrix,
    neg_weights: Vec<f32>,
    order: Vec<usize>,
}

impl EpochStep for WalkStep<'_> {
    fn epoch(&mut self, cx: &mut EpochCtx<'_>) -> EpochOutcome {
        let conf = &self.model.config;
        let lr = cx.lr;
        let mut epoch_loss = 0.0f64;
        let mut pairs = 0usize;
        let mut order = std::mem::take(&mut self.order);
        self.rng.shuffle(&mut order);
        for &startv in &order {
            for _ in 0..conf.walks_per_node {
                let walk = self.model.walk(self.g, startv, &mut self.rng);
                for (i, &center) in walk.iter().enumerate() {
                    let lo = i.saturating_sub(conf.window);
                    let hi = (i + conf.window + 1).min(walk.len());
                    for &ctx in &walk[lo..hi] {
                        if ctx == center {
                            continue;
                        }
                        // SGNS update for (center -> ctx).
                        let score = ops::dot(self.w_in.row(center), self.w_out.row(ctx));
                        let p = activations::sigmoid(score);
                        epoch_loss -= f64::from((p.max(1e-7)).ln());
                        pairs += 1;
                        let gpos = lr * (1.0 - p);
                        let ctx_row = self.w_out.row(ctx).to_vec();
                        let cen_row = self.w_in.row(center).to_vec();
                        ops::axpy_slice(self.w_in.row_mut(center), gpos, &ctx_row);
                        ops::axpy_slice(self.w_out.row_mut(ctx), gpos, &cen_row);
                        for _ in 0..conf.negatives {
                            let negv = self.rng.weighted_index(&self.neg_weights);
                            if negv == center {
                                continue;
                            }
                            let score = ops::dot(self.w_in.row(center), self.w_out.row(negv));
                            let p = activations::sigmoid(score);
                            let gneg = -lr * p;
                            let neg_row = self.w_out.row(negv).to_vec();
                            let cen_row = self.w_in.row(center).to_vec();
                            ops::axpy_slice(self.w_in.row_mut(center), gneg, &neg_row);
                            ops::axpy_slice(self.w_out.row_mut(negv), gneg, &cen_row);
                        }
                    }
                }
            }
        }
        self.order = order;
        let embeddings_bad = cx.guard.embeddings_bad(&[&self.w_in]);
        EpochOutcome::Step {
            loss: (epoch_loss / pairs.max(1) as f64) as f32,
            embeddings_bad,
        }
    }

    fn grads_mut(&mut self) -> &mut [Matrix] {
        &mut []
    }

    fn base_lr(&self, _cfg: &TrainConfig) -> f32 {
        self.model.config.lr
    }

    fn discard_supported(&self) -> bool {
        false
    }

    fn apply(&mut self, _epoch: usize, _lr: f32, _loss: f32) {}

    fn embed(&mut self) -> Matrix {
        self.w_in.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_graph::generators;

    fn two_cliques() -> CsrGraph {
        // Two 10-cliques joined by a single bridge.
        let mut edges = Vec::new();
        for base in [0usize, 10] {
            for i in 0..10 {
                for j in (i + 1)..10 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 10));
        CsrGraph::from_edges(20, &edges)
    }

    #[test]
    fn walks_stay_on_graph() {
        let g = two_cliques();
        let model = WalkModel::deepwalk();
        let mut rng = SeedRng::new(0);
        for v in 0..20 {
            let w = model.walk(&g, v, &mut rng);
            assert_eq!(w[0], v);
            for pair in w.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]), "invalid step {pair:?}");
            }
        }
    }

    #[test]
    fn walk_stops_at_isolated_node() {
        let g = CsrGraph::from_edges(3, &[(1, 2)]);
        let model = WalkModel::deepwalk();
        let w = model.walk(&g, 0, &mut SeedRng::new(1));
        assert_eq!(w, vec![0]);
    }

    #[test]
    fn deepwalk_separates_communities() {
        let g = two_cliques();
        let x = Matrix::zeros(20, 1);
        let cfg = TrainConfig {
            epochs: 6,
            embed_dim: 8,
            ..Default::default()
        };
        let out = WalkModel::deepwalk()
            .pretrain(&g, &x, &cfg, &mut SeedRng::new(2))
            .unwrap();
        // Same-clique cosine should beat cross-clique cosine on average.
        let h = &out.embeddings;
        let mut same = 0.0;
        let mut cross = 0.0;
        let mut cs = 0;
        let mut cc = 0;
        for i in 0..20 {
            for j in (i + 1)..20 {
                let c = ops::cosine(h.row(i), h.row(j));
                if (i < 10) == (j < 10) {
                    same += c;
                    cs += 1;
                } else {
                    cross += c;
                    cc += 1;
                }
            }
        }
        assert!(
            same / cs as f32 > cross / cc as f32,
            "communities not separated"
        );
    }

    #[test]
    fn node2vec_runs_on_random_graph() {
        let mut rng = SeedRng::new(3);
        let g = generators::erdos_renyi(40, 0.15, &mut rng);
        let x = Matrix::zeros(40, 1);
        let cfg = TrainConfig {
            epochs: 2,
            embed_dim: 8,
            ..Default::default()
        };
        let out = WalkModel::node2vec()
            .pretrain(&g, &x, &cfg, &mut SeedRng::new(4))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert_eq!(out.embeddings.shape(), (40, 8));
    }
}
