//! The E²GCL model: coreset selection + importance-aware views + Eq. (5)
//! contrastive training (the full Alg. 1 / Alg. 2 / Alg. 3 stack).

use crate::checkpoint::{restore_params, StepState};
use crate::config::{MinibatchConfig, TrainConfig};
use crate::engine::{EpochCtx, EpochDriver, EpochOutcome, EpochStep};
use crate::models::{
    sample_negative_indices, select_negatives, ContrastiveModel, InfoNceStrategy, PretrainResult,
};
use e2gcl_graph::SparseMatrix;
use e2gcl_graph::{norm, CsrGraph, NeighborSampler};
use e2gcl_linalg::{Matrix, SeedRng, TrainError};
use e2gcl_nn::loss::InfoNceScratch;
use e2gcl_nn::sage::{SageCache, SageEncoder};
use e2gcl_nn::sgc::{SgcCache, SgcEncoder};
use e2gcl_nn::{
    gcn::GcnCache, loss, optim::Optimizer, Adam, ContrastiveLoss, FrozenEncoder, GcnEncoder,
    Neighborhoods,
};
use e2gcl_selector::baselines::{
    DegreeSelector, GrainSelector, KCenterGreedy, KMeansSelector, RandomSelector,
};
use e2gcl_selector::greedy::{GreedyConfig, GreedySelector};
use e2gcl_selector::{NodeSelector, Selection};
use e2gcl_views::uniform;
use e2gcl_views::{ViewConfig, ViewGenerator};
use std::time::Instant;

/// Which node-selection strategy to use (Table VII rows; `All` disables
/// selection entirely — the `E²GCL_{A,·}` ablations).
#[derive(Clone, Debug)]
pub enum SelectorKind {
    /// Alg. 2 (the paper's selector).
    Greedy(GreedyConfig),
    /// Uniform random.
    Random,
    /// Log-degree-weighted sampling.
    Degree,
    /// 10-way KMeans + even share.
    KMeans,
    /// K-Center-Greedy.
    Kcg,
    /// Grain-style influence maximisation.
    Grain,
    /// Train on every node (no selection).
    All,
}

/// How positive views are realised during training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewMode {
    /// One full-graph view pair per epoch; anchors read their rows out of a
    /// shared forward pass (the batched form — see `views::sampler` docs).
    GlobalBatched,
    /// The literal Alg. 3: two fresh ego views per anchor per batch, each
    /// encoded separately. Orders of magnitude slower; used to validate the
    /// batched form and for faithfulness experiments on small graphs.
    PerNodeEgo,
}

/// Which encoder family E²GCL trains (§IV-C Remarks: the view generator is
/// encoder-agnostic, so any GNN slots in).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncoderKind {
    /// The Eq. (1) GCN (the paper's default).
    Gcn,
    /// SGC — `A_n^L X W`, the Theorem-1 relaxation as an actual encoder.
    Sgc,
    /// GraphSAGE-mean — separate self/neighbour transforms.
    Sage,
}

/// Uniform facade over the supported encoders.
enum Encoder {
    Gcn(GcnEncoder),
    Sgc(SgcEncoder),
    Sage(SageEncoder),
}

enum EncoderCache {
    Gcn(GcnCache),
    Sgc(SgcCache),
    Sage(SageCache),
}

impl Encoder {
    fn new(kind: EncoderKind, d_x: usize, cfg: &TrainConfig, rng: &mut SeedRng) -> Encoder {
        match kind {
            EncoderKind::Gcn => Encoder::Gcn(GcnEncoder::new(&cfg.encoder_dims(d_x), rng)),
            EncoderKind::Sgc => Encoder::Sgc(SgcEncoder::new(d_x, cfg.embed_dim, 2, rng)),
            EncoderKind::Sage => Encoder::Sage(SageEncoder::new(&cfg.encoder_dims(d_x), rng)),
        }
    }

    /// The adjacency operator this encoder family aggregates with:
    /// symmetric GCN normalisation for GCN/SGC, row-stochastic mean for
    /// SAGE.
    fn adjacency(&self, g: &CsrGraph) -> SparseMatrix {
        match self {
            Encoder::Gcn(_) | Encoder::Sgc(_) => norm::normalized_adjacency(g),
            Encoder::Sage(_) => norm::row_normalized_adjacency(g),
        }
    }

    fn forward(&self, adj: &SparseMatrix, x: &Matrix) -> (Matrix, EncoderCache) {
        match self {
            Encoder::Gcn(e) => {
                let (h, c) = e.forward(adj, x);
                (h, EncoderCache::Gcn(c))
            }
            Encoder::Sgc(e) => {
                let (h, c) = e.forward(adj, x);
                (h, EncoderCache::Sgc(c))
            }
            Encoder::Sage(e) => {
                let (h, c) = e.forward(adj, x);
                (h, EncoderCache::Sage(c))
            }
        }
    }

    fn embed(&self, adj: &SparseMatrix, x: &Matrix) -> Matrix {
        match self {
            Encoder::Gcn(e) => e.embed(adj, x),
            Encoder::Sgc(e) => e.embed(adj, x),
            Encoder::Sage(e) => e.embed(adj, x),
        }
    }

    /// Hands the trained weights to the serving layer.
    fn into_frozen(self) -> FrozenEncoder {
        match self {
            Encoder::Gcn(e) => FrozenEncoder::Gcn(e),
            Encoder::Sgc(e) => FrozenEncoder::Sgc(e),
            Encoder::Sage(e) => FrozenEncoder::Sage(e),
        }
    }

    fn backward(&self, adj: &SparseMatrix, cache: &EncoderCache, d: &Matrix) -> Vec<Matrix> {
        match (self, cache) {
            (Encoder::Gcn(e), EncoderCache::Gcn(c)) => e.backward(adj, c, d),
            (Encoder::Sgc(e), EncoderCache::Sgc(c)) => e.backward(c, d),
            (Encoder::Sage(e), EncoderCache::Sage(c)) => e.backward(adj, c, d),
            _ => unreachable!("encoder/cache kind mismatch"),
        }
    }

    fn params(&self) -> &[Matrix] {
        match self {
            Encoder::Gcn(e) => e.params(),
            Encoder::Sgc(e) => e.params(),
            Encoder::Sage(e) => e.params(),
        }
    }

    fn params_mut(&mut self) -> &mut [Matrix] {
        match self {
            Encoder::Gcn(e) => e.params_mut(),
            Encoder::Sgc(e) => e.params_mut(),
            Encoder::Sage(e) => e.params_mut(),
        }
    }
}

/// Snapshot/restore shared by both E²GCL step variants: the mutable
/// cross-epoch state is exactly the encoder weights, the Adam moments and
/// the training RNG — selection, view generator and adjacency are rebuilt
/// deterministically from the run's master seed before `restore` is called.
fn e2gcl_snapshot(encoder: &Encoder, opt: &Adam, rng: &SeedRng) -> StepState {
    StepState::pack_trainer(encoder.params(), &[], opt, rng)
}

fn e2gcl_restore(
    encoder: &mut Encoder,
    opt: &mut Adam,
    rng: &mut SeedRng,
    state: &StepState,
) -> Result<(), TrainError> {
    let s = state.unpack_trainer(encoder.params().len(), 0)?;
    restore_params(encoder.params_mut(), &s.params)?;
    opt.restore_state(s.adam_t, s.adam_m, s.adam_v);
    *rng = s.rng;
    Ok(())
}

/// Which contrastive objective E²GCL trains with (DESIGN.md §6 ablation:
/// the paper's Eq. (5) margin loss vs GRACE-style InfoNCE on the same
/// selected anchors and views).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossKind {
    /// The paper's Eq. (5) Euclidean margin loss.
    Margin,
    /// Symmetric InfoNCE (NT-Xent) at temperature 0.5.
    InfoNce,
}

/// Which view-generation strategy to use (Table VI/VIII variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewStrategy {
    /// Edge-aware + feature-aware (the paper's generator).
    Importance,
    /// Both uniform (`E²GCL\F\S`).
    Uniform,
    /// Edges uniform, features aware (`E²GCL\S`).
    UniformEdges,
    /// Features uniform, edges aware (`E²GCL\F`).
    UniformFeatures,
}

/// Full E²GCL configuration.
#[derive(Clone, Debug)]
pub struct E2gclConfig {
    /// Node budget ratio `r` (`k = r·|V|`).
    pub node_ratio: f64,
    /// Selection strategy.
    pub selector: SelectorKind,
    /// View-generation strategy.
    pub strategy: ViewStrategy,
    /// Base view-generator parameters (β, candidate cap, L).
    pub view: ViewConfig,
    /// Neighbour ratio `τ̂` of the first view.
    pub tau_hat: f32,
    /// Neighbour ratio `τ̃` of the second view.
    pub tau_tilde: f32,
    /// Perturbation scale `η̂` of the first view.
    pub eta_hat: f32,
    /// Perturbation scale `η̃` of the second view.
    pub eta_tilde: f32,
    /// Negative samples per anchor (`|Neg_v|`).
    pub negatives: usize,
    /// Margin of the Eq. (5) loss.
    pub margin: f32,
    /// L2-normalise embeddings inside the loss. Distances then live on the
    /// unit sphere (max 2), so one margin works across datasets of very
    /// different feature scales and class counts.
    pub normalize: bool,
    /// Contrastive objective (margin vs InfoNCE ablation).
    pub loss: LossKind,
    /// Encoder family (GCN vs SGC — the §IV-C encoder-agnosticism demo).
    pub encoder: EncoderKind,
    /// Batched full-graph views vs literal per-node ego views.
    pub view_mode: ViewMode,
}

impl Default for E2gclConfig {
    fn default() -> Self {
        Self {
            node_ratio: 0.4,
            selector: SelectorKind::Greedy(GreedyConfig::default()),
            strategy: ViewStrategy::Importance,
            view: ViewConfig::default(),
            tau_hat: 1.0,
            tau_tilde: 0.8,
            eta_hat: 0.6,
            eta_tilde: 0.8,
            negatives: 5,
            margin: 1.0,
            normalize: true,
            loss: LossKind::Margin,
            encoder: EncoderKind::Gcn,
            view_mode: ViewMode::GlobalBatched,
        }
    }
}

/// The E²GCL contrastive learner.
#[derive(Clone, Debug, Default)]
pub struct E2gclModel {
    /// Model configuration.
    pub config: E2gclConfig,
}

impl E2gclModel {
    /// Model with explicit configuration.
    pub fn new(config: E2gclConfig) -> Self {
        Self { config }
    }

    /// Runs the configured node selector (Alg. 1 line 3 prerequisite).
    pub fn select_nodes(&self, g: &CsrGraph, x: &Matrix, rng: &mut SeedRng) -> Selection {
        let n = g.num_nodes();
        let budget = ((n as f64) * self.config.node_ratio).round().max(1.0) as usize;
        match &self.config.selector {
            SelectorKind::Greedy(cfg) => GreedySelector::new(cfg.clone()).select(g, x, budget, rng),
            SelectorKind::Random => RandomSelector.select(g, x, budget, rng),
            SelectorKind::Degree => DegreeSelector.select(g, x, budget, rng),
            SelectorKind::KMeans => KMeansSelector::default().select(g, x, budget, rng),
            SelectorKind::Kcg => KCenterGreedy.select(g, x, budget, rng),
            SelectorKind::Grain => GrainSelector::default().select(g, x, budget, rng),
            SelectorKind::All => Selection {
                nodes: (0..n).collect(),
                weights: vec![1.0; n],
            },
        }
    }

    fn view_config(&self) -> ViewConfig {
        let mut view = self.config.view.clone();
        match self.config.strategy {
            ViewStrategy::Importance => {
                view.edge_aware = true;
                view.feature_aware = true;
            }
            ViewStrategy::Uniform => {
                view.edge_aware = false;
                view.feature_aware = false;
            }
            ViewStrategy::UniformEdges => {
                view.edge_aware = false;
                view.feature_aware = true;
            }
            ViewStrategy::UniformFeatures => {
                view.edge_aware = true;
                view.feature_aware = false;
            }
        }
        view
    }
}

impl E2gclModel {
    /// The literal Alg. 3 training loop: every anchor gets two freshly
    /// sampled ego views per epoch, each encoded independently, and the
    /// Eq. (5) loss compares the *centre* representations. Quadratically
    /// more encoder work than the batched form — small graphs only.
    fn pretrain_per_node(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        let start = Instant::now();
        let selection = self.select_nodes(g, x, &mut rng.fork("selector"));
        let selection_time = start.elapsed();
        let generator = ViewGenerator::new(g, x, self.view_config(), &mut rng.fork("views"));
        let encoder = Encoder::new(self.config.encoder, x.cols(), cfg, &mut rng.fork("init"));
        let adj_orig = encoder.adjacency(g);
        let opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let train_rng = rng.fork("train");
        let mut step = E2gclPerNodeStep {
            model: self,
            x,
            cfg,
            selection,
            generator,
            encoder,
            adj_orig,
            opt,
            train_rng,
            grads: Vec::new(),
        };
        let run = EpochDriver::new(cfg).run(&mut step, start)?;
        Ok(PretrainResult {
            embeddings: run.embeddings,
            encoder: Some(step.encoder.into_frozen()),
            selection_time,
            total_time: start.elapsed(),
            checkpoints: run.checkpoints,
            loss_curve: run.loss_curve,
        })
    }
}

impl E2gclModel {
    /// Mini-batch E²GCL (DESIGN.md §13). Selection (Alg. 2) still runs on
    /// the full graph — it is a one-off preprocessing pass — but each epoch
    /// shuffles the selected anchors into seed batches, samples a
    /// fanout-bounded [`e2gcl_graph::GraphView`] per batch, corrupts the
    /// subgraph uniformly with the view parameters (edges kept at rate `τ`,
    /// features perturbed at rate `η`) and trains batch-local InfoNCE over
    /// the anchor rows.
    ///
    /// Two documented deviations from the full-graph step:
    /// * every selected anchor is visited once per epoch (uniform coverage)
    ///   instead of λ-weighted resampling — the importance weights steer a
    ///   *global* batch sampler the partitioned walk replaces;
    /// * the objective is always InfoNCE regardless of `config.loss`:
    ///   Eq. (5)'s negative sampling assumes a global anchor pool, while
    ///   NT-Xent uses the rest of the batch as negatives, which is exactly
    ///   what a sampled subgraph provides.
    fn pretrain_minibatch(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        mb: &MinibatchConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        let start = Instant::now();
        let selection = self.select_nodes(g, x, &mut rng.fork("selector"));
        let selection_time = start.elapsed();
        let encoder = Encoder::new(self.config.encoder, x.cols(), cfg, &mut rng.fork("init"));
        let adj_orig = encoder.adjacency(g);
        let opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let train_rng = rng.fork("train");
        // Sample exactly the encoder's receptive field: deeper nodes cannot
        // influence the anchor rows the loss reads.
        let hops = cfg.encoder_dims(x.cols()).len() - 1;
        let mut step = E2gclMinibatchStep {
            model: self,
            g,
            x,
            selection,
            batch_nodes: mb.batch_nodes,
            sampler: NeighborSampler::new(hops, mb.fanout),
            encoder,
            adj_orig,
            opt,
            train_rng,
            grads: Vec::new(),
            nce: InfoNceScratch::default(),
            loss_state: InfoNceStrategy::from_config(&cfg.loss, 0.5),
        };
        let run = EpochDriver::new(cfg).run(&mut step, start)?;
        Ok(PretrainResult {
            embeddings: run.embeddings,
            encoder: Some(step.encoder.into_frozen()),
            selection_time,
            total_time: start.elapsed(),
            checkpoints: run.checkpoints,
            loss_curve: run.loss_curve,
        })
    }
}

/// One mini-batch E²GCL epoch: per anchor batch, sample a subgraph view,
/// corrupt it twice, encode both corrupted views, InfoNCE over the anchor
/// rows, and accumulate encoder gradients at `1/num_batches` so the applied
/// update is the mean over batches.
struct E2gclMinibatchStep<'a> {
    model: &'a E2gclModel,
    g: &'a CsrGraph,
    x: &'a Matrix,
    selection: Selection,
    batch_nodes: usize,
    sampler: NeighborSampler,
    encoder: Encoder,
    adj_orig: SparseMatrix,
    opt: Adam,
    train_rng: SeedRng,
    grads: Vec<Matrix>,
    nce: InfoNceScratch,
    loss_state: InfoNceStrategy,
}

impl EpochStep for E2gclMinibatchStep<'_> {
    fn epoch(&mut self, cx: &mut EpochCtx<'_>) -> EpochOutcome {
        let conf = &self.model.config;
        let anchors = &self.selection.nodes;
        if anchors.is_empty() {
            return EpochOutcome::Stop;
        }
        let mut order: Vec<usize> = anchors.clone();
        self.train_rng.shuffle(&mut order);
        let num_batches = order.len().div_ceil(self.batch_nodes).max(1) as f32;
        let mut acc: Option<Vec<Matrix>> = None;
        let mut epoch_loss = 0.0f32;
        let mut embeddings_bad = false;
        let mut stepped = 0usize;
        for seeds in order.chunks(self.batch_nodes) {
            if seeds.len() < 2 {
                continue;
            }
            let view = self.sampler.sample(self.g, seeds, &mut self.train_rng);
            let xv = view.features(self.x);
            // Subgraph-local uniform corruption: keep edges at rate τ and
            // perturb feature entries at rate η (the uniform ablation of
            // Alg. 3 applied to the sampled view).
            let g1 =
                uniform::drop_edges_uniform(&view.graph, 1.0 - conf.tau_hat, &mut self.train_rng);
            let mut x1 = uniform::perturb_features_uniform(&xv, conf.eta_hat, &mut self.train_rng);
            let g2 =
                uniform::drop_edges_uniform(&view.graph, 1.0 - conf.tau_tilde, &mut self.train_rng);
            let x2 = uniform::perturb_features_uniform(&xv, conf.eta_tilde, &mut self.train_rng);
            cx.fault.corrupt_features(cx.epoch, &mut x1);
            let a1 = self.encoder.adjacency(&g1);
            let a2 = self.encoder.adjacency(&g2);
            let (h1, c1) = self.encoder.forward(&a1, &x1);
            let (h2, c2) = self.encoder.forward(&a2, &x2);
            let locals: Vec<usize> = seeds
                .iter()
                .map(|&v| view.local(v).expect("anchor is in its sampled view"))
                .collect();
            let scale = 1.0 / num_batches;
            match &mut self.loss_state {
                InfoNceStrategy::Full => {
                    let hb1 = h1.select_rows(&locals);
                    let hb2 = h2.select_rows(&locals);
                    let batch_loss = loss::info_nce_with(&hb1, &hb2, 0.5, &mut self.nce);
                    epoch_loss += batch_loss / num_batches;
                    let mut d_h1 = Matrix::zeros(h1.rows(), h1.cols());
                    let mut d_h2 = Matrix::zeros(h2.rows(), h2.cols());
                    for (i, &l) in locals.iter().enumerate() {
                        d_h1.set_row(l, self.nce.d_z1().row(i));
                        d_h2.set_row(l, self.nce.d_z2().row(i));
                    }
                    GcnEncoder::accumulate(&mut acc, self.encoder.backward(&a1, &c1, &d_h1), scale);
                    GcnEncoder::accumulate(&mut acc, self.encoder.backward(&a2, &c2, &d_h2), scale);
                    embeddings_bad = embeddings_bad || cx.guard.embeddings_bad(&[&hb1, &hb2]);
                }
                InfoNceStrategy::SmallNeg { k, strat } => {
                    // Negatives come from the anchor rows of this batch's
                    // sampled view, re-selected per batch on current
                    // embeddings.
                    let hb1 = h1.select_rows(&locals);
                    let hb2 = h2.select_rows(&locals);
                    let mut sel_rng = self.train_rng.fork("negatives");
                    strat.set_negatives(&select_negatives(&hb1, *k, &mut sel_rng));
                    let batch_loss = strat.compute(&hb1, &hb2);
                    epoch_loss += batch_loss / num_batches;
                    let mut d_h1 = Matrix::zeros(h1.rows(), h1.cols());
                    let mut d_h2 = Matrix::zeros(h2.rows(), h2.cols());
                    for (i, &l) in locals.iter().enumerate() {
                        d_h1.set_row(l, strat.d_z1().row(i));
                        d_h2.set_row(l, strat.d_z2().row(i));
                    }
                    GcnEncoder::accumulate(&mut acc, self.encoder.backward(&a1, &c1, &d_h1), scale);
                    GcnEncoder::accumulate(&mut acc, self.encoder.backward(&a2, &c2, &d_h2), scale);
                    embeddings_bad = embeddings_bad || cx.guard.embeddings_bad(&[&hb1, &hb2]);
                }
                InfoNceStrategy::Localized { hops, strat } => {
                    // Topology is the *uncorrupted* sampled view; anchors
                    // are the seed rows, negatives their L-hop neighbours
                    // inside the view. No row selection: gradients land on
                    // anchor and neighbour rows directly.
                    strat.set_topology(Neighborhoods::from_graph(&view.graph, *hops));
                    let mut anchor_ids = locals.clone();
                    anchor_ids.sort_unstable();
                    strat.set_anchors(Some(anchor_ids));
                    let batch_loss = strat.compute(&h1, &h2);
                    epoch_loss += batch_loss / num_batches;
                    GcnEncoder::accumulate(
                        &mut acc,
                        self.encoder.backward(&a1, &c1, strat.d_z1()),
                        scale,
                    );
                    GcnEncoder::accumulate(
                        &mut acc,
                        self.encoder.backward(&a2, &c2, strat.d_z2()),
                        scale,
                    );
                    embeddings_bad = embeddings_bad || cx.guard.embeddings_bad(&[&h1, &h2]);
                }
            }
            stepped += 1;
        }
        if stepped == 0 {
            return EpochOutcome::SkipSilently;
        }
        self.grads = acc.unwrap_or_default();
        EpochOutcome::Step {
            loss: epoch_loss,
            embeddings_bad,
        }
    }

    fn grads_mut(&mut self) -> &mut [Matrix] {
        &mut self.grads
    }

    fn apply(&mut self, _epoch: usize, lr: f32, _loss: f32) {
        self.opt.lr = lr;
        self.opt.step(self.encoder.params_mut(), &self.grads);
    }

    fn embed(&mut self) -> Matrix {
        self.encoder.embed(&self.adj_orig, self.x)
    }

    fn snapshot(&mut self) -> Option<StepState> {
        Some(e2gcl_snapshot(&self.encoder, &self.opt, &self.train_rng))
    }

    fn restore(&mut self, state: &StepState) -> Result<(), TrainError> {
        e2gcl_restore(&mut self.encoder, &mut self.opt, &mut self.train_rng, state)
    }
}

/// One literal Alg. 3 epoch: two fresh ego views per anchor, each encoded
/// independently, Eq. (5) on the centre representations.
struct E2gclPerNodeStep<'a> {
    model: &'a E2gclModel,
    x: &'a Matrix,
    cfg: &'a TrainConfig,
    selection: Selection,
    generator: ViewGenerator,
    encoder: Encoder,
    adj_orig: SparseMatrix,
    opt: Adam,
    train_rng: SeedRng,
    grads: Vec<Matrix>,
}

impl EpochStep for E2gclPerNodeStep<'_> {
    fn epoch(&mut self, cx: &mut EpochCtx<'_>) -> EpochOutcome {
        let conf = &self.model.config;
        let cfg = self.cfg;
        let anchors = &self.selection.nodes;
        let weights = &self.selection.weights;
        if anchors.is_empty() {
            return EpochOutcome::Stop;
        }
        let bsz = cfg.batch_size.min(anchors.len());
        let batch: Vec<usize> = (0..bsz)
            .map(|_| anchors[self.train_rng.weighted_index(weights)])
            .collect();
        // Encode each anchor's two ego views; remember everything the
        // backward pass needs.
        let mut hb1 = Matrix::zeros(bsz, cfg.embed_dim);
        let mut hb2 = Matrix::zeros(bsz, cfg.embed_dim);
        let mut ctx = Vec::with_capacity(bsz);
        for (i, &v) in batch.iter().enumerate() {
            let va =
                self.generator
                    .sample_ego_view(v, conf.tau_hat, conf.eta_hat, &mut self.train_rng);
            let vb = self.generator.sample_ego_view(
                v,
                conf.tau_tilde,
                conf.eta_tilde,
                &mut self.train_rng,
            );
            let aa = self.encoder.adjacency(&va.graph);
            let ab = self.encoder.adjacency(&vb.graph);
            let (ha, ca) = self.encoder.forward(&aa, &va.features);
            let (hb, cb) = self.encoder.forward(&ab, &vb.features);
            hb1.set_row(i, ha.row(va.center));
            hb2.set_row(i, hb.row(vb.center));
            ctx.push((va, aa, ca, ha.rows(), vb, ab, cb, hb.rows()));
        }
        let negatives: Vec<Vec<usize>> = (0..bsz)
            .map(|i| sample_negative_indices(bsz, i, conf.negatives, &mut self.train_rng))
            .collect();
        let (d1, d2, batch_loss) = if conf.normalize {
            let (u1, n1) = loss::normalize_rows(&hb1);
            let (u2, n2) = loss::normalize_rows(&hb2);
            let out = loss::margin_contrastive(&u1, &u2, &u2, &negatives, conf.margin);
            let mut du2 = out.d_tilde;
            du2.add_assign(&out.d_neg);
            (
                loss::normalize_backward(&u1, &n1, &out.d_hat),
                loss::normalize_backward(&u2, &n2, &du2),
                out.loss,
            )
        } else {
            let out = loss::margin_contrastive(&hb1, &hb2, &hb2, &negatives, conf.margin);
            let mut du2 = out.d_tilde;
            du2.add_assign(&out.d_neg);
            (out.d_hat, du2, out.loss)
        };
        // Backprop each ego view with a one-hot centre-row gradient.
        let mut acc: Option<Vec<Matrix>> = None;
        for (i, (va, aa, ca, na, vb, ab, cb, nb)) in ctx.iter().enumerate() {
            let mut da = Matrix::zeros(*na, cfg.embed_dim);
            da.set_row(va.center, d1.row(i));
            GcnEncoder::accumulate(&mut acc, self.encoder.backward(aa, ca, &da), 1.0);
            let mut db = Matrix::zeros(*nb, cfg.embed_dim);
            db.set_row(vb.center, d2.row(i));
            GcnEncoder::accumulate(&mut acc, self.encoder.backward(ab, cb, &db), 1.0);
        }
        self.grads = acc.unwrap_or_default();
        let embeddings_bad = cx.guard.embeddings_bad(&[&hb1, &hb2]);
        EpochOutcome::Step {
            loss: batch_loss,
            embeddings_bad,
        }
    }

    fn grads_mut(&mut self) -> &mut [Matrix] {
        &mut self.grads
    }

    fn apply(&mut self, _epoch: usize, lr: f32, _loss: f32) {
        self.opt.lr = lr;
        self.opt.step(self.encoder.params_mut(), &self.grads);
    }

    fn embed(&mut self) -> Matrix {
        self.encoder.embed(&self.adj_orig, self.x)
    }

    fn snapshot(&mut self) -> Option<StepState> {
        Some(e2gcl_snapshot(&self.encoder, &self.opt, &self.train_rng))
    }

    fn restore(&mut self, state: &StepState) -> Result<(), TrainError> {
        e2gcl_restore(&mut self.encoder, &mut self.opt, &mut self.train_rng, state)
    }
}

impl ContrastiveModel for E2gclModel {
    fn name(&self) -> String {
        "E2GCL".to_string()
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        if let Some(mb) = &cfg.minibatch {
            if self.config.view_mode == ViewMode::PerNodeEgo {
                return Err(TrainError::InvalidConfig(
                    "per-node ego view mode has no mini-batch form; \
                     use ViewMode::GlobalBatched"
                        .into(),
                ));
            }
            if !mb.is_full_batch(g.num_nodes()) {
                return self.pretrain_minibatch(g, x, cfg, mb, rng);
            }
            // Degenerate mini-batch (whole graph in one batch, unlimited
            // fanout): fall through to the full-graph step *before* drawing
            // any extra randomness, so the run is bitwise identical to
            // `minibatch: None` (tests/minibatch_equivalence.rs).
        }
        if self.config.view_mode == ViewMode::PerNodeEgo {
            if !cfg.loss.is_full() {
                return Err(TrainError::InvalidConfig(
                    "per-node ego view mode supports only the full contrastive \
                     loss; unset cfg.loss or use ViewMode::GlobalBatched"
                        .into(),
                ));
            }
            return self.pretrain_per_node(g, x, cfg, rng);
        }
        let start = Instant::now();
        // ---- Node selection (Alg. 2) ----
        let selection = self.select_nodes(g, x, &mut rng.fork("selector"));
        let selection_time = start.elapsed();
        // ---- View generator setup (Alg. 3 precomputation) ----
        let generator = ViewGenerator::new(g, x, self.view_config(), &mut rng.fork("views"));
        // ---- Encoder + optimiser ----
        let encoder = Encoder::new(self.config.encoder, x.cols(), cfg, &mut rng.fork("init"));
        let adj_orig = encoder.adjacency(g);
        let opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let train_rng = rng.fork("train");
        let mut loss_state = InfoNceStrategy::from_config(&cfg.loss, 0.5);
        if let InfoNceStrategy::Localized { hops, strat } = &mut loss_state {
            // Fixed per run: the topology of the *original* graph and the
            // selected anchors (global-view corruption keeps node ids).
            strat.set_topology(Neighborhoods::from_graph(g, *hops));
            let mut anchor_ids = selection.nodes.clone();
            anchor_ids.sort_unstable();
            strat.set_anchors(Some(anchor_ids));
        }
        let mut step = E2gclBatchedStep {
            model: self,
            x,
            cfg,
            selection,
            generator,
            encoder,
            adj_orig,
            opt,
            train_rng,
            grads: Vec::new(),
            loss_state,
        };
        let run = EpochDriver::new(cfg).run(&mut step, start)?;
        Ok(PretrainResult {
            embeddings: run.embeddings,
            encoder: Some(step.encoder.into_frozen()),
            selection_time,
            total_time: start.elapsed(),
            checkpoints: run.checkpoints,
            loss_curve: run.loss_curve,
        })
    }
}

/// One batched E²GCL epoch: two global views, λ-weighted anchor batches,
/// Eq. (5) (or InfoNCE) on rows read out of the shared forward passes.
struct E2gclBatchedStep<'a> {
    model: &'a E2gclModel,
    x: &'a Matrix,
    cfg: &'a TrainConfig,
    selection: Selection,
    generator: ViewGenerator,
    encoder: Encoder,
    adj_orig: SparseMatrix,
    opt: Adam,
    train_rng: SeedRng,
    grads: Vec<Matrix>,
    loss_state: InfoNceStrategy,
}

impl EpochStep for E2gclBatchedStep<'_> {
    fn epoch(&mut self, cx: &mut EpochCtx<'_>) -> EpochOutcome {
        let conf = &self.model.config;
        let cfg = self.cfg;
        let anchors = &self.selection.nodes;
        let weights = &self.selection.weights;
        if anchors.is_empty() {
            return EpochOutcome::Stop;
        }
        // Two diverse positive views per epoch (Alg. 1 line 3-4).
        let (g1, mut x1) =
            self.generator
                .sample_global_view(conf.tau_hat, conf.eta_hat, &mut self.train_rng);
        let (g2, x2) =
            self.generator
                .sample_global_view(conf.tau_tilde, conf.eta_tilde, &mut self.train_rng);
        cx.fault.corrupt_features(cx.epoch, &mut x1);
        let a1 = self.encoder.adjacency(&g1);
        let a2 = self.encoder.adjacency(&g2);
        let (h1, c1) = self.encoder.forward(&a1, &x1);
        let (h2, c2) = self.encoder.forward(&a2, &x2);
        let mut acc = None;
        let epoch_loss = match &mut self.loss_state {
            InfoNceStrategy::Full => {
                let mut d_h1 = Matrix::zeros(h1.rows(), h1.cols());
                let mut d_h2 = Matrix::zeros(h2.rows(), h2.cols());
                // λ-weighted anchor batches: sampling anchors ∝ λ reproduces
                // the Eq. (8) weighting in expectation while keeping the
                // per-batch loss unweighted.
                let num_batches = anchors.len().div_ceil(cfg.batch_size).max(1);
                let mut epoch_loss = 0.0f32;
                for _ in 0..num_batches {
                    let bsz = cfg.batch_size.min(anchors.len());
                    let batch: Vec<usize> = (0..bsz)
                        .map(|_| anchors[self.train_rng.weighted_index(weights)])
                        .collect();
                    let hb1 = h1.select_rows(&batch);
                    let hb2 = h2.select_rows(&batch);
                    let negatives: Vec<Vec<usize>> = (0..bsz)
                        .map(|i| {
                            sample_negative_indices(bsz, i, conf.negatives, &mut self.train_rng)
                        })
                        .collect();
                    // Optionally compute the loss on the unit sphere, then
                    // pull gradients back through the normalisation Jacobian.
                    let (d_hat, d_tilde_and_neg, batch_loss) = if conf.loss == LossKind::InfoNce {
                        let out = loss::info_nce(&hb1, &hb2, 0.5);
                        (out.d_z1, out.d_z2, out.loss)
                    } else if conf.normalize {
                        let (u1, n1) = loss::normalize_rows(&hb1);
                        let (u2, n2) = loss::normalize_rows(&hb2);
                        let out = loss::margin_contrastive(&u1, &u2, &u2, &negatives, conf.margin);
                        let mut du2 = out.d_tilde;
                        du2.add_assign(&out.d_neg);
                        (
                            loss::normalize_backward(&u1, &n1, &out.d_hat),
                            loss::normalize_backward(&u2, &n2, &du2),
                            out.loss,
                        )
                    } else {
                        let out =
                            loss::margin_contrastive(&hb1, &hb2, &hb2, &negatives, conf.margin);
                        let mut du2 = out.d_tilde;
                        du2.add_assign(&out.d_neg);
                        (out.d_hat, du2, out.loss)
                    };
                    epoch_loss += batch_loss / num_batches as f32;
                    // Scatter batch gradients back to full-view rows.
                    for (i, &v) in batch.iter().enumerate() {
                        for (dst, &src) in d_h1.row_mut(v).iter_mut().zip(d_hat.row(i)) {
                            *dst += src / num_batches as f32;
                        }
                        for (dst, &src) in d_h2.row_mut(v).iter_mut().zip(d_tilde_and_neg.row(i)) {
                            *dst += src / num_batches as f32;
                        }
                    }
                }
                // Backprop both views and accumulate; the engine decides
                // whether this epoch's update is applied.
                GcnEncoder::accumulate(&mut acc, self.encoder.backward(&a1, &c1, &d_h1), 1.0);
                GcnEncoder::accumulate(&mut acc, self.encoder.backward(&a2, &c2, &d_h2), 1.0);
                epoch_loss
            }
            InfoNceStrategy::SmallNeg { k, strat } => {
                // Sub-quadratic path (DESIGN.md §15): every selected anchor
                // trains once per epoch against k representative negatives
                // re-selected on the current view-1 embeddings; replaces the
                // λ-resampled batch loop and the `LossKind` objective.
                let mut sel_rng = self.train_rng.fork("negatives");
                let identity =
                    anchors.len() == h1.rows() && anchors.iter().enumerate().all(|(i, &v)| i == v);
                if identity {
                    strat.set_negatives(&select_negatives(&h1, *k, &mut sel_rng));
                    let epoch_loss = strat.compute(&h1, &h2);
                    GcnEncoder::accumulate(
                        &mut acc,
                        self.encoder.backward(&a1, &c1, strat.d_z1()),
                        1.0,
                    );
                    GcnEncoder::accumulate(
                        &mut acc,
                        self.encoder.backward(&a2, &c2, strat.d_z2()),
                        1.0,
                    );
                    epoch_loss
                } else {
                    let hb1 = h1.select_rows(anchors);
                    let hb2 = h2.select_rows(anchors);
                    strat.set_negatives(&select_negatives(&hb1, *k, &mut sel_rng));
                    let epoch_loss = strat.compute(&hb1, &hb2);
                    let mut d_h1 = Matrix::zeros(h1.rows(), h1.cols());
                    let mut d_h2 = Matrix::zeros(h2.rows(), h2.cols());
                    for (i, &v) in anchors.iter().enumerate() {
                        d_h1.set_row(v, strat.d_z1().row(i));
                        d_h2.set_row(v, strat.d_z2().row(i));
                    }
                    GcnEncoder::accumulate(&mut acc, self.encoder.backward(&a1, &c1, &d_h1), 1.0);
                    GcnEncoder::accumulate(&mut acc, self.encoder.backward(&a2, &c2, &d_h2), 1.0);
                    epoch_loss
                }
            }
            InfoNceStrategy::Localized { strat, .. } => {
                // Topology and anchors were fixed at construction; the
                // sparse kernel reads/writes full-view rows directly.
                let epoch_loss = strat.compute(&h1, &h2);
                GcnEncoder::accumulate(
                    &mut acc,
                    self.encoder.backward(&a1, &c1, strat.d_z1()),
                    1.0,
                );
                GcnEncoder::accumulate(
                    &mut acc,
                    self.encoder.backward(&a2, &c2, strat.d_z2()),
                    1.0,
                );
                epoch_loss
            }
        };
        self.grads = acc.unwrap_or_default();
        let embeddings_bad = cx.guard.embeddings_bad(&[&h1, &h2]);
        EpochOutcome::Step {
            loss: epoch_loss,
            embeddings_bad,
        }
    }

    fn grads_mut(&mut self) -> &mut [Matrix] {
        &mut self.grads
    }

    fn apply(&mut self, _epoch: usize, lr: f32, _loss: f32) {
        self.opt.lr = lr;
        self.opt.step(self.encoder.params_mut(), &self.grads);
    }

    fn embed(&mut self) -> Matrix {
        self.encoder.embed(&self.adj_orig, self.x)
    }

    fn snapshot(&mut self) -> Option<StepState> {
        Some(e2gcl_snapshot(&self.encoder, &self.opt, &self.train_rng))
    }

    fn restore(&mut self, state: &StepState) -> Result<(), TrainError> {
        e2gcl_restore(&mut self.encoder, &mut self.opt, &mut self.train_rng, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_datasets::{spec, NodeDataset};

    fn tiny_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 8,
            batch_size: 64,
            ..Default::default()
        }
    }

    fn tiny_data() -> NodeDataset {
        NodeDataset::generate(&spec("cora-sim").unwrap(), 0.06, 3)
    }

    #[test]
    fn pretrain_produces_finite_embeddings() {
        let d = tiny_data();
        let model = E2gclModel::default();
        let out = model
            .pretrain(&d.graph, &d.features, &tiny_cfg(), &mut SeedRng::new(0))
            .unwrap();
        assert_eq!(out.embeddings.rows(), d.num_nodes());
        assert_eq!(out.embeddings.cols(), 64);
        assert!(!out.embeddings.has_non_finite());
        assert_eq!(out.loss_curve.len(), 8);
        assert!(out.total_time >= out.selection_time);
    }

    #[test]
    fn loss_decreases_over_training() {
        let d = tiny_data();
        let model = E2gclModel::default();
        let cfg = TrainConfig {
            epochs: 15,
            batch_size: 64,
            ..Default::default()
        };
        let out = model
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(1))
            .unwrap();
        let first = out.loss_curve[..3].iter().sum::<f32>() / 3.0;
        let last = out.loss_curve[12..].iter().sum::<f32>() / 3.0;
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn checkpoints_recorded_when_requested() {
        let d = tiny_data();
        let model = E2gclModel::default();
        let cfg = TrainConfig {
            epochs: 6,
            checkpoint_every: Some(2),
            ..tiny_cfg()
        };
        let out = model
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(2))
            .unwrap();
        assert_eq!(out.checkpoints.len(), 3);
        // Times strictly increasing.
        for w in out.checkpoints.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn all_selector_kinds_run() {
        let d = tiny_data();
        let kinds = [
            SelectorKind::Greedy(GreedyConfig {
                num_clusters: 8,
                sample_size: 50,
                ..Default::default()
            }),
            SelectorKind::Random,
            SelectorKind::Degree,
            SelectorKind::KMeans,
            SelectorKind::Kcg,
            SelectorKind::Grain,
            SelectorKind::All,
        ];
        for kind in kinds {
            let model = E2gclModel::new(E2gclConfig {
                selector: kind.clone(),
                ..Default::default()
            });
            let sel = model.select_nodes(&d.graph, &d.features, &mut SeedRng::new(3));
            let expected = match kind {
                SelectorKind::All => d.num_nodes(),
                _ => ((d.num_nodes() as f64) * 0.4).round() as usize,
            };
            assert_eq!(sel.nodes.len(), expected, "{kind:?}");
        }
    }

    #[test]
    fn every_view_strategy_trains() {
        let d = tiny_data();
        for strategy in [
            ViewStrategy::Importance,
            ViewStrategy::Uniform,
            ViewStrategy::UniformEdges,
            ViewStrategy::UniformFeatures,
        ] {
            let model = E2gclModel::new(E2gclConfig {
                strategy,
                ..Default::default()
            });
            let cfg = TrainConfig {
                epochs: 3,
                ..tiny_cfg()
            };
            let out = model
                .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(4))
                .unwrap();
            assert!(!out.embeddings.has_non_finite(), "{strategy:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = tiny_data();
        let model = E2gclModel::default();
        let cfg = TrainConfig {
            epochs: 3,
            ..tiny_cfg()
        };
        let a = model
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(5))
            .unwrap();
        let b = model
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(5))
            .unwrap();
        assert_eq!(a.embeddings, b.embeddings);
    }

    /// The literal per-node Alg. 3 path trains and lands in the same
    /// quality regime as the batched form (the two are distributionally
    /// equivalent for the anchors).
    #[test]
    fn per_node_ego_mode_matches_batched_quality() {
        let d = tiny_data();
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 32,
            ..Default::default()
        };
        let batched = E2gclModel::default()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(9))
            .unwrap();
        let per_node = E2gclModel::new(E2gclConfig {
            view_mode: ViewMode::PerNodeEgo,
            ..Default::default()
        })
        .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(9))
        .unwrap();
        assert!(!per_node.embeddings.has_non_finite());
        let acc =
            |h: &Matrix| crate::eval::node_classification(h, &d.labels, d.num_classes, 3, 0).0;
        let (ab, ap) = (acc(&batched.embeddings), acc(&per_node.embeddings));
        assert!(
            (ab - ap).abs() < 0.25,
            "modes diverged: batched {ab} vs per-node {ap}"
        );
    }

    fn minibatch_cfg(batch_nodes: usize, fanout: Option<usize>) -> TrainConfig {
        TrainConfig {
            minibatch: Some(crate::config::MinibatchConfig {
                batch_nodes,
                fanout,
            }),
            ..tiny_cfg()
        }
    }

    #[test]
    fn minibatch_trains_and_loss_falls() {
        let d = tiny_data();
        let cfg = TrainConfig {
            epochs: 10,
            ..minibatch_cfg(48, Some(5))
        };
        let out = E2gclModel::default()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(0))
            .unwrap();
        assert_eq!(out.embeddings.rows(), d.num_nodes());
        assert!(!out.embeddings.has_non_finite());
        assert_eq!(out.loss_curve.len(), 10);
        assert!(
            out.loss_curve.last().unwrap() < out.loss_curve.first().unwrap(),
            "{:?}",
            out.loss_curve
        );
    }

    #[test]
    fn minibatch_is_deterministic_and_supports_every_encoder() {
        let d = tiny_data();
        for encoder in [EncoderKind::Gcn, EncoderKind::Sgc, EncoderKind::Sage] {
            let model = E2gclModel::new(E2gclConfig {
                encoder,
                selector: SelectorKind::Degree,
                ..Default::default()
            });
            let cfg = TrainConfig {
                epochs: 3,
                ..minibatch_cfg(32, Some(4))
            };
            let run = |seed| {
                model
                    .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(seed))
                    .unwrap()
            };
            let (a, b) = (run(5), run(5));
            assert_eq!(a.embeddings, b.embeddings, "{encoder:?}");
            assert_eq!(a.loss_curve, b.loss_curve, "{encoder:?}");
            assert!(!a.embeddings.has_non_finite(), "{encoder:?}");
        }
    }

    #[test]
    fn per_node_ego_rejects_minibatch() {
        let d = tiny_data();
        let model = E2gclModel::new(E2gclConfig {
            view_mode: ViewMode::PerNodeEgo,
            ..Default::default()
        });
        let err = model
            .pretrain(
                &d.graph,
                &d.features,
                &minibatch_cfg(32, Some(4)),
                &mut SeedRng::new(0),
            )
            .unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn sub_quadratic_strategies_train_batched_and_minibatch() {
        use crate::config::LossStrategy;
        let d = tiny_data();
        for loss in [
            LossStrategy::SmallNeg { negatives: 32 },
            LossStrategy::Localized { hops: 2 },
        ] {
            for mb in [
                None,
                Some(crate::config::MinibatchConfig {
                    batch_nodes: 48,
                    fanout: Some(5),
                }),
            ] {
                let cfg = TrainConfig {
                    epochs: 4,
                    loss: loss.clone(),
                    minibatch: mb,
                    ..tiny_cfg()
                };
                let run = |seed: u64| {
                    E2gclModel::default()
                        .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(seed))
                        .unwrap()
                };
                let (a, b) = (run(5), run(5));
                assert!(!a.embeddings.has_non_finite(), "{}", loss.name());
                assert_eq!(a.embeddings, b.embeddings, "{}", loss.name());
                assert_eq!(a.loss_curve, b.loss_curve, "{}", loss.name());
            }
        }
    }

    /// `SelectorKind::All` makes the selected anchors the identity set, so
    /// the small-negative-set epoch takes the copy-free full-view path.
    #[test]
    fn smallneg_with_all_selector_trains_and_loss_falls() {
        use crate::config::LossStrategy;
        let d = tiny_data();
        let model = E2gclModel::new(E2gclConfig {
            selector: SelectorKind::All,
            ..Default::default()
        });
        let cfg = TrainConfig {
            epochs: 10,
            loss: LossStrategy::SmallNeg { negatives: 64 },
            ..tiny_cfg()
        };
        let out = model
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(12))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert!(
            out.loss_curve.last().unwrap() < out.loss_curve.first().unwrap(),
            "{:?}",
            out.loss_curve
        );
    }

    #[test]
    fn per_node_ego_rejects_sub_quadratic_loss() {
        let d = tiny_data();
        let model = E2gclModel::new(E2gclConfig {
            view_mode: ViewMode::PerNodeEgo,
            ..Default::default()
        });
        let cfg = TrainConfig {
            loss: crate::config::LossStrategy::Localized { hops: 1 },
            ..tiny_cfg()
        };
        let err = model
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(0))
            .unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn info_nce_loss_kind_trains() {
        let d = tiny_data();
        let model = E2gclModel::new(E2gclConfig {
            loss: LossKind::InfoNce,
            ..Default::default()
        });
        let out = model
            .pretrain(&d.graph, &d.features, &tiny_cfg(), &mut SeedRng::new(6))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert!(
            out.loss_curve.last().unwrap() <= out.loss_curve.first().unwrap(),
            "{:?}",
            out.loss_curve
        );
    }

    #[test]
    fn sage_encoder_trains() {
        let d = tiny_data();
        let model = E2gclModel::new(E2gclConfig {
            encoder: EncoderKind::Sage,
            ..Default::default()
        });
        let out = model
            .pretrain(&d.graph, &d.features, &tiny_cfg(), &mut SeedRng::new(11))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert!(
            out.loss_curve.last().unwrap() < out.loss_curve.first().unwrap(),
            "{:?}",
            out.loss_curve
        );
    }

    #[test]
    fn sgc_encoder_trains() {
        let d = tiny_data();
        let model = E2gclModel::new(E2gclConfig {
            encoder: EncoderKind::Sgc,
            ..Default::default()
        });
        let out = model
            .pretrain(&d.graph, &d.features, &tiny_cfg(), &mut SeedRng::new(8))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert_eq!(out.embeddings.cols(), 64);
        assert!(
            out.loss_curve.last().unwrap() < out.loss_curve.first().unwrap(),
            "{:?}",
            out.loss_curve
        );
    }

    #[test]
    fn unnormalized_margin_loss_still_trains() {
        let d = tiny_data();
        let model = E2gclModel::new(E2gclConfig {
            normalize: false,
            margin: 3.0,
            ..Default::default()
        });
        let out = model
            .pretrain(&d.graph, &d.features, &tiny_cfg(), &mut SeedRng::new(7))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
    }
}
