//! BGRL (Thakoor et al. 2021) and AFGRL (Lee et al. 2022).
//!
//! Both are negative-free bootstrap learners: an online GCN + predictor is
//! trained to match an EMA *target* encoder, which never receives
//! gradients. BGRL feeds the two branches different corrupted views; AFGRL
//! is augmentation-free — both branches see the original graph and each
//! node's bootstrap target is the mean target-embedding of its *adaptive
//! positives* (neighbours that are also nearest neighbours in target
//! embedding space), which is the mechanism AFGRL contributes.

use crate::config::TrainConfig;
use crate::guard::{GuardAction, NumericGuard};
use crate::models::{ContrastiveModel, PretrainResult};
use e2gcl_graph::{norm, CsrGraph};
use e2gcl_linalg::{ops, Matrix, SeedRng, TrainError};
use e2gcl_nn::{ema, loss, optim, optim::Optimizer, Adam, GcnEncoder, Mlp};
use e2gcl_views::uniform;
use std::time::Instant;

/// Shared configuration of the bootstrap models.
#[derive(Clone, Debug)]
pub struct BgrlConfig {
    /// Edge-drop probability per view (BGRL only).
    pub drop_edge: (f32, f32),
    /// Feature-mask probability per view (BGRL only).
    pub mask_feat: (f32, f32),
    /// Base EMA decay of the target network.
    pub ema_decay: f32,
    /// AFGRL: how many nearest target-space neighbours qualify as positives.
    pub knn: usize,
}

impl Default for BgrlConfig {
    fn default() -> Self {
        Self {
            drop_edge: (0.2, 0.4),
            mask_feat: (0.2, 0.3),
            ema_decay: 0.99,
            knn: 8,
        }
    }
}

/// The BGRL model.
#[derive(Clone, Debug, Default)]
pub struct BgrlModel {
    /// Model configuration.
    pub config: BgrlConfig,
}

/// The AFGRL model (augmentation-free bootstrap).
#[derive(Clone, Debug, Default)]
pub struct AfgrlModel {
    /// Model configuration.
    pub config: BgrlConfig,
}

/// One bootstrap branch step: predict targets from online embeddings,
/// returning `(loss, dH_online, predictor grads applied in place)`.
fn bootstrap_step(
    predictor: &mut Mlp,
    h_online: &Matrix,
    target: &Matrix,
    lr: f32,
) -> (f32, Matrix) {
    let (pred, cache) = predictor.forward(h_online);
    let (l, d_pred) = loss::cosine_bootstrap(&pred, target);
    let grads = predictor.backward(&cache, &d_pred);
    let dh = grads.dx.clone();
    predictor.step(&grads, lr, 0.0);
    (l, dh)
}

impl ContrastiveModel for BgrlModel {
    fn name(&self) -> String {
        "BGRL".to_string()
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        let start = Instant::now();
        let adj_orig = norm::normalized_adjacency(g);
        let dims = cfg.encoder_dims(x.cols());
        let mut online = GcnEncoder::new(&dims, &mut rng.fork("online"));
        let mut target = online.clone();
        let mut predictor = Mlp::new(
            cfg.embed_dim,
            cfg.embed_dim * 2,
            cfg.embed_dim,
            &mut rng.fork("pred"),
        );
        let mut opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let mut train_rng = rng.fork("train");
        let mut loss_curve = Vec::with_capacity(cfg.epochs);
        let mut checkpoints = Vec::new();
        let mut guard = NumericGuard::new(&cfg.guard);
        let fault = cfg.fault.clone().unwrap_or_default();
        let mut epoch = 0;
        while epoch < cfg.epochs {
            let lr = cfg.lr * guard.lr_scale;
            let g1 = uniform::drop_edges_uniform(g, self.config.drop_edge.0, &mut train_rng);
            let g2 = uniform::drop_edges_uniform(g, self.config.drop_edge.1, &mut train_rng);
            let mut x1 = uniform::mask_feature_dims(x, self.config.mask_feat.0, &mut train_rng);
            let x2 = uniform::mask_feature_dims(x, self.config.mask_feat.1, &mut train_rng);
            fault.corrupt_features(epoch, &mut x1);
            let a1 = norm::normalized_adjacency(&g1);
            let a2 = norm::normalized_adjacency(&g2);
            let (h1, c1) = online.forward(&a1, &x1);
            let (h2, c2) = online.forward(&a2, &x2);
            let t1 = target.embed(&a1, &x1);
            let t2 = target.embed(&a2, &x2);
            // Symmetric bootstrap: predict the other branch's target.
            let (la, d_h1) = bootstrap_step(&mut predictor, &h1, &t2, lr);
            let (lb, d_h2) = bootstrap_step(&mut predictor, &h2, &t1, lr);
            let mut acc = None;
            GcnEncoder::accumulate(&mut acc, online.backward(&a1, &c1, &d_h1), 1.0);
            GcnEncoder::accumulate(&mut acc, online.backward(&a2, &c2, &d_h2), 1.0);
            let Some(mut grads) = acc else {
                epoch += 1;
                continue;
            };
            let l = fault.corrupt_loss(epoch, 0.5 * (la + lb));
            fault.corrupt_gradients(epoch, &mut grads);
            let grads_bad = optim::grads_non_finite(&grads);
            let emb_bad = guard.embeddings_bad(&[&h1, &h2]);
            match guard.inspect(epoch, l, grads_bad, emb_bad)? {
                GuardAction::Proceed => {
                    if let Some(max) = cfg.guard.max_grad_norm {
                        optim::clip_grad_norm(&mut grads, max);
                    }
                    opt.lr = lr;
                    opt.step(online.params_mut(), &grads);
                    let decay = ema::annealed_decay(self.config.ema_decay, epoch, cfg.epochs);
                    ema::ema_update(target.params_mut(), online.params(), decay);
                    loss_curve.push(l);
                    if let Some(every) = cfg.checkpoint_every {
                        if (epoch + 1) % every == 0 || epoch + 1 == cfg.epochs {
                            checkpoints
                                .push((start.elapsed().as_secs_f64(), online.embed(&adj_orig, x)));
                        }
                    }
                    epoch += 1;
                }
                GuardAction::SkipEpoch => {
                    loss_curve.push(l);
                    epoch += 1;
                }
                // The predictor already stepped; the encoder update is
                // discarded and the epoch re-runs at reduced lr.
                GuardAction::RetryEpoch { .. } => {}
            }
        }
        Ok(PretrainResult {
            embeddings: online.embed(&adj_orig, x),
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints,
            loss_curve,
        })
    }
}

/// AFGRL positives: neighbours of `v` ranked by cosine similarity in target
/// space, top `knn` kept. Falls back to `v` itself for isolated nodes.
fn afgrl_positive_targets(g: &CsrGraph, target_h: &Matrix, knn: usize) -> Matrix {
    let n = g.num_nodes();
    let d = target_h.cols();
    let mut out = Matrix::zeros(n, d);
    for v in 0..n {
        let mut scored: Vec<(f32, usize)> = g
            .neighbors(v)
            .iter()
            .map(|&u| {
                let u = u as usize;
                (ops::cosine(target_h.row(v), target_h.row(u)), u)
            })
            .collect();
        scored.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
        scored.truncate(knn.max(1));
        if scored.is_empty() {
            out.set_row(v, target_h.row(v));
            continue;
        }
        let inv = 1.0 / scored.len() as f32;
        let row = out.row_mut(v);
        for &(_, u) in &scored {
            ops::axpy_slice(row, inv, target_h.row(u));
        }
    }
    out
}

impl ContrastiveModel for AfgrlModel {
    fn name(&self) -> String {
        "AFGRL".to_string()
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        let start = Instant::now();
        let adj = norm::normalized_adjacency(g);
        let dims = cfg.encoder_dims(x.cols());
        let mut online = GcnEncoder::new(&dims, &mut rng.fork("online"));
        let mut target = online.clone();
        let mut predictor = Mlp::new(
            cfg.embed_dim,
            cfg.embed_dim * 2,
            cfg.embed_dim,
            &mut rng.fork("pred"),
        );
        let mut opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let mut loss_curve = Vec::with_capacity(cfg.epochs);
        let mut checkpoints = Vec::new();
        let mut guard = NumericGuard::new(&cfg.guard);
        let fault = cfg.fault.clone().unwrap_or_default();
        let mut epoch = 0;
        while epoch < cfg.epochs {
            let lr = cfg.lr * guard.lr_scale;
            let (h, cache) = online.forward(&adj, x);
            let t = target.embed(&adj, x);
            let positives = afgrl_positive_targets(g, &t, self.config.knn);
            let (l, d_h) = bootstrap_step(&mut predictor, &h, &positives, lr);
            let mut grads = online.backward(&adj, &cache, &d_h);
            let l = fault.corrupt_loss(epoch, l);
            fault.corrupt_gradients(epoch, &mut grads);
            let grads_bad = optim::grads_non_finite(&grads);
            let emb_bad = guard.embeddings_bad(&[&h]);
            match guard.inspect(epoch, l, grads_bad, emb_bad)? {
                GuardAction::Proceed => {
                    if let Some(max) = cfg.guard.max_grad_norm {
                        optim::clip_grad_norm(&mut grads, max);
                    }
                    opt.lr = lr;
                    opt.step(online.params_mut(), &grads);
                    let decay = ema::annealed_decay(self.config.ema_decay, epoch, cfg.epochs);
                    ema::ema_update(target.params_mut(), online.params(), decay);
                    loss_curve.push(l);
                    if let Some(every) = cfg.checkpoint_every {
                        if (epoch + 1) % every == 0 || epoch + 1 == cfg.epochs {
                            checkpoints
                                .push((start.elapsed().as_secs_f64(), online.embed(&adj, x)));
                        }
                    }
                    epoch += 1;
                }
                GuardAction::SkipEpoch => {
                    loss_curve.push(l);
                    epoch += 1;
                }
                GuardAction::RetryEpoch { .. } => {}
            }
        }
        Ok(PretrainResult {
            embeddings: online.embed(&adj, x),
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints,
            loss_curve,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_datasets::{spec, NodeDataset};

    fn tiny() -> (NodeDataset, TrainConfig) {
        (
            NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 0),
            TrainConfig {
                epochs: 10,
                ..Default::default()
            },
        )
    }

    #[test]
    fn bgrl_trains_without_nans() {
        let (d, cfg) = tiny();
        let out = BgrlModel::default()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(0))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert_eq!(out.loss_curve.len(), 10);
        // Bootstrap loss is bounded in [0, 4].
        assert!(out.loss_curve.iter().all(|&l| (0.0..=4.0).contains(&l)));
    }

    #[test]
    fn afgrl_trains_without_nans() {
        let (d, cfg) = tiny();
        let out = AfgrlModel::default()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(1))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
    }

    #[test]
    fn afgrl_positives_prefer_similar_neighbors() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let t = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.9, 0.1],  // most similar to node 0
            &[0.0, 1.0],  // orthogonal
            &[-1.0, 0.0], // opposite
        ]);
        let pos = afgrl_positive_targets(&g, &t, 1);
        // Node 0's positive should be node 1's embedding.
        assert_eq!(pos.row(0), t.row(1));
    }

    #[test]
    fn afgrl_isolated_node_self_target() {
        let g = CsrGraph::from_edges(2, &[]);
        let t = Matrix::from_rows(&[&[0.5, 0.5], &[1.0, -1.0]]);
        let pos = afgrl_positive_targets(&g, &t, 3);
        assert_eq!(pos.row(0), t.row(0));
        assert_eq!(pos.row(1), t.row(1));
    }
}
