//! BGRL (Thakoor et al. 2021) and AFGRL (Lee et al. 2022).
//!
//! Both are negative-free bootstrap learners: an online GCN + predictor is
//! trained to match an EMA *target* encoder, which never receives
//! gradients. BGRL feeds the two branches different corrupted views; AFGRL
//! is augmentation-free — both branches see the original graph and each
//! node's bootstrap target is the mean target-embedding of its *adaptive
//! positives* (neighbours that are also nearest neighbours in target
//! embedding space), which is the mechanism AFGRL contributes.

use crate::config::TrainConfig;
use crate::engine::{EpochCtx, EpochDriver, EpochOutcome, EpochStep};
use crate::models::{ContrastiveModel, PretrainResult};
use e2gcl_graph::{norm, CsrGraph, SparseMatrix};
use e2gcl_linalg::{ops, Matrix, SeedRng, TrainError};
use e2gcl_nn::{ema, loss, optim::Optimizer, Adam, GcnEncoder, GcnWorkspace, Mlp, MlpWorkspace};
use e2gcl_views::uniform;
use std::time::Instant;

/// Shared configuration of the bootstrap models.
#[derive(Clone, Debug)]
pub struct BgrlConfig {
    /// Edge-drop probability per view (BGRL only).
    pub drop_edge: (f32, f32),
    /// Feature-mask probability per view (BGRL only).
    pub mask_feat: (f32, f32),
    /// Base EMA decay of the target network.
    pub ema_decay: f32,
    /// AFGRL: how many nearest target-space neighbours qualify as positives.
    pub knn: usize,
}

impl Default for BgrlConfig {
    fn default() -> Self {
        Self {
            drop_edge: (0.2, 0.4),
            mask_feat: (0.2, 0.3),
            ema_decay: 0.99,
            knn: 8,
        }
    }
}

/// The BGRL model.
#[derive(Clone, Debug, Default)]
pub struct BgrlModel {
    /// Model configuration.
    pub config: BgrlConfig,
}

/// The AFGRL model (augmentation-free bootstrap).
#[derive(Clone, Debug, Default)]
pub struct AfgrlModel {
    /// Model configuration.
    pub config: BgrlConfig,
}

/// One bootstrap branch step: predict targets from online embeddings and
/// step the predictor in place. The loss value is returned; the gradient
/// w.r.t. the online embeddings lands in `ws.d_input()`.
fn bootstrap_step(
    predictor: &mut Mlp,
    h_online: &Matrix,
    target: &Matrix,
    lr: f32,
    ws: &mut MlpWorkspace,
    d_pred: &mut Matrix,
) -> f32 {
    predictor.forward_with(h_online, ws);
    let l = loss::cosine_bootstrap_with(ws.output(), target, d_pred);
    predictor.backward_with(h_online, d_pred, ws);
    predictor.step(ws.grads(), lr, 0.0);
    l
}

impl ContrastiveModel for BgrlModel {
    fn name(&self) -> String {
        "BGRL".to_string()
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        crate::models::ensure_full_graph_only(cfg, &self.name())?;
        crate::models::ensure_full_loss_only(cfg, &self.name())?;
        let start = Instant::now();
        let adj_orig = norm::normalized_adjacency(g);
        let dims = cfg.encoder_dims(x.cols());
        let online = GcnEncoder::new(&dims, &mut rng.fork("online"));
        let target = online.clone();
        let predictor = Mlp::new(
            cfg.embed_dim,
            cfg.embed_dim * 2,
            cfg.embed_dim,
            &mut rng.fork("pred"),
        );
        let opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let train_rng = rng.fork("train");
        let mut step = BgrlStep {
            config: &self.config,
            g,
            x,
            cfg,
            adj_orig,
            online,
            target,
            predictor,
            opt,
            train_rng,
            ws1: GcnWorkspace::new(),
            ws2: GcnWorkspace::new(),
            pws1: MlpWorkspace::new(),
            pws2: MlpWorkspace::new(),
            dp1: Matrix::default(),
            dp2: Matrix::default(),
        };
        let run = EpochDriver::new(cfg).run(&mut step, start)?;
        Ok(PretrainResult {
            embeddings: run.embeddings,
            encoder: None,
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints: run.checkpoints,
            loss_curve: run.loss_curve,
        })
    }
}

/// One BGRL epoch: two corrupted views, symmetric bootstrap against the EMA
/// target, online-encoder gradients staged for the engine.
struct BgrlStep<'a> {
    config: &'a BgrlConfig,
    g: &'a CsrGraph,
    x: &'a Matrix,
    cfg: &'a TrainConfig,
    adj_orig: SparseMatrix,
    online: GcnEncoder,
    target: GcnEncoder,
    predictor: Mlp,
    opt: Adam,
    train_rng: SeedRng,
    ws1: GcnWorkspace,
    ws2: GcnWorkspace,
    pws1: MlpWorkspace,
    pws2: MlpWorkspace,
    dp1: Matrix,
    dp2: Matrix,
}

impl EpochStep for BgrlStep<'_> {
    fn epoch(&mut self, cx: &mut EpochCtx<'_>) -> EpochOutcome {
        let g1 = uniform::drop_edges_uniform(self.g, self.config.drop_edge.0, &mut self.train_rng);
        let g2 = uniform::drop_edges_uniform(self.g, self.config.drop_edge.1, &mut self.train_rng);
        let mut x1 =
            uniform::mask_feature_dims(self.x, self.config.mask_feat.0, &mut self.train_rng);
        let x2 = uniform::mask_feature_dims(self.x, self.config.mask_feat.1, &mut self.train_rng);
        cx.fault.corrupt_features(cx.epoch, &mut x1);
        let a1 = norm::normalized_adjacency(&g1);
        let a2 = norm::normalized_adjacency(&g2);
        self.online.forward_with(&a1, &x1, &mut self.ws1);
        self.online.forward_with(&a2, &x2, &mut self.ws2);
        let t1 = self.target.embed(&a1, &x1);
        let t2 = self.target.embed(&a2, &x2);
        // Symmetric bootstrap: predict the other branch's target. The
        // predictor steps inside the epoch, before the guard verdict: on a
        // retry only the encoder update is discarded (as before).
        let la = bootstrap_step(
            &mut self.predictor,
            self.ws1.output(),
            &t2,
            cx.lr,
            &mut self.pws1,
            &mut self.dp1,
        );
        let lb = bootstrap_step(
            &mut self.predictor,
            self.ws2.output(),
            &t1,
            cx.lr,
            &mut self.pws2,
            &mut self.dp2,
        );
        self.online
            .backward_with(&a1, &mut self.ws1, self.pws1.d_input());
        self.online
            .backward_with(&a2, &mut self.ws2, self.pws2.d_input());
        for (acc, g) in self.ws1.grads_mut().iter_mut().zip(self.ws2.grads()) {
            acc.axpy(1.0, g);
        }
        let embeddings_bad = cx
            .guard
            .embeddings_bad(&[self.ws1.output(), self.ws2.output()]);
        EpochOutcome::Step {
            loss: 0.5 * (la + lb),
            embeddings_bad,
        }
    }

    fn grads_mut(&mut self) -> &mut [Matrix] {
        self.ws1.grads_mut()
    }

    fn apply(&mut self, epoch: usize, lr: f32, _loss: f32) {
        self.opt.lr = lr;
        self.opt.step(self.online.params_mut(), self.ws1.grads());
        let decay = ema::annealed_decay(self.config.ema_decay, epoch, self.cfg.epochs);
        ema::ema_update(self.target.params_mut(), self.online.params(), decay);
    }

    fn embed(&mut self) -> Matrix {
        self.online.embed(&self.adj_orig, self.x)
    }
}

/// AFGRL positives: neighbours of `v` ranked by cosine similarity in target
/// space, top `knn` kept. Falls back to `v` itself for isolated nodes.
fn afgrl_positive_targets(g: &CsrGraph, target_h: &Matrix, knn: usize) -> Matrix {
    let n = g.num_nodes();
    let d = target_h.cols();
    let mut out = Matrix::zeros(n, d);
    for v in 0..n {
        let mut scored: Vec<(f32, usize)> = g
            .neighbors(v)
            .iter()
            .map(|&u| {
                let u = u as usize;
                (ops::cosine(target_h.row(v), target_h.row(u)), u)
            })
            .collect();
        scored.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
        scored.truncate(knn.max(1));
        if scored.is_empty() {
            out.set_row(v, target_h.row(v));
            continue;
        }
        let inv = 1.0 / scored.len() as f32;
        let row = out.row_mut(v);
        for &(_, u) in &scored {
            ops::axpy_slice(row, inv, target_h.row(u));
        }
    }
    out
}

impl ContrastiveModel for AfgrlModel {
    fn name(&self) -> String {
        "AFGRL".to_string()
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        crate::models::ensure_full_graph_only(cfg, &self.name())?;
        crate::models::ensure_full_loss_only(cfg, &self.name())?;
        let start = Instant::now();
        let adj = norm::normalized_adjacency(g);
        let dims = cfg.encoder_dims(x.cols());
        let online = GcnEncoder::new(&dims, &mut rng.fork("online"));
        let target = online.clone();
        let predictor = Mlp::new(
            cfg.embed_dim,
            cfg.embed_dim * 2,
            cfg.embed_dim,
            &mut rng.fork("pred"),
        );
        let opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let mut step = AfgrlStep {
            config: &self.config,
            g,
            x,
            cfg,
            adj,
            online,
            target,
            predictor,
            opt,
            ws: GcnWorkspace::new(),
            pws: MlpWorkspace::new(),
            dp: Matrix::default(),
        };
        let run = EpochDriver::new(cfg).run(&mut step, start)?;
        Ok(PretrainResult {
            embeddings: run.embeddings,
            encoder: None,
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints: run.checkpoints,
            loss_curve: run.loss_curve,
        })
    }
}

/// One AFGRL epoch: augmentation-free bootstrap against adaptive positives
/// in the EMA target's embedding space.
struct AfgrlStep<'a> {
    config: &'a BgrlConfig,
    g: &'a CsrGraph,
    x: &'a Matrix,
    cfg: &'a TrainConfig,
    adj: SparseMatrix,
    online: GcnEncoder,
    target: GcnEncoder,
    predictor: Mlp,
    opt: Adam,
    ws: GcnWorkspace,
    pws: MlpWorkspace,
    dp: Matrix,
}

impl EpochStep for AfgrlStep<'_> {
    fn epoch(&mut self, cx: &mut EpochCtx<'_>) -> EpochOutcome {
        self.online.forward_with(&self.adj, self.x, &mut self.ws);
        let t = self.target.embed(&self.adj, self.x);
        let positives = afgrl_positive_targets(self.g, &t, self.config.knn);
        let l = bootstrap_step(
            &mut self.predictor,
            self.ws.output(),
            &positives,
            cx.lr,
            &mut self.pws,
            &mut self.dp,
        );
        self.online
            .backward_with(&self.adj, &mut self.ws, self.pws.d_input());
        let embeddings_bad = cx.guard.embeddings_bad(&[self.ws.output()]);
        EpochOutcome::Step {
            loss: l,
            embeddings_bad,
        }
    }

    fn grads_mut(&mut self) -> &mut [Matrix] {
        self.ws.grads_mut()
    }

    fn apply(&mut self, epoch: usize, lr: f32, _loss: f32) {
        self.opt.lr = lr;
        self.opt.step(self.online.params_mut(), self.ws.grads());
        let decay = ema::annealed_decay(self.config.ema_decay, epoch, self.cfg.epochs);
        ema::ema_update(self.target.params_mut(), self.online.params(), decay);
    }

    fn embed(&mut self) -> Matrix {
        self.online.embed(&self.adj, self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_datasets::{spec, NodeDataset};

    fn tiny() -> (NodeDataset, TrainConfig) {
        (
            NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 0),
            TrainConfig {
                epochs: 10,
                ..Default::default()
            },
        )
    }

    #[test]
    fn bgrl_trains_without_nans() {
        let (d, cfg) = tiny();
        let out = BgrlModel::default()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(0))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert_eq!(out.loss_curve.len(), 10);
        // Bootstrap loss is bounded in [0, 4].
        assert!(out.loss_curve.iter().all(|&l| (0.0..=4.0).contains(&l)));
    }

    #[test]
    fn afgrl_trains_without_nans() {
        let (d, cfg) = tiny();
        let out = AfgrlModel::default()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(1))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
    }

    #[test]
    fn afgrl_positives_prefer_similar_neighbors() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let t = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.9, 0.1],  // most similar to node 0
            &[0.0, 1.0],  // orthogonal
            &[-1.0, 0.0], // opposite
        ]);
        let pos = afgrl_positive_targets(&g, &t, 1);
        // Node 0's positive should be node 1's embedding.
        assert_eq!(pos.row(0), t.row(1));
    }

    #[test]
    fn afgrl_isolated_node_self_target() {
        let g = CsrGraph::from_edges(2, &[]);
        let t = Matrix::from_rows(&[&[0.5, 0.5], &[1.0, -1.0]]);
        let pos = afgrl_positive_targets(&g, &t, 3);
        assert_eq!(pos.row(0), t.row(0));
        assert_eq!(pos.row(1), t.row(1));
    }
}
