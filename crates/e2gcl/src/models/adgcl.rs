//! ADGCL (Suresh et al. 2021): adversarial graph augmentation.
//!
//! A learnable augmenter holds one drop logit per edge; the encoder
//! minimises InfoNCE between the original and the augmented view while the
//! augmenter *maximises* it (minus a drop-ratio regulariser), so the views
//! keep exactly the information the encoder cannot afford to lose.
//!
//! Simplification vs the original (documented in `DESIGN.md`): the paper's
//! GIN + Gumbel-relaxed augmenter is specialised to the edge-drop augmenter
//! (the operation Table I credits ADGCL with), and the augmenter gradient is
//! estimated with REINFORCE + a moving-average baseline instead of the
//! Gumbel reparameterisation — same objective, derivative-free estimator.

use crate::config::TrainConfig;
use crate::guard::{GuardAction, NumericGuard};
use crate::models::{shuffled_batches, ContrastiveModel, PretrainResult};
use e2gcl_graph::{norm, CsrGraph};
use e2gcl_linalg::{activations, Matrix, SeedRng, TrainError};
use e2gcl_nn::{loss, optim, optim::Optimizer, Adam, GcnEncoder, Mlp};
use e2gcl_views::uniform;
use std::time::Instant;

/// ADGCL configuration.
#[derive(Clone, Debug)]
pub struct AdgclConfig {
    /// InfoNCE temperature.
    pub tau: f32,
    /// Augmenter learning rate (REINFORCE ascent).
    pub aug_lr: f32,
    /// Drop-ratio regulariser weight λ.
    pub lambda: f32,
    /// Fig. 2 upgrade: uniform feature perturbation on the view (`+FP`).
    pub extra_feature_perturb: Option<f32>,
    /// Fig. 2 upgrade: fraction of `|E|` random edges added to the view
    /// (`+EA`).
    pub extra_edge_add: Option<f32>,
}

impl Default for AdgclConfig {
    fn default() -> Self {
        Self {
            tau: 0.5,
            aug_lr: 0.5,
            lambda: 0.3,
            extra_feature_perturb: None,
            extra_edge_add: None,
        }
    }
}

/// The ADGCL model.
#[derive(Clone, Debug, Default)]
pub struct AdgclModel {
    /// Model configuration.
    pub config: AdgclConfig,
}

impl AdgclModel {
    /// With explicit configuration.
    pub fn new(config: AdgclConfig) -> Self {
        Self { config }
    }
}

impl ContrastiveModel for AdgclModel {
    fn name(&self) -> String {
        let mut name = "ADGCL".to_string();
        if self.config.extra_feature_perturb.is_some() {
            name.push_str("+FP");
        }
        if self.config.extra_edge_add.is_some() {
            name.push_str("+EA");
        }
        name
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        let start = Instant::now();
        let edges: Vec<(usize, usize)> = g.edges().collect();
        // Augmenter state: per-edge drop logits, initialised to drop ~20%.
        let mut logits = vec![-1.4f32; edges.len()];
        let mut baseline = 0.0f32;
        let adj_orig = norm::normalized_adjacency(g);
        let mut encoder = GcnEncoder::new(&cfg.encoder_dims(x.cols()), &mut rng.fork("init"));
        let mut head = Mlp::new(cfg.embed_dim, 32, 32, &mut rng.fork("head"));
        let mut opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let mut train_rng = rng.fork("train");
        let mut loss_curve = Vec::with_capacity(cfg.epochs);
        let mut checkpoints = Vec::new();
        let mut guard = NumericGuard::new(&cfg.guard);
        let fault = cfg.fault.clone().unwrap_or_default();
        let n = g.num_nodes();
        let mut epoch = 0;
        while epoch < cfg.epochs {
            let lr = cfg.lr * guard.lr_scale;
            // Sample the augmented view from the current drop distribution.
            let probs: Vec<f32> = logits.iter().map(|&s| activations::sigmoid(s)).collect();
            let dropped: Vec<bool> = probs.iter().map(|&p| train_rng.bernoulli(p)).collect();
            let kept: Vec<(usize, usize)> = edges
                .iter()
                .zip(&dropped)
                .filter(|&(_, &d)| !d)
                .map(|(&e, _)| e)
                .collect();
            let mut g2 = CsrGraph::from_edges(n, &kept);
            let mut x2 = x.clone();
            if let Some(p) = self.config.extra_feature_perturb {
                x2 = uniform::perturb_features_uniform(&x2, p, &mut train_rng);
            }
            if let Some(frac) = self.config.extra_edge_add {
                let count = ((g.num_edges() as f32) * frac).round() as usize;
                g2 = uniform::add_edges_uniform(&g2, count, &mut train_rng);
            }
            fault.corrupt_features(epoch, &mut x2);
            let a2 = norm::normalized_adjacency(&g2);
            let (h1, c1) = encoder.forward(&adj_orig, x);
            let (h2, c2) = encoder.forward(&a2, &x2);
            let mut d_h1 = Matrix::zeros(n, cfg.embed_dim);
            let mut d_h2 = Matrix::zeros(n, cfg.embed_dim);
            let batches = shuffled_batches(n, cfg.batch_size, &mut train_rng);
            let num_batches = batches.len() as f32;
            let mut epoch_loss = 0.0;
            for batch in batches {
                if batch.len() < 2 {
                    continue;
                }
                let (z1, hc1) = head.forward(&h1.select_rows(&batch));
                let (z2, hc2) = head.forward(&h2.select_rows(&batch));
                let out = loss::info_nce(&z1, &z2, self.config.tau);
                epoch_loss += out.loss / num_batches;
                let hg1 = head.backward(&hc1, &out.d_z1);
                let hg2 = head.backward(&hc2, &out.d_z2);
                for (i, &v) in batch.iter().enumerate() {
                    for (dst, &src) in d_h1.row_mut(v).iter_mut().zip(hg1.dx.row(i)) {
                        *dst += src / num_batches;
                    }
                    for (dst, &src) in d_h2.row_mut(v).iter_mut().zip(hg2.dx.row(i)) {
                        *dst += src / num_batches;
                    }
                }
                head.step(&hg1, lr / num_batches, 0.0);
                head.step(&hg2, lr / num_batches, 0.0);
            }
            // Encoder descent, gated by the guard.
            let mut acc = None;
            GcnEncoder::accumulate(&mut acc, encoder.backward(&adj_orig, &c1, &d_h1), 1.0);
            GcnEncoder::accumulate(&mut acc, encoder.backward(&a2, &c2, &d_h2), 1.0);
            let Some(mut grads) = acc else {
                epoch += 1;
                continue;
            };
            let epoch_loss = fault.corrupt_loss(epoch, epoch_loss);
            fault.corrupt_gradients(epoch, &mut grads);
            let grads_bad = optim::grads_non_finite(&grads);
            let emb_bad = guard.embeddings_bad(&[&h1, &h2]);
            match guard.inspect(epoch, epoch_loss, grads_bad, emb_bad)? {
                GuardAction::Proceed => {
                    if let Some(max) = cfg.guard.max_grad_norm {
                        optim::clip_grad_norm(&mut grads, max);
                    }
                    opt.lr = lr;
                    opt.step(encoder.params_mut(), &grads);
                    loss_curve.push(epoch_loss);
                    // Augmenter REINFORCE ascent on (loss − λ·E[drop]).
                    let advantage = epoch_loss - baseline;
                    baseline = 0.9 * baseline + 0.1 * epoch_loss;
                    for ((s, &p), &was_dropped) in logits.iter_mut().zip(&probs).zip(&dropped) {
                        let dlogp = if was_dropped { 1.0 - p } else { -p };
                        *s += self.config.aug_lr
                            * (advantage * dlogp - self.config.lambda * p * (1.0 - p));
                        *s = s.clamp(-4.0, 4.0);
                    }
                    if let Some(every) = cfg.checkpoint_every {
                        if (epoch + 1) % every == 0 || epoch + 1 == cfg.epochs {
                            checkpoints
                                .push((start.elapsed().as_secs_f64(), encoder.embed(&adj_orig, x)));
                        }
                    }
                    epoch += 1;
                }
                GuardAction::SkipEpoch => {
                    loss_curve.push(epoch_loss);
                    epoch += 1;
                }
                GuardAction::RetryEpoch { .. } => {}
            }
        }
        Ok(PretrainResult {
            embeddings: encoder.embed(&adj_orig, x),
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints,
            loss_curve,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_datasets::{spec, NodeDataset};

    #[test]
    fn adgcl_trains_without_nans() {
        let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 0);
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 64,
            ..Default::default()
        };
        let out = AdgclModel::default()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(0))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert_eq!(out.loss_curve.len(), 6);
    }

    #[test]
    fn upgraded_names() {
        let m = AdgclModel::new(AdgclConfig {
            extra_feature_perturb: Some(0.1),
            extra_edge_add: Some(0.05),
            ..Default::default()
        });
        assert_eq!(m.name(), "ADGCL+FP+EA");
    }
}
