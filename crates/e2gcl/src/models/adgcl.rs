//! ADGCL (Suresh et al. 2021): adversarial graph augmentation.
//!
//! A learnable augmenter holds one drop logit per edge; the encoder
//! minimises InfoNCE between the original and the augmented view while the
//! augmenter *maximises* it (minus a drop-ratio regulariser), so the views
//! keep exactly the information the encoder cannot afford to lose.
//!
//! Simplification vs the original (documented in `DESIGN.md`): the paper's
//! GIN + Gumbel-relaxed augmenter is specialised to the edge-drop augmenter
//! (the operation Table I credits ADGCL with), and the augmenter gradient is
//! estimated with REINFORCE + a moving-average baseline instead of the
//! Gumbel reparameterisation — same objective, derivative-free estimator.

use crate::config::TrainConfig;
use crate::engine::{EpochCtx, EpochDriver, EpochOutcome, EpochStep};
use crate::models::{shuffled_batches, ContrastiveModel, PretrainResult};
use e2gcl_graph::{norm, CsrGraph, SparseMatrix};
use e2gcl_linalg::{activations, Matrix, SeedRng, TrainError};
use e2gcl_nn::loss::InfoNceScratch;
use e2gcl_nn::{loss, optim::Optimizer, Adam, GcnEncoder, GcnWorkspace, Mlp, MlpWorkspace};
use e2gcl_views::uniform;
use std::time::Instant;

/// ADGCL configuration.
#[derive(Clone, Debug)]
pub struct AdgclConfig {
    /// InfoNCE temperature.
    pub tau: f32,
    /// Augmenter learning rate (REINFORCE ascent).
    pub aug_lr: f32,
    /// Drop-ratio regulariser weight λ.
    pub lambda: f32,
    /// Fig. 2 upgrade: uniform feature perturbation on the view (`+FP`).
    pub extra_feature_perturb: Option<f32>,
    /// Fig. 2 upgrade: fraction of `|E|` random edges added to the view
    /// (`+EA`).
    pub extra_edge_add: Option<f32>,
}

impl Default for AdgclConfig {
    fn default() -> Self {
        Self {
            tau: 0.5,
            aug_lr: 0.5,
            lambda: 0.3,
            extra_feature_perturb: None,
            extra_edge_add: None,
        }
    }
}

/// The ADGCL model.
#[derive(Clone, Debug, Default)]
pub struct AdgclModel {
    /// Model configuration.
    pub config: AdgclConfig,
}

impl AdgclModel {
    /// With explicit configuration.
    pub fn new(config: AdgclConfig) -> Self {
        Self { config }
    }
}

impl ContrastiveModel for AdgclModel {
    fn name(&self) -> String {
        let mut name = "ADGCL".to_string();
        if self.config.extra_feature_perturb.is_some() {
            name.push_str("+FP");
        }
        if self.config.extra_edge_add.is_some() {
            name.push_str("+EA");
        }
        name
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        crate::models::ensure_full_graph_only(cfg, &self.name())?;
        crate::models::ensure_full_loss_only(cfg, &self.name())?;
        let start = Instant::now();
        let edges: Vec<(usize, usize)> = g.edges().collect();
        // Augmenter state: per-edge drop logits, initialised to drop ~20%.
        let logits = vec![-1.4f32; edges.len()];
        let adj_orig = norm::normalized_adjacency(g);
        let encoder = GcnEncoder::new(&cfg.encoder_dims(x.cols()), &mut rng.fork("init"));
        let head = Mlp::new(cfg.embed_dim, 32, 32, &mut rng.fork("head"));
        let opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let train_rng = rng.fork("train");
        let mut step = AdgclStep {
            config: &self.config,
            g,
            x,
            cfg,
            edges,
            logits,
            baseline: 0.0,
            probs: Vec::new(),
            dropped: Vec::new(),
            adj_orig,
            encoder,
            head,
            opt,
            train_rng,
            ws1: GcnWorkspace::new(),
            ws2: GcnWorkspace::new(),
            head_ws1: MlpWorkspace::new(),
            head_ws2: MlpWorkspace::new(),
            nce: InfoNceScratch::default(),
            d_h1: Matrix::default(),
            d_h2: Matrix::default(),
            hb1: Matrix::default(),
            hb2: Matrix::default(),
        };
        let run = EpochDriver::new(cfg).run(&mut step, start)?;
        Ok(PretrainResult {
            embeddings: run.embeddings,
            encoder: None,
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints: run.checkpoints,
            loss_curve: run.loss_curve,
        })
    }
}

/// One ADGCL epoch: sample the adversarial edge-drop view, contrast it
/// against the original with InfoNCE, and (in `apply`) take the augmenter's
/// REINFORCE ascent step alongside the encoder descent.
struct AdgclStep<'a> {
    config: &'a AdgclConfig,
    g: &'a CsrGraph,
    x: &'a Matrix,
    cfg: &'a TrainConfig,
    edges: Vec<(usize, usize)>,
    logits: Vec<f32>,
    baseline: f32,
    /// This epoch's drop probabilities / Bernoulli draws, kept for the
    /// REINFORCE update in `apply`.
    probs: Vec<f32>,
    dropped: Vec<bool>,
    adj_orig: SparseMatrix,
    encoder: GcnEncoder,
    head: Mlp,
    opt: Adam,
    train_rng: SeedRng,
    ws1: GcnWorkspace,
    ws2: GcnWorkspace,
    head_ws1: MlpWorkspace,
    head_ws2: MlpWorkspace,
    nce: InfoNceScratch,
    d_h1: Matrix,
    d_h2: Matrix,
    hb1: Matrix,
    hb2: Matrix,
}

impl EpochStep for AdgclStep<'_> {
    fn epoch(&mut self, cx: &mut EpochCtx<'_>) -> EpochOutcome {
        let n = self.g.num_nodes();
        let cfg = self.cfg;
        // Sample the augmented view from the current drop distribution.
        self.probs = self
            .logits
            .iter()
            .map(|&s| activations::sigmoid(s))
            .collect();
        self.dropped = self
            .probs
            .iter()
            .map(|&p| self.train_rng.bernoulli(p))
            .collect();
        let kept: Vec<(usize, usize)> = self
            .edges
            .iter()
            .zip(&self.dropped)
            .filter(|&(_, &d)| !d)
            .map(|(&e, _)| e)
            .collect();
        let mut g2 = CsrGraph::from_edges(n, &kept);
        let mut x2 = self.x.clone();
        if let Some(p) = self.config.extra_feature_perturb {
            x2 = uniform::perturb_features_uniform(&x2, p, &mut self.train_rng);
        }
        if let Some(frac) = self.config.extra_edge_add {
            let count = ((self.g.num_edges() as f32) * frac).round() as usize;
            g2 = uniform::add_edges_uniform(&g2, count, &mut self.train_rng);
        }
        cx.fault.corrupt_features(cx.epoch, &mut x2);
        let a2 = norm::normalized_adjacency(&g2);
        self.encoder
            .forward_with(&self.adj_orig, self.x, &mut self.ws1);
        self.encoder.forward_with(&a2, &x2, &mut self.ws2);
        self.d_h1.reset_zeroed(n, cfg.embed_dim);
        self.d_h2.reset_zeroed(n, cfg.embed_dim);
        let batches = shuffled_batches(n, cfg.batch_size, &mut self.train_rng);
        let num_batches = batches.len() as f32;
        let mut epoch_loss = 0.0;
        for batch in batches {
            if batch.len() < 2 {
                continue;
            }
            self.ws1.output().select_rows_into(&batch, &mut self.hb1);
            self.ws2.output().select_rows_into(&batch, &mut self.hb2);
            self.head.forward_with(&self.hb1, &mut self.head_ws1);
            self.head.forward_with(&self.hb2, &mut self.head_ws2);
            let batch_loss = loss::info_nce_with(
                self.head_ws1.output(),
                self.head_ws2.output(),
                self.config.tau,
                &mut self.nce,
            );
            epoch_loss += batch_loss / num_batches;
            self.head
                .backward_with(&self.hb1, self.nce.d_z1(), &mut self.head_ws1);
            self.head
                .backward_with(&self.hb2, self.nce.d_z2(), &mut self.head_ws2);
            for (i, &v) in batch.iter().enumerate() {
                for (dst, &src) in self
                    .d_h1
                    .row_mut(v)
                    .iter_mut()
                    .zip(self.head_ws1.d_input().row(i))
                {
                    *dst += src / num_batches;
                }
                for (dst, &src) in self
                    .d_h2
                    .row_mut(v)
                    .iter_mut()
                    .zip(self.head_ws2.d_input().row(i))
                {
                    *dst += src / num_batches;
                }
            }
            // The head steps inside the epoch, before the guard verdict: on
            // a retry only the encoder update is discarded (as before).
            self.head
                .step(self.head_ws1.grads(), cx.lr / num_batches, 0.0);
            self.head
                .step(self.head_ws2.grads(), cx.lr / num_batches, 0.0);
        }
        self.encoder
            .backward_with(&self.adj_orig, &mut self.ws1, &self.d_h1);
        self.encoder.backward_with(&a2, &mut self.ws2, &self.d_h2);
        for (acc, g) in self.ws1.grads_mut().iter_mut().zip(self.ws2.grads()) {
            acc.axpy(1.0, g);
        }
        let embeddings_bad = cx
            .guard
            .embeddings_bad(&[self.ws1.output(), self.ws2.output()]);
        EpochOutcome::Step {
            loss: epoch_loss,
            embeddings_bad,
        }
    }

    fn grads_mut(&mut self) -> &mut [Matrix] {
        self.ws1.grads_mut()
    }

    fn apply(&mut self, _epoch: usize, lr: f32, loss: f32) {
        self.opt.lr = lr;
        self.opt.step(self.encoder.params_mut(), self.ws1.grads());
        // Augmenter REINFORCE ascent on (loss − λ·E[drop]), driven by the
        // same (possibly fault-corrupted) loss the guard inspected.
        let advantage = loss - self.baseline;
        self.baseline = 0.9 * self.baseline + 0.1 * loss;
        for ((s, &p), &was_dropped) in self.logits.iter_mut().zip(&self.probs).zip(&self.dropped) {
            let dlogp = if was_dropped { 1.0 - p } else { -p };
            *s += self.config.aug_lr * (advantage * dlogp - self.config.lambda * p * (1.0 - p));
            *s = s.clamp(-4.0, 4.0);
        }
    }

    fn embed(&mut self) -> Matrix {
        self.encoder.embed(&self.adj_orig, self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_datasets::{spec, NodeDataset};

    #[test]
    fn adgcl_trains_without_nans() {
        let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 0);
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 64,
            ..Default::default()
        };
        let out = AdgclModel::default()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(0))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert_eq!(out.loss_curve.len(), 6);
    }

    #[test]
    fn upgraded_names() {
        let m = AdgclModel::new(AdgclConfig {
            extra_feature_perturb: Some(0.1),
            extra_edge_add: Some(0.05),
            ..Default::default()
        });
        assert_eq!(m.name(), "ADGCL+FP+EA");
    }
}
