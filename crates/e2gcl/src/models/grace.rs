//! GRACE (Zhu et al. 2020) and GCA (Zhu et al. 2021).
//!
//! Both corrupt the graph into two views (uniform edge dropping + feature-
//! dimension masking for GRACE; centrality-adaptive versions for GCA) and
//! train a GCN + projection head with the symmetric InfoNCE objective.
//!
//! The `extra_*` fields implement the Fig. 2 "upgraded" variants: bolting
//! the missing operations (feature perturbation, edge addition) onto each
//! view, which the paper shows improves every baseline it upgrades.

use crate::checkpoint::{restore_params, StepState};
use crate::config::{MinibatchConfig, TrainConfig};
use crate::engine::{EpochCtx, EpochDriver, EpochOutcome, EpochStep};
use crate::models::{
    select_negatives, shuffled_batches, ContrastiveModel, InfoNceStrategy, PretrainResult,
};
use e2gcl_graph::{norm, CsrGraph, NeighborSampler, SparseMatrix};
use e2gcl_linalg::{Matrix, SeedRng, TrainError};
use e2gcl_nn::loss::InfoNceScratch;
use e2gcl_nn::{
    loss, optim::Optimizer, Adam, ContrastiveLoss, GcnEncoder, GcnWorkspace, Mlp, MlpWorkspace,
    Neighborhoods,
};
use e2gcl_views::{scores::GraphScores, uniform};
use std::time::Instant;

/// Configuration for GRACE and GCA.
#[derive(Clone, Debug)]
pub struct GraceConfig {
    /// `false` = GRACE (uniform corruption); `true` = GCA (adaptive).
    pub adaptive: bool,
    /// Edge-drop probability per view.
    pub drop_edge: (f32, f32),
    /// Feature-dimension mask probability per view.
    pub mask_feat: (f32, f32),
    /// InfoNCE temperature.
    pub tau: f32,
    /// Projection-head hidden/output width.
    pub proj_dim: usize,
    /// Fig. 2 upgrade: additionally perturb features entry-wise with this
    /// probability on each view (`+FP`).
    pub extra_feature_perturb: Option<f32>,
    /// Fig. 2 upgrade: additionally add this fraction of `|E|` random edges
    /// to each view (`+EA`).
    pub extra_edge_add: Option<f32>,
}

impl Default for GraceConfig {
    fn default() -> Self {
        Self {
            adaptive: false,
            drop_edge: (0.2, 0.4),
            mask_feat: (0.3, 0.4),
            tau: 0.5,
            proj_dim: 32,
            extra_feature_perturb: None,
            extra_edge_add: None,
        }
    }
}

/// GRACE / GCA model.
#[derive(Clone, Debug)]
pub struct GraceModel {
    /// Model configuration.
    pub config: GraceConfig,
}

impl GraceModel {
    /// Plain GRACE.
    pub fn grace() -> Self {
        Self {
            config: GraceConfig::default(),
        }
    }

    /// GCA (adaptive augmentation).
    pub fn gca() -> Self {
        Self {
            config: GraceConfig {
                adaptive: true,
                ..Default::default()
            },
        }
    }

    /// With explicit configuration.
    pub fn new(config: GraceConfig) -> Self {
        Self { config }
    }

    /// Generates one corrupted view.
    #[allow(clippy::too_many_arguments)]
    fn make_view(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        scores: &GraphScores,
        edge_probs: Option<&[f32]>,
        p_edge: f32,
        p_feat: f32,
        rng: &mut SeedRng,
    ) -> (CsrGraph, Matrix) {
        let mut vg = if let Some(probs) = edge_probs {
            // GCA: per-edge adaptive drop probabilities scaled so the mean
            // matches p_edge.
            let mean: f32 = probs.iter().sum::<f32>() / probs.len().max(1) as f32;
            let scale = if mean > 1e-9 { p_edge / mean } else { 1.0 };
            let scaled: Vec<f32> = probs.iter().map(|&p| p * scale).collect();
            uniform::drop_edges_weighted(g, &scaled, 0.9, rng)
        } else {
            uniform::drop_edges_uniform(g, p_edge, rng)
        };
        let mut vx = if self.config.adaptive {
            // GCA: mask unimportant dimensions more.
            let w = &scores.feature_global;
            let w_max = w.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let w_mean = w.iter().sum::<f32>() / w.len().max(1) as f32;
            let denom = (w_max - w_mean).max(1e-9);
            let probs: Vec<f32> = w.iter().map(|&wi| p_feat * (w_max - wi) / denom).collect();
            uniform::mask_feature_dims_weighted(x, &probs, 0.7, rng)
        } else {
            uniform::mask_feature_dims(x, p_feat, rng)
        };
        if let Some(p) = self.config.extra_feature_perturb {
            vx = uniform::perturb_features_uniform(&vx, p, rng);
        }
        if let Some(frac) = self.config.extra_edge_add {
            let count = ((g.num_edges() as f32) * frac).round() as usize;
            vg = uniform::add_edges_uniform(&vg, count, rng);
        }
        (vg, vx)
    }

    /// The uniform (non-adaptive) corruption pipeline over an arbitrary
    /// graph/feature pair — what [`Self::make_view`] does when `adaptive`
    /// is off, applied by the mini-batch step to each sampled subgraph.
    fn make_uniform_view(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        p_edge: f32,
        p_feat: f32,
        rng: &mut SeedRng,
    ) -> (CsrGraph, Matrix) {
        let mut vg = uniform::drop_edges_uniform(g, p_edge, rng);
        let mut vx = uniform::mask_feature_dims(x, p_feat, rng);
        if let Some(p) = self.config.extra_feature_perturb {
            vx = uniform::perturb_features_uniform(&vx, p, rng);
        }
        if let Some(frac) = self.config.extra_edge_add {
            let count = ((g.num_edges() as f32) * frac).round() as usize;
            vg = uniform::add_edges_uniform(&vg, count, rng);
        }
        (vg, vx)
    }

    /// Mini-batch GRACE (DESIGN.md §13): each epoch shuffles the node set
    /// into seed batches of `mb.batch_nodes`, samples a fanout-bounded
    /// [`e2gcl_graph::GraphView`] per batch, corrupts the *subgraph* into
    /// two views and trains InfoNCE over the seed rows only. Only uniform
    /// (non-adaptive) corruption is supported: GCA's adaptive probabilities
    /// are global centrality statistics a sampled subgraph cannot
    /// reproduce.
    fn pretrain_minibatch(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        mb: &MinibatchConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        if self.config.adaptive {
            return Err(TrainError::InvalidConfig(
                "GCA's adaptive corruption needs full-graph centrality scores; \
                 mini-batch training supports uniform (GRACE) corruption only"
                    .into(),
            ));
        }
        let start = Instant::now();
        let adj_orig = norm::normalized_adjacency(g);
        let encoder = GcnEncoder::new(&cfg.encoder_dims(x.cols()), &mut rng.fork("init"));
        let head = Mlp::new(
            cfg.embed_dim,
            self.config.proj_dim,
            self.config.proj_dim,
            &mut rng.fork("head"),
        );
        let opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let train_rng = rng.fork("train");
        // Sample exactly the encoder's receptive field: deeper nodes cannot
        // influence the seed rows the loss reads.
        let hops = cfg.encoder_dims(x.cols()).len() - 1;
        let mut step = GraceMinibatchStep {
            model: self,
            g,
            x,
            cfg,
            batch_nodes: mb.batch_nodes,
            sampler: NeighborSampler::new(hops, mb.fanout),
            adj_orig,
            encoder,
            head,
            opt,
            train_rng,
            loss_state: InfoNceStrategy::from_config(&cfg.loss, self.config.tau),
            grads: Vec::new(),
            ws1: GcnWorkspace::new(),
            ws2: GcnWorkspace::new(),
            head_ws1: MlpWorkspace::new(),
            head_ws2: MlpWorkspace::new(),
            nce: InfoNceScratch::default(),
            d_h1: Matrix::default(),
            d_h2: Matrix::default(),
            hb1: Matrix::default(),
            hb2: Matrix::default(),
        };
        let run = EpochDriver::new(cfg).run(&mut step, start)?;
        Ok(PretrainResult {
            embeddings: run.embeddings,
            encoder: Some(e2gcl_nn::FrozenEncoder::Gcn(step.encoder)),
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints: run.checkpoints,
            loss_curve: run.loss_curve,
        })
    }
}

impl ContrastiveModel for GraceModel {
    fn name(&self) -> String {
        let base = if self.config.adaptive { "GCA" } else { "GRACE" };
        let mut name = base.to_string();
        if self.config.extra_feature_perturb.is_some() {
            name.push_str("+FP");
        }
        if self.config.extra_edge_add.is_some() {
            name.push_str("+EA");
        }
        name
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        if let Some(mb) = &cfg.minibatch {
            if !mb.is_full_batch(g.num_nodes()) {
                return self.pretrain_minibatch(g, x, cfg, mb, rng);
            }
            // Degenerate mini-batch (whole graph in one batch, unlimited
            // fanout): fall through to the full-graph step *before* drawing
            // any extra randomness, so the run is bitwise identical to
            // `minibatch: None` (tests/minibatch_equivalence.rs).
        }
        let start = Instant::now();
        let scores = GraphScores::compute(g, x);
        let edge_probs = self
            .config
            .adaptive
            .then(|| uniform::gca_edge_drop_probs(g, 1.0));
        let adj_orig = norm::normalized_adjacency(g);
        let encoder = GcnEncoder::new(&cfg.encoder_dims(x.cols()), &mut rng.fork("init"));
        let head = Mlp::new(
            cfg.embed_dim,
            self.config.proj_dim,
            self.config.proj_dim,
            &mut rng.fork("head"),
        );
        let opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let train_rng = rng.fork("train");
        // Full-batch localized training contrasts within the *original*
        // graph's L-hop neighbourhoods, so the topology is built once here.
        let mut loss_state = InfoNceStrategy::from_config(&cfg.loss, self.config.tau);
        if let InfoNceStrategy::Localized { hops, strat } = &mut loss_state {
            strat.set_topology(Neighborhoods::from_graph(g, *hops));
        }
        let mut step = GraceStep {
            model: self,
            g,
            x,
            cfg,
            scores,
            edge_probs,
            adj_orig,
            encoder,
            head,
            opt,
            train_rng,
            loss_state,
            ws1: GcnWorkspace::new(),
            ws2: GcnWorkspace::new(),
            head_ws1: MlpWorkspace::new(),
            head_ws2: MlpWorkspace::new(),
            nce: InfoNceScratch::default(),
            d_h1: Matrix::default(),
            d_h2: Matrix::default(),
            hb1: Matrix::default(),
            hb2: Matrix::default(),
        };
        let run = EpochDriver::new(cfg).run(&mut step, start)?;
        Ok(PretrainResult {
            embeddings: run.embeddings,
            encoder: Some(e2gcl_nn::FrozenEncoder::Gcn(step.encoder)),
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints: run.checkpoints,
            loss_curve: run.loss_curve,
        })
    }
}

/// One GRACE/GCA epoch. Encoder and projection-head passes run through
/// persistent workspaces, so steady-state epochs only allocate for the
/// sampled views themselves.
struct GraceStep<'a> {
    model: &'a GraceModel,
    g: &'a CsrGraph,
    x: &'a Matrix,
    cfg: &'a TrainConfig,
    scores: GraphScores,
    edge_probs: Option<Vec<f32>>,
    adj_orig: SparseMatrix,
    encoder: GcnEncoder,
    head: Mlp,
    opt: Adam,
    train_rng: SeedRng,
    loss_state: InfoNceStrategy,
    ws1: GcnWorkspace,
    ws2: GcnWorkspace,
    head_ws1: MlpWorkspace,
    head_ws2: MlpWorkspace,
    nce: InfoNceScratch,
    d_h1: Matrix,
    d_h2: Matrix,
    hb1: Matrix,
    hb2: Matrix,
}

impl EpochStep for GraceStep<'_> {
    fn epoch(&mut self, cx: &mut EpochCtx<'_>) -> EpochOutcome {
        let cfg = self.cfg;
        let conf = &self.model.config;
        let n = self.g.num_nodes();
        let (g1, mut x1) = self.model.make_view(
            self.g,
            self.x,
            &self.scores,
            self.edge_probs.as_deref(),
            conf.drop_edge.0,
            conf.mask_feat.0,
            &mut self.train_rng,
        );
        let (g2, x2) = self.model.make_view(
            self.g,
            self.x,
            &self.scores,
            self.edge_probs.as_deref(),
            conf.drop_edge.1,
            conf.mask_feat.1,
            &mut self.train_rng,
        );
        cx.fault.corrupt_features(cx.epoch, &mut x1);
        let a1 = norm::normalized_adjacency(&g1);
        let a2 = norm::normalized_adjacency(&g2);
        self.encoder.forward_with(&a1, &x1, &mut self.ws1);
        self.encoder.forward_with(&a2, &x2, &mut self.ws2);
        let epoch_loss = match &mut self.loss_state {
            InfoNceStrategy::Full => {
                self.d_h1.reset_zeroed(n, cfg.embed_dim);
                self.d_h2.reset_zeroed(n, cfg.embed_dim);
                let batches = shuffled_batches(n, cfg.batch_size, &mut self.train_rng);
                let num_batches = batches.len() as f32;
                let mut epoch_loss = 0.0;
                for batch in batches {
                    if batch.len() < 2 {
                        continue;
                    }
                    self.ws1.output().select_rows_into(&batch, &mut self.hb1);
                    self.ws2.output().select_rows_into(&batch, &mut self.hb2);
                    self.head.forward_with(&self.hb1, &mut self.head_ws1);
                    self.head.forward_with(&self.hb2, &mut self.head_ws2);
                    let batch_loss = loss::info_nce_with(
                        self.head_ws1.output(),
                        self.head_ws2.output(),
                        conf.tau,
                        &mut self.nce,
                    );
                    epoch_loss += batch_loss / num_batches;
                    self.head
                        .backward_with(&self.hb1, self.nce.d_z1(), &mut self.head_ws1);
                    self.head
                        .backward_with(&self.hb2, self.nce.d_z2(), &mut self.head_ws2);
                    for (i, &v) in batch.iter().enumerate() {
                        for (dst, &src) in self
                            .d_h1
                            .row_mut(v)
                            .iter_mut()
                            .zip(self.head_ws1.d_input().row(i))
                        {
                            *dst += src / num_batches;
                        }
                        for (dst, &src) in self
                            .d_h2
                            .row_mut(v)
                            .iter_mut()
                            .zip(self.head_ws2.d_input().row(i))
                        {
                            *dst += src / num_batches;
                        }
                    }
                    // The head steps inside the epoch, before the guard
                    // verdict: on a retry only the encoder update is
                    // discarded (as before).
                    self.head
                        .step(self.head_ws1.grads(), cx.lr / num_batches, 0.0);
                    self.head
                        .step(self.head_ws2.grads(), cx.lr / num_batches, 0.0);
                }
                self.encoder.backward_with(&a1, &mut self.ws1, &self.d_h1);
                self.encoder.backward_with(&a2, &mut self.ws2, &self.d_h2);
                epoch_loss
            }
            InfoNceStrategy::SmallNeg { k, strat } => {
                // One full-batch pass: every node anchors, the denominator
                // is the k representatives re-selected each epoch from the
                // current view-1 encoder output.
                let mut sel_rng = self.train_rng.fork("negatives");
                strat.set_negatives(&select_negatives(self.ws1.output(), *k, &mut sel_rng));
                self.head
                    .forward_with(self.ws1.output(), &mut self.head_ws1);
                self.head
                    .forward_with(self.ws2.output(), &mut self.head_ws2);
                let epoch_loss = strat.compute(self.head_ws1.output(), self.head_ws2.output());
                self.head
                    .backward_with(self.ws1.output(), strat.d_z1(), &mut self.head_ws1);
                self.head
                    .backward_with(self.ws2.output(), strat.d_z2(), &mut self.head_ws2);
                self.head.step(self.head_ws1.grads(), cx.lr, 0.0);
                self.head.step(self.head_ws2.grads(), cx.lr, 0.0);
                self.encoder
                    .backward_with(&a1, &mut self.ws1, self.head_ws1.d_input());
                self.encoder
                    .backward_with(&a2, &mut self.ws2, self.head_ws2.d_input());
                epoch_loss
            }
            InfoNceStrategy::Localized { strat, .. } => {
                // Neighbourhood-localized training drops the projection
                // head (per its source paper): the loss reads encoder
                // outputs directly over the precomputed topology.
                let epoch_loss = strat.compute(self.ws1.output(), self.ws2.output());
                self.encoder.backward_with(&a1, &mut self.ws1, strat.d_z1());
                self.encoder.backward_with(&a2, &mut self.ws2, strat.d_z2());
                epoch_loss
            }
        };
        // Sum both views' gradients in place (== GcnEncoder::accumulate at
        // scale 1.0); the engine reads them via `grads_mut`.
        for (acc, g) in self.ws1.grads_mut().iter_mut().zip(self.ws2.grads()) {
            acc.axpy(1.0, g);
        }
        let embeddings_bad = cx
            .guard
            .embeddings_bad(&[self.ws1.output(), self.ws2.output()]);
        EpochOutcome::Step {
            loss: epoch_loss,
            embeddings_bad,
        }
    }

    fn grads_mut(&mut self) -> &mut [Matrix] {
        self.ws1.grads_mut()
    }

    fn apply(&mut self, _epoch: usize, lr: f32, _loss: f32) {
        self.opt.lr = lr;
        self.opt.step(self.encoder.params_mut(), self.ws1.grads());
    }

    fn embed(&mut self) -> Matrix {
        self.encoder.embed(&self.adj_orig, self.x)
    }

    fn snapshot(&mut self) -> Option<StepState> {
        // Mutable cross-epoch state: encoder weights (Adam group), the
        // projection head's four tensors (its SGD is stateless), and the
        // training RNG. Head biases travel as 1×n matrices.
        let row = |b: &[f32]| Matrix::from_vec(1, b.len(), b.to_vec());
        let extra = vec![
            self.head.l1.w.clone(),
            row(&self.head.l1.b),
            self.head.l2.w.clone(),
            row(&self.head.l2.b),
        ];
        Some(StepState::pack_trainer(
            self.encoder.params(),
            &extra,
            &self.opt,
            &self.train_rng,
        ))
    }

    fn restore(&mut self, state: &StepState) -> Result<(), TrainError> {
        let s = state.unpack_trainer(self.encoder.params().len(), 4)?;
        restore_params(self.encoder.params_mut(), &s.params)?;
        restore_params(std::slice::from_mut(&mut self.head.l1.w), &s.extra[0..1])?;
        restore_params(std::slice::from_mut(&mut self.head.l2.w), &s.extra[2..3])?;
        for (b, saved) in [
            (&mut self.head.l1.b, &s.extra[1]),
            (&mut self.head.l2.b, &s.extra[3]),
        ] {
            if saved.rows() != 1 || saved.cols() != b.len() {
                return Err(TrainError::Checkpoint(format!(
                    "head bias shape mismatch: checkpoint {}x{}, model 1x{}",
                    saved.rows(),
                    saved.cols(),
                    b.len()
                )));
            }
            b.copy_from_slice(saved.as_slice());
        }
        self.opt.restore_state(s.adam_t, s.adam_m, s.adam_v);
        self.train_rng = s.rng;
        Ok(())
    }
}

/// One mini-batch GRACE epoch: per seed batch, sample a subgraph view,
/// corrupt it twice, forward both corrupted views through the shared
/// workspaces, InfoNCE over the seed rows, and accumulate encoder
/// gradients at `1/num_batches` so the applied update is the mean over
/// batches. The projection head steps per batch before the guard verdict,
/// mirroring full-graph GRACE.
struct GraceMinibatchStep<'a> {
    model: &'a GraceModel,
    g: &'a CsrGraph,
    x: &'a Matrix,
    cfg: &'a TrainConfig,
    batch_nodes: usize,
    sampler: NeighborSampler,
    adj_orig: SparseMatrix,
    encoder: GcnEncoder,
    head: Mlp,
    opt: Adam,
    train_rng: SeedRng,
    loss_state: InfoNceStrategy,
    grads: Vec<Matrix>,
    ws1: GcnWorkspace,
    ws2: GcnWorkspace,
    head_ws1: MlpWorkspace,
    head_ws2: MlpWorkspace,
    nce: InfoNceScratch,
    d_h1: Matrix,
    d_h2: Matrix,
    hb1: Matrix,
    hb2: Matrix,
}

impl EpochStep for GraceMinibatchStep<'_> {
    fn epoch(&mut self, cx: &mut EpochCtx<'_>) -> EpochOutcome {
        let cfg = self.cfg;
        let conf = &self.model.config;
        let n = self.g.num_nodes();
        let batches = shuffled_batches(n, self.batch_nodes, &mut self.train_rng);
        let num_batches = batches.len() as f32;
        let mut acc: Option<Vec<Matrix>> = None;
        let mut epoch_loss = 0.0;
        let mut embeddings_bad = false;
        let mut stepped = 0usize;
        for seeds in batches {
            if seeds.len() < 2 {
                continue;
            }
            let view = self.sampler.sample(self.g, &seeds, &mut self.train_rng);
            let xv = view.features(self.x);
            let (g1, mut x1) = self.model.make_uniform_view(
                &view.graph,
                &xv,
                conf.drop_edge.0,
                conf.mask_feat.0,
                &mut self.train_rng,
            );
            let (g2, x2) = self.model.make_uniform_view(
                &view.graph,
                &xv,
                conf.drop_edge.1,
                conf.mask_feat.1,
                &mut self.train_rng,
            );
            cx.fault.corrupt_features(cx.epoch, &mut x1);
            // Corruption invalidates the full-graph degrees the exactness
            // rule relies on, so — exactly like full-graph GRACE — each
            // corrupted view is normalised with its own degrees.
            let a1 = norm::normalized_adjacency(&g1);
            let a2 = norm::normalized_adjacency(&g2);
            self.encoder.forward_with(&a1, &x1, &mut self.ws1);
            self.encoder.forward_with(&a2, &x2, &mut self.ws2);
            let locals: Vec<usize> = seeds
                .iter()
                .map(|&v| view.local(v).expect("seed is in its sampled view"))
                .collect();
            let batch_loss = match &mut self.loss_state {
                InfoNceStrategy::Full => {
                    self.ws1.output().select_rows_into(&locals, &mut self.hb1);
                    self.ws2.output().select_rows_into(&locals, &mut self.hb2);
                    self.head.forward_with(&self.hb1, &mut self.head_ws1);
                    self.head.forward_with(&self.hb2, &mut self.head_ws2);
                    let batch_loss = loss::info_nce_with(
                        self.head_ws1.output(),
                        self.head_ws2.output(),
                        conf.tau,
                        &mut self.nce,
                    );
                    self.head
                        .backward_with(&self.hb1, self.nce.d_z1(), &mut self.head_ws1);
                    self.head
                        .backward_with(&self.hb2, self.nce.d_z2(), &mut self.head_ws2);
                    self.d_h1.reset_zeroed(view.len(), cfg.embed_dim);
                    self.d_h2.reset_zeroed(view.len(), cfg.embed_dim);
                    for (i, &l) in locals.iter().enumerate() {
                        self.d_h1.set_row(l, self.head_ws1.d_input().row(i));
                        self.d_h2.set_row(l, self.head_ws2.d_input().row(i));
                    }
                    // The head steps inside the epoch, before the guard
                    // verdict, exactly as in the full-graph step.
                    self.head
                        .step(self.head_ws1.grads(), cx.lr / num_batches, 0.0);
                    self.head
                        .step(self.head_ws2.grads(), cx.lr / num_batches, 0.0);
                    self.encoder.backward_with(&a1, &mut self.ws1, &self.d_h1);
                    self.encoder.backward_with(&a2, &mut self.ws2, &self.d_h2);
                    batch_loss
                }
                InfoNceStrategy::SmallNeg { k, strat } => {
                    // Negatives re-selected per batch from the seed rows'
                    // view-1 embeddings (batch-local indices).
                    self.ws1.output().select_rows_into(&locals, &mut self.hb1);
                    self.ws2.output().select_rows_into(&locals, &mut self.hb2);
                    let mut sel_rng = self.train_rng.fork("negatives");
                    strat.set_negatives(&select_negatives(&self.hb1, *k, &mut sel_rng));
                    self.head.forward_with(&self.hb1, &mut self.head_ws1);
                    self.head.forward_with(&self.hb2, &mut self.head_ws2);
                    let batch_loss = strat.compute(self.head_ws1.output(), self.head_ws2.output());
                    self.head
                        .backward_with(&self.hb1, strat.d_z1(), &mut self.head_ws1);
                    self.head
                        .backward_with(&self.hb2, strat.d_z2(), &mut self.head_ws2);
                    self.d_h1.reset_zeroed(view.len(), cfg.embed_dim);
                    self.d_h2.reset_zeroed(view.len(), cfg.embed_dim);
                    for (i, &l) in locals.iter().enumerate() {
                        self.d_h1.set_row(l, self.head_ws1.d_input().row(i));
                        self.d_h2.set_row(l, self.head_ws2.d_input().row(i));
                    }
                    self.head
                        .step(self.head_ws1.grads(), cx.lr / num_batches, 0.0);
                    self.head
                        .step(self.head_ws2.grads(), cx.lr / num_batches, 0.0);
                    self.encoder.backward_with(&a1, &mut self.ws1, &self.d_h1);
                    self.encoder.backward_with(&a2, &mut self.ws2, &self.d_h2);
                    batch_loss
                }
                InfoNceStrategy::Localized { hops, strat } => {
                    // Head-free: anchors are the seed rows, negatives their
                    // L-hop neighbourhoods *within the sampled subgraph*.
                    strat.set_topology(Neighborhoods::from_graph(&view.graph, *hops));
                    strat.set_anchors(Some(locals.clone()));
                    let batch_loss = strat.compute(self.ws1.output(), self.ws2.output());
                    self.encoder.backward_with(&a1, &mut self.ws1, strat.d_z1());
                    self.encoder.backward_with(&a2, &mut self.ws2, strat.d_z2());
                    batch_loss
                }
            };
            epoch_loss += batch_loss / num_batches;
            let scale = 1.0 / num_batches;
            GcnEncoder::accumulate(&mut acc, self.ws1.grads().to_vec(), scale);
            GcnEncoder::accumulate(&mut acc, self.ws2.grads().to_vec(), scale);
            embeddings_bad = embeddings_bad
                || cx
                    .guard
                    .embeddings_bad(&[self.ws1.output(), self.ws2.output()]);
            stepped += 1;
        }
        if stepped == 0 {
            return EpochOutcome::SkipSilently;
        }
        self.grads = acc.unwrap_or_default();
        EpochOutcome::Step {
            loss: epoch_loss,
            embeddings_bad,
        }
    }

    fn grads_mut(&mut self) -> &mut [Matrix] {
        &mut self.grads
    }

    fn apply(&mut self, _epoch: usize, lr: f32, _loss: f32) {
        self.opt.lr = lr;
        self.opt.step(self.encoder.params_mut(), &self.grads);
    }

    fn embed(&mut self) -> Matrix {
        self.encoder.embed(&self.adj_orig, self.x)
    }

    fn snapshot(&mut self) -> Option<StepState> {
        // Identical layout to the full-graph step: encoder weights (Adam
        // group), the head's four tensors, and the training RNG.
        let row = |b: &[f32]| Matrix::from_vec(1, b.len(), b.to_vec());
        let extra = vec![
            self.head.l1.w.clone(),
            row(&self.head.l1.b),
            self.head.l2.w.clone(),
            row(&self.head.l2.b),
        ];
        Some(StepState::pack_trainer(
            self.encoder.params(),
            &extra,
            &self.opt,
            &self.train_rng,
        ))
    }

    fn restore(&mut self, state: &StepState) -> Result<(), TrainError> {
        let s = state.unpack_trainer(self.encoder.params().len(), 4)?;
        restore_params(self.encoder.params_mut(), &s.params)?;
        restore_params(std::slice::from_mut(&mut self.head.l1.w), &s.extra[0..1])?;
        restore_params(std::slice::from_mut(&mut self.head.l2.w), &s.extra[2..3])?;
        for (b, saved) in [
            (&mut self.head.l1.b, &s.extra[1]),
            (&mut self.head.l2.b, &s.extra[3]),
        ] {
            if saved.rows() != 1 || saved.cols() != b.len() {
                return Err(TrainError::Checkpoint(format!(
                    "head bias shape mismatch: checkpoint {}x{}, model 1x{}",
                    saved.rows(),
                    saved.cols(),
                    b.len()
                )));
            }
            b.copy_from_slice(saved.as_slice());
        }
        self.opt.restore_state(s.adam_t, s.adam_m, s.adam_v);
        self.train_rng = s.rng;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_datasets::{spec, NodeDataset};

    fn tiny() -> (NodeDataset, TrainConfig) {
        (
            NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 0),
            TrainConfig {
                epochs: 8,
                batch_size: 64,
                ..Default::default()
            },
        )
    }

    #[test]
    fn grace_trains_and_loss_falls() {
        let (d, cfg) = tiny();
        let out = GraceModel::grace()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(0))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert!(
            out.loss_curve.last().unwrap() < out.loss_curve.first().unwrap(),
            "{:?}",
            out.loss_curve
        );
    }

    #[test]
    fn gca_trains() {
        let (d, cfg) = tiny();
        let out = GraceModel::gca()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(1))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert_eq!(out.selection_time.as_nanos(), 0);
    }

    #[test]
    fn upgraded_variants_have_distinct_names() {
        let up = GraceModel::new(GraceConfig {
            extra_feature_perturb: Some(0.1),
            extra_edge_add: Some(0.1),
            ..Default::default()
        });
        assert_eq!(up.name(), "GRACE+FP+EA");
        assert_eq!(GraceModel::gca().name(), "GCA");
    }

    fn minibatch(batch_nodes: usize, fanout: Option<usize>) -> Option<MinibatchConfig> {
        Some(MinibatchConfig {
            batch_nodes,
            fanout,
        })
    }

    #[test]
    fn grace_minibatch_trains_and_loss_falls() {
        let (d, cfg) = tiny();
        let cfg = TrainConfig {
            epochs: 10,
            minibatch: minibatch(48, Some(5)),
            ..cfg
        };
        let out = GraceModel::grace()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(0))
            .unwrap();
        assert_eq!(out.embeddings.rows(), d.graph.num_nodes());
        assert!(!out.embeddings.has_non_finite());
        assert_eq!(out.loss_curve.len(), 10);
        assert!(
            out.loss_curve.last().unwrap() < out.loss_curve.first().unwrap(),
            "{:?}",
            out.loss_curve
        );
    }

    #[test]
    fn grace_minibatch_is_deterministic() {
        let (d, cfg) = tiny();
        let cfg = TrainConfig {
            epochs: 4,
            minibatch: minibatch(32, Some(4)),
            ..cfg
        };
        let run = |seed| {
            GraceModel::grace()
                .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(seed))
                .unwrap()
        };
        let (a, b) = (run(3), run(3));
        assert_eq!(a.embeddings, b.embeddings);
        assert_eq!(a.loss_curve, b.loss_curve);
        assert_ne!(run(4).embeddings, a.embeddings);
    }

    #[test]
    fn gca_rejects_minibatch() {
        let (d, cfg) = tiny();
        let cfg = TrainConfig {
            minibatch: minibatch(32, Some(4)),
            ..cfg
        };
        let err = GraceModel::gca()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(0))
            .unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn sub_quadratic_strategies_train_full_and_minibatch() {
        use crate::config::LossStrategy;
        let (d, cfg) = tiny();
        for loss in [
            LossStrategy::SmallNeg { negatives: 32 },
            LossStrategy::Localized { hops: 2 },
        ] {
            for mb in [None, minibatch(48, Some(5))] {
                let cfg = TrainConfig {
                    epochs: 4,
                    loss: loss.clone(),
                    minibatch: mb,
                    ..cfg.clone()
                };
                let run = |seed: u64| {
                    GraceModel::grace()
                        .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(seed))
                        .unwrap()
                };
                let (a, b) = (run(7), run(7));
                assert!(!a.embeddings.has_non_finite(), "{}", loss.name());
                assert_eq!(a.embeddings, b.embeddings, "{}", loss.name());
                assert_eq!(a.loss_curve, b.loss_curve, "{}", loss.name());
            }
        }
    }

    #[test]
    fn upgraded_variant_trains() {
        let (d, cfg) = tiny();
        let model = GraceModel::new(GraceConfig {
            adaptive: true,
            extra_feature_perturb: Some(0.2),
            extra_edge_add: Some(0.1),
            ..Default::default()
        });
        let cfg = TrainConfig { epochs: 4, ..cfg };
        let out = model
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(2))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
    }
}
