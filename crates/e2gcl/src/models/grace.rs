//! GRACE (Zhu et al. 2020) and GCA (Zhu et al. 2021).
//!
//! Both corrupt the graph into two views (uniform edge dropping + feature-
//! dimension masking for GRACE; centrality-adaptive versions for GCA) and
//! train a GCN + projection head with the symmetric InfoNCE objective.
//!
//! The `extra_*` fields implement the Fig. 2 "upgraded" variants: bolting
//! the missing operations (feature perturbation, edge addition) onto each
//! view, which the paper shows improves every baseline it upgrades.

use crate::config::TrainConfig;
use crate::guard::{GuardAction, NumericGuard};
use crate::models::{shuffled_batches, ContrastiveModel, PretrainResult};
use e2gcl_graph::{norm, CsrGraph};
use e2gcl_linalg::{Matrix, SeedRng, TrainError};
use e2gcl_nn::{loss, optim, optim::Optimizer, Adam, GcnEncoder, Mlp};
use e2gcl_views::{scores::GraphScores, uniform};
use std::time::Instant;

/// Configuration for GRACE and GCA.
#[derive(Clone, Debug)]
pub struct GraceConfig {
    /// `false` = GRACE (uniform corruption); `true` = GCA (adaptive).
    pub adaptive: bool,
    /// Edge-drop probability per view.
    pub drop_edge: (f32, f32),
    /// Feature-dimension mask probability per view.
    pub mask_feat: (f32, f32),
    /// InfoNCE temperature.
    pub tau: f32,
    /// Projection-head hidden/output width.
    pub proj_dim: usize,
    /// Fig. 2 upgrade: additionally perturb features entry-wise with this
    /// probability on each view (`+FP`).
    pub extra_feature_perturb: Option<f32>,
    /// Fig. 2 upgrade: additionally add this fraction of `|E|` random edges
    /// to each view (`+EA`).
    pub extra_edge_add: Option<f32>,
}

impl Default for GraceConfig {
    fn default() -> Self {
        Self {
            adaptive: false,
            drop_edge: (0.2, 0.4),
            mask_feat: (0.3, 0.4),
            tau: 0.5,
            proj_dim: 32,
            extra_feature_perturb: None,
            extra_edge_add: None,
        }
    }
}

/// GRACE / GCA model.
#[derive(Clone, Debug)]
pub struct GraceModel {
    /// Model configuration.
    pub config: GraceConfig,
}

impl GraceModel {
    /// Plain GRACE.
    pub fn grace() -> Self {
        Self {
            config: GraceConfig::default(),
        }
    }

    /// GCA (adaptive augmentation).
    pub fn gca() -> Self {
        Self {
            config: GraceConfig {
                adaptive: true,
                ..Default::default()
            },
        }
    }

    /// With explicit configuration.
    pub fn new(config: GraceConfig) -> Self {
        Self { config }
    }

    /// Generates one corrupted view.
    #[allow(clippy::too_many_arguments)]
    fn make_view(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        scores: &GraphScores,
        edge_probs: Option<&[f32]>,
        p_edge: f32,
        p_feat: f32,
        rng: &mut SeedRng,
    ) -> (CsrGraph, Matrix) {
        let mut vg = if let Some(probs) = edge_probs {
            // GCA: per-edge adaptive drop probabilities scaled so the mean
            // matches p_edge.
            let mean: f32 = probs.iter().sum::<f32>() / probs.len().max(1) as f32;
            let scale = if mean > 1e-9 { p_edge / mean } else { 1.0 };
            let scaled: Vec<f32> = probs.iter().map(|&p| p * scale).collect();
            uniform::drop_edges_weighted(g, &scaled, 0.9, rng)
        } else {
            uniform::drop_edges_uniform(g, p_edge, rng)
        };
        let mut vx = if self.config.adaptive {
            // GCA: mask unimportant dimensions more.
            let w = &scores.feature_global;
            let w_max = w.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let w_mean = w.iter().sum::<f32>() / w.len().max(1) as f32;
            let denom = (w_max - w_mean).max(1e-9);
            let probs: Vec<f32> = w.iter().map(|&wi| p_feat * (w_max - wi) / denom).collect();
            uniform::mask_feature_dims_weighted(x, &probs, 0.7, rng)
        } else {
            uniform::mask_feature_dims(x, p_feat, rng)
        };
        if let Some(p) = self.config.extra_feature_perturb {
            vx = uniform::perturb_features_uniform(&vx, p, rng);
        }
        if let Some(frac) = self.config.extra_edge_add {
            let count = ((g.num_edges() as f32) * frac).round() as usize;
            vg = uniform::add_edges_uniform(&vg, count, rng);
        }
        (vg, vx)
    }
}

impl ContrastiveModel for GraceModel {
    fn name(&self) -> String {
        let base = if self.config.adaptive { "GCA" } else { "GRACE" };
        let mut name = base.to_string();
        if self.config.extra_feature_perturb.is_some() {
            name.push_str("+FP");
        }
        if self.config.extra_edge_add.is_some() {
            name.push_str("+EA");
        }
        name
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        let start = Instant::now();
        let scores = GraphScores::compute(g, x);
        let edge_probs = self
            .config
            .adaptive
            .then(|| uniform::gca_edge_drop_probs(g, 1.0));
        let adj_orig = norm::normalized_adjacency(g);
        let mut encoder = GcnEncoder::new(&cfg.encoder_dims(x.cols()), &mut rng.fork("init"));
        let mut head = Mlp::new(
            cfg.embed_dim,
            self.config.proj_dim,
            self.config.proj_dim,
            &mut rng.fork("head"),
        );
        let mut opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let mut train_rng = rng.fork("train");
        let mut loss_curve = Vec::with_capacity(cfg.epochs);
        let mut checkpoints = Vec::new();
        let mut guard = NumericGuard::new(&cfg.guard);
        let fault = cfg.fault.clone().unwrap_or_default();
        let n = g.num_nodes();
        let mut epoch = 0;
        while epoch < cfg.epochs {
            let lr = cfg.lr * guard.lr_scale;
            let (g1, mut x1) = self.make_view(
                g,
                x,
                &scores,
                edge_probs.as_deref(),
                self.config.drop_edge.0,
                self.config.mask_feat.0,
                &mut train_rng,
            );
            let (g2, x2) = self.make_view(
                g,
                x,
                &scores,
                edge_probs.as_deref(),
                self.config.drop_edge.1,
                self.config.mask_feat.1,
                &mut train_rng,
            );
            fault.corrupt_features(epoch, &mut x1);
            let a1 = norm::normalized_adjacency(&g1);
            let a2 = norm::normalized_adjacency(&g2);
            let (h1, c1) = encoder.forward(&a1, &x1);
            let (h2, c2) = encoder.forward(&a2, &x2);
            let mut d_h1 = Matrix::zeros(n, cfg.embed_dim);
            let mut d_h2 = Matrix::zeros(n, cfg.embed_dim);
            let batches = shuffled_batches(n, cfg.batch_size, &mut train_rng);
            let num_batches = batches.len() as f32;
            let mut epoch_loss = 0.0;
            for batch in batches {
                if batch.len() < 2 {
                    continue;
                }
                let hb1 = h1.select_rows(&batch);
                let hb2 = h2.select_rows(&batch);
                let (z1, hc1) = head.forward(&hb1);
                let (z2, hc2) = head.forward(&hb2);
                let out = loss::info_nce(&z1, &z2, self.config.tau);
                epoch_loss += out.loss / num_batches;
                let hg1 = head.backward(&hc1, &out.d_z1);
                let hg2 = head.backward(&hc2, &out.d_z2);
                for (i, &v) in batch.iter().enumerate() {
                    for (dst, &src) in d_h1.row_mut(v).iter_mut().zip(hg1.dx.row(i)) {
                        *dst += src / num_batches;
                    }
                    for (dst, &src) in d_h2.row_mut(v).iter_mut().zip(hg2.dx.row(i)) {
                        *dst += src / num_batches;
                    }
                }
                head.step(&hg1, lr / num_batches, 0.0);
                head.step(&hg2, lr / num_batches, 0.0);
            }
            let mut acc = None;
            GcnEncoder::accumulate(&mut acc, encoder.backward(&a1, &c1, &d_h1), 1.0);
            GcnEncoder::accumulate(&mut acc, encoder.backward(&a2, &c2, &d_h2), 1.0);
            let Some(mut grads) = acc else {
                epoch += 1;
                continue;
            };
            let epoch_loss = fault.corrupt_loss(epoch, epoch_loss);
            fault.corrupt_gradients(epoch, &mut grads);
            let grads_bad = optim::grads_non_finite(&grads);
            let emb_bad = guard.embeddings_bad(&[&h1, &h2]);
            match guard.inspect(epoch, epoch_loss, grads_bad, emb_bad)? {
                GuardAction::Proceed => {
                    if let Some(max) = cfg.guard.max_grad_norm {
                        optim::clip_grad_norm(&mut grads, max);
                    }
                    opt.lr = lr;
                    opt.step(encoder.params_mut(), &grads);
                    loss_curve.push(epoch_loss);
                    if let Some(every) = cfg.checkpoint_every {
                        if (epoch + 1) % every == 0 || epoch + 1 == cfg.epochs {
                            checkpoints
                                .push((start.elapsed().as_secs_f64(), encoder.embed(&adj_orig, x)));
                        }
                    }
                    epoch += 1;
                }
                GuardAction::SkipEpoch => {
                    loss_curve.push(epoch_loss);
                    epoch += 1;
                }
                // The projection head already stepped this epoch; only the
                // encoder update is discarded and re-attempted at lower lr.
                GuardAction::RetryEpoch { .. } => {}
            }
        }
        Ok(PretrainResult {
            embeddings: encoder.embed(&adj_orig, x),
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints,
            loss_curve,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_datasets::{spec, NodeDataset};

    fn tiny() -> (NodeDataset, TrainConfig) {
        (
            NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 0),
            TrainConfig {
                epochs: 8,
                batch_size: 64,
                ..Default::default()
            },
        )
    }

    #[test]
    fn grace_trains_and_loss_falls() {
        let (d, cfg) = tiny();
        let out = GraceModel::grace()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(0))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert!(
            out.loss_curve.last().unwrap() < out.loss_curve.first().unwrap(),
            "{:?}",
            out.loss_curve
        );
    }

    #[test]
    fn gca_trains() {
        let (d, cfg) = tiny();
        let out = GraceModel::gca()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(1))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert_eq!(out.selection_time.as_nanos(), 0);
    }

    #[test]
    fn upgraded_variants_have_distinct_names() {
        let up = GraceModel::new(GraceConfig {
            extra_feature_perturb: Some(0.1),
            extra_edge_add: Some(0.1),
            ..Default::default()
        });
        assert_eq!(up.name(), "GRACE+FP+EA");
        assert_eq!(GraceModel::gca().name(), "GCA");
    }

    #[test]
    fn upgraded_variant_trains() {
        let (d, cfg) = tiny();
        let model = GraceModel::new(GraceConfig {
            adaptive: true,
            extra_feature_perturb: Some(0.2),
            extra_edge_add: Some(0.1),
            ..Default::default()
        });
        let cfg = TrainConfig { epochs: 4, ..cfg };
        let out = model
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(2))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
    }
}
