//! GAE and VGAE (Kipf & Welling 2016): (variational) graph auto-encoders.
//!
//! The encoder is the same 2-layer GCN as every other model; the decoder is
//! the inner-product edge decoder `p(u,v) = σ(z_u · z_v)` trained with BCE
//! over positive edges and sampled non-edges. VGAE adds the reparameterised
//! Gaussian posterior and KL regulariser.

use crate::config::TrainConfig;
use crate::guard::{GuardAction, NumericGuard};
use crate::models::{ContrastiveModel, PretrainResult};
use e2gcl_datasets::split::sample_non_edges;
use e2gcl_graph::{norm, CsrGraph};
use e2gcl_linalg::{ops, Matrix, SeedRng, TrainError};
use e2gcl_nn::{loss, optim, optim::Optimizer, Adam, GcnEncoder};
use std::time::Instant;

/// Edges scored per epoch (positives; an equal number of negatives is
/// sampled). Caps the decoder cost on dense graphs.
const EDGE_BATCH: usize = 4000;

/// Inner-product decoder pass shared by GAE and VGAE: BCE over `pos` and
/// `neg` pairs. Returns `(loss, dZ)`.
fn reconstruction(z: &Matrix, pos: &[(usize, usize)], neg: &[(usize, usize)]) -> (f32, Matrix) {
    let mut logits = Vec::with_capacity(pos.len() + neg.len());
    for &(u, v) in pos.iter().chain(neg) {
        logits.push(ops::dot(z.row(u), z.row(v)));
    }
    let mut targets = vec![1.0f32; pos.len()];
    targets.extend(std::iter::repeat_n(0.0, neg.len()));
    let (l, dl) = loss::bce_with_logits(&logits, &targets);
    let mut dz = Matrix::zeros(z.rows(), z.cols());
    for (&(u, v), &g) in pos.iter().chain(neg).zip(&dl) {
        let zu = z.row(u).to_vec();
        let zv = z.row(v).to_vec();
        ops::axpy_slice(dz.row_mut(u), g, &zv);
        ops::axpy_slice(dz.row_mut(v), g, &zu);
    }
    (l, dz)
}

/// Samples an epoch's positive-edge batch.
fn edge_batch(g: &CsrGraph, rng: &mut SeedRng) -> Vec<(usize, usize)> {
    let all: Vec<(usize, usize)> = g.edges().collect();
    if all.len() <= EDGE_BATCH {
        return all;
    }
    rng.sample_without_replacement(all.len(), EDGE_BATCH)
        .into_iter()
        .map(|i| all[i])
        .collect()
}

/// The (non-variational) graph auto-encoder.
#[derive(Clone, Debug, Default)]
pub struct GaeModel;

impl ContrastiveModel for GaeModel {
    fn name(&self) -> String {
        "GAE".to_string()
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        let start = Instant::now();
        let adj = norm::normalized_adjacency(g);
        let mut encoder = GcnEncoder::new(&cfg.encoder_dims(x.cols()), &mut rng.fork("init"));
        let mut opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let mut train_rng = rng.fork("train");
        let mut loss_curve = Vec::with_capacity(cfg.epochs);
        let mut checkpoints = Vec::new();
        let mut guard = NumericGuard::new(&cfg.guard);
        let fault = cfg.fault.clone().unwrap_or_default();
        let mut epoch = 0;
        while epoch < cfg.epochs {
            let (z, cache) = encoder.forward(&adj, x);
            let pos = edge_batch(g, &mut train_rng);
            let neg = sample_non_edges(g, pos.len(), &mut train_rng);
            let (l, dz) = reconstruction(&z, &pos, &neg);
            let mut grads = encoder.backward(&adj, &cache, &dz);
            let l = fault.corrupt_loss(epoch, l);
            fault.corrupt_gradients(epoch, &mut grads);
            let grads_bad = optim::grads_non_finite(&grads);
            let emb_bad = guard.embeddings_bad(&[&z]);
            match guard.inspect(epoch, l, grads_bad, emb_bad)? {
                GuardAction::Proceed => {
                    if let Some(max) = cfg.guard.max_grad_norm {
                        optim::clip_grad_norm(&mut grads, max);
                    }
                    opt.lr = cfg.lr * guard.lr_scale;
                    opt.step(encoder.params_mut(), &grads);
                    loss_curve.push(l);
                    if let Some(every) = cfg.checkpoint_every {
                        if (epoch + 1) % every == 0 || epoch + 1 == cfg.epochs {
                            checkpoints
                                .push((start.elapsed().as_secs_f64(), encoder.embed(&adj, x)));
                        }
                    }
                    epoch += 1;
                }
                GuardAction::SkipEpoch => {
                    loss_curve.push(l);
                    epoch += 1;
                }
                GuardAction::RetryEpoch { .. } => {}
            }
        }
        Ok(PretrainResult {
            embeddings: encoder.embed(&adj, x),
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints,
            loss_curve,
        })
    }
}

/// The variational graph auto-encoder.
#[derive(Clone, Debug)]
pub struct VgaeModel {
    /// Weight of the KL regulariser.
    pub kl_weight: f32,
}

impl Default for VgaeModel {
    fn default() -> Self {
        // Down-weighted KL: the full ELBO weight drowns reconstruction at
        // these embedding widths (52% vs 82% on the Cora analog).
        Self { kl_weight: 0.1 }
    }
}

impl ContrastiveModel for VgaeModel {
    fn name(&self) -> String {
        "VGAE".to_string()
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        let start = Instant::now();
        let adj = norm::normalized_adjacency(g);
        let d = cfg.embed_dim;
        // Encoder emits [μ | log σ²] side by side.
        let dims = vec![x.cols(), cfg.hidden_dim, 2 * d];
        let mut encoder = GcnEncoder::new(&dims, &mut rng.fork("init"));
        let mut opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let mut train_rng = rng.fork("train");
        let mut loss_curve = Vec::with_capacity(cfg.epochs);
        let mut checkpoints = Vec::new();
        let n = g.num_nodes();
        let kl_scale = self.kl_weight / n as f32;
        let mut guard = NumericGuard::new(&cfg.guard);
        let fault = cfg.fault.clone().unwrap_or_default();
        let mut epoch = 0;
        while epoch < cfg.epochs {
            let (out, cache) = encoder.forward(&adj, x);
            // Split, reparameterise.
            let mut z = Matrix::zeros(n, d);
            let mut eps = Matrix::zeros(n, d);
            for v in 0..n {
                for j in 0..d {
                    let mu = out.get(v, j);
                    let logvar = out.get(v, d + j).clamp(-10.0, 10.0);
                    let e = train_rng.normal();
                    eps.set(v, j, e);
                    z.set(v, j, mu + e * (0.5 * logvar).exp());
                }
            }
            let pos = edge_batch(g, &mut train_rng);
            let neg = sample_non_edges(g, pos.len(), &mut train_rng);
            let (recon, dz) = reconstruction(&z, &pos, &neg);
            // KL(q || N(0,I)) and total gradient wrt [μ | log σ²].
            let mut kl = 0.0f64;
            let mut d_out = Matrix::zeros(n, 2 * d);
            for v in 0..n {
                for j in 0..d {
                    let mu = out.get(v, j);
                    let logvar = out.get(v, d + j).clamp(-10.0, 10.0);
                    kl += f64::from(-0.5 * (1.0 + logvar - mu * mu - logvar.exp()) * kl_scale);
                    let dzv = dz.get(v, j);
                    d_out.set(v, j, dzv + kl_scale * mu);
                    d_out.set(
                        v,
                        d + j,
                        dzv * eps.get(v, j) * 0.5 * (0.5 * logvar).exp()
                            + kl_scale * 0.5 * (logvar.exp() - 1.0),
                    );
                }
            }
            let mut grads = encoder.backward(&adj, &cache, &d_out);
            let l = fault.corrupt_loss(epoch, recon + kl as f32);
            fault.corrupt_gradients(epoch, &mut grads);
            let grads_bad = optim::grads_non_finite(&grads);
            let emb_bad = guard.embeddings_bad(&[&z]);
            match guard.inspect(epoch, l, grads_bad, emb_bad)? {
                GuardAction::Proceed => {
                    if let Some(max) = cfg.guard.max_grad_norm {
                        optim::clip_grad_norm(&mut grads, max);
                    }
                    opt.lr = cfg.lr * guard.lr_scale;
                    opt.step(encoder.params_mut(), &grads);
                    loss_curve.push(l);
                    if let Some(every) = cfg.checkpoint_every {
                        if (epoch + 1) % every == 0 || epoch + 1 == cfg.epochs {
                            checkpoints.push((
                                start.elapsed().as_secs_f64(),
                                mu_embeddings(&encoder, &adj, x, d),
                            ));
                        }
                    }
                    epoch += 1;
                }
                GuardAction::SkipEpoch => {
                    loss_curve.push(l);
                    epoch += 1;
                }
                GuardAction::RetryEpoch { .. } => {}
            }
        }
        Ok(PretrainResult {
            embeddings: mu_embeddings(&encoder, &adj, x, d),
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints,
            loss_curve,
        })
    }
}

/// Inference embeddings of VGAE: the posterior means μ.
fn mu_embeddings(
    encoder: &GcnEncoder,
    adj: &e2gcl_graph::SparseMatrix,
    x: &Matrix,
    d: usize,
) -> Matrix {
    let full = encoder.embed(adj, x);
    let mut mu = Matrix::zeros(full.rows(), d);
    for v in 0..full.rows() {
        mu.row_mut(v).copy_from_slice(&full.row(v)[..d]);
    }
    mu
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_datasets::{spec, NodeDataset};

    fn tiny() -> (NodeDataset, TrainConfig) {
        (
            NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 0),
            TrainConfig {
                epochs: 15,
                ..Default::default()
            },
        )
    }

    #[test]
    fn reconstruction_grad_check() {
        let mut rng = SeedRng::new(0);
        let mut z = Matrix::zeros(5, 3);
        for v in z.as_mut_slice() {
            *v = rng.normal() * 0.5;
        }
        let pos = vec![(0usize, 1usize), (2, 3)];
        let neg = vec![(0usize, 4usize), (1, 3)];
        let (_, dz) = reconstruction(&z, &pos, &neg);
        let eps = 1e-3f32;
        for r in 0..5 {
            for c in 0..3 {
                let orig = z.get(r, c);
                z.set(r, c, orig + eps);
                let lp = reconstruction(&z, &pos, &neg).0;
                z.set(r, c, orig - eps);
                let lm = reconstruction(&z, &pos, &neg).0;
                z.set(r, c, orig);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - dz.get(r, c)).abs() < 2e-2 * (1.0 + fd.abs()),
                    "dz({r},{c}): {fd} vs {}",
                    dz.get(r, c)
                );
            }
        }
    }

    #[test]
    fn gae_learns_to_reconstruct() {
        let (d, cfg) = tiny();
        let out = GaeModel
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(1))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert!(
            out.loss_curve.last().unwrap() < &out.loss_curve[0],
            "{:?}",
            out.loss_curve
        );
    }

    #[test]
    fn vgae_trains_without_nans() {
        let (d, cfg) = tiny();
        let out = VgaeModel::default()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(2))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert_eq!(out.embeddings.cols(), cfg.embed_dim);
    }
}
