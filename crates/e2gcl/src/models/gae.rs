//! GAE and VGAE (Kipf & Welling 2016): (variational) graph auto-encoders.
//!
//! The encoder is the same 2-layer GCN as every other model; the decoder is
//! the inner-product edge decoder `p(u,v) = σ(z_u · z_v)` trained with BCE
//! over positive edges and sampled non-edges. VGAE adds the reparameterised
//! Gaussian posterior and KL regulariser.

use crate::config::TrainConfig;
use crate::engine::{EpochCtx, EpochDriver, EpochOutcome, EpochStep};
use crate::models::{ContrastiveModel, PretrainResult};
use e2gcl_datasets::split::sample_non_edges;
use e2gcl_graph::{norm, CsrGraph, SparseMatrix};
use e2gcl_linalg::{ops, Matrix, SeedRng, TrainError};
use e2gcl_nn::{loss, optim::Optimizer, Adam, GcnEncoder, GcnWorkspace};
use std::time::Instant;

/// Edges scored per epoch (positives; an equal number of negatives is
/// sampled). Caps the decoder cost on dense graphs.
const EDGE_BATCH: usize = 4000;

/// Inner-product decoder pass shared by GAE and VGAE: BCE over `pos` and
/// `neg` pairs. Returns `(loss, dZ)`.
fn reconstruction(z: &Matrix, pos: &[(usize, usize)], neg: &[(usize, usize)]) -> (f32, Matrix) {
    let mut logits = Vec::with_capacity(pos.len() + neg.len());
    for &(u, v) in pos.iter().chain(neg) {
        logits.push(ops::dot(z.row(u), z.row(v)));
    }
    let mut targets = vec![1.0f32; pos.len()];
    targets.extend(std::iter::repeat_n(0.0, neg.len()));
    let (l, dl) = loss::bce_with_logits(&logits, &targets);
    let mut dz = Matrix::zeros(z.rows(), z.cols());
    for (&(u, v), &g) in pos.iter().chain(neg).zip(&dl) {
        let zu = z.row(u).to_vec();
        let zv = z.row(v).to_vec();
        ops::axpy_slice(dz.row_mut(u), g, &zv);
        ops::axpy_slice(dz.row_mut(v), g, &zu);
    }
    (l, dz)
}

/// Samples an epoch's positive-edge batch.
fn edge_batch(g: &CsrGraph, rng: &mut SeedRng) -> Vec<(usize, usize)> {
    let all: Vec<(usize, usize)> = g.edges().collect();
    if all.len() <= EDGE_BATCH {
        return all;
    }
    rng.sample_without_replacement(all.len(), EDGE_BATCH)
        .into_iter()
        .map(|i| all[i])
        .collect()
}

/// The (non-variational) graph auto-encoder.
#[derive(Clone, Debug, Default)]
pub struct GaeModel;

impl ContrastiveModel for GaeModel {
    fn name(&self) -> String {
        "GAE".to_string()
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        crate::models::ensure_full_graph_only(cfg, &self.name())?;
        crate::models::ensure_full_loss_only(cfg, &self.name())?;
        let start = Instant::now();
        let adj = norm::normalized_adjacency(g);
        let encoder = GcnEncoder::new(&cfg.encoder_dims(x.cols()), &mut rng.fork("init"));
        let opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let train_rng = rng.fork("train");
        let mut step = GaeStep {
            g,
            x,
            adj,
            encoder,
            opt,
            train_rng,
            ws: GcnWorkspace::new(),
        };
        let run = EpochDriver::new(cfg).run(&mut step, start)?;
        Ok(PretrainResult {
            embeddings: run.embeddings,
            encoder: None,
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints: run.checkpoints,
            loss_curve: run.loss_curve,
        })
    }
}

/// One GAE epoch: encode, score an edge batch with the inner-product
/// decoder, and backprop the BCE reconstruction gradient.
struct GaeStep<'a> {
    g: &'a CsrGraph,
    x: &'a Matrix,
    adj: SparseMatrix,
    encoder: GcnEncoder,
    opt: Adam,
    train_rng: SeedRng,
    ws: GcnWorkspace,
}

impl EpochStep for GaeStep<'_> {
    fn epoch(&mut self, cx: &mut EpochCtx<'_>) -> EpochOutcome {
        self.encoder.forward_with(&self.adj, self.x, &mut self.ws);
        let pos = edge_batch(self.g, &mut self.train_rng);
        let neg = sample_non_edges(self.g, pos.len(), &mut self.train_rng);
        let (l, dz) = reconstruction(self.ws.output(), &pos, &neg);
        self.encoder.backward_with(&self.adj, &mut self.ws, &dz);
        let embeddings_bad = cx.guard.embeddings_bad(&[self.ws.output()]);
        EpochOutcome::Step {
            loss: l,
            embeddings_bad,
        }
    }

    fn grads_mut(&mut self) -> &mut [Matrix] {
        self.ws.grads_mut()
    }

    fn apply(&mut self, _epoch: usize, lr: f32, _loss: f32) {
        self.opt.lr = lr;
        self.opt.step(self.encoder.params_mut(), self.ws.grads());
    }

    fn embed(&mut self) -> Matrix {
        self.encoder.embed(&self.adj, self.x)
    }
}

/// The variational graph auto-encoder.
#[derive(Clone, Debug)]
pub struct VgaeModel {
    /// Weight of the KL regulariser.
    pub kl_weight: f32,
}

impl Default for VgaeModel {
    fn default() -> Self {
        // Down-weighted KL: the full ELBO weight drowns reconstruction at
        // these embedding widths (52% vs 82% on the Cora analog).
        Self { kl_weight: 0.1 }
    }
}

impl ContrastiveModel for VgaeModel {
    fn name(&self) -> String {
        "VGAE".to_string()
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        crate::models::ensure_full_graph_only(cfg, &self.name())?;
        crate::models::ensure_full_loss_only(cfg, &self.name())?;
        let start = Instant::now();
        let adj = norm::normalized_adjacency(g);
        let d = cfg.embed_dim;
        // Encoder emits [μ | log σ²] side by side.
        let dims = vec![x.cols(), cfg.hidden_dim, 2 * d];
        let encoder = GcnEncoder::new(&dims, &mut rng.fork("init"));
        let opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let train_rng = rng.fork("train");
        let n = g.num_nodes();
        let mut step = VgaeStep {
            g,
            x,
            adj,
            encoder,
            opt,
            train_rng,
            d,
            kl_scale: self.kl_weight / n as f32,
            ws: GcnWorkspace::new(),
            z: Matrix::default(),
            eps: Matrix::default(),
            d_out: Matrix::default(),
        };
        let run = EpochDriver::new(cfg).run(&mut step, start)?;
        Ok(PretrainResult {
            embeddings: run.embeddings,
            encoder: None,
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints: run.checkpoints,
            loss_curve: run.loss_curve,
        })
    }
}

/// One VGAE epoch: encode to `[μ | log σ²]`, reparameterise, decode an edge
/// batch, and backprop reconstruction + KL through the posterior.
struct VgaeStep<'a> {
    g: &'a CsrGraph,
    x: &'a Matrix,
    adj: SparseMatrix,
    encoder: GcnEncoder,
    opt: Adam,
    train_rng: SeedRng,
    /// Latent width (the encoder's output is `2 * d` wide).
    d: usize,
    kl_scale: f32,
    ws: GcnWorkspace,
    z: Matrix,
    eps: Matrix,
    d_out: Matrix,
}

impl EpochStep for VgaeStep<'_> {
    fn epoch(&mut self, cx: &mut EpochCtx<'_>) -> EpochOutcome {
        let (n, d) = (self.g.num_nodes(), self.d);
        self.encoder.forward_with(&self.adj, self.x, &mut self.ws);
        let out = self.ws.output();
        // Split, reparameterise.
        self.z.reset_zeroed(n, d);
        self.eps.reset_zeroed(n, d);
        for v in 0..n {
            for j in 0..d {
                let mu = out.get(v, j);
                let logvar = out.get(v, d + j).clamp(-10.0, 10.0);
                let e = self.train_rng.normal();
                self.eps.set(v, j, e);
                self.z.set(v, j, mu + e * (0.5 * logvar).exp());
            }
        }
        let pos = edge_batch(self.g, &mut self.train_rng);
        let neg = sample_non_edges(self.g, pos.len(), &mut self.train_rng);
        let (recon, dz) = reconstruction(&self.z, &pos, &neg);
        // KL(q || N(0,I)) and total gradient wrt [μ | log σ²].
        let kl_scale = self.kl_scale;
        let mut kl = 0.0f64;
        self.d_out.reset_zeroed(n, 2 * d);
        for v in 0..n {
            for j in 0..d {
                let mu = out.get(v, j);
                let logvar = out.get(v, d + j).clamp(-10.0, 10.0);
                kl += f64::from(-0.5 * (1.0 + logvar - mu * mu - logvar.exp()) * kl_scale);
                let dzv = dz.get(v, j);
                self.d_out.set(v, j, dzv + kl_scale * mu);
                self.d_out.set(
                    v,
                    d + j,
                    dzv * self.eps.get(v, j) * 0.5 * (0.5 * logvar).exp()
                        + kl_scale * 0.5 * (logvar.exp() - 1.0),
                );
            }
        }
        self.encoder
            .backward_with(&self.adj, &mut self.ws, &self.d_out);
        let embeddings_bad = cx.guard.embeddings_bad(&[&self.z]);
        EpochOutcome::Step {
            loss: recon + kl as f32,
            embeddings_bad,
        }
    }

    fn grads_mut(&mut self) -> &mut [Matrix] {
        self.ws.grads_mut()
    }

    fn apply(&mut self, _epoch: usize, lr: f32, _loss: f32) {
        self.opt.lr = lr;
        self.opt.step(self.encoder.params_mut(), self.ws.grads());
    }

    fn embed(&mut self) -> Matrix {
        mu_embeddings(&self.encoder, &self.adj, self.x, self.d)
    }
}

/// Inference embeddings of VGAE: the posterior means μ.
fn mu_embeddings(
    encoder: &GcnEncoder,
    adj: &e2gcl_graph::SparseMatrix,
    x: &Matrix,
    d: usize,
) -> Matrix {
    let full = encoder.embed(adj, x);
    let mut mu = Matrix::zeros(full.rows(), d);
    for v in 0..full.rows() {
        mu.row_mut(v).copy_from_slice(&full.row(v)[..d]);
    }
    mu
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_datasets::{spec, NodeDataset};

    fn tiny() -> (NodeDataset, TrainConfig) {
        (
            NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 0),
            TrainConfig {
                epochs: 15,
                ..Default::default()
            },
        )
    }

    #[test]
    fn reconstruction_grad_check() {
        let mut rng = SeedRng::new(0);
        let mut z = Matrix::zeros(5, 3);
        for v in z.as_mut_slice() {
            *v = rng.normal() * 0.5;
        }
        let pos = vec![(0usize, 1usize), (2, 3)];
        let neg = vec![(0usize, 4usize), (1, 3)];
        let (_, dz) = reconstruction(&z, &pos, &neg);
        let eps = 1e-3f32;
        for r in 0..5 {
            for c in 0..3 {
                let orig = z.get(r, c);
                z.set(r, c, orig + eps);
                let lp = reconstruction(&z, &pos, &neg).0;
                z.set(r, c, orig - eps);
                let lm = reconstruction(&z, &pos, &neg).0;
                z.set(r, c, orig);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - dz.get(r, c)).abs() < 2e-2 * (1.0 + fd.abs()),
                    "dz({r},{c}): {fd} vs {}",
                    dz.get(r, c)
                );
            }
        }
    }

    #[test]
    fn gae_learns_to_reconstruct() {
        let (d, cfg) = tiny();
        let out = GaeModel
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(1))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert!(
            out.loss_curve.last().unwrap() < &out.loss_curve[0],
            "{:?}",
            out.loss_curve
        );
    }

    #[test]
    fn vgae_trains_without_nans() {
        let (d, cfg) = tiny();
        let out = VgaeModel::default()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(2))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert_eq!(out.embeddings.cols(), cfg.embed_dim);
    }
}
