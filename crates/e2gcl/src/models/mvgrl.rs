//! MVGRL (Hassani & Khasahmadi 2020): contrastive multi-view learning
//! between the original adjacency and a PPR-diffusion view.
//!
//! Two view-specific GCN encoders are trained with a cross-view
//! node-vs-summary discriminator (DGI-style): node embeddings from one view
//! contrast against the graph summary of the *other* view; negatives come
//! from feature shuffling. Inference sums the two views' embeddings.
//!
//! The `extra_feature_perturb` hook adds uniform feature perturbation to
//! both views — the Fig. 2 `MVGRL+FP` upgrade.

use crate::config::TrainConfig;
use crate::engine::{EpochCtx, EpochDriver, EpochOutcome, EpochStep};
use crate::models::dgi::{shuffle_rows, summary, summary_backward, BilinearDiscriminator};
use crate::models::{ContrastiveModel, PretrainResult};
use e2gcl_graph::{norm, ppr, CsrGraph, SparseMatrix};
use e2gcl_linalg::{Matrix, SeedRng, TrainError};
use e2gcl_nn::{loss, optim, optim::Optimizer, Adam, GcnEncoder, GcnWorkspace};
use e2gcl_views::uniform;
use std::time::Instant;

/// MVGRL configuration.
#[derive(Clone, Debug)]
pub struct MvgrlConfig {
    /// PPR teleport probability.
    pub alpha: f32,
    /// PPR push tolerance.
    pub epsilon: f32,
    /// Edges kept per node in the diffusion view.
    pub top_k: usize,
    /// Fig. 2 upgrade: uniform feature perturbation on both views (`+FP`).
    pub extra_feature_perturb: Option<f32>,
}

impl Default for MvgrlConfig {
    fn default() -> Self {
        Self {
            alpha: 0.2,
            epsilon: 1e-3,
            top_k: 16,
            extra_feature_perturb: None,
        }
    }
}

/// The MVGRL model.
#[derive(Clone, Debug, Default)]
pub struct MvgrlModel {
    /// Model configuration.
    pub config: MvgrlConfig,
}

impl MvgrlModel {
    /// With explicit configuration.
    pub fn new(config: MvgrlConfig) -> Self {
        Self { config }
    }
}

impl ContrastiveModel for MvgrlModel {
    fn name(&self) -> String {
        if self.config.extra_feature_perturb.is_some() {
            "MVGRL+FP".to_string()
        } else {
            "MVGRL".to_string()
        }
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        crate::models::ensure_full_graph_only(cfg, &self.name())?;
        crate::models::ensure_full_loss_only(cfg, &self.name())?;
        let start = Instant::now();
        let diffusion =
            ppr::ppr_diffusion_graph(g, self.config.alpha, self.config.epsilon, self.config.top_k);
        let a1 = norm::normalized_adjacency(g);
        let a2 = norm::normalized_adjacency(&diffusion);
        let dims = cfg.encoder_dims(x.cols());
        let enc1 = GcnEncoder::new(&dims, &mut rng.fork("enc1"));
        let enc2 = GcnEncoder::new(&dims, &mut rng.fork("enc2"));
        let disc = BilinearDiscriminator::new(cfg.embed_dim, &mut rng.fork("disc"));
        let opt1 = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let opt2 = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let disc_opt = Adam::new(cfg.lr);
        let train_rng = rng.fork("train");
        let mut step = MvgrlStep {
            config: &self.config,
            x,
            a1,
            a2,
            enc1,
            enc2,
            disc,
            opt1,
            opt2,
            disc_opt,
            train_rng,
            ws1: GcnWorkspace::new(),
            ws2: GcnWorkspace::new(),
            ws1n: GcnWorkspace::new(),
            ws2n: GcnWorkspace::new(),
            dw: Matrix::default(),
        };
        let run = EpochDriver::new(cfg).run(&mut step, start)?;
        Ok(PretrainResult {
            embeddings: run.embeddings,
            encoder: None,
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints: run.checkpoints,
            loss_curve: run.loss_curve,
        })
    }
}

/// One MVGRL epoch: four encoder passes (two views × real/corrupt) scored
/// cross-view against the other view's summary.
struct MvgrlStep<'a> {
    config: &'a MvgrlConfig,
    x: &'a Matrix,
    a1: SparseMatrix,
    a2: SparseMatrix,
    enc1: GcnEncoder,
    enc2: GcnEncoder,
    disc: BilinearDiscriminator,
    opt1: Adam,
    opt2: Adam,
    disc_opt: Adam,
    train_rng: SeedRng,
    ws1: GcnWorkspace,
    ws2: GcnWorkspace,
    ws1n: GcnWorkspace,
    ws2n: GcnWorkspace,
    /// Combined discriminator gradient (auxiliary: scanned and stepped, but
    /// never clipped).
    dw: Matrix,
}

impl EpochStep for MvgrlStep<'_> {
    fn epoch(&mut self, cx: &mut EpochCtx<'_>) -> EpochOutcome {
        let n = self.x.rows();
        let (mut xv1, xv2) = match self.config.extra_feature_perturb {
            Some(p) => (
                uniform::perturb_features_uniform(self.x, p, &mut self.train_rng),
                uniform::perturb_features_uniform(self.x, p, &mut self.train_rng),
            ),
            None => (self.x.clone(), self.x.clone()),
        };
        cx.fault.corrupt_features(cx.epoch, &mut xv1);
        let x_corrupt = shuffle_rows(self.x, &mut self.train_rng);
        self.enc1.forward_with(&self.a1, &xv1, &mut self.ws1);
        self.enc2.forward_with(&self.a2, &xv2, &mut self.ws2);
        self.enc1.forward_with(&self.a1, &x_corrupt, &mut self.ws1n);
        self.enc2.forward_with(&self.a2, &x_corrupt, &mut self.ws2n);
        let (h1, h2) = (self.ws1.output(), self.ws2.output());
        let (h1n, h2n) = (self.ws1n.output(), self.ws2n.output());
        let (s1, dsig1) = summary(h1);
        let (s2, dsig2) = summary(h2);
        // Cross-view scores: (h1, s2) and (h2, s1), real vs corrupt.
        let mut logits = self.disc.score(h1, &s2);
        logits.extend(self.disc.score(h2, &s1));
        logits.extend(self.disc.score(h1n, &s2));
        logits.extend(self.disc.score(h2n, &s1));
        let mut targets = vec![1.0f32; 2 * n];
        targets.extend(std::iter::repeat_n(0.0, 2 * n));
        let (l, dl) = loss::bce_with_logits(&logits, &targets);
        let g1 = self.disc.backward(h1, &s2, &dl[..n]);
        let g2 = self.disc.backward(h2, &s1, &dl[n..2 * n]);
        let g1n = self.disc.backward(h1n, &s2, &dl[2 * n..3 * n]);
        let g2n = self.disc.backward(h2n, &s1, &dl[3 * n..]);
        // Summary gradients: s2 is scored against h1 and h1n; s1
        // against h2 and h2n.
        let mut d_h1 = g1.dh;
        let mut d_h2 = g2.dh;
        let ds1: Vec<f32> = g2.ds.iter().zip(&g2n.ds).map(|(a, b)| a + b).collect();
        let ds2: Vec<f32> = g1.ds.iter().zip(&g1n.ds).map(|(a, b)| a + b).collect();
        summary_backward(&mut d_h1, &ds1, &dsig1);
        summary_backward(&mut d_h2, &ds2, &dsig2);
        self.enc1.backward_with(&self.a1, &mut self.ws1, &d_h1);
        self.enc1.backward_with(&self.a1, &mut self.ws1n, &g1n.dh);
        self.enc2.backward_with(&self.a2, &mut self.ws2, &d_h2);
        self.enc2.backward_with(&self.a2, &mut self.ws2n, &g2n.dh);
        for (acc, g) in self.ws1.grads_mut().iter_mut().zip(self.ws1n.grads()) {
            acc.axpy(1.0, g);
        }
        for (acc, g) in self.ws2.grads_mut().iter_mut().zip(self.ws2n.grads()) {
            acc.axpy(1.0, g);
        }
        let mut dw = g1.dw;
        dw.add_assign(&g2.dw);
        dw.add_assign(&g1n.dw);
        dw.add_assign(&g2n.dw);
        self.dw = dw;
        let embeddings_bad = cx
            .guard
            .embeddings_bad(&[self.ws1.output(), self.ws2.output()]);
        EpochOutcome::Step {
            loss: l,
            embeddings_bad,
        }
    }

    fn grads_mut(&mut self) -> &mut [Matrix] {
        self.ws1.grads_mut()
    }

    fn aux_grads_bad(&self) -> bool {
        optim::grads_non_finite(self.ws2.grads()) || self.dw.has_non_finite()
    }

    // The two encoders' gradients are clipped as separate groups, each with
    // its own global norm (as the pre-engine loop did).
    fn clip(&mut self, max_norm: f32) {
        optim::clip_grad_norm(self.ws1.grads_mut(), max_norm);
        optim::clip_grad_norm(self.ws2.grads_mut(), max_norm);
    }

    fn apply(&mut self, _epoch: usize, lr: f32, _loss: f32) {
        self.opt1.lr = lr;
        self.opt2.lr = lr;
        self.disc_opt.lr = lr;
        self.opt1.step(self.enc1.params_mut(), self.ws1.grads());
        self.opt2.step(self.enc2.params_mut(), self.ws2.grads());
        self.disc_opt.step(
            std::slice::from_mut(&mut self.disc.w),
            std::slice::from_ref(&self.dw),
        );
    }

    fn embed(&mut self) -> Matrix {
        let mut h = self.enc1.embed(&self.a1, self.x);
        h.add_assign(&self.enc2.embed(&self.a2, self.x));
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_datasets::{spec, NodeDataset};

    #[test]
    fn mvgrl_trains_and_loss_falls() {
        let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 0);
        let cfg = TrainConfig {
            epochs: 12,
            ..Default::default()
        };
        let out = MvgrlModel::default()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(0))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert!(out.loss_curve.last().unwrap() < &out.loss_curve[0]);
    }

    #[test]
    fn upgraded_name_and_training() {
        let model = MvgrlModel::new(MvgrlConfig {
            extra_feature_perturb: Some(0.2),
            ..Default::default()
        });
        assert_eq!(model.name(), "MVGRL+FP");
        let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.04, 1);
        let cfg = TrainConfig {
            epochs: 3,
            ..Default::default()
        };
        let out = model
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(1))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
    }
}
