//! MVGRL (Hassani & Khasahmadi 2020): contrastive multi-view learning
//! between the original adjacency and a PPR-diffusion view.
//!
//! Two view-specific GCN encoders are trained with a cross-view
//! node-vs-summary discriminator (DGI-style): node embeddings from one view
//! contrast against the graph summary of the *other* view; negatives come
//! from feature shuffling. Inference sums the two views' embeddings.
//!
//! The `extra_feature_perturb` hook adds uniform feature perturbation to
//! both views — the Fig. 2 `MVGRL+FP` upgrade.

use crate::config::TrainConfig;
use crate::guard::{GuardAction, NumericGuard};
use crate::models::dgi::{shuffle_rows, summary, summary_backward, BilinearDiscriminator};
use crate::models::{ContrastiveModel, PretrainResult};
use e2gcl_graph::{norm, ppr, CsrGraph};
use e2gcl_linalg::{Matrix, SeedRng, TrainError};
use e2gcl_nn::{loss, optim, optim::Optimizer, Adam, GcnEncoder};
use e2gcl_views::uniform;
use std::time::Instant;

/// MVGRL configuration.
#[derive(Clone, Debug)]
pub struct MvgrlConfig {
    /// PPR teleport probability.
    pub alpha: f32,
    /// PPR push tolerance.
    pub epsilon: f32,
    /// Edges kept per node in the diffusion view.
    pub top_k: usize,
    /// Fig. 2 upgrade: uniform feature perturbation on both views (`+FP`).
    pub extra_feature_perturb: Option<f32>,
}

impl Default for MvgrlConfig {
    fn default() -> Self {
        Self {
            alpha: 0.2,
            epsilon: 1e-3,
            top_k: 16,
            extra_feature_perturb: None,
        }
    }
}

/// The MVGRL model.
#[derive(Clone, Debug, Default)]
pub struct MvgrlModel {
    /// Model configuration.
    pub config: MvgrlConfig,
}

impl MvgrlModel {
    /// With explicit configuration.
    pub fn new(config: MvgrlConfig) -> Self {
        Self { config }
    }
}

impl ContrastiveModel for MvgrlModel {
    fn name(&self) -> String {
        if self.config.extra_feature_perturb.is_some() {
            "MVGRL+FP".to_string()
        } else {
            "MVGRL".to_string()
        }
    }

    fn pretrain(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        cfg: &TrainConfig,
        rng: &mut SeedRng,
    ) -> Result<PretrainResult, TrainError> {
        let start = Instant::now();
        let diffusion =
            ppr::ppr_diffusion_graph(g, self.config.alpha, self.config.epsilon, self.config.top_k);
        let a1 = norm::normalized_adjacency(g);
        let a2 = norm::normalized_adjacency(&diffusion);
        let dims = cfg.encoder_dims(x.cols());
        let mut enc1 = GcnEncoder::new(&dims, &mut rng.fork("enc1"));
        let mut enc2 = GcnEncoder::new(&dims, &mut rng.fork("enc2"));
        let mut disc = BilinearDiscriminator::new(cfg.embed_dim, &mut rng.fork("disc"));
        let mut opt1 = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let mut opt2 = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
        let mut disc_opt = Adam::new(cfg.lr);
        let mut train_rng = rng.fork("train");
        let mut loss_curve = Vec::with_capacity(cfg.epochs);
        let mut checkpoints = Vec::new();
        let mut guard = NumericGuard::new(&cfg.guard);
        let fault = cfg.fault.clone().unwrap_or_default();
        let n = g.num_nodes();
        let mut epoch = 0;
        while epoch < cfg.epochs {
            let (mut xv1, xv2) = match self.config.extra_feature_perturb {
                Some(p) => (
                    uniform::perturb_features_uniform(x, p, &mut train_rng),
                    uniform::perturb_features_uniform(x, p, &mut train_rng),
                ),
                None => (x.clone(), x.clone()),
            };
            fault.corrupt_features(epoch, &mut xv1);
            let x_corrupt = shuffle_rows(x, &mut train_rng);
            let (h1, c1) = enc1.forward(&a1, &xv1);
            let (h2, c2) = enc2.forward(&a2, &xv2);
            let (h1n, c1n) = enc1.forward(&a1, &x_corrupt);
            let (h2n, c2n) = enc2.forward(&a2, &x_corrupt);
            let (s1, dsig1) = summary(&h1);
            let (s2, dsig2) = summary(&h2);
            // Cross-view scores: (h1, s2) and (h2, s1), real vs corrupt.
            let mut logits = disc.score(&h1, &s2);
            logits.extend(disc.score(&h2, &s1));
            logits.extend(disc.score(&h1n, &s2));
            logits.extend(disc.score(&h2n, &s1));
            let mut targets = vec![1.0f32; 2 * n];
            targets.extend(std::iter::repeat_n(0.0, 2 * n));
            let (l, dl) = loss::bce_with_logits(&logits, &targets);
            let g1 = disc.backward(&h1, &s2, &dl[..n]);
            let g2 = disc.backward(&h2, &s1, &dl[n..2 * n]);
            let g1n = disc.backward(&h1n, &s2, &dl[2 * n..3 * n]);
            let g2n = disc.backward(&h2n, &s1, &dl[3 * n..]);
            // Summary gradients: s2 is scored against h1 and h1n; s1
            // against h2 and h2n.
            let mut d_h1 = g1.dh;
            let mut d_h2 = g2.dh;
            let ds1: Vec<f32> = g2.ds.iter().zip(&g2n.ds).map(|(a, b)| a + b).collect();
            let ds2: Vec<f32> = g1.ds.iter().zip(&g1n.ds).map(|(a, b)| a + b).collect();
            summary_backward(&mut d_h1, &ds1, &dsig1);
            summary_backward(&mut d_h2, &ds2, &dsig2);
            let mut acc1 = None;
            GcnEncoder::accumulate(&mut acc1, enc1.backward(&a1, &c1, &d_h1), 1.0);
            GcnEncoder::accumulate(&mut acc1, enc1.backward(&a1, &c1n, &g1n.dh), 1.0);
            let mut acc2 = None;
            GcnEncoder::accumulate(&mut acc2, enc2.backward(&a2, &c2, &d_h2), 1.0);
            GcnEncoder::accumulate(&mut acc2, enc2.backward(&a2, &c2n, &g2n.dh), 1.0);
            let (Some(mut grads1), Some(mut grads2)) = (acc1, acc2) else {
                epoch += 1;
                continue;
            };
            let l = fault.corrupt_loss(epoch, l);
            fault.corrupt_gradients(epoch, &mut grads1);
            let mut dw = g1.dw;
            dw.add_assign(&g2.dw);
            dw.add_assign(&g1n.dw);
            dw.add_assign(&g2n.dw);
            let grads_bad = optim::grads_non_finite(&grads1)
                || optim::grads_non_finite(&grads2)
                || dw.has_non_finite();
            let emb_bad = guard.embeddings_bad(&[&h1, &h2]);
            match guard.inspect(epoch, l, grads_bad, emb_bad)? {
                GuardAction::Proceed => {
                    if let Some(max) = cfg.guard.max_grad_norm {
                        optim::clip_grad_norm(&mut grads1, max);
                        optim::clip_grad_norm(&mut grads2, max);
                    }
                    opt1.lr = cfg.lr * guard.lr_scale;
                    opt2.lr = cfg.lr * guard.lr_scale;
                    disc_opt.lr = cfg.lr * guard.lr_scale;
                    opt1.step(enc1.params_mut(), &grads1);
                    opt2.step(enc2.params_mut(), &grads2);
                    disc_opt.step(std::slice::from_mut(&mut disc.w), &[dw]);
                    loss_curve.push(l);
                    if let Some(every) = cfg.checkpoint_every {
                        if (epoch + 1) % every == 0 || epoch + 1 == cfg.epochs {
                            let mut h = enc1.embed(&a1, x);
                            h.add_assign(&enc2.embed(&a2, x));
                            checkpoints.push((start.elapsed().as_secs_f64(), h));
                        }
                    }
                    epoch += 1;
                }
                GuardAction::SkipEpoch => {
                    loss_curve.push(l);
                    epoch += 1;
                }
                GuardAction::RetryEpoch { .. } => {}
            }
        }
        let mut embeddings = enc1.embed(&a1, x);
        embeddings.add_assign(&enc2.embed(&a2, x));
        Ok(PretrainResult {
            embeddings,
            selection_time: std::time::Duration::ZERO,
            total_time: start.elapsed(),
            checkpoints,
            loss_curve,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_datasets::{spec, NodeDataset};

    #[test]
    fn mvgrl_trains_and_loss_falls() {
        let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 0);
        let cfg = TrainConfig {
            epochs: 12,
            ..Default::default()
        };
        let out = MvgrlModel::default()
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(0))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
        assert!(out.loss_curve.last().unwrap() < &out.loss_curve[0]);
    }

    #[test]
    fn upgraded_name_and_training() {
        let model = MvgrlModel::new(MvgrlConfig {
            extra_feature_perturb: Some(0.2),
            ..Default::default()
        });
        assert_eq!(model.name(), "MVGRL+FP");
        let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.04, 1);
        let cfg = TrainConfig {
            epochs: 3,
            ..Default::default()
        };
        let out = model
            .pretrain(&d.graph, &d.features, &cfg, &mut SeedRng::new(1))
            .unwrap();
        assert!(!out.embeddings.has_non_finite());
    }
}
