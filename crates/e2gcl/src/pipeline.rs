//! Alg. 1 end-to-end runs: pre-train → probe, with timing — the engine
//! behind every table and figure of the evaluation.

use crate::config::TrainConfig;
use crate::eval;
use crate::models::ContrastiveModel;
use e2gcl_datasets::{GraphDataset, NodeDataset};
use e2gcl_graph::CsrGraph;
use e2gcl_linalg::{stats, Matrix, SeedRng};

/// Result of repeated node-classification runs of one model on one dataset.
#[derive(Clone, Debug)]
pub struct NodeClassificationRun {
    /// Model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Per-run accuracies.
    pub accuracies: Vec<f32>,
    /// Mean accuracy.
    pub mean: f32,
    /// Std of accuracy.
    pub std: f32,
    /// Mean selection time (seconds).
    pub selection_secs: f64,
    /// Mean total pre-training time (seconds).
    pub total_secs: f64,
}

/// Runs Alg. 1 `runs` times (fresh seed each run: new pre-training and a new
/// decoder split) and aggregates, exactly like the tables' "mean ± std over
/// 10 data splits".
pub fn run_node_classification(
    model: &dyn ContrastiveModel,
    data: &NodeDataset,
    cfg: &TrainConfig,
    runs: usize,
    base_seed: u64,
) -> NodeClassificationRun {
    let mut accuracies = Vec::with_capacity(runs);
    let mut sel = 0.0f64;
    let mut tot = 0.0f64;
    for r in 0..runs {
        let seed = base_seed + r as u64;
        let mut rng = SeedRng::new(seed);
        let out = model.pretrain(&data.graph, &data.features, cfg, &mut rng);
        sel += out.selection_time.as_secs_f64() / runs as f64;
        tot += out.total_time.as_secs_f64() / runs as f64;
        accuracies.push(eval::node_classification_accuracy(
            &out.embeddings,
            &data.labels,
            data.num_classes,
            seed,
        ));
    }
    let (mean, std) = stats::mean_std(&accuracies);
    NodeClassificationRun {
        model: model.name(),
        dataset: data.name.clone(),
        accuracies,
        mean,
        std,
        selection_secs: sel,
        total_secs: tot,
    }
}

/// One accuracy-vs-time curve (Fig. 3): pre-trains once with checkpoints on
/// and probes every checkpoint.
pub fn accuracy_time_curve(
    model: &dyn ContrastiveModel,
    data: &NodeDataset,
    cfg: &TrainConfig,
    seed: u64,
) -> Vec<(f64, f32)> {
    let cfg = TrainConfig {
        checkpoint_every: cfg.checkpoint_every.or(Some(1)),
        ..cfg.clone()
    };
    let mut rng = SeedRng::new(seed);
    let out = model.pretrain(&data.graph, &data.features, &cfg, &mut rng);
    out.checkpoints
        .iter()
        .map(|(t, h)| {
            (
                *t,
                eval::node_classification_accuracy(h, &data.labels, data.num_classes, seed),
            )
        })
        .collect()
}

/// Disjoint union of many graphs into one block-diagonal graph, with the
/// per-graph node offsets. Used to pre-train one shared encoder for graph
/// classification (§V-E2).
pub fn disjoint_union(graphs: &[CsrGraph], features: &[Matrix]) -> (CsrGraph, Matrix, Vec<usize>) {
    assert_eq!(graphs.len(), features.len());
    let total: usize = graphs.iter().map(|g| g.num_nodes()).sum();
    let d = features.first().map_or(0, |f| f.cols());
    let mut edges = Vec::new();
    let mut x = Matrix::zeros(total, d);
    let mut offsets = Vec::with_capacity(graphs.len() + 1);
    let mut base = 0usize;
    for (g, f) in graphs.iter().zip(features) {
        offsets.push(base);
        for (u, v) in g.edges() {
            edges.push((base + u, base + v));
        }
        for v in 0..g.num_nodes() {
            x.set_row(base + v, f.row(v));
        }
        base += g.num_nodes();
    }
    offsets.push(base);
    (CsrGraph::from_edges(total, &edges), x, offsets)
}

/// Graph-classification accuracy of a contrastive model (§V-E2): pre-train
/// a shared encoder on the disjoint union, SUM-readout per graph, probe.
pub fn run_graph_classification(
    model: &dyn ContrastiveModel,
    data: &GraphDataset,
    cfg: &TrainConfig,
    runs: usize,
    base_seed: u64,
) -> (f32, f32) {
    let (union, x, offsets) = disjoint_union(&data.graphs, &data.features);
    let mut accs = Vec::with_capacity(runs);
    for r in 0..runs {
        let seed = base_seed + r as u64;
        let mut rng = SeedRng::new(seed);
        let out = model.pretrain(&union, &x, cfg, &mut rng);
        // SUM readout per graph.
        let mut z = Matrix::zeros(data.len(), out.embeddings.cols());
        for gi in 0..data.len() {
            let rows: Vec<usize> = (offsets[gi]..offsets[gi + 1]).collect();
            let sub = out.embeddings.select_rows(&rows);
            z.set_row(gi, &eval::sum_readout(&sub));
        }
        accs.push(eval::graph_classification_accuracy(
            &z,
            &data.labels,
            data.num_classes,
            seed,
        ));
    }
    stats::mean_std(&accs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use e2gcl_datasets::graph_dataset::{graph_spec, GraphDataset};

    #[test]
    fn disjoint_union_offsets_and_edges() {
        let g1 = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let g2 = CsrGraph::from_edges(2, &[(0, 1)]);
        let x1 = Matrix::filled(3, 2, 1.0);
        let x2 = Matrix::filled(2, 2, 2.0);
        let (u, x, off) = disjoint_union(&[g1, g2], &[x1, x2]);
        assert_eq!(u.num_nodes(), 5);
        assert_eq!(u.num_edges(), 3);
        assert_eq!(off, vec![0, 3, 5]);
        assert!(u.has_edge(3, 4));
        assert!(!u.has_edge(2, 3)); // no cross-graph edges
        assert_eq!(x.get(4, 0), 2.0);
    }

    #[test]
    fn node_classification_run_aggregates() {
        let data = NodeDataset::generate(&spec("cora-sim"), 0.08, 0);
        let model = E2gclModel::default();
        let cfg = TrainConfig { epochs: 5, batch_size: 64, ..Default::default() };
        let run = run_node_classification(&model, &data, &cfg, 2, 0);
        assert_eq!(run.accuracies.len(), 2);
        assert!(run.mean > 0.0 && run.mean <= 1.0);
        assert!(run.total_secs > 0.0);
        assert_eq!(run.model, "E2GCL");
    }

    #[test]
    fn curve_is_nonempty_and_time_ordered() {
        let data = NodeDataset::generate(&spec("cora-sim"), 0.06, 1);
        let model = E2gclModel::default();
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 64,
            checkpoint_every: Some(2),
            ..Default::default()
        };
        let curve = accuracy_time_curve(&model, &data, &cfg, 0);
        assert_eq!(curve.len(), 2);
        assert!(curve.windows(2).all(|w| w[1].0 >= w[0].0));
    }

    #[test]
    fn graph_classification_beats_chance() {
        let data = GraphDataset::generate(&graph_spec("ptcmr-sim"), 0.4, 0);
        let model = E2gclModel::default();
        let cfg = TrainConfig { epochs: 6, batch_size: 128, ..Default::default() };
        let (mean, _) = run_graph_classification(&model, &data, &cfg, 1, 0);
        assert!(mean > 0.5, "graph classification accuracy {mean}");
    }
}
