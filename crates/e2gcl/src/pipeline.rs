//! Alg. 1 end-to-end runs: pre-train → probe, with timing — the engine
//! behind every table and figure of the evaluation.
//!
//! Every entry point validates the [`TrainConfig`] up front and recovers
//! from per-run numeric failures: a run whose pre-training aborts with a
//! [`TrainError`] is retried once under a derived seed, and if the retry
//! also fails the run is recorded in `failed_runs` instead of poisoning the
//! whole sweep. Healthy runs are bit-identical to the unguarded pipeline.

use crate::config::TrainConfig;
use crate::eval;
use crate::models::{ContrastiveModel, PretrainResult};
use e2gcl_datasets::{GraphDataset, NodeDataset};
use e2gcl_graph::CsrGraph;
use e2gcl_linalg::{stats, Matrix, SeedRng, TrainError};

/// Salt XOR-ed into a failed run's seed for its single retry (the golden
/// ratio in fixed point, the usual SplitMix64 increment).
const RETRY_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Result of repeated node-classification runs of one model on one dataset.
#[derive(Clone, Debug)]
pub struct NodeClassificationRun {
    /// Model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Per-run accuracies (successful runs only).
    pub accuracies: Vec<f32>,
    /// Mean accuracy over successful runs.
    pub mean: f32,
    /// Std of accuracy over successful runs.
    pub std: f32,
    /// Mean selection time (seconds) over successful runs.
    pub selection_secs: f64,
    /// Mean total pre-training time (seconds) over successful runs.
    pub total_secs: f64,
    /// Runs whose pre-training failed even after the retry, as
    /// `(original seed, error)`.
    pub failed_runs: Vec<(u64, TrainError)>,
}

/// Result of repeated graph-classification runs (§V-E2).
#[derive(Clone, Debug)]
pub struct GraphClassificationRun {
    /// Model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Per-run accuracies (successful runs only).
    pub accuracies: Vec<f32>,
    /// Mean accuracy over successful runs.
    pub mean: f32,
    /// Std of accuracy over successful runs.
    pub std: f32,
    /// Runs whose pre-training failed even after the retry, as
    /// `(original seed, error)`.
    pub failed_runs: Vec<(u64, TrainError)>,
}

/// The config a run with original seed `seed` should train under: identical
/// to `cfg` unless the fault plan is scoped to a different run's seed, in
/// which case the fault is stripped. Returns `None` when `cfg` can be used
/// as-is (the common, allocation-free path).
fn scoped_cfg(cfg: &TrainConfig, seed: u64) -> Option<TrainConfig> {
    match &cfg.fault {
        Some(fault) if fault.skips_seed(seed) => Some(TrainConfig {
            fault: None,
            ..cfg.clone()
        }),
        _ => None,
    }
}

/// Pre-trains once at `seed`; on failure retries once at a derived seed.
/// Returns the result plus the seed that actually produced it, or the
/// *original* error if both attempts fail.
fn pretrain_with_retry(
    model: &dyn ContrastiveModel,
    g: &CsrGraph,
    x: &Matrix,
    cfg: &TrainConfig,
    seed: u64,
) -> Result<(PretrainResult, u64), TrainError> {
    let mut rng = SeedRng::new(seed);
    match model.pretrain(g, x, cfg, &mut rng) {
        Ok(out) => Ok((out, seed)),
        Err(err) => {
            let retry_seed = seed ^ RETRY_SEED_SALT;
            let mut rng = SeedRng::new(retry_seed);
            match model.pretrain(g, x, cfg, &mut rng) {
                Ok(out) => Ok((out, retry_seed)),
                Err(_) => Err(err),
            }
        }
    }
}

/// Runs Alg. 1 `runs` times (fresh seed each run: new pre-training and a new
/// decoder split) and aggregates, exactly like the tables' "mean ± std over
/// 10 data splits". Returns `Err` only for an invalid `cfg`; numeric
/// failures of individual runs land in
/// [`NodeClassificationRun::failed_runs`].
pub fn run_node_classification(
    model: &dyn ContrastiveModel,
    data: &NodeDataset,
    cfg: &TrainConfig,
    runs: usize,
    base_seed: u64,
) -> Result<NodeClassificationRun, TrainError> {
    cfg.validate()?;
    let mut accuracies = Vec::with_capacity(runs);
    let mut failed_runs = Vec::new();
    let mut sel = 0.0f64;
    let mut tot = 0.0f64;
    for r in 0..runs {
        let seed = base_seed + r as u64;
        let scoped = scoped_cfg(cfg, seed);
        let run_cfg = scoped.as_ref().unwrap_or(cfg);
        match pretrain_with_retry(model, &data.graph, &data.features, run_cfg, seed) {
            Ok((out, used_seed)) => {
                sel += out.selection_time.as_secs_f64();
                tot += out.total_time.as_secs_f64();
                accuracies.push(eval::node_classification_accuracy(
                    &out.embeddings,
                    &data.labels,
                    data.num_classes,
                    used_seed,
                ));
            }
            Err(err) => failed_runs.push((seed, err)),
        }
    }
    let ok = accuracies.len().max(1) as f64;
    let (mean, std) = stats::mean_std(&accuracies);
    Ok(NodeClassificationRun {
        model: model.name(),
        dataset: data.name.clone(),
        accuracies,
        mean,
        std,
        selection_secs: sel / ok,
        total_secs: tot / ok,
        failed_runs,
    })
}

/// One accuracy-vs-time curve (Fig. 3): pre-trains once with checkpoints on
/// and probes every checkpoint. The single pre-training gets the same
/// one-retry recovery as the sweep entry points; if both attempts fail the
/// error is surfaced.
pub fn accuracy_time_curve(
    model: &dyn ContrastiveModel,
    data: &NodeDataset,
    cfg: &TrainConfig,
    seed: u64,
) -> Result<Vec<(f64, f32)>, TrainError> {
    let cfg = TrainConfig {
        checkpoint_every: cfg.checkpoint_every.or(Some(1)),
        ..cfg.clone()
    };
    cfg.validate()?;
    let (out, used_seed) = pretrain_with_retry(model, &data.graph, &data.features, &cfg, seed)?;
    Ok(out
        .checkpoints
        .iter()
        .map(|(t, h)| {
            (
                *t,
                eval::node_classification_accuracy(h, &data.labels, data.num_classes, used_seed),
            )
        })
        .collect())
}

/// Disjoint union of many graphs into one block-diagonal graph, with the
/// per-graph node offsets. Used to pre-train one shared encoder for graph
/// classification (§V-E2).
pub fn disjoint_union(graphs: &[CsrGraph], features: &[Matrix]) -> (CsrGraph, Matrix, Vec<usize>) {
    assert_eq!(graphs.len(), features.len());
    let total: usize = graphs.iter().map(|g| g.num_nodes()).sum();
    let d = features.first().map_or(0, |f| f.cols());
    let mut edges = Vec::new();
    let mut x = Matrix::zeros(total, d);
    let mut offsets = Vec::with_capacity(graphs.len() + 1);
    let mut base = 0usize;
    for (g, f) in graphs.iter().zip(features) {
        offsets.push(base);
        for (u, v) in g.edges() {
            edges.push((base + u, base + v));
        }
        for v in 0..g.num_nodes() {
            x.set_row(base + v, f.row(v));
        }
        base += g.num_nodes();
    }
    offsets.push(base);
    (CsrGraph::from_edges(total, &edges), x, offsets)
}

/// Graph-classification accuracy of a contrastive model (§V-E2): pre-train
/// a shared encoder on the disjoint union, SUM-readout per graph, probe.
/// Returns `Err` only for an invalid `cfg`; per-run numeric failures land in
/// [`GraphClassificationRun::failed_runs`].
pub fn run_graph_classification(
    model: &dyn ContrastiveModel,
    data: &GraphDataset,
    cfg: &TrainConfig,
    runs: usize,
    base_seed: u64,
) -> Result<GraphClassificationRun, TrainError> {
    cfg.validate()?;
    let (union, x, offsets) = disjoint_union(&data.graphs, &data.features);
    let mut accs = Vec::with_capacity(runs);
    let mut failed_runs = Vec::new();
    for r in 0..runs {
        let seed = base_seed + r as u64;
        let scoped = scoped_cfg(cfg, seed);
        let run_cfg = scoped.as_ref().unwrap_or(cfg);
        match pretrain_with_retry(model, &union, &x, run_cfg, seed) {
            Ok((out, used_seed)) => {
                // SUM readout per graph.
                let mut z = Matrix::zeros(data.len(), out.embeddings.cols());
                for gi in 0..data.len() {
                    let rows: Vec<usize> = (offsets[gi]..offsets[gi + 1]).collect();
                    let sub = out.embeddings.select_rows(&rows);
                    z.set_row(gi, &eval::sum_readout(&sub));
                }
                accs.push(eval::graph_classification_accuracy(
                    &z,
                    &data.labels,
                    data.num_classes,
                    used_seed,
                ));
            }
            Err(err) => failed_runs.push((seed, err)),
        }
    }
    let (mean, std) = stats::mean_std(&accs);
    Ok(GraphClassificationRun {
        model: model.name(),
        dataset: data.name.clone(),
        accuracies: accs,
        mean,
        std,
        failed_runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{FaultPlan, GuardConfig, GuardPolicy};
    use crate::prelude::*;
    use e2gcl_datasets::graph_dataset::{graph_spec, GraphDataset};

    #[test]
    fn disjoint_union_offsets_and_edges() {
        let g1 = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let g2 = CsrGraph::from_edges(2, &[(0, 1)]);
        let x1 = Matrix::filled(3, 2, 1.0);
        let x2 = Matrix::filled(2, 2, 2.0);
        let (u, x, off) = disjoint_union(&[g1, g2], &[x1, x2]);
        assert_eq!(u.num_nodes(), 5);
        assert_eq!(u.num_edges(), 3);
        assert_eq!(off, vec![0, 3, 5]);
        assert!(u.has_edge(3, 4));
        assert!(!u.has_edge(2, 3)); // no cross-graph edges
        assert_eq!(x.get(4, 0), 2.0);
    }

    #[test]
    fn node_classification_run_aggregates() {
        let data = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.08, 0);
        let model = E2gclModel::default();
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 64,
            ..Default::default()
        };
        let run = run_node_classification(&model, &data, &cfg, 2, 0).unwrap();
        assert_eq!(run.accuracies.len(), 2);
        assert!(run.failed_runs.is_empty());
        assert!(run.mean > 0.0 && run.mean <= 1.0);
        assert!(run.total_secs > 0.0);
        assert_eq!(run.model, "E2GCL");
    }

    #[test]
    fn invalid_config_is_rejected_up_front() {
        let data = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 0);
        let model = E2gclModel::default();
        let cfg = TrainConfig {
            lr: f32::NAN,
            ..Default::default()
        };
        let err = run_node_classification(&model, &data, &cfg, 1, 0).unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)));
    }

    #[test]
    fn persistent_fault_lands_in_failed_runs_without_aborting_the_sweep() {
        let data = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.05, 0);
        let model = E2gclModel::default();
        // A fail-fast NaN loss at epoch 1 fires on the retry too (faults are
        // epoch-keyed), so this run cannot be rescued.
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 64,
            guard: GuardConfig {
                policy: GuardPolicy::FailFast,
                ..Default::default()
            },
            fault: Some(FaultPlan::nan_loss(&[1])),
            ..Default::default()
        };
        let run = run_node_classification(&model, &data, &cfg, 2, 0).unwrap();
        assert!(run.accuracies.is_empty());
        assert_eq!(run.failed_runs.len(), 2);
        assert_eq!(run.failed_runs[0].0, 0);
        assert_eq!(run.failed_runs[1].0, 1);
        assert!(matches!(
            run.failed_runs[0].1,
            TrainError::NonFiniteLoss { epoch: 1 }
        ));
        // Degenerate aggregate, not a panic.
        assert_eq!(run.mean, 0.0);
    }

    #[test]
    fn curve_is_nonempty_and_time_ordered() {
        let data = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.06, 1);
        let model = E2gclModel::default();
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 64,
            checkpoint_every: Some(2),
            ..Default::default()
        };
        let curve = accuracy_time_curve(&model, &data, &cfg, 0).unwrap();
        assert_eq!(curve.len(), 2);
        assert!(curve.windows(2).all(|w| w[1].0 >= w[0].0));
    }

    #[test]
    fn graph_classification_beats_chance() {
        let data = GraphDataset::generate(&graph_spec("ptcmr-sim").unwrap(), 0.4, 0);
        let model = E2gclModel::default();
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 128,
            ..Default::default()
        };
        let run = run_graph_classification(&model, &data, &cfg, 1, 0).unwrap();
        assert!(run.mean > 0.5, "graph classification accuracy {}", run.mean);
        assert!(run.failed_runs.is_empty());
    }
}
